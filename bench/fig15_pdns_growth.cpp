// Fig. 15 — Passive-DNS database bootstrap over 13 days.
//
// Paper: after 13 days of resolution traffic, 88% of all unique RRs in the
// pDNS-DB are disposable, and the share of *new* daily RRs that are
// disposable grows from 68% to 94% as the non-disposable namespace gets
// exhausted.  New daily non-disposable domains dropped from 13M to 1.6M
// while disposable stayed at 5-7M.

#include "bench_common.h"
#include "pdns/rpdns.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

int main() {
  print_header("Fig. 15", "pDNS-DB bootstrap: new RRs per day by class");

  PipelineOptions options = default_options(200'000);
  options.warmup = false;

  RpDnsDataset rpdns;
  std::uint64_t disposable_total = 0;
  struct DayCounts {
    std::uint64_t disposable = 0;
    std::uint64_t nondisposable = 0;
  };
  std::vector<DayCounts> per_day;

  for (int day = 0; day < 13; ++day) {
    ScenarioScale scale = options.scale;
    scale.traffic_stream = static_cast<std::uint64_t>(day);
    scale.flagship_boost = 0.85 + 0.30 * static_cast<double>(day) / 12.0;
    Scenario scenario(ScenarioDate::kDec30, scale);
    PipelineOptions day_options = options;
    day_options.scale = scale;
    DayCapture capture;
    simulate_day(scenario, capture, day_options, day);

    DayCounts counts;
    for (const auto& [key, rr_counts] : capture.chr().entries()) {
      if (!rpdns.add(key, day)) continue;
      const auto name = DomainName::parse(key.name);
      if (name && scenario.truth().is_disposable_name(*name)) {
        ++counts.disposable;
        ++disposable_total;
      } else {
        ++counts.nondisposable;
      }
    }
    per_day.push_back(counts);
  }

  TextTable table({"day", "new_disposable", "new_nondisposable",
                   "disposable_share_of_new"});
  for (std::size_t day = 0; day < per_day.size(); ++day) {
    const DayCounts& counts = per_day[day];
    table.add_row(
        {std::to_string(day + 1), with_commas(counts.disposable),
         with_commas(counts.nondisposable),
         percent(static_cast<double>(counts.disposable) /
                 static_cast<double>(counts.disposable +
                                     counts.nondisposable))});
  }
  std::printf("%s\n", table.render().c_str());

  const double db_share = static_cast<double>(disposable_total) /
                          static_cast<double>(rpdns.unique_records());
  const DayCounts& first = per_day.front();
  const DayCounts& last = per_day.back();

  std::printf("Database composition after 13 days (%s unique RRs):\n",
              with_commas(rpdns.unique_records()).c_str());
  print_claim("88% of all unique RRs are disposable", percent(db_share, 1));
  std::printf("\nDisposable share of daily new RRs:\n");
  print_claim("68% on day 1 -> 94% on day 13",
              percent(static_cast<double>(first.disposable) /
                      static_cast<double>(first.disposable +
                                          first.nondisposable)) +
                  " -> " +
                  percent(static_cast<double>(last.disposable) /
                          static_cast<double>(last.disposable +
                                              last.nondisposable)));
  std::printf("\nNew non-disposable RRs, day 1 -> day 13:\n");
  print_claim("collapses (13M -> 1.6M in the paper)",
              with_commas(first.nondisposable) + " -> " +
                  with_commas(last.nondisposable));
  return 0;
}
