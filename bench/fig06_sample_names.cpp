// Fig. 6 — Sample disposable domain names.
//
// Prints generated samples from each disposable archetype, mirroring the
// paper's three case studies: (i) eSoft-style telemetry-in-labels, (ii)
// McAfee-style file-reputation hashes, (iii) Google-IPv6-experiment
// compound names — plus the DNSBL and tracker archetypes the taxonomy
// (Section V-C1) lists.

#include "bench_common.h"
#include "workload/zone_model.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

namespace {

void show(const char* title, DisposableZoneConfig config, NamePattern pattern,
          Rng& rng) {
  DisposableZoneModel model(std::move(config), std::move(pattern));
  std::printf("(%s)\n", title);
  for (int i = 0; i < 4; ++i) {
    std::printf("  %s\n", model.sample_query(rng).qname.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("Fig. 6", "sample disposable domain names per archetype");
  Rng rng(2011);

  {
    DisposableZoneConfig config;
    config.apex = "device.trans.manage.esoft-like.com";
    config.repeat_probability = 0.0;
    NamePattern pattern;
    pattern.add(std::make_unique<MetricsLabel>("load", 0, true));
    pattern.add(std::make_unique<MetricsLabel>("mem", 2, true));
    pattern.add(std::make_unique<CounterLabel>(1'000'000, 9'999'999));
    pattern.add(std::make_unique<CounterLabel>(1'000'000'000, 3'999'999'999));
    show("i: telemetry over DNS, eSoft-style", std::move(config),
         std::move(pattern), rng);
  }
  {
    DisposableZoneConfig config;
    config.apex = "avqs.mcafee-like.com";
    config.repeat_probability = 0.0;
    NamePattern pattern;
    pattern.add(std::make_unique<FixedLabel>("0"));
    pattern.add(std::make_unique<ChoiceLabel>(std::vector<std::string>{"0", "1"}));
    pattern.add(RandomStringLabel::hex(2));
    pattern.add(RandomStringLabel::base32(26));
    show("ii: file-reputation lookups, McAfee-style", std::move(config),
         std::move(pattern), rng);
  }
  {
    DisposableZoneConfig config;
    config.apex = "ipv6-exp.l.google-like.com";
    config.repeat_probability = 0.0;
    NamePattern pattern;
    pattern.add(std::make_unique<FixedLabel>("p2"));
    pattern.add(RandomStringLabel::base36(13));
    pattern.add(RandomStringLabel::base36(16));
    pattern.add(std::make_unique<CounterLabel>(100'000, 999'999));
    pattern.add(std::make_unique<ChoiceLabel>(
        std::vector<std::string>{"i1", "i2", "s1"}));
    pattern.add(std::make_unique<ChoiceLabel>(std::vector<std::string>{"ds", "v4"}));
    show("iii: measurement experiment, Google-IPv6-style", std::move(config),
         std::move(pattern), rng);
  }
  {
    DisposableZoneConfig config;
    config.apex = "zen.dnsbl-like.org";
    config.repeat_probability = 0.0;
    NamePattern pattern;
    for (int i = 0; i < 4; ++i) pattern.add(std::make_unique<OctetLabel>());
    show("iv: DNS blocklist lookups (reversed IPs)", std::move(config),
         std::move(pattern), rng);
  }
  {
    DisposableZoneConfig config;
    config.apex = "metrics.tracker-like.net";
    config.repeat_probability = 0.0;
    NamePattern pattern;
    pattern.add(RandomStringLabel::hex(16));
    show("v: cookie/analytics tracker beacons", std::move(config),
         std::move(pattern), rng);
  }

  std::printf("Structural property (Section IV-A):\n");
  print_claim(
      "the random part is not always the leftmost label; names of one "
      "group share the same number of periods",
      "each archetype keeps a fixed depth with algorithmic labels at "
      "fixed positions (see samples above)");
  return 0;
}
