// §VI-C — Passive-DNS database storage and wildcard aggregation.
//
// Paper: disposable domains dominate pDNS-DB growth; replacing each
// disposable name with a wildcard under its mined zone collapsed
// 129,674,213 distinct disposable RRs to 945,065 (0.7%).  We bootstrap two
// databases over 6 days — raw and wildcard-folding (rules = the miner's
// findings) — and compare record counts and storage bytes.

#include <optional>

#include "bench_common.h"
#include "pdns/pdns_db.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

int main() {
  print_header("Sec. VI-C", "pDNS-DB wildcard aggregation of disposable RRs");

  PipelineOptions options = default_options(200'000);
  options.warmup = false;

  // Mine the folding rules once on day 1, then bootstrap both databases
  // over 6 days of traffic.
  PassiveDnsDb raw(/*wildcard_folding=*/false);
  PassiveDnsDb folded(/*wildcard_folding=*/true);
  std::optional<FindingIndex> index;

  for (int day = 0; day < 6; ++day) {
    ScenarioScale scale = options.scale;
    scale.traffic_stream = static_cast<std::uint64_t>(day);
    PipelineOptions day_options = options;
    day_options.scale = scale;
    DayCapture capture;
    if (day == 0) {
      const MiningDayResult result =
          run_mining_day(ScenarioDate::kDec30, day_options, &capture);
      for (const auto& finding : result.findings) {
        raw.add_rule({finding.zone, finding.depth});
        folded.add_rule({finding.zone, finding.depth});
      }
      index.emplace(result.findings);
      std::printf("Mined %zu disposable (zone, depth) rules on day 1.\n\n",
                  result.findings.size());
    } else {
      Scenario scenario(ScenarioDate::kDec30, scale);
      simulate_day(scenario, capture, day_options, day);
    }
    for (const auto& [key, counts] : capture.chr().entries()) {
      const auto name = DomainName::parse(key.name);
      if (!name) continue;
      raw.add(*name, key.type, key.rdata, day);
      folded.add(*name, key.type, key.rdata, day);
    }
  }

  // Disposable-record counts in each database.
  std::uint64_t raw_disposable = 0;
  raw.store().for_each([&](const RRKey& key, const RpDnsRecord&) {
    const auto name = DomainName::parse(key.name);
    if (name && index->is_disposable(*name)) ++raw_disposable;
  });
  std::uint64_t folded_wildcards = 0;
  folded.store().for_each([&](const RRKey& key, const RpDnsRecord&) {
    if (!key.name.empty() && key.name.front() == '*') ++folded_wildcards;
  });

  TextTable table({"database", "unique_RRs", "disposable_RRs",
                   "storage_bytes", "folded_additions"});
  table.add_row({"raw", with_commas(raw.unique_records()),
                 with_commas(raw_disposable), with_commas(raw.storage_bytes()),
                 "-"});
  table.add_row({"wildcard-folding", with_commas(folded.unique_records()),
                 with_commas(folded_wildcards),
                 with_commas(folded.storage_bytes()),
                 with_commas(folded.folded_additions())});
  std::printf("%s\n", table.render().c_str());

  const double disposable_kept =
      raw_disposable == 0
          ? 0.0
          : static_cast<double>(folded_wildcards) /
                static_cast<double>(raw_disposable);
  std::printf("Disposable-record reduction under wildcard storage:\n");
  print_claim("129,674,213 -> 945,065 distinct records kept (0.7%)",
              with_commas(raw_disposable) + " -> " +
                  with_commas(folded_wildcards) + " (" +
                  percent(disposable_kept, 2) + " kept)");
  std::printf("\nWhole-database effect:\n");
  print_claim("pDNS-DB storage growth is dominated by disposable RRs",
              "unique RRs " + with_commas(raw.unique_records()) + " -> " +
                  with_commas(folded.unique_records()) + "; storage bytes " +
                  with_commas(raw.storage_bytes()) + " -> " +
                  with_commas(folded.storage_bytes()));
  return 0;
}
