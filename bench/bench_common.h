// Shared plumbing for the figure/table reproduction harnesses.
//
// Every bench binary is standalone: it generates its scenario
// deterministically, runs the measurement, and prints the rows/series the
// corresponding figure or table of the paper reports, followed by a
// "paper vs measured" recap (EXPERIMENTS.md records these side by side).
#pragma once

#include <cstdio>
#include <string>

#include "miner/pipeline.h"
#include "ml/lad_tree.h"
#include "obs/json_snapshot.h"
#include "obs/metrics.h"
#include "util/strings.h"
#include "util/table.h"

namespace dnsnoise::bench {

/// Default scaled-ISP volume used by the share-calibrated experiments.
inline ScenarioScale default_scale(std::uint64_t queries_per_day = 400'000) {
  ScenarioScale scale;
  scale.queries_per_day = queries_per_day;
  scale.client_count = queries_per_day / 20;
  return scale;
}

inline PipelineOptions default_options(
    std::uint64_t queries_per_day = 400'000) {
  PipelineOptions options;
  options.scale = default_scale(queries_per_day);
  return options;
}

inline void print_header(const std::string& id, const std::string& title) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==========================================================\n");
}

inline void print_claim(const std::string& paper, const std::string& measured) {
  std::printf("  paper:    %s\n  measured: %s\n", paper.c_str(),
              measured.c_str());
}

/// Serializes `registry` through the obs JSON exporter into
/// BENCH_<bench_name>.json in the working directory (the file
/// tools/check_bench_regression.py compares against its committed
/// baseline).  Returns the path, or "" if the file could not be written.
inline std::string write_bench_json(const std::string& bench_name,
                                    const obs::MetricsRegistry& registry) {
  const std::string path = "BENCH_" + bench_name + ".json";
  const std::string json =
      obs::to_json(registry.snapshot(), {{"bench", bench_name}});
  if (!obs::write_json_file(path, json)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return "";
  }
  return path;
}

/// Simulates one capture day of `date` (with warmup) and returns the
/// cluster-wide cache stats; the capture is filled in place.
inline DnsCacheStats capture_day(ScenarioDate date,
                                 const PipelineOptions& options,
                                 DayCapture& capture) {
  Scenario scenario(date, options.scale);
  return simulate_day(scenario, capture, options, scenario_day_index(date));
}

/// Trains the campaign's reference LAD tree the way the paper did: one
/// model from one labeled day (we use the 11/14 scenario, nearest to the
/// paper's 11/10 labeling date), then applied across all dates.
inline LadTree train_reference_model(std::uint64_t queries_per_day = 400'000) {
  PipelineOptions options = default_options(queries_per_day);
  options.labeler.min_group_size = 10;
  Scenario scenario(ScenarioDate::kNov14, options.scale);
  DayCapture capture;
  simulate_day(scenario, capture, options,
               scenario_day_index(ScenarioDate::kNov14));
  const Dataset data = to_dataset(
      label_zones(capture.tree(), capture.chr(), scenario, options.labeler));
  LadTree model;
  model.train(data);
  return model;
}

}  // namespace dnsnoise::bench
