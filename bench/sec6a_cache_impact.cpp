// §VI-A — DNS caching impact study.
//
// Paper's prediction: under a fixed-size LRU cache, one-time disposable
// entries fill the cache and prematurely evict useful (non-disposable)
// records, inflating resolver-to-authority traffic and latency.  This
// ablation sweeps cache capacity with disposable traffic ON vs OFF and
// reports premature evictions of non-disposable entries, cache hit rate,
// and the above-traffic inflation attributable to disposable load.

#include "bench_common.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

namespace {

struct RunResult {
  DnsCacheStats stats;
  std::uint64_t above = 0;
  std::uint64_t below = 0;
};

RunResult run(std::size_t capacity, double disposable_multiplier,
              bool low_priority = false) {
  PipelineOptions options = default_options(250'000);
  options.scale.disposable_traffic_multiplier = disposable_multiplier;
  options.cluster.cache.capacity = capacity;
  options.cluster.cache.low_priority_disposable = low_priority;
  Scenario scenario(ScenarioDate::kDec30, options.scale);
  DayCapture capture;
  RunResult result;
  result.stats = simulate_day(scenario, capture, options,
                              scenario_day_index(ScenarioDate::kDec30));
  result.above = capture.above_series().sum_total();
  result.below = capture.below_series().sum_total();
  return result;
}

}  // namespace

int main() {
  print_header("Sec. VI-A", "LRU cache impact of disposable load");

  TextTable table({"cache_capacity", "disposable", "hit_rate",
                   "premature_evictions", "premature_nondisp",
                   "above_traffic"});
  double inflation_small_cache = 0.0;
  std::uint64_t collateral_small = 0;
  std::uint64_t collateral_small_off = 0;
  for (const std::size_t capacity : {2'000UL, 8'000UL, 32'000UL, 128'000UL}) {
    for (const double multiplier : {1.0, 0.0}) {
      const RunResult r = run(capacity, multiplier);
      table.add_row({with_commas(capacity), multiplier > 0 ? "on" : "off",
                     percent(r.stats.hit_rate(), 1),
                     with_commas(r.stats.premature_evictions),
                     with_commas(r.stats.premature_nondisposable_evictions),
                     with_commas(r.above)});
      if (capacity == 2'000UL) {
        if (multiplier > 0) {
          inflation_small_cache = static_cast<double>(r.above);
          collateral_small = r.stats.premature_nondisposable_evictions;
        } else {
          inflation_small_cache /= static_cast<double>(r.above);
          collateral_small_off = r.stats.premature_nondisposable_evictions;
        }
      }
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Premature evictions of useful (non-disposable) records:\n");
  print_claim(
      "disposable queries cause premature cache evictions of "
      "non-disposable domains",
      "at capacity 2,000: " + with_commas(collateral_small) +
          " with disposable traffic vs " + with_commas(collateral_small_off) +
          " without");
  std::printf("\nResolver-to-authority traffic inflation (capacity 2,000):\n");
  print_claim("evictions inflate traffic to authoritative name servers",
              fixed(inflation_small_cache, 2) +
                  "x the above-traffic of the disposable-free baseline");
  // Ablation of the paper's mitigation sketch: "disposable domains could
  // be treated with low priority" — insert flagged entries at the cold end
  // of the LRU.
  std::printf("\nMitigation ablation (capacity 2,000, disposable on):\n");
  TextTable mitigation({"policy", "hit_rate", "premature_nondisp",
                        "above_traffic"});
  const RunResult normal = run(2'000, 1.0, /*low_priority=*/false);
  const RunResult cold = run(2'000, 1.0, /*low_priority=*/true);
  mitigation.add_row({"normal LRU", percent(normal.stats.hit_rate(), 1),
                      with_commas(
                          normal.stats.premature_nondisposable_evictions),
                      with_commas(normal.above)});
  mitigation.add_row({"low-priority disposable",
                      percent(cold.stats.hit_rate(), 1),
                      with_commas(
                          cold.stats.premature_nondisposable_evictions),
                      with_commas(cold.above)});
  std::printf("%s\n", mitigation.render().c_str());
  print_claim(
      "caching policies may require adjustments ... disposable domains "
      "could be treated with low priority",
      "cold-end insertion cuts premature evictions of useful records " +
          std::string(cold.stats.premature_nondisposable_evictions <
                              normal.stats.premature_nondisposable_evictions
                          ? "(mitigation works)"
                          : "(no effect at this scale)"));
  return 0;
}
