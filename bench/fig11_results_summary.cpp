// Fig. 11 — Table of measurement results summary.
//
// Paper: 97% TPR / 1% FPR classifier; 14,488 disposable zones under 12,397
// unique 2LDs discovered over the campaign; disposable share of queried
// domains 23.1%->27.6%, of resolved domains 27.6%->37.2%, of RRs
// 38.3%->65.5%; used across many industries.  Absolute zone counts scale
// with traffic volume — our campaign is a scaled-down ISP (see DESIGN.md).

#include <map>
#include <set>

#include "bench_common.h"
#include "ml/eval.h"
#include "ml/lad_tree.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

int main() {
  print_header("Fig. 11", "measurement results summary");

  PipelineOptions options = default_options(150'000);
  const LadTree campaign_model = train_reference_model();
  options.pretrained = &campaign_model;

  // Classifier accuracy via 10-fold CV on the Nov-14 labeled set.
  {
    PipelineOptions cv_options = default_options();
    cv_options.labeler.min_group_size = 10;
    // The paper's 398/401 zones were labeled by hand; a small labeling-
    // error rate keeps the CV numbers realistic rather than perfect.
    cv_options.labeler.label_noise = 0.03;
    Scenario scenario(ScenarioDate::kNov14, cv_options.scale);
    DayCapture capture;
    simulate_day(scenario, capture, cv_options,
                 scenario_day_index(ScenarioDate::kNov14));
    const Dataset data = to_dataset(label_zones(
        capture.tree(), capture.chr(), scenario, cv_options.labeler));
    const auto scores = cross_val_scores(
        data, [] { return std::make_unique<LadTree>(); }, 10, 2011);
    std::vector<int> labels;
    for (std::size_t i = 0; i < data.size(); ++i) {
      labels.push_back(data.label(i));
    }
    const Confusion c = confusion_at(scores, labels, 0.5);
    std::printf("Classifier accuracy (10-fold CV, theta=0.5):\n");
    print_claim("97% true positive rate, 1% false positive rate",
                percent(c.tpr(), 1) + " TPR, " + percent(c.fpr(), 1) + " FPR");
  }

  // Mining campaign over all six dates.
  std::set<std::string> zones;
  std::set<std::string> zone_2lds;
  std::map<std::string, std::size_t> industries;
  double first_q = 0.0;
  double last_q = 0.0;
  double first_r = 0.0;
  double last_r = 0.0;
  double first_rr = 0.0;
  double last_rr = 0.0;
  for (const ScenarioDate date : kAllScenarioDates) {
    const MiningDayResult result = run_mining_day(date, options);
    const auto& psl = PublicSuffixList::builtin();
    for (const auto& finding : result.findings) {
      zones.insert(finding.zone + "#" + std::to_string(finding.depth));
      const auto zone = DomainName::parse(finding.zone);
      if (zone) {
        const DomainName registrable = psl.registrable_domain(*zone);
        zone_2lds.insert(registrable.empty() ? finding.zone
                                             : registrable.text());
      }
    }
    for (const auto& [archetype, count] :
         result.evaluation.discovered_by_archetype) {
      industries[archetype] += count;
    }
    const DayAggregates& agg = result.aggregates;
    const double q = static_cast<double>(agg.disposable_queried) /
                     static_cast<double>(agg.unique_queried);
    const double r = static_cast<double>(agg.disposable_resolved) /
                     static_cast<double>(agg.unique_resolved);
    const double rr = static_cast<double>(agg.disposable_rrs) /
                      static_cast<double>(agg.unique_rrs);
    if (date == ScenarioDate::kFeb01) {
      first_q = q;
      first_r = r;
      first_rr = rr;
    }
    if (date == ScenarioDate::kDec30) {
      last_q = q;
      last_r = r;
      last_rr = rr;
    }
  }

  std::printf("\nDisposable zones discovered over the 6-date campaign:\n");
  print_claim("14,488 zones under 12,397 unique 2LDs (ISP volume)",
              with_commas(zones.size()) + " zones under " +
                  with_commas(zone_2lds.size()) +
                  " unique 2LDs (scaled volume)");
  std::printf("\n%% of disposable domains / queried domains:\n");
  print_claim("increased from 23.1% to 27.6%",
              percent(first_q) + " -> " + percent(last_q));
  std::printf("\n%% of disposable domains / resolved domains:\n");
  print_claim("increased from 27.6% to 37.2%",
              percent(first_r) + " -> " + percent(last_r));
  std::printf("\n%% of disposable RRs / all RRs:\n");
  print_claim("increased from 38.3% to 65.5%",
              percent(first_rr) + " -> " + percent(last_rr));
  std::printf("\nIndustries using disposable domains (discovered zones per\n"
              "archetype across the campaign; cf. the paper's examples row):\n");
  TextTable industries_table({"archetype", "zones_discovered"});
  for (const auto& [archetype, count] : industries) {
    industries_table.add_row({archetype, with_commas(count)});
  }
  std::printf("%s", industries_table.render().c_str());
  return 0;
}
