// Table II — Disposable RRs in the zero-domain-hit-rate tail, per date.
//
// Paper: 88-94% of RRs have zero DHR; the disposable share of that tail
// grew from 28.38% to 56.96% during 2011, and 94-97% of disposable RRs
// belong to it.

#include "analytics/measurements.h"
#include "bench_common.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

int main() {
  print_header("Table II", "disposable RRs in the zero-DHR tail");

  const LadTree model = train_reference_model();
  PipelineOptions options = default_options(150'000);
  options.pretrained = &model;
  TextTable table({"date", "zero_DHR", "%_of_tail_disposable",
                   "%_disposable_in_tail"});
  double first_share = 0.0;
  double last_share = 0.0;
  for (const ScenarioDate date : kAllScenarioDates) {
    DayCapture capture;
    const MiningDayResult result = run_mining_day(date, options, &capture);
    const FindingIndex index(result.findings);
    const TailComposition row = zero_dhr_tail_composition(
        capture.chr(), [&index](const DomainName& name) {
          return index.is_disposable(name);
        });
    table.add_row({std::string(scenario_date_name(date)),
                   percent(row.tail_fraction, 2),
                   percent(row.disposable_share_of_tail, 2),
                   percent(row.disposable_inside_tail, 2)});
    if (date == ScenarioDate::kFeb01) first_share = row.disposable_share_of_tail;
    if (date == ScenarioDate::kDec30) last_share = row.disposable_share_of_tail;
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Tail composition trend:\n");
  print_claim("disposable share of the zero-DHR tail grew 28.38% -> 56.96%",
              percent(first_share) + " -> " + percent(last_share));
  print_claim("~94-97% of disposable RRs have zero DHR",
              "see last column above");
  return 0;
}
