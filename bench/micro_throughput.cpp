// Micro-benchmarks (google-benchmark): the hot paths of the capture and
// mining pipeline — DNS wire codec, frame parsing, pcap iteration, name
// handling, CHR accounting, tree construction, classifier inference.
//
// These justify the "high-throughput pcap parsing" claim of the
// reproduction: the decode path comfortably sustains ISP-tap packet rates
// on one core.
//
// Besides the usual console table, every run exports its results as
// BENCH_micro_throughput.json via the obs JSON exporter (schema
// dnsnoise-metrics-v1); CI feeds that file to
// tools/check_bench_regression.py to gate throughput regressions.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>

#include "bench_common.h"
#include "dns/name_table.h"
#include "dns/wire.h"
#include "engine/parallel_miner.h"
#include "features/chr.h"
#include "features/domain_tree.h"
#include "features/extractor.h"
#include "miner/pipeline.h"
#include "netio/capture.h"
#include "obs/sketch/traffic_sketch.h"
#include "resolver/lru_cache.h"
#include "resolver/tap.h"
#include "util/entropy.h"
#include "util/simd/kernels.h"
#include "util/zipf.h"
#include "workload/label_gen.h"

// ---------------------------------------------------------------------------
// Allocation-counting harness: the bench binary replaces global operator
// new so steady-state benchmarks can report an exact allocs_per_query.
// Counting is one relaxed atomic increment — cheap enough to leave on for
// every benchmark in this binary.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

std::uint64_t alloc_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded == 0 ? align : rounded)) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dnsnoise {
namespace {

/// Reports (allocations since `allocs_before`) / iterations as the
/// "allocs_per_query" counter — the regression checker gates its growth.
void report_allocs_per_query(benchmark::State& state,
                             std::uint64_t allocs_before,
                             std::uint64_t items) {
  state.counters["allocs_per_query"] =
      static_cast<double>(alloc_count() - allocs_before) /
      static_cast<double>(std::max<std::uint64_t>(items, 1));
}

DnsMessage sample_response() {
  DnsMessage query = DnsMessage::make_query(
      0x42, DomainName("p2.a22a43lt5rwfg.191742.i1.ds.ipv6-exp.l.google.com"),
      RRType::A);
  std::vector<ResourceRecord> answers;
  for (int i = 0; i < 3; ++i) {
    answers.push_back(
        {query.questions[0].name, RRType::A, 300,
         "10.1.2." + std::to_string(i)});
  }
  return DnsMessage::make_response(query, RCode::NoError, std::move(answers));
}

void BM_WireEncode(benchmark::State& state) {
  const DnsMessage msg = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_message(msg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WireEncode);

void BM_WireDecode(benchmark::State& state) {
  const auto wire = encode_message(sample_response());
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_message(wire));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_WireDecode);

void BM_FrameParse(benchmark::State& state) {
  const auto frame =
      build_dns_frame(Ipv4::from_octets(10, 0, 0, 53), 53,
                      Ipv4::from_octets(192, 168, 0, 2), 40000,
                      sample_response());
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_frame(frame));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * frame.size()));
}
BENCHMARK(BM_FrameParse);

void BM_PcapDecodePipeline(benchmark::State& state) {
  // A pcap with 1000 DNS response frames, decoded end to end.
  PcapWriter writer;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    DnsMessage msg = sample_response();
    msg.questions[0].name =
        DomainName(rng.hex_string(20) + ".avqs.example.com");
    msg.answers.resize(1);
    msg.answers[0].name = msg.questions[0].name;
    writer.write(static_cast<std::uint32_t>(i), 0,
                 build_dns_frame(Ipv4::from_octets(10, 0, 0, 53), 53,
                                 Ipv4::from_octets(192, 168, 0, 2), 40000,
                                 msg));
  }
  std::size_t sink_count = 0;
  for (auto _ : state) {
    CaptureDecoder decoder({Ipv4::from_octets(10, 0, 0, 53)});
    sink_count += decoder.decode_pcap(writer.bytes(),
                                      [](const DecodedResponse&) {});
  }
  benchmark::DoNotOptimize(sink_count);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 1000));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * writer.bytes().size()));
}
BENCHMARK(BM_PcapDecodePipeline);

void BM_DomainNameParse(benchmark::State& state) {
  const std::string text =
      "load-0-p-01.up-1852280.mem-251379712-24440832-0-p-50.3302068."
      "device.trans.manage.esoft.com";
  for (auto _ : state) {
    benchmark::DoNotOptimize(DomainName::parse(text));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DomainNameParse);

void BM_ShannonEntropy(benchmark::State& state) {
  Rng rng(2);
  const std::string label = rng.hex_string(26);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shannon_entropy(label));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShannonEntropy);

void BM_BatchEntropy(benchmark::State& state) {
  // entropy_many over 10k interned names: the batched kernel walks the
  // arena in intern order with one reused histogram workspace.  Zero
  // steady-state allocations.
  Rng rng(2);
  NameTable table;
  std::vector<NameId> ids;
  for (int i = 0; i < 10'000; ++i) {
    ids.push_back(table.intern(rng.hex_string(16) + ".avqs.example.com"));
  }
  std::vector<double> out(ids.size());
  const std::uint64_t allocs_before = alloc_count();
  for (auto _ : state) {
    entropy_many(ids, table, out);
    benchmark::DoNotOptimize(out.data());
  }
  const auto items =
      static_cast<std::uint64_t>(state.iterations()) * ids.size();
  report_allocs_per_query(state, allocs_before, items);
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
BENCHMARK(BM_BatchEntropy);

void BM_GroupFeatures(benchmark::State& state) {
  // One Algorithm-1 group classification input: 5000 disposable-looking
  // names under one zone, with a CHR entry per name.  Measures the full
  // SoA extraction (gather + dedup + batched entropy + CHR reduce) with a
  // reused scratch, items = group members processed.
  Rng rng(8);
  DomainNameTree tree;
  CacheHitRateTracker chr;
  for (int i = 0; i < 5'000; ++i) {
    const std::string name = rng.hex_string(16) + ".avqs.example.com";
    tree.insert(DomainName(name));
    chr.record_below(name, RRType::A, "10.0.0.1", 300);
  }
  const auto zones = tree.effective_2ld_nodes(PublicSuffixList::builtin());
  if (zones.size() != 1) {
    state.SkipWithError("expected one effective 2LD");
    return;
  }
  const auto groups = tree.black_descendants_by_depth(*zones[0]);
  const auto deepest = groups.rbegin();
  GroupFeatureScratch scratch;
  const std::uint64_t allocs_before = alloc_count();
  for (auto _ : state) {
    const GroupFeatures features = compute_group_features(
        deepest->second, zones[0]->depth, chr, scratch);
    benchmark::DoNotOptimize(features.entropy_mean);
  }
  const auto items = static_cast<std::uint64_t>(state.iterations()) *
                     deepest->second.size();
  report_allocs_per_query(state, allocs_before, items);
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
BENCHMARK(BM_GroupFeatures);

void BM_TreeInsert(benchmark::State& state) {
  Rng rng(3);
  std::vector<DomainName> names;
  for (int i = 0; i < 10'000; ++i) {
    names.emplace_back(rng.hex_string(16) + ".avqs.vendor" +
                       std::to_string(i % 50) + ".com");
  }
  for (auto _ : state) {
    DomainNameTree tree;
    for (const DomainName& name : names) tree.insert(name);
    benchmark::DoNotOptimize(tree.black_count());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * names.size()));
}
BENCHMARK(BM_TreeInsert);

void BM_ChrRecord(benchmark::State& state) {
  Rng rng(4);
  std::vector<std::string> names;
  for (int i = 0; i < 10'000; ++i) {
    names.push_back(rng.hex_string(16) + ".zone.example.com");
  }
  for (auto _ : state) {
    CacheHitRateTracker tracker;
    for (const std::string& name : names) {
      tracker.record_below(name, RRType::A, "10.0.0.1", 300);
    }
    benchmark::DoNotOptimize(tracker.unique_rrs());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * names.size()));
}
BENCHMARK(BM_ChrRecord);

void BM_LadTreePredict(benchmark::State& state) {
  Rng rng(5);
  Dataset data(kFeatureCount);
  for (int i = 0; i < 400; ++i) {
    std::array<double, kFeatureCount> x{};
    const bool disposable = i % 2 == 0;
    for (double& v : x) v = rng.normal(disposable ? 2.0 : -2.0, 1.0);
    data.add(x, disposable ? 1 : 0);
  }
  LadTree model;
  model.train(data);
  std::array<double, kFeatureCount> probe{};
  for (double& v : probe) v = rng.normal(0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_proba(probe));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LadTreePredict);

void BM_ClusterQuery(benchmark::State& state) {
  SyntheticAuthority authority;
  authority.register_zone(DomainName("example.com"),
                          SyntheticAuthority::make_flat_a_zone(300));
  ClusterConfig config;
  config.cache.capacity = 1 << 16;
  RdnsCluster cluster(config, authority);
  Rng rng(6);
  std::vector<Question> questions;
  for (int i = 0; i < 2000; ++i) {
    questions.push_back(
        {DomainName("h" + std::to_string(rng.below(500)) + ".example.com"),
         RRType::A});
  }
  SimTime now = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    // query_view is the pipeline's actual drive path: hits are served as a
    // span into the resident cache entry, no answer copies.
    const QueryView view =
        cluster.query_view(i, questions[i % questions.size()], now);
    benchmark::DoNotOptimize(view.answers.data());
    ++i;
    now += (i % 16) == 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClusterQuery);

void BM_ClusterQueryHot(benchmark::State& state) {
  // Pure steady state: simulated time is frozen, so after the warm pass
  // nothing expires and every query is a cache hit.  This is the
  // "allocs_per_query == 0" claim of the interned hot path — BM_ClusterQuery
  // above keeps advancing time and therefore re-misses on TTL expiry.
  SyntheticAuthority authority;
  authority.register_zone(DomainName("example.com"),
                          SyntheticAuthority::make_flat_a_zone(300));
  ClusterConfig config;
  config.cache.capacity = 1 << 16;
  RdnsCluster cluster(config, authority);
  Rng rng(6);
  std::vector<Question> questions;
  for (int i = 0; i < 2000; ++i) {
    questions.push_back(
        {DomainName("h" + std::to_string(rng.below(500)) + ".example.com"),
         RRType::A});
  }
  for (std::size_t i = 0; i < questions.size(); ++i) {
    cluster.query_view(i, questions[i], 0);  // warm: intern + cache every name
  }
  std::size_t i = 0;
  const std::uint64_t allocs_before = alloc_count();
  for (auto _ : state) {
    const QueryView view =
        cluster.query_view(i, questions[i % questions.size()], 0);
    benchmark::DoNotOptimize(view.answers.data());
    ++i;
  }
  report_allocs_per_query(state, allocs_before,
                          static_cast<std::uint64_t>(state.iterations()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClusterQueryHot);

void BM_SketchUpdate(benchmark::State& state) {
  // Amortized per-event cost of the traffic plane's production feed in
  // isolation: observe() is a ring append; every 256 events the ring
  // drains under the shard mutex into direct-indexed exact delta
  // counters, the cached per-name classifier verdict, the client HLL,
  // and the window ring.  Space-Saving only sees weighted folds when the
  // touched set crosses its threshold.  The name pool is Zipf(1.0) like
  // real traffic; after the warm pass interning and classification are
  // steady-state and the path allocates nothing (the gate pins that).
  obs::TrafficSketchPlane plane;
  plane.ensure_shards(1);
  plane.set_disposable_zones({"avqs.example.com"});
  obs::TrafficSketch& sketch = plane.shard(0);
  NameTable source;
  Rng rng(9);
  ZipfSampler zipf(5'000, 1.0);
  std::vector<std::string> pool;
  for (int i = 0; i < 5'000; ++i) {
    pool.push_back(i % 2 == 0
                       ? rng.hex_string(12) + ".avqs.example.com"
                       : "host" + std::to_string(i) + ".vendor" +
                             std::to_string(i % 40) + ".example");
  }
  struct Event {
    SimTime ts = 0;
    std::uint64_t client = 0;
    NameId name = kInvalidNameId;
    RCode rcode = RCode::NoError;
  };
  std::vector<Event> stream(4'096);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    Event& event = stream[i];
    event.ts = static_cast<SimTime>(i / 64);
    event.client = rng.below(512) + 1;
    event.rcode = i % 32 == 0 ? RCode::NXDomain : RCode::NoError;
    event.name = source.intern(pool[zipf.sample(rng)]);
  }
  sketch.bind_sources({&source});
  const auto feed = [&] {
    for (const Event& event : stream) {
      sketch.observe(0, event.name, event.client, event.rcode, event.ts);
    }
    sketch.flush_pending();
  };
  feed();  // warm: intern + classify every pool name once
  const std::uint64_t allocs_before = alloc_count();
  for (auto _ : state) {
    feed();
    benchmark::DoNotOptimize(&sketch);
  }
  const auto items =
      static_cast<std::uint64_t>(state.iterations()) * stream.size();
  report_allocs_per_query(state, allocs_before, items);
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
BENCHMARK(BM_SketchUpdate);

void BM_ClusterQuerySketched(benchmark::State& state) {
  // BM_ClusterQuery with a traffic sketch shard on the cluster's
  // wait-free hook.  The acceptance bar for the introspection plane is
  // <= 5% overhead on this bench relative to BM_ClusterQuery above — and
  // exactly zero when detached, which BM_ClusterQuery itself demonstrates
  // (null hook, so the query path is byte-for-byte the unsketched one).
  SyntheticAuthority authority;
  authority.register_zone(DomainName("example.com"),
                          SyntheticAuthority::make_flat_a_zone(300));
  ClusterConfig config;
  config.cache.capacity = 1 << 16;
  RdnsCluster cluster(config, authority);
  obs::TrafficSketchPlane plane;
  plane.ensure_shards(1);
  cluster.set_traffic_sketch(&plane.shard(0));
  Rng rng(6);
  std::vector<Question> questions;
  for (int i = 0; i < 2000; ++i) {
    questions.push_back(
        {DomainName("h" + std::to_string(rng.below(500)) + ".example.com"),
         RRType::A});
  }
  SimTime now = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    const QueryView view =
        cluster.query_view(i, questions[i % questions.size()], now);
    benchmark::DoNotOptimize(view.answers.data());
    ++i;
    now += (i % 16) == 0;
  }
  cluster.set_traffic_sketch(nullptr);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClusterQuerySketched);

void BM_NameTableIntern(benchmark::State& state) {
  // Steady-state re-intern: every name already lives in the table, so each
  // intern() is hash + one probe, zero allocations.
  Rng rng(7);
  std::vector<std::string> names;
  for (int i = 0; i < 10'000; ++i) {
    names.push_back(rng.hex_string(16) + ".avqs.example.com");
  }
  NameTable table;
  for (const std::string& name : names) table.intern(name);
  const std::uint64_t allocs_before = alloc_count();
  std::uint64_t sum = 0;
  for (auto _ : state) {
    for (const std::string& name : names) sum += table.intern(name);
    benchmark::DoNotOptimize(sum);
  }
  const auto items =
      static_cast<std::uint64_t>(state.iterations()) * names.size();
  report_allocs_per_query(state, allocs_before, items);
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
BENCHMARK(BM_NameTableIntern);

void BM_TreeInsertSteady(benchmark::State& state) {
  // Re-insert of an already-built tree: label interning and edge probing
  // only, no node creation — the shape of a steady capture day where most
  // names repeat.
  Rng rng(3);
  std::vector<DomainName> names;
  for (int i = 0; i < 10'000; ++i) {
    names.emplace_back(rng.hex_string(16) + ".avqs.vendor" +
                       std::to_string(i % 50) + ".com");
  }
  DomainNameTree tree;
  for (const DomainName& name : names) tree.insert(name);
  const std::uint64_t allocs_before = alloc_count();
  for (auto _ : state) {
    for (const DomainName& name : names) tree.insert(name);
    benchmark::DoNotOptimize(tree.black_count());
  }
  const auto items =
      static_cast<std::uint64_t>(state.iterations()) * names.size();
  report_allocs_per_query(state, allocs_before, items);
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
BENCHMARK(BM_TreeInsertSteady);

void BM_ChrRecordSteady(benchmark::State& state) {
  // Re-record of known RRs: open-addressed probe + counter bump per call.
  Rng rng(4);
  std::vector<std::string> names;
  for (int i = 0; i < 10'000; ++i) {
    names.push_back(rng.hex_string(16) + ".zone.example.com");
  }
  CacheHitRateTracker tracker;
  for (const std::string& name : names) {
    tracker.record_below(name, RRType::A, "10.0.0.1", 300);
  }
  const std::uint64_t allocs_before = alloc_count();
  for (auto _ : state) {
    for (const std::string& name : names) {
      tracker.record_below(name, RRType::A, "10.0.0.1", 300);
    }
    benchmark::DoNotOptimize(tracker.unique_rrs());
  }
  const auto items =
      static_cast<std::uint64_t>(state.iterations()) * names.size();
  report_allocs_per_query(state, allocs_before, items);
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
BENCHMARK(BM_ChrRecordSteady);

void BM_LruCacheChurn(benchmark::State& state) {
  // get+put cycle over twice the capacity: every put either replaces in
  // place or evicts and recycles a free-list entry.  The slot table is
  // sized at construction and never rehashes.  Keys are mixed like real
  // cache keys (DnsCache stores a mix64'd hash); libstdc++'s identity
  // std::hash over sequential keys would make one giant probe run.
  struct Mix64Hash {
    std::size_t operator()(std::uint64_t v) const noexcept {
      return static_cast<std::size_t>(mix64(v));
    }
  };
  constexpr std::size_t kCapacity = 4096;
  LruCache<std::uint64_t, std::uint64_t, Mix64Hash> cache(kCapacity);
  for (std::uint64_t j = 0; j < kCapacity * 2; ++j) cache.put(j, j);
  std::uint64_t i = 0;
  const std::uint64_t allocs_before = alloc_count();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(i % (kCapacity * 2)));
    cache.put(i % (kCapacity * 2), i);
    ++i;
  }
  report_allocs_per_query(state, allocs_before,
                          static_cast<std::uint64_t>(state.iterations()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LruCacheChurn);

void BM_EngineDay(benchmark::State& state) {
  // One sharded simulated day end to end on the parallel engine; the
  // argument is the worker thread count.  Results are thread-count
  // invariant, so this measures pure scheduling speedup.
  ScenarioScale scale;
  scale.queries_per_day = 60'000;
  scale.client_count = 3'000;
  scale.population_scale = 0.5;
  ClusterConfig cluster;
  cluster.server_count = 8;
  MiningSession session(scale);
  session.cluster(cluster)
      .warmup(false)
      .threads(static_cast<std::size_t>(state.range(0)));
  std::uint64_t queries = 0;
  for (auto _ : state) {
    DayCapture capture;
    const EngineReport report =
        session.simulate(ScenarioDate::kDec30, capture);
    if (!report.ok()) {
      state.SkipWithError(report.error.c_str());
      return;
    }
    queries += report.queries;
    benchmark::DoNotOptimize(capture.tree().black_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queries));
}
BENCHMARK(BM_EngineDay)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Console output as usual, plus one gauge per result into the registry:
// bench.<name>.{wall_seconds,iterations,items_per_sec,bytes_per_sec} with
// '/' in benchmark names mapped to '.' (BM_EngineDay/4 ->
// bench.BM_EngineDay.4.*).  The *_per_sec gauges are what the regression
// checker compares.
class RegistryReporter final : public benchmark::ConsoleReporter {
 public:
  explicit RegistryReporter(obs::MetricsRegistry* registry)
      : registry_(registry) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      std::string name = run.benchmark_name();
      for (char& c : name) {
        if (c == '/' || c == ':') c = '.';
      }
      const std::string prefix = "bench." + name;
      registry_->gauge(prefix + ".wall_seconds")
          .set(run.real_accumulated_time);
      registry_->gauge(prefix + ".iterations")
          .set(static_cast<double>(run.iterations));
      // Rate counters are already finalized (per-second) by the time the
      // reporter runs.
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        registry_->gauge(prefix + ".items_per_sec").set(items->second);
      }
      const auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) {
        registry_->gauge(prefix + ".bytes_per_sec").set(bytes->second);
      }
      // Lower-is-better: the regression checker gates growth of this one.
      const auto allocs = run.counters.find("allocs_per_query");
      if (allocs != run.counters.end()) {
        registry_->gauge(prefix + ".allocs_per_query").set(allocs->second);
      }
    }
  }

 private:
  obs::MetricsRegistry* registry_;
};

}  // namespace
}  // namespace dnsnoise

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  dnsnoise::obs::MetricsRegistry registry;
  // One startup line + gauges recording which kernel dispatch levels this
  // run used (0 = scalar, 1 = SSE2, 2 = AVX2), so a bench result can
  // always be traced back to the code paths that produced it.  The
  // histogram level differs from the normalize level in auto mode (the
  // measured per-kernel rule, DESIGN.md §15).
  const auto level = dnsnoise::kernels::active_level();
  const auto hist = dnsnoise::kernels::hist_level();
  std::printf("kernel dispatch level: %s (histograms: %s)\n",
              dnsnoise::kernels::level_name(level),
              dnsnoise::kernels::level_name(hist));
  registry.gauge("bench.kernel.dispatch_level")
      .set(static_cast<double>(level));
  registry.gauge("bench.kernel.hist_level").set(static_cast<double>(hist));
  dnsnoise::RegistryReporter reporter(&registry);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string path =
      dnsnoise::bench::write_bench_json("micro_throughput", registry);
  if (path.empty()) return 1;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
