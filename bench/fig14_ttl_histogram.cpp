// Fig. 14 — Time-to-live histogram of disposable domains, February vs
// December 2011.
//
// Paper: 0.8% of disposable domains used TTL 0 and 28% used TTL 1s in
// February; by December operators had moved to larger values, with the
// mode at 300s.  (Forcing TTL=0 is therefore not a deployable mitigation.)

#include "analytics/measurements.h"
#include "bench_common.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

namespace {

struct DateStats {
  double ttl0 = 0.0;
  double ttl1 = 0.0;
  double mode_lo = 0.0;
  double mode_hi = 0.0;
  std::uint64_t mode_count = 0;
};

DateStats run_date(ScenarioDate date) {
  const PipelineOptions options = default_options();
  Scenario scenario(date, options.scale);
  DayCapture capture;
  simulate_day(scenario, capture, options, scenario_day_index(date));
  const auto is_disposable = [&scenario](const DomainName& name) {
    return scenario.truth().is_disposable_name(name);
  };

  const LogHistogram histogram =
      disposable_ttl_histogram(capture.chr(), is_disposable);
  std::printf("--- %s (disposable RRs: %s) ---\n",
              std::string(scenario_date_name(date)).c_str(),
              with_commas(histogram.total()).c_str());
  std::vector<std::pair<std::string, double>> bars;
  bars.emplace_back("ttl=0", static_cast<double>(histogram.zero_count()));
  DateStats stats;
  for (std::size_t bin = 0; bin < histogram.bins(); ++bin) {
    if (histogram.count(bin) == 0) continue;
    bars.emplace_back(
        fixed(histogram.bin_lo(bin), 0) + ".." + fixed(histogram.bin_hi(bin), 0),
        static_cast<double>(histogram.count(bin)));
    if (histogram.count(bin) > stats.mode_count) {
      stats.mode_count = histogram.count(bin);
      stats.mode_lo = histogram.bin_lo(bin);
      stats.mode_hi = histogram.bin_hi(bin);
    }
  }
  std::printf("%s\n", ascii_bars(bars, 46).c_str());

  const double total = static_cast<double>(histogram.total());
  stats.ttl0 =
      disposable_ttl_fraction_at_most(capture.chr(), is_disposable, 0);
  stats.ttl1 =
      disposable_ttl_fraction_at_most(capture.chr(), is_disposable, 1) -
      stats.ttl0;
  (void)total;
  return stats;
}

}  // namespace

int main() {
  print_header("Fig. 14", "TTL histogram of disposable RRs, Feb vs Dec 2011");

  const DateStats feb = run_date(ScenarioDate::kFeb01);
  const DateStats dec = run_date(ScenarioDate::kDec30);

  std::printf("February TTL policy:\n");
  print_claim("0.8% at TTL=0, 28% at TTL=1s",
              percent(feb.ttl0, 1) + " at TTL=0, " + percent(feb.ttl1, 1) +
                  " at TTL=1s");
  std::printf("\nDecember TTL policy:\n");
  print_claim("most disposable domains moved to TTL=300s (the mode)",
              "mode bin " + fixed(dec.mode_lo, 0) + ".." +
                  fixed(dec.mode_hi, 0) + "s with " +
                  with_commas(dec.mode_count) + " RRs; TTL<=1s down to " +
                  percent(dec.ttl0 + dec.ttl1, 1));
  return 0;
}
