// Fig. 2 — Traffic profile above/below the recursive DNS servers.
//
// Reproduces: hourly RR volumes for the All / NXDOMAIN / Akamai / Google
// series on both taps, the diurnal shape, caching's reduction of the above
// stream, and the NXDOMAIN asymmetry (~40% of above vs ~6% of below traffic
// in the paper; the resolvers did not honor RFC 2308 negative caching).
//
// Scale note: the paper's full 10x above/below gap needs ISP query volumes
// (billions/day); this preset reduces the disposable share and raises the
// volume so the gap direction and NX asymmetry reproduce clearly.

#include <chrono>
#include <string>
#include <string_view>

#include "bench_common.h"
#include "engine/parallel_miner.h"
#include "obs/json_writer.h"
#include "obs/telemetry_server.h"
#include "obs/trace_export.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

int main(int argc, char** argv) {
  // --trace=FILE additionally records day 0 with sampled event tracing
  // (1 in 64) and writes the dnsnoise-trace-v1 JSON there; the throughput
  // loop below stays untraced, so the gated gauges are unaffected.
  // --serve=PORT turns on the live telemetry endpoint (DESIGN.md §13) for
  // the whole run and --days=N extends the day loop — together they are
  // the multi-day continuous mode: scrape /metrics, /healthz, and the
  // /traffic sketch snapshot (DESIGN.md §17) on 127.0.0.1:PORT while the
  // bench runs full mining days (each day's findings arm the next day's
  // live disposable classifier).
  std::string trace_path;
  int days = 2;
  unsigned long serve_port = 0;
  bool serve = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = std::string(arg.substr(8));
    } else if (arg.rfind("--serve=", 0) == 0) {
      serve = true;
      serve_port = std::stoul(std::string(arg.substr(8)));
      if (serve_port > 65535) {
        std::fprintf(stderr, "--serve: port out of range\n");
        return 2;
      }
    } else if (arg.rfind("--days=", 0) == 0) {
      days = std::stoi(std::string(arg.substr(7)));
      if (days < 1) {
        std::fprintf(stderr, "--days: need at least one day\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace=FILE] [--serve=PORT] [--days=N]\n",
                   argv[0]);
      return 2;
    }
  }

  print_header("Fig. 2", "traffic above/below the RDNS cluster (" +
                             std::to_string(days) + " days)");

  // Fig. 2 preset: a volume study, not a unique-share study.  The paper's
  // 10x caching gap arises from ISP per-name query volumes (~330 queries
  // per unique name/day); we push the same direction as far as a laptop
  // budget allows: more volume over a smaller namespace, a 2-server
  // cluster, and the disposable share of *volume* at its realistic small
  // value.
  PipelineOptions options = default_options(1'500'000);
  options.scale.population_scale = 0.25;
  options.scale.disposable_traffic_multiplier = 0.12;
  options.cluster.server_count = 2;
  options.warmup_volume_fraction = 0.4;

  DayCapture capture;

  TextTable table({"day", "hour", "below_all", "below_nx", "below_akamai",
                   "below_google", "above_all", "above_nx"});
  double below_total = 0.0;
  double above_total = 0.0;
  double below_nx = 0.0;
  double above_nx = 0.0;
  std::uint64_t peak_hour_volume = 0;
  std::uint64_t trough_hour_volume = ~0ULL;

  const std::int64_t base_day = scenario_day_index(ScenarioDate::kDec30);
  // One session for the whole campaign: with --serve its registry and
  // telemetry server persist across days, so counters accumulate and a
  // scraper sees the run continuously instead of per-day resets.
  MiningSession session(options.scale);
  session.cluster(options.cluster)
      .warmup(true, options.warmup_volume_fraction)
      .threads(4);
  if (serve) {
    // The streaming introspection plane rides along: /traffic serves the
    // live dnsnoise-traffic-v1 sketch snapshot while the days simulate,
    // and each finished day arms the next day's live classifier with the
    // zones it just mined (pipe it through tools/dnsnoise-inspect).
    session.enable_traffic_sketch(true);
    session.enable_telemetry(true, static_cast<std::uint16_t>(serve_port));
    if (!session.telemetry()->running()) {
      std::fprintf(stderr, "telemetry: %s\n",
                   session.telemetry()->error().c_str());
      return 1;
    }
    std::printf("serving telemetry on http://127.0.0.1:%u/ "
                "(/metrics /healthz /trace /traffic)\n",
                static_cast<unsigned>(session.telemetry()->port()));
    std::fflush(stdout);
  }
  for (int day = 0; day < days; ++day) {
    // Each day draws a fresh query stream; warmup pre-heats the caches so
    // every day runs at steady state.
    ScenarioScale day_scale = options.scale;
    day_scale.traffic_stream = static_cast<std::uint64_t>(day);
    session.scale(day_scale);
    const bool traced = day == 0 && !trace_path.empty();
    if (traced) session.enable_tracing(true, 64);
    if (serve) {
      // Full mining day: each finished day's findings arm the live
      // classifier that /traffic applies to the next day's stream
      // (yesterday's model on today's traffic, the paper's protocol).
      const MiningDayResult result =
          session.run(ScenarioDate::kDec30, capture, base_day + day);
      if (!result.ok()) {
        std::fprintf(stderr, "day %d failed: %s\n", day,
                     result.error.c_str());
        return 1;
      }
    } else {
      const EngineReport report =
          session.simulate(ScenarioDate::kDec30, capture, base_day + day);
      if (!report.ok()) {
        std::fprintf(stderr, "day %d failed: %s\n", day,
                     report.error.c_str());
        return 1;
      }
    }
    if (traced) {
      const std::string json = obs::to_json(
          session.trace()->snapshot(),
          {{"bench", "fig02"}, {"day", std::to_string(base_day + day)}});
      if (!obs::write_json_file(trace_path, json)) {
        std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", trace_path.c_str());
      session.enable_tracing(false);  // the remaining days run untraced
    }

    const HourlySeries& below = capture.below_series();
    const HourlySeries& above = capture.above_series();
    for (int hour = 0; hour < 24; ++hour) {
      const auto h = static_cast<std::size_t>(hour);
      table.add_row({"d" + std::to_string(day),
                     std::to_string(hour), with_commas(below.total[h]),
                     with_commas(below.nxdomain[h]),
                     with_commas(below.akamai[h]),
                     with_commas(below.google[h]), with_commas(above.total[h]),
                     with_commas(above.nxdomain[h])});
      peak_hour_volume = std::max(peak_hour_volume, below.total[h]);
      trough_hour_volume = std::min(trough_hour_volume, below.total[h]);
    }
    below_total += static_cast<double>(below.sum_total());
    above_total += static_cast<double>(above.sum_total());
    below_nx += static_cast<double>(below.sum_nxdomain());
    above_nx += static_cast<double>(above.sum_nxdomain());
  }

  std::printf("%s\n", table.render().c_str());

  std::printf("Caching gap (above vs below volume):\n");
  print_claim("order of magnitude less traffic above than below",
              "above/below = " + fixed(above_total / below_total, 3) +
                  " (direction reproduces; magnitude is volume-limited, "
                  "see EXPERIMENTS.md)");
  std::printf("\nNXDOMAIN shares:\n");
  print_claim("~40% of above traffic, ~6% of below traffic",
              percent(above_nx / above_total) + " of above, " +
                  percent(below_nx / below_total) + " of below");
  std::printf("\nDiurnal effect (hourly below volume):\n");
  print_claim("traffic drops after midnight, rises from ~10am",
              "peak hour " + with_commas(peak_hour_volume) + " vs trough " +
                  with_commas(trough_hour_volume) + " (" +
                  fixed(static_cast<double>(peak_hour_volume) /
                            static_cast<double>(trough_hour_volume),
                        2) +
                  "x)");

  // Engine throughput: the same day-0 preset re-simulated at increasing
  // worker thread counts.  The figure's 2-server cluster would cap shard
  // parallelism at 2, so the throughput runs use an 8-shard cluster; the
  // findings are thread-count invariant, so this is pure wall-clock
  // scheduling speedup.
  ClusterConfig speed_cluster = options.cluster;
  speed_cluster.server_count = 8;
  std::printf("\nSharded engine throughput (day 0 preset, %d RDNS shards):\n",
              static_cast<int>(speed_cluster.server_count));
  TextTable speed({"threads", "wall_s", "events_per_sec", "speedup"});
  obs::MetricsRegistry bench_registry;
  double base_seconds = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ScenarioScale day_scale = options.scale;
    day_scale.traffic_stream = 0;
    DayCapture bench_capture;
    const auto start = std::chrono::steady_clock::now();
    const EngineReport report =
        MiningSession(day_scale)
            .cluster(speed_cluster)
            .warmup(true, options.warmup_volume_fraction)
            .threads(threads)
            .simulate(ScenarioDate::kDec30, bench_capture, base_day);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (!report.ok()) {
      std::fprintf(stderr, "threads=%zu failed: %s\n", threads,
                   report.error.c_str());
      return 1;
    }
    if (threads == 1) base_seconds = seconds;
    const double events =
        static_cast<double>(report.queries) +
        static_cast<double>(report.counters.above_answers);
    speed.add_row({std::to_string(threads), fixed(seconds, 2),
                   with_commas(static_cast<std::uint64_t>(events / seconds)),
                   fixed(base_seconds / seconds, 2) + "x"});
    const std::string prefix =
        "engine_day.threads" + std::to_string(threads);
    bench_registry.gauge(prefix + ".wall_seconds").set(seconds);
    bench_registry.gauge(prefix + ".events_per_sec").set(events / seconds);
  }
  std::printf("%s\n", speed.render().c_str());

  const std::string bench_path = write_bench_json("fig02", bench_registry);
  if (bench_path.empty()) return 1;
  std::printf("wrote %s\n", bench_path.c_str());
  return 0;
}
