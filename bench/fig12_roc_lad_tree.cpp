// Fig. 12 — ROC curve of the LAD tree + the Section V-C model selection.
//
// Paper: 10-fold cross-validation on 398 disposable + 401 non-disposable
// labeled zones; LAD tree wins model selection; theta=0.5 gives 97% TPR at
// 1% FPR, theta=0.9 gives 92.4% TPR at 0.6% FPR.
//
// Ablation (DESIGN.md §6): tree-structure-only and CHR-only feature subsets
// are also evaluated to show both families contribute.

#include <memory>

#include "bench_common.h"
#include "ml/baselines.h"
#include "ml/eval.h"
#include "ml/lad_tree.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

namespace {

/// Projects a dataset onto a subset of feature columns.
Dataset project(const Dataset& data, std::span<const std::size_t> columns) {
  Dataset out(columns.size());
  std::vector<double> row(columns.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto x = data.features(i);
    for (std::size_t c = 0; c < columns.size(); ++c) row[c] = x[columns[c]];
    out.add(row, data.label(i));
  }
  return out;
}

double cv_auc(const Dataset& data, const ClassifierFactory& factory,
              std::vector<double>* scores_out = nullptr) {
  const auto scores = cross_val_scores(data, factory, 10, 2011);
  std::vector<int> labels;
  for (std::size_t i = 0; i < data.size(); ++i) labels.push_back(data.label(i));
  if (scores_out != nullptr) *scores_out = scores;
  return auc(roc_curve(scores, labels));
}

}  // namespace

int main() {
  print_header("Fig. 12", "ROC of the LAD tree (10-fold CV) + model selection");

  PipelineOptions options = default_options();
  options.labeler.min_group_size = 10;
  // The paper's 398/401 zones were labeled by hand; a small labeling-error
  // rate keeps the CV numbers realistic rather than synthetic-perfect.
  options.labeler.label_noise = 0.03;
  Scenario scenario(ScenarioDate::kNov14, options.scale);
  DayCapture capture;
  simulate_day(scenario, capture, options,
               scenario_day_index(ScenarioDate::kNov14));
  const auto labeled =
      label_zones(capture.tree(), capture.chr(), scenario, options.labeler);
  const Dataset data = to_dataset(labeled);
  std::printf("Labeled zones: %zu (%zu disposable / %zu non-disposable)\n\n",
              data.size(), data.positives(), data.size() - data.positives());

  std::vector<double> scores;
  const double lad_auc =
      cv_auc(data, [] { return std::make_unique<LadTree>(); }, &scores);
  std::vector<int> labels;
  for (std::size_t i = 0; i < data.size(); ++i) labels.push_back(data.label(i));

  // The ROC curve of the disposable class.
  const auto curve = roc_curve(scores, labels);
  TextTable roc_table({"threshold", "FPR", "TPR"});
  for (std::size_t i = 0; i < curve.size();
       i += std::max<std::size_t>(1, curve.size() / 20)) {
    roc_table.add_row({fixed(std::min(curve[i].threshold, 1.0), 3),
                       fixed(curve[i].fpr, 4), fixed(curve[i].tpr, 4)});
  }
  roc_table.add_row({fixed(0.0, 3), fixed(1.0, 4), fixed(1.0, 4)});
  std::printf("%s\n", roc_table.render().c_str());

  const Confusion at_half = confusion_at(scores, labels, 0.5);
  const Confusion at_nine = confusion_at(scores, labels, 0.9);
  std::printf("Operating points:\n");
  print_claim("theta=0.5: 97% TPR, 1% FPR",
              "theta=0.5: " + percent(at_half.tpr(), 1) + " TPR, " +
                  percent(at_half.fpr(), 1) + " FPR");
  print_claim("theta=0.9: 92.4% TPR, 0.6% FPR",
              "theta=0.9: " + percent(at_nine.tpr(), 1) + " TPR, " +
                  percent(at_nine.fpr(), 1) + " FPR");
  if (at_half.tp == at_nine.tp && at_half.fp == at_nine.fp) {
    std::printf(
        "  note: the synthetic zones separate cleanly, so scores are\n"
        "  bimodal and the two thresholds coincide; the paper's labeled\n"
        "  zones include genuinely ambiguous ones.\n");
  }

  // Model selection (paper: LAD vs NB / kNN / NN / logistic regression).
  std::printf("\nModel selection, 10-fold CV AUC:\n");
  TextTable models({"model", "AUC"});
  models.add_row({"LAD tree", fixed(lad_auc, 4)});
  models.add_row({"naive Bayes",
                  fixed(cv_auc(data,
                               [] {
                                 return std::make_unique<GaussianNaiveBayes>();
                               }),
                        4)});
  models.add_row({"kNN (k=5)",
                  fixed(cv_auc(data,
                               [] { return std::make_unique<KnnClassifier>(5); }),
                        4)});
  models.add_row(
      {"logistic regression",
       fixed(cv_auc(data,
                    [] { return std::make_unique<LogisticRegression>(); }),
             4)});
  models.add_row({"MLP (1 hidden layer)",
                  fixed(cv_auc(data, [] { return std::make_unique<Mlp>(); }),
                        4)});
  std::printf("%s\n", models.render().c_str());

  // Feature-family ablation.
  const std::size_t tree_cols[] = {0, 1, 2, 3, 4, 5};
  const std::size_t chr_cols[] = {6, 7};
  const Dataset tree_only = project(data, tree_cols);
  const Dataset chr_only = project(data, chr_cols);
  std::printf("Feature-family ablation (LAD tree, CV AUC):\n");
  TextTable ablation({"features", "AUC"});
  ablation.add_row({"all 8 features", fixed(lad_auc, 4)});
  ablation.add_row(
      {"tree-structure only (6)",
       fixed(cv_auc(tree_only, [] { return std::make_unique<LadTree>(); }), 4)});
  ablation.add_row(
      {"cache-hit-rate only (2)",
       fixed(cv_auc(chr_only, [] { return std::make_unique<LadTree>(); }), 4)});
  std::printf("%s", ablation.render().c_str());
  return 0;
}
