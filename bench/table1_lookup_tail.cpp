// Table I — Disposable RRs in the low-lookup-volume tail, per date.
//
// Columns (paper): size of the <10-lookup tail as a fraction of all RRs;
// the disposable share *of* that tail; and the fraction of all disposable
// RRs that live inside the tail.  Paper: the tail is 90-94% of RRs, its
// disposable share grows 28% -> 57%, and 96-98% of disposable RRs are in
// the tail.

#include "analytics/measurements.h"
#include "bench_common.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

int main() {
  print_header("Table I", "disposable RRs in the low-lookup-volume tail");

  const LadTree model = train_reference_model();
  PipelineOptions options = default_options(150'000);
  options.pretrained = &model;
  TextTable table({"date", "volume<10", "%_of_tail_disposable",
                   "%_disposable_in_tail"});
  double first_share = 0.0;
  double last_share = 0.0;
  for (const ScenarioDate date : kAllScenarioDates) {
    DayCapture capture;
    const MiningDayResult result = run_mining_day(date, options, &capture);
    const FindingIndex index(result.findings);
    const TailComposition row = lookup_tail_composition(
        capture.chr(),
        [&index](const DomainName& name) { return index.is_disposable(name); },
        10);
    table.add_row({std::string(scenario_date_name(date)),
                   percent(row.tail_fraction, 2),
                   percent(row.disposable_share_of_tail, 2),
                   percent(row.disposable_inside_tail, 2)});
    if (date == ScenarioDate::kFeb01) first_share = row.disposable_share_of_tail;
    if (date == ScenarioDate::kDec30) last_share = row.disposable_share_of_tail;
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Tail composition trend:\n");
  print_claim("disposable share of the tail grew 28.34% -> 57.17%",
              percent(first_share) + " -> " + percent(last_share));
  print_claim("96-98% of all disposable RRs sit inside the tail",
              "see last column above");
  return 0;
}
