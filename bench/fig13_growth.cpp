// Fig. 13 — Growth of disposable zones across the six 2011 dates.
//
// Paper: the disposable share of daily unique *queried* domains grew from
// 23.1% to 27.6%, of *resolved* domains from 27.6% to 37.2%, and of daily
// distinct RRs from 38.3% to 65.5%.  Shares here are measured the same way
// the paper measured them: by attributing names to the zones the miner
// itself discovered that day.

#include "bench_common.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

int main() {
  print_header("Fig. 13", "growth of disposable zones over 2011");

  // The paper's protocol: one classifier, trained from the hand-labeled
  // zones of one day, applied across the whole 2011 campaign.
  const LadTree model = train_reference_model();
  PipelineOptions options = default_options(150'000);
  options.pretrained = &model;

  TextTable table({"date", "queried", "resolved", "RRs", "zones_found",
                   "precision"});
  double first_queried = 0.0;
  double last_queried = 0.0;
  double first_resolved = 0.0;
  double last_resolved = 0.0;
  double first_rrs = 0.0;
  double last_rrs = 0.0;

  for (const ScenarioDate date : kAllScenarioDates) {
    const MiningDayResult result = run_mining_day(date, options);
    const DayAggregates& agg = result.aggregates;
    const double queried = static_cast<double>(agg.disposable_queried) /
                           static_cast<double>(agg.unique_queried);
    const double resolved = static_cast<double>(agg.disposable_resolved) /
                            static_cast<double>(agg.unique_resolved);
    const double rrs = static_cast<double>(agg.disposable_rrs) /
                       static_cast<double>(agg.unique_rrs);
    table.add_row({std::string(scenario_date_name(date)), percent(queried),
                   percent(resolved), percent(rrs),
                   with_commas(result.evaluation.findings),
                   percent(result.evaluation.finding_precision())});
    if (date == ScenarioDate::kFeb01) {
      first_queried = queried;
      first_resolved = resolved;
      first_rrs = rrs;
    }
    if (date == ScenarioDate::kDec30) {
      last_queried = queried;
      last_resolved = resolved;
      last_rrs = rrs;
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Disposable share of daily unique queried domains:\n");
  print_claim("23.1% -> 27.6%",
              percent(first_queried) + " -> " + percent(last_queried));
  std::printf("\nDisposable share of daily unique resolved domains:\n");
  print_claim("27.6% -> 37.2%",
              percent(first_resolved) + " -> " + percent(last_resolved));
  std::printf("\nDisposable share of daily distinct RRs:\n");
  print_claim("38.3% -> 65.5%",
              percent(first_rrs) + " -> " + percent(last_rrs));
  return 0;
}
