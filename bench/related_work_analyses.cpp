// §II-B — the two related-work analyses the paper positions itself against.
//
// Treetop taxonomy (Plonka & Barford): disposable traffic is a *superclass*
// of the "overloaded" category — DNS used as a signaling channel rather
// than a name->IP mapping.
//
// Covert-channel bound (Paxson et al.): a per-(client, destination)
// 4 kB/day information bound catches bulk tunnels but, as the paper notes,
// "disposable domains can be stealthy and stay under this threshold.
// Nevertheless, we can identify them collectively from the view of the
// entire disposable zone."  We measure both sides of that sentence.

#include "analytics/related_work.h"
#include "bench_common.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

int main() {
  print_header("Sec. II-B", "treetop taxonomy and the covert-channel bound");

  PipelineOptions options = default_options(250'000);
  options.capture.keep_fpdns = true;
  Scenario scenario(ScenarioDate::kDec30, options.scale);
  DayCapture capture(options.capture);
  simulate_day(scenario, capture, options,
               scenario_day_index(ScenarioDate::kDec30));

  const auto is_disposable = [&scenario](const DomainName& name) {
    return scenario.truth().is_disposable_name(name);
  };

  // --- Treetop taxonomy.
  const TrafficTaxonomy taxonomy =
      classify_taxonomy(capture.fpdns(), is_disposable);
  TextTable taxonomy_table({"category", "responses", "share"});
  const auto total = static_cast<double>(taxonomy.total());
  taxonomy_table.add_row({"canonical", with_commas(taxonomy.canonical),
                          percent(static_cast<double>(taxonomy.canonical) /
                                  total)});
  taxonomy_table.add_row({"overloaded (disposable)",
                          with_commas(taxonomy.overloaded),
                          percent(static_cast<double>(taxonomy.overloaded) /
                                  total)});
  taxonomy_table.add_row({"unwanted (NXDOMAIN)",
                          with_commas(taxonomy.unwanted),
                          percent(static_cast<double>(taxonomy.unwanted) /
                                  total)});
  std::printf("%s\n", taxonomy_table.render().c_str());
  print_claim(
      "disposable domains are more general than treetop's overloaded "
      "class and distinct from unwanted traffic",
      "overloaded share " +
          percent(static_cast<double>(taxonomy.overloaded) / total) +
          " of below responses, disjoint from the " +
          percent(static_cast<double>(taxonomy.unwanted) / total) +
          " NXDOMAIN class");

  // --- Covert-channel bound.
  const CovertChannelStudy study = covert_channel_study(
      capture.fpdns(), [&scenario](const DomainName& name) -> std::string {
        for (std::size_t k = name.label_count(); k >= 2; --k) {
          std::string zone(name.nld_view(k));
          if (scenario.truth().disposable_apexes.contains(zone)) return zone;
        }
        return {};
      });

  std::printf("\nPer-(client, disposable zone) daily name-byte volumes:\n");
  TextTable volumes({"rank", "bytes/day"});
  for (std::size_t rank = 1; rank <= study.per_client_zone_bytes.size();
       rank *= 8) {
    volumes.add_row({with_commas(rank),
                     with_commas(study.per_client_zone_bytes[rank - 1])});
  }
  std::printf("%s\n", volumes.render().c_str());

  print_claim(
      "disposable senders can stay under the 4 kB/day per-client bound",
      percent(study.under_threshold_fraction, 1) + " of " +
          with_commas(study.per_client_zone_bytes.size()) +
          " (client, zone) channels are under the bound");
  std::printf("\n");
  print_claim(
      "yet the zone's *collective* footprint is unmistakable (the miner's "
      "whole-zone view)",
      "busiest disposable zone carries " +
          with_commas(study.busiest_zone_bytes) +
          " name-bytes/day across all clients (" +
          fixed(static_cast<double>(study.busiest_zone_bytes) /
                    static_cast<double>(study.threshold),
                1) +
          "x the per-client bound)");
  return 0;
}
