// Fig. 7 — Cache-hit-rate distributions of labeled disposable vs
// non-disposable zones.
//
// Paper: 90% of CHR samples from disposable RRs are zero, while 45% of the
// CHR samples from non-disposable (Alexa-style) RRs exceed 0.58.  This
// separation is the classification signal behind the CHR feature family.

#include <unordered_set>

#include "analytics/measurements.h"
#include "bench_common.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

int main() {
  print_header("Fig. 7", "CHR distribution: disposable vs non-disposable zones");

  // CHR contrast needs many queries per popular hostname; run a bigger day
  // on a 2-server cluster (the paper's per-name query volumes are ~100x
  // ours, so this narrows the scale gap for the hit-rate comparison).
  PipelineOptions options = default_options(800'000);
  options.cluster.server_count = 2;
  Scenario scenario(ScenarioDate::kNov14, options.scale);
  DayCapture capture;
  simulate_day(scenario, capture, options,
               scenario_day_index(ScenarioDate::kNov14));

  // The paper's negative class is the labeled Alexa-style zones, not the
  // rest of the traffic.
  std::unordered_set<std::string> popular(scenario.popular_apexes().begin(),
                                          scenario.popular_apexes().end());
  const LabeledChrStudy study = labeled_chr_study(
      capture.chr(),
      [&scenario](const DomainName& name) {
        return scenario.truth().is_disposable_name(name);
      },
      [&popular](const DomainName& name) {
        return name.label_count() >= 2 &&
               popular.contains(std::string(name.nld_view(2)));
      });

  TextTable table({"chr", "CDF_disposable", "CDF_nondisposable"});
  for (int i = 0; i <= 10; ++i) {
    const double x = static_cast<double>(i) / 10.0;
    table.add_row({fixed(x, 1), fixed(cdf_at(study.disposable_chr, x), 4),
                   fixed(cdf_at(study.nondisposable_chr, x), 4)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Disposable zones:\n");
  print_claim("90% of cache hit rates are zero",
              percent(study.disposable_zero_fraction, 1) + " at zero (" +
                  with_commas(study.disposable_chr.size()) + " CHR samples)");
  std::printf("\nNon-disposable zones:\n");
  print_claim("45% of cache hit rates are over 0.58",
              percent(study.nondisposable_above_058_fraction, 1) +
                  " above 0.58 (" +
                  with_commas(study.nondisposable_chr.size()) +
                  " CHR samples)");
  return 0;
}
