// Fig. 5 — Deduplicated new resource records per day (rpDNS bootstrap).
//
// The paper deduplicates 13 consecutive days (11/28–12/10/2011): overall
// new-RR volume drops ~30% by day 13 and Akamai's drops 69%, while Google
// *grows* its daily new RRs by 25% — its one-time names keep producing
// records, reaching 66% of daily new unique RRs.

#include "bench_common.h"
#include "pdns/rpdns.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

int main() {
  print_header("Fig. 5", "new deduplicated RRs per day over 13 days");

  PipelineOptions options = default_options(200'000);
  options.warmup = false;  // dedup counts below-tap answers only

  RpDnsDataset rpdns;
  struct DayCounts {
    std::uint64_t all = 0;
    std::uint64_t google = 0;
    std::uint64_t akamai = 0;
  };
  std::vector<DayCounts> per_day;

  for (int day = 0; day < 13; ++day) {
    ScenarioScale scale = options.scale;
    scale.traffic_stream = static_cast<std::uint64_t>(day);
    // The Google-style experiment ramps up within the window (the paper's
    // Google tenant *grew* while everything else declined).
    scale.flagship_boost = 0.85 + 0.30 * static_cast<double>(day) / 12.0;
    Scenario scenario(ScenarioDate::kDec30, scale);
    PipelineOptions day_options = options;
    day_options.scale = scale;
    DayCapture capture;
    simulate_day(scenario, capture, day_options, day);

    DayCounts counts;
    for (const auto& [key, rr_counts] : capture.chr().entries()) {
      if (!rpdns.add(key, day)) continue;
      ++counts.all;
      const auto name = DomainName::parse(key.name);
      if (!name) continue;
      if (Scenario::is_google_name(*name)) ++counts.google;
      if (Scenario::is_akamai_name(*name)) ++counts.akamai;
    }
    per_day.push_back(counts);
  }

  TextTable table({"day", "new_RRs", "new_google", "new_akamai",
                   "google_share_of_new"});
  for (std::size_t day = 0; day < per_day.size(); ++day) {
    const DayCounts& counts = per_day[day];
    table.add_row({std::to_string(day + 1), with_commas(counts.all),
                   with_commas(counts.google), with_commas(counts.akamai),
                   percent(static_cast<double>(counts.google) /
                           static_cast<double>(counts.all))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Total distinct RRs accumulated: %s\n\n",
              with_commas(rpdns.unique_records()).c_str());

  const DayCounts& first = per_day.front();
  const DayCounts& last = per_day.back();
  auto change = [](std::uint64_t from, std::uint64_t to) {
    return percent((static_cast<double>(to) - static_cast<double>(from)) /
                       static_cast<double>(from),
                   1);
  };
  std::printf("Overall new-RR volume, day 1 -> day 13:\n");
  print_claim("decreases ~30%", change(first.all, last.all));
  std::printf("\nAkamai new RRs, day 1 -> day 13:\n");
  print_claim("decreases sharply (-69%)", change(first.akamai, last.akamai));
  std::printf("\nGoogle new RRs, day 1 -> day 13:\n");
  print_claim("INCREASES (+25%): one-time names keep producing records",
              change(first.google, last.google));
  std::printf("\nGoogle's share of daily new unique RRs:\n");
  print_claim("37% on day 1 -> 66% on day 13",
              percent(static_cast<double>(first.google) /
                      static_cast<double>(first.all)) +
                  " -> " +
                  percent(static_cast<double>(last.google) /
                          static_cast<double>(last.all)));
  return 0;
}
