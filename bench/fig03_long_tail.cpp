// Fig. 3 — The DNS long tail.
//
// (a) Lookup-volume distribution: sorted per-RR daily lookup counts; the
//     paper finds >90% of RRs receive fewer than 10 lookups/day, growing
//     from 90% (Feb) to 94% (Dec 2011).
// (b) Domain-hit-rate CDF: 89% of RRs have zero DHR in February, 93% by
//     December.

#include "analytics/measurements.h"
#include "bench_common.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

namespace {

void run_date(ScenarioDate date, double& tail_fraction, double& zero_dhr) {
  const PipelineOptions options = default_options();
  DayCapture capture;
  capture_day(date, options, capture);

  std::printf("--- %s ---\n", std::string(scenario_date_name(date)).c_str());

  // Fig. 3a: the sorted lookup-volume series, sampled at log-spaced ranks.
  const auto volumes = sorted_lookup_volumes(capture.chr());
  TextTable table({"rank", "lookups/day"});
  for (std::size_t rank = 1; rank < volumes.size(); rank *= 4) {
    table.add_row({with_commas(rank), with_commas(volumes[rank - 1])});
  }
  table.add_row({with_commas(volumes.size()), with_commas(volumes.back())});
  std::printf("%s\n", table.render().c_str());

  tail_fraction = lookup_tail_fraction(capture.chr(), 10);
  zero_dhr = zero_dhr_fraction(capture.chr());

  // Fig. 3b: DHR CDF, printed at decile resolution.
  const auto cdf = dhr_cdf(capture.chr(), 11);
  TextTable cdf_table({"dhr", "CDF"});
  for (const CdfPoint& point : cdf) {
    cdf_table.add_row({fixed(point.x, 2), fixed(point.f, 4)});
  }
  std::printf("%s\n", cdf_table.render().c_str());
}

}  // namespace

int main() {
  print_header("Fig. 3", "lookup-volume long tail and domain-hit-rate CDF");

  double feb_tail = 0.0;
  double feb_zero = 0.0;
  double dec_tail = 0.0;
  double dec_zero = 0.0;
  run_date(ScenarioDate::kFeb01, feb_tail, feb_zero);
  run_date(ScenarioDate::kDec30, dec_tail, dec_zero);

  std::printf("Fig. 3a headline (RRs with < 10 lookups/day):\n");
  print_claim("90.09% (02/01) growing to ~94% (late 2011)",
              percent(feb_tail, 2) + " (02/01) -> " + percent(dec_tail, 2) +
                  " (12/30)");
  std::printf("\nFig. 3b headline (RRs with zero domain hit rate):\n");
  print_claim("89% (02/01) growing to 93% (late 2011)",
              percent(feb_zero, 2) + " (02/01) -> " + percent(dec_zero, 2) +
                  " (12/30)");
  return 0;
}
