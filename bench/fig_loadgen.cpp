// Open/closed-loop load harness figure (DESIGN.md §16).
//
// Drives the wire front-end with src/loadgen in three passes:
//
//   1. closed loop — N connections, one query outstanding each.  Finds
//      the server's self-paced throughput and its RTT tail measured from
//      actual sends (the optimistic, coordinated-omission-prone view);
//   2. open loop at a sustainable offered rate (a fraction of the
//      closed-loop rate) — scheduled sends, RTT from the schedule.  At a
//      rate the server can absorb, open-loop percentiles track the
//      closed-loop ones;
//   3. open loop at an overload offered rate (a multiple of the
//      closed-loop rate) — the backlog the closed loop can never see
//      shows up as a runaway open-loop tail.
//
// Writes BENCH_loadgen.json for tools/check_bench_regression.py: achieved
// QPS gauges gate higher-is-better, *_latency_seconds gauges gate
// lower-is-better, and the overload pass exports ungated *_seconds gauges
// (its tail is a demonstration, not a regression signal).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "loadgen/driver.h"
#include "resolver/wire_frontend.h"

namespace dnsnoise {
namespace {

struct Args {
  std::uint64_t queries = 20'000;   // measured queries per pass
  std::uint64_t warmup = 2'000;     // unrecorded warmup per pass
  std::uint64_t names = 2'000;      // distinct qnames
  std::size_t connections = 4;      // closed-loop connections / open sockets
  std::size_t shards = 2;           // server socket shards
  double sustainable_fraction = 0.5;  // open rate 1 = this × closed QPS
  double overload_factor = 2.0;       // open rate 2 = this × closed QPS
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> double {
      return i + 1 < argc ? std::strtod(argv[++i], nullptr) : 0;
    };
    if (arg == "--queries") {
      args.queries = static_cast<std::uint64_t>(value());
    } else if (arg == "--warmup") {
      args.warmup = static_cast<std::uint64_t>(value());
    } else if (arg == "--names") {
      args.names = static_cast<std::uint64_t>(value());
    } else if (arg == "--connections") {
      args.connections = static_cast<std::size_t>(value());
    } else if (arg == "--shards") {
      args.shards = static_cast<std::size_t>(value());
    } else if (arg == "--sustainable-fraction") {
      args.sustainable_fraction = value();
    } else if (arg == "--overload-factor") {
      args.overload_factor = value();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--queries N] [--warmup N] [--names N] "
                   "[--connections N] [--shards N] "
                   "[--sustainable-fraction F] [--overload-factor F]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (args.queries == 0) args.queries = 1;
  if (args.names == 0) args.names = 1;
  if (args.connections == 0) args.connections = 1;
  return args;
}

void print_result(const char* label, const loadgen::LoadgenResult& result) {
  std::printf(
      "  %-16s offered=%8.0f achieved=%8.0f qps  completed=%llu lost=%llu\n",
      label, result.offered_qps, result.achieved_qps,
      static_cast<unsigned long long>(result.completed),
      static_cast<unsigned long long>(result.lost));
  std::printf("  %-16s p50=%.6fs p90=%.6fs p99=%.6fs p99.9=%.6fs\n", "",
              result.percentiles.p50, result.percentiles.p90,
              result.percentiles.p99, result.percentiles.p999);
}

void export_percentiles(obs::MetricsRegistry& registry,
                        const std::string& prefix,
                        const loadgen::LoadgenResult& result, bool gated) {
  // Gated names end in _latency_seconds (lower-is-better class); the
  // overload pass uses plain _seconds so its wild tail stays informative
  // without flapping the gate.
  const std::string suffix = gated ? "_latency_seconds" : "_seconds";
  registry.gauge(prefix + ".p50" + suffix).set(result.percentiles.p50);
  registry.gauge(prefix + ".p99" + suffix).set(result.percentiles.p99);
  registry.gauge(prefix + ".p999" + suffix).set(result.percentiles.p999);
}

}  // namespace
}  // namespace dnsnoise

int main(int argc, char** argv) {
  using namespace dnsnoise;
  const Args args = parse_args(argc, argv);
  bench::print_header("BENCH loadgen",
                      "open/closed-loop load harness (coordinated-omission-"
                      "free latency)");

  obs::MetricsRegistry registry;
  SyntheticAuthority authority;
  authority.register_zone(*DomainName::parse("bench.test"),
                          SyntheticAuthority::make_flat_a_zone(60));
  ClusterConfig cluster_config;
  cluster_config.server_count = 1;
  RdnsCluster cluster(cluster_config, authority);

  WireFrontendConfig frontend_config;
  frontend_config.udp.shards = args.shards;
  frontend_config.allow_replay_meta = true;
  frontend_config.metrics = &registry;
  WireFrontend frontend(cluster, frontend_config);
  if (!frontend.start()) {
    std::fprintf(stderr, "frontend start failed: %s\n",
                 frontend.error().c_str());
    return 1;
  }
  std::printf("  serving udp=127.0.0.1:%u shards=%zu connections=%zu\n",
              frontend.udp_port(), frontend.shard_count(), args.connections);

  loadgen::LoadgenConfig base;
  base.workload.name_count = args.names;
  base.workload.name_suffix = ".bench.test";
  base.workload.keys = loadgen::KeyDistribution::kZipf;
  base.workload.arrival = loadgen::ArrivalProcess::kPoisson;
  base.connections = args.connections;
  base.queries = args.queries;
  base.warmup_queries = args.warmup;
  base.attach_replay_meta = true;
  base.seed = 42;

  // Pass 1: closed loop discovers the self-paced rate.
  loadgen::LoadgenConfig closed = base;
  closed.mode = loadgen::LoopMode::kClosed;
  const auto closed_result =
      loadgen::run_load_udp(closed, "127.0.0.1", frontend.udp_port());
  if (!closed_result.ok || closed_result.completed == 0) {
    std::fprintf(stderr, "closed-loop pass failed: %s\n",
                 closed_result.error.c_str());
    return 1;
  }
  print_result("closed", closed_result);

  // Pass 2: open loop at a rate the server can absorb.
  loadgen::LoadgenConfig open_ok = base;
  open_ok.mode = loadgen::LoopMode::kOpen;
  open_ok.workload.offered_qps =
      closed_result.achieved_qps * args.sustainable_fraction;
  const auto open_result =
      loadgen::run_load_udp(open_ok, "127.0.0.1", frontend.udp_port());
  if (!open_result.ok || open_result.completed == 0) {
    std::fprintf(stderr, "open-loop pass failed: %s\n",
                 open_result.error.c_str());
    return 1;
  }
  print_result("open", open_result);

  // Pass 3: open loop past the closed-loop rate — the tail the closed
  // loop cannot see.
  loadgen::LoadgenConfig overload = base;
  overload.mode = loadgen::LoopMode::kOpen;
  overload.workload.offered_qps =
      closed_result.achieved_qps * args.overload_factor;
  const auto overload_result =
      loadgen::run_load_udp(overload, "127.0.0.1", frontend.udp_port());
  if (!overload_result.ok) {
    std::fprintf(stderr, "overload pass failed: %s\n",
                 overload_result.error.c_str());
    return 1;
  }
  print_result("open-overload", overload_result);

  frontend.flush_latency_metrics();
  const StageLatencyBreakdown stages = frontend.stage_latency();
  std::printf("  server stages (all passes): decode mean=%.0fns "
              "cluster mean=%.0fns encode mean=%.0fns\n",
              stages.decode.mean_ns(), stages.cluster.mean_ns(),
              stages.encode.mean_ns());
  frontend.stop();

  const bool tail_diverges =
      overload_result.percentiles.p99 > closed_result.percentiles.p99;
  bench::print_claim(
      "closed-loop latency hides queueing delay (coordinated omission)",
      std::string("overload open-loop p99 ") +
          (tail_diverges ? ">" : "NOT >") + " closed-loop p99 (" +
          std::to_string(overload_result.percentiles.p99) + "s vs " +
          std::to_string(closed_result.percentiles.p99) + "s)");

  registry.gauge("loadgen.closed.queries_per_sec")
      .set(closed_result.achieved_qps);
  export_percentiles(registry, "loadgen.closed", closed_result,
                     /*gated=*/true);
  registry.gauge("loadgen.open.offered_qps").set(open_result.offered_qps);
  registry.gauge("loadgen.open.queries_per_sec").set(open_result.achieved_qps);
  export_percentiles(registry, "loadgen.open", open_result, /*gated=*/true);
  registry.gauge("loadgen.overload.offered_qps")
      .set(overload_result.offered_qps);
  registry.gauge("loadgen.overload.achieved_qps")
      .set(overload_result.achieved_qps);
  export_percentiles(registry, "loadgen.overload", overload_result,
                     /*gated=*/false);
  registry.gauge("loadgen.overload.tail_diverges")
      .set(tail_diverges ? 1.0 : 0.0);
  registry.gauge("loadgen.connections")
      .set(static_cast<double>(args.connections));

  const std::string path = bench::write_bench_json("loadgen", registry);
  if (!path.empty()) std::printf("  wrote %s\n", path.c_str());
  return 0;
}
