// §VI-B — DNSSEC-enabled resolver cost.
//
// Paper: "Once DNSSEC is widely deployed ... eventually every domain name
// under a zone needs to be signed"; each queried disposable domain then
// requires an additional signature validation whose result is never
// reused, plus cache space for RRSIG/DNSKEY/DS records.  We report two
// views: today's partial deployment (only the zones flagged signed) and
// the paper's universal-deployment what-if (every answered cache miss
// costs one validation), with a published-constants cost model.

#include "bench_common.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

namespace {

// Cost model constants: one RSA-1024 verify ~ 70us of 2011-era server CPU;
// an RRSIG adds ~150 wire bytes per cached record.
constexpr double kVerifyMicros = 70.0;
constexpr double kRrsigBytes = 150.0;

struct RunResult {
  std::uint64_t partial_validations = 0;
  std::uint64_t partial_disposable = 0;
  std::uint64_t full_validations = 0;   // universal deployment
  std::uint64_t full_disposable = 0;
};

RunResult run(ScenarioDate date, double disposable_multiplier) {
  PipelineOptions options = default_options(250'000);
  options.scale.disposable_traffic_multiplier = disposable_multiplier;
  Scenario scenario(date, options.scale);

  RdnsCluster cluster(options.cluster, scenario.authority());
  scenario.traffic().run_day(scenario_day_index(date),
                             [&cluster](SimTime ts, std::uint64_t client,
                                        const QuerySpec& query) {
                               cluster.query(
                                   client,
                                   {DomainName(query.qname), query.qtype}, ts);
                             });
  return {cluster.dnssec_validations(),
          cluster.dnssec_disposable_validations(), cluster.answered_misses(),
          cluster.disposable_answered_misses()};
}

}  // namespace

int main() {
  print_header("Sec. VI-B", "DNSSEC validating-resolver cost of disposable load");

  TextTable table({"date", "deployment", "validations/day",
                   "disposable_caused", "share", "wasted_cpu_s",
                   "wasted_cache_MB"});
  double feb_share = 0.0;
  double dec_share = 0.0;
  for (const ScenarioDate date : {ScenarioDate::kFeb01, ScenarioDate::kNov14,
                                  ScenarioDate::kDec30}) {
    const RunResult r = run(date, 1.0);
    const double partial_share =
        static_cast<double>(r.partial_disposable) /
        static_cast<double>(r.partial_validations);
    const double full_share = static_cast<double>(r.full_disposable) /
                              static_cast<double>(r.full_validations);
    table.add_row({std::string(scenario_date_name(date)), "partial(2011)",
                   with_commas(r.partial_validations),
                   with_commas(r.partial_disposable), percent(partial_share, 1),
                   fixed(static_cast<double>(r.partial_disposable) *
                             kVerifyMicros / 1e6,
                         2),
                   fixed(static_cast<double>(r.partial_disposable) *
                             kRrsigBytes / 1e6,
                         2)});
    table.add_row({std::string(scenario_date_name(date)), "universal",
                   with_commas(r.full_validations),
                   with_commas(r.full_disposable), percent(full_share, 1),
                   fixed(static_cast<double>(r.full_disposable) *
                             kVerifyMicros / 1e6,
                         2),
                   fixed(static_cast<double>(r.full_disposable) *
                             kRrsigBytes / 1e6,
                         2)});
    if (date == ScenarioDate::kFeb01) feb_share = full_share;
    if (date == ScenarioDate::kDec30) dec_share = full_share;
  }
  std::printf("%s\n", table.render().c_str());

  const RunResult baseline = run(ScenarioDate::kDec30, 0.0);
  const RunResult with = run(ScenarioDate::kDec30, 1.0);
  std::printf("Universal-deployment validation inflation (Dec, on vs off):\n");
  print_claim(
      "each queried disposable domain may require an additional "
      "signature validation whose result is never reused",
      with_commas(with.full_validations) + " vs " +
          with_commas(baseline.full_validations) + " validations/day (" +
          fixed(static_cast<double>(with.full_validations) /
                    static_cast<double>(baseline.full_validations),
                2) +
          "x); every disposable validation (" +
          with_commas(with.full_disposable) + ") is single-use");
  std::printf("\nPressure grows with disposable adoption:\n");
  print_claim("disposable domains will naturally increase this pressure",
              "disposable share of validations " + percent(feb_share, 1) +
                  " (Feb) -> " + percent(dec_share, 1) + " (Dec)");
  std::printf(
      "\nMitigation (paper): serve disposable zones from a single signed "
      "wildcard so one RRSIG covers the whole group.\n");
  return 0;
}
