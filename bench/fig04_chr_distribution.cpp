// Fig. 4 — Cache-hit-rate distribution of all RRs.
//
// The paper's CHR distribution (every RR's DHR repeated once per cache
// miss) is an approximately linear, slightly skewed CDF; 58% of the CHR
// mass lies below 0.5 on 11/10/2011, and the multi-day aggregate keeps the
// same shape.

#include "analytics/measurements.h"
#include "bench_common.h"

using namespace dnsnoise;
using namespace dnsnoise::bench;

int main() {
  print_header("Fig. 4", "cache-hit-rate distribution (single day + aggregate)");

  const PipelineOptions options = default_options();

  // (a) One day, 11/14 (our nearest scenario date to the paper's 11/10).
  DayCapture capture;
  capture_day(ScenarioDate::kNov14, options, capture);
  const double below_half = chr_fraction_below(capture.chr(), 0.5);

  std::printf("--- CHR CDF, %s ---\n",
              std::string(scenario_date_name(ScenarioDate::kNov14)).c_str());
  TextTable table({"chr", "CDF"});
  for (const CdfPoint& point : chr_cdf(capture.chr(), 21)) {
    table.add_row({fixed(point.x, 2), fixed(point.f, 4)});
  }
  std::printf("%s\n", table.render().c_str());

  // (b) Aggregate across multiple dates (the paper used 13 days of 2011).
  std::printf("--- CHR CDF, multi-date aggregate ---\n");
  std::vector<double> aggregate;
  for (const ScenarioDate date :
       {ScenarioDate::kSep13, ScenarioDate::kNov14, ScenarioDate::kNov29}) {
    DayCapture day;
    capture_day(date, options, day);
    const auto samples = day.chr().chr_distribution();
    aggregate.insert(aggregate.end(), samples.begin(), samples.end());
  }
  TextTable agg_table({"chr", "CDF"});
  for (const CdfPoint& point : empirical_cdf(aggregate, 21)) {
    agg_table.add_row({fixed(point.x, 2), fixed(point.f, 4)});
  }
  std::printf("%s\n", agg_table.render().c_str());
  const double agg_below_half = cdf_at(aggregate, 0.4999);

  std::printf("Fig. 4a headline:\n");
  print_claim("58% of cache hit rates are below 0.5 (11/10/2011)",
              percent(below_half, 1) + " below 0.5 (11/14 scenario)");
  std::printf("\nFig. 4b headline:\n");
  print_claim("the long-term distribution keeps the skewed-linear shape",
              percent(agg_below_half, 1) + " below 0.5 across 3 dates");
  return 0;
}
