// Wire front-end throughput harness (DESIGN.md §14).
//
// Serves a flat synthetic zone through resolver/wire_frontend and replays a
// pipelined query stream against it with the in-repo wire client: a window
// of W datagrams stays outstanding on one UDP socket, so the measurement
// exercises the server's recvmmsg/sendmmsg batching rather than lockstep
// round-trip latency.  Reports answered queries/sec and writes
// BENCH_server.json for tools/check_bench_regression.py (ratio gate against
// bench/baselines/BENCH_server.json plus the CI --floor backstop).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dns/wire.h"
#include "net/udp_client.h"
#include "obs/latency.h"
#include "resolver/wire_frontend.h"

namespace dnsnoise {
namespace {

struct Args {
  std::uint64_t queries = 50'000;
  std::uint64_t names = 2'000;    // distinct qnames (cache hits past round 1)
  std::size_t shards = 2;
  std::size_t batch = 32;
  std::size_t window = 32;        // outstanding datagrams
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::uint64_t {
      return i + 1 < argc ? std::strtoull(argv[++i], nullptr, 10) : 0;
    };
    if (arg == "--queries") {
      args.queries = value();
    } else if (arg == "--names") {
      args.names = value();
    } else if (arg == "--shards") {
      args.shards = static_cast<std::size_t>(value());
    } else if (arg == "--batch") {
      args.batch = static_cast<std::size_t>(value());
    } else if (arg == "--window") {
      args.window = static_cast<std::size_t>(value());
    } else {
      std::fprintf(stderr,
                   "usage: %s [--queries N] [--names N] [--shards N] "
                   "[--batch N] [--window N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (args.queries == 0) args.queries = 1;
  if (args.names == 0) args.names = 1;
  if (args.window == 0) args.window = 1;
  return args;
}

}  // namespace
}  // namespace dnsnoise

int main(int argc, char** argv) {
  using namespace dnsnoise;
  const Args args = parse_args(argc, argv);
  bench::print_header("BENCH server",
                      "wire front-end throughput (UDP, pipelined client)");

  obs::MetricsRegistry registry;
  SyntheticAuthority authority;
  authority.register_zone(*DomainName::parse("bench.test"),
                          SyntheticAuthority::make_flat_a_zone(60));
  ClusterConfig cluster_config;
  cluster_config.server_count = 1;
  cluster_config.metrics = &registry;
  RdnsCluster cluster(cluster_config, authority);

  WireFrontendConfig frontend_config;
  frontend_config.udp.shards = args.shards;
  frontend_config.udp.batch = args.batch;
  frontend_config.allow_replay_meta = true;
  frontend_config.metrics = &registry;
  WireFrontend frontend(cluster, frontend_config);
  if (!frontend.start()) {
    std::fprintf(stderr, "frontend start failed: %s\n",
                 frontend.error().c_str());
    return 1;
  }
  std::printf("  serving udp=127.0.0.1:%u shards=%zu batched=%s window=%zu\n",
              frontend.udp_port(), frontend.shard_count(),
              net::UdpServer::batched() ? "yes" : "no", args.window);

  net::UdpClient client;
  if (!client.connect("127.0.0.1", frontend.udp_port())) {
    std::fprintf(stderr, "client connect failed: %s\n", client.error().c_str());
    return 1;
  }

  // Pre-encode the whole stream so the measured loop is pure socket work.
  std::vector<std::vector<std::uint8_t>> wire;
  wire.reserve(args.queries);
  for (std::uint64_t i = 0; i < args.queries; ++i) {
    const std::string qname =
        "q" + std::to_string(i % args.names) + ".bench.test";
    DnsMessage query = DnsMessage::make_query(
        static_cast<std::uint16_t>(i), *DomainName::parse(qname), RRType::A);
    net::attach_replay_meta(
        query, {.ts = static_cast<SimTime>(i / 100), .client_id = i % 97});
    wire.push_back(encode_message(query));
  }

  std::uint64_t answered = 0;
  std::uint64_t lost = 0;
  // Per-query RTT from the actual send, matched by DNS id (the stream
  // assigns id = i mod 65536; the window keeps collisions impossible).
  // This is a *closed-loop windowed* measurement: it reports how fast
  // answered queries came back, not queueing under a fixed offered rate —
  // fig_loadgen's open loop covers that.
  obs::LatencyRecorder rtt;
  auto& rtt_shard = rtt.shard(0);
  std::vector<std::chrono::steady_clock::time_point> send_time(65536);
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  std::size_t outstanding = 0;
  while (answered + lost < args.queries) {
    while (sent < args.queries && outstanding < args.window) {
      send_time[sent % 65536] = std::chrono::steady_clock::now();
      client.send(wire[sent]);
      ++sent;
      ++outstanding;
    }
    if (outstanding == 0) break;
    if (const auto resp = client.receive(1000)) {
      ++answered;
      if (resp->size() >= 2) {
        const std::uint16_t id =
            static_cast<std::uint16_t>(((*resp)[0] << 8) | (*resp)[1]);
        rtt_shard.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - send_time[id])
                .count()));
      }
    } else {
      // Window's worth of silence: count everything in flight as lost.
      lost += outstanding;
      outstanding = 0;
      continue;
    }
    --outstanding;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double qps = seconds > 0 ? static_cast<double>(answered) / seconds : 0;

  const WireFrontendStats stats = frontend.stats();
  const std::size_t shard_count = frontend.shard_count();
  frontend.stop();
  std::printf("  answered %llu of %llu (%llu lost) in %.3fs\n",
              static_cast<unsigned long long>(answered),
              static_cast<unsigned long long>(args.queries),
              static_cast<unsigned long long>(lost), seconds);
  std::printf("  wire throughput: %.0f queries/sec (server saw %llu)\n", qps,
              static_cast<unsigned long long>(stats.queries));
  bench::print_claim(
      "served queries feed the same tap/metrics path as in-process traffic",
      "server.queries == answered + lost-in-flight, zero crashes");

  const obs::LatencySnapshot rtts = rtt.snapshot();
  const obs::LatencyPercentiles pct = rtts.percentiles_seconds();
  std::printf("  closed-loop RTT: p50=%.6fs p99=%.6fs (window=%zu)\n", pct.p50,
              pct.p99, args.window);

  registry.gauge("server.wire_queries_per_sec").set(qps);
  registry.gauge("server.wire_answered").set(static_cast<double>(answered));
  registry.gauge("server.wire_lost").set(static_cast<double>(lost));
  registry.gauge("server.wire_shards").set(static_cast<double>(shard_count));
  // Closed-loop (windowed) RTTs — lower-is-better gated; see fig_loadgen
  // for the open-loop, coordinated-omission-free view.
  registry.gauge("server.wire_p50_latency_seconds").set(pct.p50);
  registry.gauge("server.wire_p99_latency_seconds").set(pct.p99);
  const std::string path = bench::write_bench_json("server", registry);
  if (!path.empty()) std::printf("  wrote %s\n", path.c_str());

  // Loss on loopback means the harness outran the kernel buffers, which the
  // window bound should prevent; a lossy run would understate throughput.
  if (answered == 0) {
    std::fprintf(stderr, "no queries answered; server broken\n");
    return 1;
  }
  return 0;
}
