file(REMOVE_RECURSE
  "CMakeFiles/model_persistence_test.dir/model_persistence_test.cpp.o"
  "CMakeFiles/model_persistence_test.dir/model_persistence_test.cpp.o.d"
  "model_persistence_test"
  "model_persistence_test.pdb"
  "model_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
