# Empty dependencies file for model_persistence_test.
# This may be replaced when dependencies are built.
