
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/traffic_gen_test.cpp" "tests/CMakeFiles/traffic_gen_test.dir/traffic_gen_test.cpp.o" "gcc" "tests/CMakeFiles/traffic_gen_test.dir/traffic_gen_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analytics/CMakeFiles/dnsnoise_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/miner/CMakeFiles/dnsnoise_miner.dir/DependInfo.cmake"
  "/root/repo/build/src/netio/CMakeFiles/dnsnoise_netio.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/dnsnoise_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dnsnoise_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/pdns/CMakeFiles/dnsnoise_pdns.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dnsnoise_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/dnsnoise_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dnsnoise_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnsnoise_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
