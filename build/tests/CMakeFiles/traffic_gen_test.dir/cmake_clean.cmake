file(REMOVE_RECURSE
  "CMakeFiles/traffic_gen_test.dir/traffic_gen_test.cpp.o"
  "CMakeFiles/traffic_gen_test.dir/traffic_gen_test.cpp.o.d"
  "traffic_gen_test"
  "traffic_gen_test.pdb"
  "traffic_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
