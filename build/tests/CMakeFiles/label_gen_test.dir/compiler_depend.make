# Empty compiler generated dependencies file for label_gen_test.
# This may be replaced when dependencies are built.
