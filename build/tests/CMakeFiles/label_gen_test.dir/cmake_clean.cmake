file(REMOVE_RECURSE
  "CMakeFiles/label_gen_test.dir/label_gen_test.cpp.o"
  "CMakeFiles/label_gen_test.dir/label_gen_test.cpp.o.d"
  "label_gen_test"
  "label_gen_test.pdb"
  "label_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
