# Empty compiler generated dependencies file for measurements_test.
# This may be replaced when dependencies are built.
