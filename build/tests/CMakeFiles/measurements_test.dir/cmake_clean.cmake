file(REMOVE_RECURSE
  "CMakeFiles/measurements_test.dir/measurements_test.cpp.o"
  "CMakeFiles/measurements_test.dir/measurements_test.cpp.o.d"
  "measurements_test"
  "measurements_test.pdb"
  "measurements_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measurements_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
