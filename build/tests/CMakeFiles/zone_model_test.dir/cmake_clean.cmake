file(REMOVE_RECURSE
  "CMakeFiles/zone_model_test.dir/zone_model_test.cpp.o"
  "CMakeFiles/zone_model_test.dir/zone_model_test.cpp.o.d"
  "zone_model_test"
  "zone_model_test.pdb"
  "zone_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
