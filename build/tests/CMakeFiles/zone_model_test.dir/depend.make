# Empty dependencies file for zone_model_test.
# This may be replaced when dependencies are built.
