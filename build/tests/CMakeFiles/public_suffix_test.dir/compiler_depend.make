# Empty compiler generated dependencies file for public_suffix_test.
# This may be replaced when dependencies are built.
