file(REMOVE_RECURSE
  "CMakeFiles/public_suffix_test.dir/public_suffix_test.cpp.o"
  "CMakeFiles/public_suffix_test.dir/public_suffix_test.cpp.o.d"
  "public_suffix_test"
  "public_suffix_test.pdb"
  "public_suffix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/public_suffix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
