# Empty dependencies file for chr_test.
# This may be replaced when dependencies are built.
