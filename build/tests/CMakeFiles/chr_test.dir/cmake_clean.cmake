file(REMOVE_RECURSE
  "CMakeFiles/chr_test.dir/chr_test.cpp.o"
  "CMakeFiles/chr_test.dir/chr_test.cpp.o.d"
  "chr_test"
  "chr_test.pdb"
  "chr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
