file(REMOVE_RECURSE
  "CMakeFiles/day_capture_test.dir/day_capture_test.cpp.o"
  "CMakeFiles/day_capture_test.dir/day_capture_test.cpp.o.d"
  "day_capture_test"
  "day_capture_test.pdb"
  "day_capture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/day_capture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
