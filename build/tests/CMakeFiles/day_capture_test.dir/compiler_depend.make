# Empty compiler generated dependencies file for day_capture_test.
# This may be replaced when dependencies are built.
