file(REMOVE_RECURSE
  "CMakeFiles/lad_tree_test.dir/lad_tree_test.cpp.o"
  "CMakeFiles/lad_tree_test.dir/lad_tree_test.cpp.o.d"
  "lad_tree_test"
  "lad_tree_test.pdb"
  "lad_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lad_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
