# Empty dependencies file for lad_tree_test.
# This may be replaced when dependencies are built.
