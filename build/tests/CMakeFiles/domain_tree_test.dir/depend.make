# Empty dependencies file for domain_tree_test.
# This may be replaced when dependencies are built.
