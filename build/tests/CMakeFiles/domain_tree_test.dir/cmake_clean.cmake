file(REMOVE_RECURSE
  "CMakeFiles/domain_tree_test.dir/domain_tree_test.cpp.o"
  "CMakeFiles/domain_tree_test.dir/domain_tree_test.cpp.o.d"
  "domain_tree_test"
  "domain_tree_test.pdb"
  "domain_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
