file(REMOVE_RECURSE
  "CMakeFiles/mine_pcap.dir/mine_pcap.cpp.o"
  "CMakeFiles/mine_pcap.dir/mine_pcap.cpp.o.d"
  "mine_pcap"
  "mine_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mine_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
