# Empty dependencies file for mine_pcap.
# This may be replaced when dependencies are built.
