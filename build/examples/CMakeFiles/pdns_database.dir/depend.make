# Empty dependencies file for pdns_database.
# This may be replaced when dependencies are built.
