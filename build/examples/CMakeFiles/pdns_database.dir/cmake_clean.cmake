file(REMOVE_RECURSE
  "CMakeFiles/pdns_database.dir/pdns_database.cpp.o"
  "CMakeFiles/pdns_database.dir/pdns_database.cpp.o.d"
  "pdns_database"
  "pdns_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdns_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
