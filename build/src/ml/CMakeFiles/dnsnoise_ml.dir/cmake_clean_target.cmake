file(REMOVE_RECURSE
  "libdnsnoise_ml.a"
)
