# Empty compiler generated dependencies file for dnsnoise_ml.
# This may be replaced when dependencies are built.
