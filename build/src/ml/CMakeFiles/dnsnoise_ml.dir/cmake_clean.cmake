file(REMOVE_RECURSE
  "CMakeFiles/dnsnoise_ml.dir/baselines.cc.o"
  "CMakeFiles/dnsnoise_ml.dir/baselines.cc.o.d"
  "CMakeFiles/dnsnoise_ml.dir/eval.cc.o"
  "CMakeFiles/dnsnoise_ml.dir/eval.cc.o.d"
  "CMakeFiles/dnsnoise_ml.dir/lad_tree.cc.o"
  "CMakeFiles/dnsnoise_ml.dir/lad_tree.cc.o.d"
  "libdnsnoise_ml.a"
  "libdnsnoise_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsnoise_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
