
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/baselines.cc" "src/ml/CMakeFiles/dnsnoise_ml.dir/baselines.cc.o" "gcc" "src/ml/CMakeFiles/dnsnoise_ml.dir/baselines.cc.o.d"
  "/root/repo/src/ml/eval.cc" "src/ml/CMakeFiles/dnsnoise_ml.dir/eval.cc.o" "gcc" "src/ml/CMakeFiles/dnsnoise_ml.dir/eval.cc.o.d"
  "/root/repo/src/ml/lad_tree.cc" "src/ml/CMakeFiles/dnsnoise_ml.dir/lad_tree.cc.o" "gcc" "src/ml/CMakeFiles/dnsnoise_ml.dir/lad_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dnsnoise_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
