file(REMOVE_RECURSE
  "libdnsnoise_miner.a"
)
