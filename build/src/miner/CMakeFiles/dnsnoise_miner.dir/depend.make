# Empty dependencies file for dnsnoise_miner.
# This may be replaced when dependencies are built.
