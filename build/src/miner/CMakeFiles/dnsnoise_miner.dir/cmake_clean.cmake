file(REMOVE_RECURSE
  "CMakeFiles/dnsnoise_miner.dir/algorithm1.cc.o"
  "CMakeFiles/dnsnoise_miner.dir/algorithm1.cc.o.d"
  "CMakeFiles/dnsnoise_miner.dir/day_capture.cc.o"
  "CMakeFiles/dnsnoise_miner.dir/day_capture.cc.o.d"
  "CMakeFiles/dnsnoise_miner.dir/evaluate.cc.o"
  "CMakeFiles/dnsnoise_miner.dir/evaluate.cc.o.d"
  "CMakeFiles/dnsnoise_miner.dir/labeler.cc.o"
  "CMakeFiles/dnsnoise_miner.dir/labeler.cc.o.d"
  "CMakeFiles/dnsnoise_miner.dir/pipeline.cc.o"
  "CMakeFiles/dnsnoise_miner.dir/pipeline.cc.o.d"
  "libdnsnoise_miner.a"
  "libdnsnoise_miner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsnoise_miner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
