# Empty dependencies file for dnsnoise_netio.
# This may be replaced when dependencies are built.
