file(REMOVE_RECURSE
  "libdnsnoise_netio.a"
)
