file(REMOVE_RECURSE
  "CMakeFiles/dnsnoise_netio.dir/capture.cc.o"
  "CMakeFiles/dnsnoise_netio.dir/capture.cc.o.d"
  "CMakeFiles/dnsnoise_netio.dir/packet.cc.o"
  "CMakeFiles/dnsnoise_netio.dir/packet.cc.o.d"
  "CMakeFiles/dnsnoise_netio.dir/pcap.cc.o"
  "CMakeFiles/dnsnoise_netio.dir/pcap.cc.o.d"
  "libdnsnoise_netio.a"
  "libdnsnoise_netio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsnoise_netio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
