
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netio/capture.cc" "src/netio/CMakeFiles/dnsnoise_netio.dir/capture.cc.o" "gcc" "src/netio/CMakeFiles/dnsnoise_netio.dir/capture.cc.o.d"
  "/root/repo/src/netio/packet.cc" "src/netio/CMakeFiles/dnsnoise_netio.dir/packet.cc.o" "gcc" "src/netio/CMakeFiles/dnsnoise_netio.dir/packet.cc.o.d"
  "/root/repo/src/netio/pcap.cc" "src/netio/CMakeFiles/dnsnoise_netio.dir/pcap.cc.o" "gcc" "src/netio/CMakeFiles/dnsnoise_netio.dir/pcap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/dnsnoise_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnsnoise_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
