# Empty dependencies file for dnsnoise_analytics.
# This may be replaced when dependencies are built.
