file(REMOVE_RECURSE
  "CMakeFiles/dnsnoise_analytics.dir/measurements.cc.o"
  "CMakeFiles/dnsnoise_analytics.dir/measurements.cc.o.d"
  "CMakeFiles/dnsnoise_analytics.dir/related_work.cc.o"
  "CMakeFiles/dnsnoise_analytics.dir/related_work.cc.o.d"
  "libdnsnoise_analytics.a"
  "libdnsnoise_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsnoise_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
