file(REMOVE_RECURSE
  "libdnsnoise_analytics.a"
)
