# Empty dependencies file for dnsnoise_features.
# This may be replaced when dependencies are built.
