
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/chr.cc" "src/features/CMakeFiles/dnsnoise_features.dir/chr.cc.o" "gcc" "src/features/CMakeFiles/dnsnoise_features.dir/chr.cc.o.d"
  "/root/repo/src/features/domain_tree.cc" "src/features/CMakeFiles/dnsnoise_features.dir/domain_tree.cc.o" "gcc" "src/features/CMakeFiles/dnsnoise_features.dir/domain_tree.cc.o.d"
  "/root/repo/src/features/extractor.cc" "src/features/CMakeFiles/dnsnoise_features.dir/extractor.cc.o" "gcc" "src/features/CMakeFiles/dnsnoise_features.dir/extractor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/dnsnoise_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnsnoise_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
