file(REMOVE_RECURSE
  "libdnsnoise_features.a"
)
