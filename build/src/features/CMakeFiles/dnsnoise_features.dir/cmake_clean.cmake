file(REMOVE_RECURSE
  "CMakeFiles/dnsnoise_features.dir/chr.cc.o"
  "CMakeFiles/dnsnoise_features.dir/chr.cc.o.d"
  "CMakeFiles/dnsnoise_features.dir/domain_tree.cc.o"
  "CMakeFiles/dnsnoise_features.dir/domain_tree.cc.o.d"
  "CMakeFiles/dnsnoise_features.dir/extractor.cc.o"
  "CMakeFiles/dnsnoise_features.dir/extractor.cc.o.d"
  "libdnsnoise_features.a"
  "libdnsnoise_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsnoise_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
