
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdns/fpdns.cc" "src/pdns/CMakeFiles/dnsnoise_pdns.dir/fpdns.cc.o" "gcc" "src/pdns/CMakeFiles/dnsnoise_pdns.dir/fpdns.cc.o.d"
  "/root/repo/src/pdns/pdns_db.cc" "src/pdns/CMakeFiles/dnsnoise_pdns.dir/pdns_db.cc.o" "gcc" "src/pdns/CMakeFiles/dnsnoise_pdns.dir/pdns_db.cc.o.d"
  "/root/repo/src/pdns/rpdns.cc" "src/pdns/CMakeFiles/dnsnoise_pdns.dir/rpdns.cc.o" "gcc" "src/pdns/CMakeFiles/dnsnoise_pdns.dir/rpdns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/dnsnoise_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnsnoise_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
