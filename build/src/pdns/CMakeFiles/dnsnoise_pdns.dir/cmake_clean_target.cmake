file(REMOVE_RECURSE
  "libdnsnoise_pdns.a"
)
