# Empty compiler generated dependencies file for dnsnoise_pdns.
# This may be replaced when dependencies are built.
