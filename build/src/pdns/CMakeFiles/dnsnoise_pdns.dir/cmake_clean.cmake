file(REMOVE_RECURSE
  "CMakeFiles/dnsnoise_pdns.dir/fpdns.cc.o"
  "CMakeFiles/dnsnoise_pdns.dir/fpdns.cc.o.d"
  "CMakeFiles/dnsnoise_pdns.dir/pdns_db.cc.o"
  "CMakeFiles/dnsnoise_pdns.dir/pdns_db.cc.o.d"
  "CMakeFiles/dnsnoise_pdns.dir/rpdns.cc.o"
  "CMakeFiles/dnsnoise_pdns.dir/rpdns.cc.o.d"
  "libdnsnoise_pdns.a"
  "libdnsnoise_pdns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsnoise_pdns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
