file(REMOVE_RECURSE
  "CMakeFiles/dnsnoise_resolver.dir/authority.cc.o"
  "CMakeFiles/dnsnoise_resolver.dir/authority.cc.o.d"
  "CMakeFiles/dnsnoise_resolver.dir/cluster.cc.o"
  "CMakeFiles/dnsnoise_resolver.dir/cluster.cc.o.d"
  "CMakeFiles/dnsnoise_resolver.dir/dns_cache.cc.o"
  "CMakeFiles/dnsnoise_resolver.dir/dns_cache.cc.o.d"
  "libdnsnoise_resolver.a"
  "libdnsnoise_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsnoise_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
