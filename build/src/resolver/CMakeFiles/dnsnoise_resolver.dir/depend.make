# Empty dependencies file for dnsnoise_resolver.
# This may be replaced when dependencies are built.
