file(REMOVE_RECURSE
  "libdnsnoise_resolver.a"
)
