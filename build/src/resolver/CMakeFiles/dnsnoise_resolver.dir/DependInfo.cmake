
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resolver/authority.cc" "src/resolver/CMakeFiles/dnsnoise_resolver.dir/authority.cc.o" "gcc" "src/resolver/CMakeFiles/dnsnoise_resolver.dir/authority.cc.o.d"
  "/root/repo/src/resolver/cluster.cc" "src/resolver/CMakeFiles/dnsnoise_resolver.dir/cluster.cc.o" "gcc" "src/resolver/CMakeFiles/dnsnoise_resolver.dir/cluster.cc.o.d"
  "/root/repo/src/resolver/dns_cache.cc" "src/resolver/CMakeFiles/dnsnoise_resolver.dir/dns_cache.cc.o" "gcc" "src/resolver/CMakeFiles/dnsnoise_resolver.dir/dns_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/dnsnoise_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnsnoise_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
