file(REMOVE_RECURSE
  "libdnsnoise_dns.a"
)
