# Empty dependencies file for dnsnoise_dns.
# This may be replaced when dependencies are built.
