file(REMOVE_RECURSE
  "CMakeFiles/dnsnoise_dns.dir/ip.cc.o"
  "CMakeFiles/dnsnoise_dns.dir/ip.cc.o.d"
  "CMakeFiles/dnsnoise_dns.dir/message.cc.o"
  "CMakeFiles/dnsnoise_dns.dir/message.cc.o.d"
  "CMakeFiles/dnsnoise_dns.dir/name.cc.o"
  "CMakeFiles/dnsnoise_dns.dir/name.cc.o.d"
  "CMakeFiles/dnsnoise_dns.dir/public_suffix.cc.o"
  "CMakeFiles/dnsnoise_dns.dir/public_suffix.cc.o.d"
  "CMakeFiles/dnsnoise_dns.dir/rr.cc.o"
  "CMakeFiles/dnsnoise_dns.dir/rr.cc.o.d"
  "CMakeFiles/dnsnoise_dns.dir/wire.cc.o"
  "CMakeFiles/dnsnoise_dns.dir/wire.cc.o.d"
  "libdnsnoise_dns.a"
  "libdnsnoise_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsnoise_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
