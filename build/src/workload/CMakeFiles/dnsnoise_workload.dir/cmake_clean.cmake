file(REMOVE_RECURSE
  "CMakeFiles/dnsnoise_workload.dir/label_gen.cc.o"
  "CMakeFiles/dnsnoise_workload.dir/label_gen.cc.o.d"
  "CMakeFiles/dnsnoise_workload.dir/scenario.cc.o"
  "CMakeFiles/dnsnoise_workload.dir/scenario.cc.o.d"
  "CMakeFiles/dnsnoise_workload.dir/traffic_gen.cc.o"
  "CMakeFiles/dnsnoise_workload.dir/traffic_gen.cc.o.d"
  "CMakeFiles/dnsnoise_workload.dir/zone_model.cc.o"
  "CMakeFiles/dnsnoise_workload.dir/zone_model.cc.o.d"
  "libdnsnoise_workload.a"
  "libdnsnoise_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsnoise_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
