
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/label_gen.cc" "src/workload/CMakeFiles/dnsnoise_workload.dir/label_gen.cc.o" "gcc" "src/workload/CMakeFiles/dnsnoise_workload.dir/label_gen.cc.o.d"
  "/root/repo/src/workload/scenario.cc" "src/workload/CMakeFiles/dnsnoise_workload.dir/scenario.cc.o" "gcc" "src/workload/CMakeFiles/dnsnoise_workload.dir/scenario.cc.o.d"
  "/root/repo/src/workload/traffic_gen.cc" "src/workload/CMakeFiles/dnsnoise_workload.dir/traffic_gen.cc.o" "gcc" "src/workload/CMakeFiles/dnsnoise_workload.dir/traffic_gen.cc.o.d"
  "/root/repo/src/workload/zone_model.cc" "src/workload/CMakeFiles/dnsnoise_workload.dir/zone_model.cc.o" "gcc" "src/workload/CMakeFiles/dnsnoise_workload.dir/zone_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resolver/CMakeFiles/dnsnoise_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dnsnoise_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnsnoise_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
