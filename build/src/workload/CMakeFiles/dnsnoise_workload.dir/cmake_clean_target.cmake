file(REMOVE_RECURSE
  "libdnsnoise_workload.a"
)
