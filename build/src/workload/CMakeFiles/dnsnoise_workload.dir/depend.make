# Empty dependencies file for dnsnoise_workload.
# This may be replaced when dependencies are built.
