file(REMOVE_RECURSE
  "CMakeFiles/dnsnoise_util.dir/entropy.cc.o"
  "CMakeFiles/dnsnoise_util.dir/entropy.cc.o.d"
  "CMakeFiles/dnsnoise_util.dir/histogram.cc.o"
  "CMakeFiles/dnsnoise_util.dir/histogram.cc.o.d"
  "CMakeFiles/dnsnoise_util.dir/rng.cc.o"
  "CMakeFiles/dnsnoise_util.dir/rng.cc.o.d"
  "CMakeFiles/dnsnoise_util.dir/stats.cc.o"
  "CMakeFiles/dnsnoise_util.dir/stats.cc.o.d"
  "CMakeFiles/dnsnoise_util.dir/strings.cc.o"
  "CMakeFiles/dnsnoise_util.dir/strings.cc.o.d"
  "CMakeFiles/dnsnoise_util.dir/table.cc.o"
  "CMakeFiles/dnsnoise_util.dir/table.cc.o.d"
  "CMakeFiles/dnsnoise_util.dir/zipf.cc.o"
  "CMakeFiles/dnsnoise_util.dir/zipf.cc.o.d"
  "libdnsnoise_util.a"
  "libdnsnoise_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsnoise_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
