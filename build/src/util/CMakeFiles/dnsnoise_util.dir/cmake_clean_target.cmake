file(REMOVE_RECURSE
  "libdnsnoise_util.a"
)
