# Empty dependencies file for dnsnoise_util.
# This may be replaced when dependencies are built.
