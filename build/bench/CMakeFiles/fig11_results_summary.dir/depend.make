# Empty dependencies file for fig11_results_summary.
# This may be replaced when dependencies are built.
