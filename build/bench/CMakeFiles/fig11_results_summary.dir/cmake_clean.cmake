file(REMOVE_RECURSE
  "CMakeFiles/fig11_results_summary.dir/fig11_results_summary.cpp.o"
  "CMakeFiles/fig11_results_summary.dir/fig11_results_summary.cpp.o.d"
  "fig11_results_summary"
  "fig11_results_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_results_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
