# Empty compiler generated dependencies file for related_work_analyses.
# This may be replaced when dependencies are built.
