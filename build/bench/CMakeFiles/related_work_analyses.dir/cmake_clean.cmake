file(REMOVE_RECURSE
  "CMakeFiles/related_work_analyses.dir/related_work_analyses.cpp.o"
  "CMakeFiles/related_work_analyses.dir/related_work_analyses.cpp.o.d"
  "related_work_analyses"
  "related_work_analyses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_work_analyses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
