# Empty dependencies file for sec6a_cache_impact.
# This may be replaced when dependencies are built.
