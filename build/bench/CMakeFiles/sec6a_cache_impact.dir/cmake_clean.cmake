file(REMOVE_RECURSE
  "CMakeFiles/sec6a_cache_impact.dir/sec6a_cache_impact.cpp.o"
  "CMakeFiles/sec6a_cache_impact.dir/sec6a_cache_impact.cpp.o.d"
  "sec6a_cache_impact"
  "sec6a_cache_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6a_cache_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
