file(REMOVE_RECURSE
  "CMakeFiles/fig15_pdns_growth.dir/fig15_pdns_growth.cpp.o"
  "CMakeFiles/fig15_pdns_growth.dir/fig15_pdns_growth.cpp.o.d"
  "fig15_pdns_growth"
  "fig15_pdns_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_pdns_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
