# Empty dependencies file for fig15_pdns_growth.
# This may be replaced when dependencies are built.
