file(REMOVE_RECURSE
  "CMakeFiles/fig03_long_tail.dir/fig03_long_tail.cpp.o"
  "CMakeFiles/fig03_long_tail.dir/fig03_long_tail.cpp.o.d"
  "fig03_long_tail"
  "fig03_long_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_long_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
