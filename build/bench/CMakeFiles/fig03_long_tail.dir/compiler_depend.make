# Empty compiler generated dependencies file for fig03_long_tail.
# This may be replaced when dependencies are built.
