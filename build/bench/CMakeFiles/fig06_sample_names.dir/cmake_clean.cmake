file(REMOVE_RECURSE
  "CMakeFiles/fig06_sample_names.dir/fig06_sample_names.cpp.o"
  "CMakeFiles/fig06_sample_names.dir/fig06_sample_names.cpp.o.d"
  "fig06_sample_names"
  "fig06_sample_names.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_sample_names.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
