# Empty compiler generated dependencies file for fig06_sample_names.
# This may be replaced when dependencies are built.
