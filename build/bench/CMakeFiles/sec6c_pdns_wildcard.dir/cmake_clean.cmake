file(REMOVE_RECURSE
  "CMakeFiles/sec6c_pdns_wildcard.dir/sec6c_pdns_wildcard.cpp.o"
  "CMakeFiles/sec6c_pdns_wildcard.dir/sec6c_pdns_wildcard.cpp.o.d"
  "sec6c_pdns_wildcard"
  "sec6c_pdns_wildcard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6c_pdns_wildcard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
