# Empty dependencies file for sec6c_pdns_wildcard.
# This may be replaced when dependencies are built.
