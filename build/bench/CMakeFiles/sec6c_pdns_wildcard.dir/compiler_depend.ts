# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sec6c_pdns_wildcard.
