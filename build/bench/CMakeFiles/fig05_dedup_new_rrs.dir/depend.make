# Empty dependencies file for fig05_dedup_new_rrs.
# This may be replaced when dependencies are built.
