file(REMOVE_RECURSE
  "CMakeFiles/fig05_dedup_new_rrs.dir/fig05_dedup_new_rrs.cpp.o"
  "CMakeFiles/fig05_dedup_new_rrs.dir/fig05_dedup_new_rrs.cpp.o.d"
  "fig05_dedup_new_rrs"
  "fig05_dedup_new_rrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_dedup_new_rrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
