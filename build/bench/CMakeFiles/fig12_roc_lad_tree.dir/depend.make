# Empty dependencies file for fig12_roc_lad_tree.
# This may be replaced when dependencies are built.
