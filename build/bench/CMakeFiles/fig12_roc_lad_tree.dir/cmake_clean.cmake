file(REMOVE_RECURSE
  "CMakeFiles/fig12_roc_lad_tree.dir/fig12_roc_lad_tree.cpp.o"
  "CMakeFiles/fig12_roc_lad_tree.dir/fig12_roc_lad_tree.cpp.o.d"
  "fig12_roc_lad_tree"
  "fig12_roc_lad_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_roc_lad_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
