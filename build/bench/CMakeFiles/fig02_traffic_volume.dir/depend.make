# Empty dependencies file for fig02_traffic_volume.
# This may be replaced when dependencies are built.
