file(REMOVE_RECURSE
  "CMakeFiles/fig02_traffic_volume.dir/fig02_traffic_volume.cpp.o"
  "CMakeFiles/fig02_traffic_volume.dir/fig02_traffic_volume.cpp.o.d"
  "fig02_traffic_volume"
  "fig02_traffic_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_traffic_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
