# Empty compiler generated dependencies file for table2_dhr_tail.
# This may be replaced when dependencies are built.
