file(REMOVE_RECURSE
  "CMakeFiles/table2_dhr_tail.dir/table2_dhr_tail.cpp.o"
  "CMakeFiles/table2_dhr_tail.dir/table2_dhr_tail.cpp.o.d"
  "table2_dhr_tail"
  "table2_dhr_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dhr_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
