file(REMOVE_RECURSE
  "CMakeFiles/fig04_chr_distribution.dir/fig04_chr_distribution.cpp.o"
  "CMakeFiles/fig04_chr_distribution.dir/fig04_chr_distribution.cpp.o.d"
  "fig04_chr_distribution"
  "fig04_chr_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_chr_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
