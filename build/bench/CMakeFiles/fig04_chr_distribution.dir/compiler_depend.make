# Empty compiler generated dependencies file for fig04_chr_distribution.
# This may be replaced when dependencies are built.
