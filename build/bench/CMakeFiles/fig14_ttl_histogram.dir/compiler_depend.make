# Empty compiler generated dependencies file for fig14_ttl_histogram.
# This may be replaced when dependencies are built.
