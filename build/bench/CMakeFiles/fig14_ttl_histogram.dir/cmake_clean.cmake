file(REMOVE_RECURSE
  "CMakeFiles/fig14_ttl_histogram.dir/fig14_ttl_histogram.cpp.o"
  "CMakeFiles/fig14_ttl_histogram.dir/fig14_ttl_histogram.cpp.o.d"
  "fig14_ttl_histogram"
  "fig14_ttl_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_ttl_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
