# Empty compiler generated dependencies file for sec6b_dnssec_cost.
# This may be replaced when dependencies are built.
