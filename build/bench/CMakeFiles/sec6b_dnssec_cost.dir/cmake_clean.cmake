file(REMOVE_RECURSE
  "CMakeFiles/sec6b_dnssec_cost.dir/sec6b_dnssec_cost.cpp.o"
  "CMakeFiles/sec6b_dnssec_cost.dir/sec6b_dnssec_cost.cpp.o.d"
  "sec6b_dnssec_cost"
  "sec6b_dnssec_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6b_dnssec_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
