# Empty dependencies file for table1_lookup_tail.
# This may be replaced when dependencies are built.
