file(REMOVE_RECURSE
  "CMakeFiles/table1_lookup_tail.dir/table1_lookup_tail.cpp.o"
  "CMakeFiles/table1_lookup_tail.dir/table1_lookup_tail.cpp.o.d"
  "table1_lookup_tail"
  "table1_lookup_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_lookup_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
