file(REMOVE_RECURSE
  "CMakeFiles/fig13_growth.dir/fig13_growth.cpp.o"
  "CMakeFiles/fig13_growth.dir/fig13_growth.cpp.o.d"
  "fig13_growth"
  "fig13_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
