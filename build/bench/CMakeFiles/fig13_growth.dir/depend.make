# Empty dependencies file for fig13_growth.
# This may be replaced when dependencies are built.
