# Empty compiler generated dependencies file for fig07_chr_labeled.
# This may be replaced when dependencies are built.
