file(REMOVE_RECURSE
  "CMakeFiles/fig07_chr_labeled.dir/fig07_chr_labeled.cpp.o"
  "CMakeFiles/fig07_chr_labeled.dir/fig07_chr_labeled.cpp.o.d"
  "fig07_chr_labeled"
  "fig07_chr_labeled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_chr_labeled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
