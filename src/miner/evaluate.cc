#include "miner/evaluate.h"

namespace dnsnoise {

FindingIndex::FindingIndex(std::span<const DisposableZoneFinding> findings) {
  for (const DisposableZoneFinding& finding : findings) {
    rules_[finding.zone].insert(finding.depth);
    ++count_;
  }
}

bool FindingIndex::is_disposable(const DomainName& name) const {
  const std::size_t depth = name.label_count();
  for (std::size_t k = depth - 1; k >= 1; --k) {
    const auto it = rules_.find(std::string(name.nld_view(k)));
    if (it != rules_.end() && it->second.contains(depth)) return true;
    if (k == 1) break;
  }
  return false;
}

MiningEvaluation evaluate_findings(
    std::span<const DisposableZoneFinding> findings, const GroundTruth& truth,
    const PublicSuffixList& psl) {
  MiningEvaluation eval;
  eval.findings = findings.size();

  std::unordered_set<std::string> unique_2lds;
  std::unordered_set<std::string> discovered;
  std::unordered_map<std::string, std::string> archetype_of;
  for (const DisposableZoneFinding& finding : findings) {
    const auto zone = DomainName::parse(finding.zone);
    if (zone) {
      const DomainName registrable = psl.registrable_domain(*zone);
      unique_2lds.insert(registrable.empty() ? finding.zone
                                             : registrable.text());
    }
    bool matched = false;
    for (const GroundTruth::ZoneInfo& info : truth.disposable_zones) {
      if (info.name_depth != finding.depth) continue;
      const auto apex = DomainName::parse(info.apex);
      if (!apex || !zone) continue;
      if (apex->is_within(*zone) || zone->is_within(*apex)) {
        matched = true;
        discovered.insert(info.apex);
        archetype_of[info.apex] = info.archetype;
      }
    }
    matched ? ++eval.true_positive_findings : ++eval.false_positive_findings;
  }
  eval.unique_2lds = unique_2lds.size();
  eval.truth_zones_discovered = discovered.size();
  for (const std::string& apex : discovered) {
    ++eval.discovered_by_archetype[archetype_of[apex]];
  }
  return eval;
}

}  // namespace dnsnoise
