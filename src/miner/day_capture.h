// DayCapture: the monitoring tap of one simulated day.
//
// Subscribes to an RdnsCluster's batched tap stream (TapObserver) and
// accumulates everything the paper's analyses need for that day: the domain
// name tree of resolved names, per-RR cache-hit-rate counts, hourly
// traffic-volume series with tenant attribution (Fig. 2), unique
// queried/resolved name sets, and optionally the raw fpDNS entries and
// rpDNS/pDNS-DB feeds.  Captures are mergeable: the sharded engine runs one
// DayCapture per RDNS-server shard and unions them (see merge_from).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_set>

#include "features/chr.h"
#include "features/domain_tree.h"
#include "pdns/fpdns.h"
#include "pdns/rpdns.h"
#include "resolver/cluster.h"
#include "resolver/tap.h"
#include "util/sim_time.h"

namespace dnsnoise {

/// Hourly volume counters for one stream (24 slots).
struct HourlySeries {
  std::array<std::uint64_t, 24> total{};
  std::array<std::uint64_t, 24> nxdomain{};
  std::array<std::uint64_t, 24> google{};
  std::array<std::uint64_t, 24> akamai{};

  std::uint64_t sum_total() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : total) sum += v;
    return sum;
  }
  std::uint64_t sum_nxdomain() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : nxdomain) sum += v;
    return sum;
  }

  /// Slot-wise addition (shard merging).
  HourlySeries& operator+=(const HourlySeries& other) noexcept {
    for (std::size_t h = 0; h < 24; ++h) {
      total[h] += other.total[h];
      nxdomain[h] += other.nxdomain[h];
      google[h] += other.google[h];
      akamai[h] += other.akamai[h];
    }
    return *this;
  }
};

struct DayCaptureConfig {
  bool keep_fpdns = false;       // store raw fpDNS entries (memory-heavy)
  bool feed_rpdns = false;       // deduplicate into the rpDNS dataset
  std::int64_t day_index = 0;    // used for rpDNS first-seen dates
};

class DayCapture final : public TapObserver {
 public:
  explicit DayCapture(const DayCaptureConfig& config = {});

  /// Subscribes this capture to the cluster's batched tap stream.  The
  /// capture must stay registered-valid until detach() (or the cluster is
  /// destroyed, which flushes to it).
  void attach(RdnsCluster& cluster);

  /// Flushes pending cluster batches to this capture and unsubscribes.
  void detach(RdnsCluster& cluster);

  /// TapObserver: dispatches each batched event into the per-direction
  /// accumulators below.
  void on_tap_batch(const TapBatch& batch) override;

  /// Direct sink entry points (exposed for pcap-driven ingestion paths).
  void on_below(SimTime ts, std::uint64_t client_id, const Question& question,
                RCode rcode, std::span<const ResourceRecord> answers);
  void on_above(SimTime ts, const Question& question, RCode rcode,
                std::span<const ResourceRecord> answers);

  /// Advances to a new day.  This is the ONE reset point of a capture:
  /// clears all per-day state (tree, CHR, hourly series, name sets, fpDNS
  /// entries) but keeps the cumulative cross-day rpDNS store.  Every
  /// simulate/run entry point calls this before feeding a day.
  void start_day(std::int64_t day_index);

  /// Unions another capture of the SAME day into this one: domain-tree
  /// union, CHR count summation, hourly-series addition, name-set union,
  /// fpDNS append, rpDNS first-seen merge.  Merging shard captures in shard
  /// order yields a deterministic result regardless of how many threads
  /// produced them.
  void merge_from(const DayCapture& other);

  DomainNameTree& tree() noexcept { return tree_; }
  const DomainNameTree& tree() const noexcept { return tree_; }
  CacheHitRateTracker& chr() noexcept { return chr_; }
  const CacheHitRateTracker& chr() const noexcept { return chr_; }
  RpDnsDataset& rpdns() noexcept { return rpdns_; }
  const RpDnsDataset& rpdns() const noexcept { return rpdns_; }
  FpDnsDataset& fpdns() noexcept { return fpdns_; }
  const FpDnsDataset& fpdns() const noexcept { return fpdns_; }

  const HourlySeries& below_series() const noexcept { return below_; }
  const HourlySeries& above_series() const noexcept { return above_; }

  /// Unique names queried below (successful or not) this day.
  std::size_t unique_queried() const noexcept { return queried_.size(); }
  /// Unique names successfully resolved this day.
  std::size_t unique_resolved() const noexcept { return resolved_.size(); }

  const std::unordered_set<std::string>& queried_names() const noexcept {
    return queried_;
  }
  const std::unordered_set<std::string>& resolved_names() const noexcept {
    return resolved_;
  }

 private:
  DayCaptureConfig config_;
  DomainNameTree tree_;
  CacheHitRateTracker chr_;
  RpDnsDataset rpdns_;
  FpDnsDataset fpdns_;
  HourlySeries below_;
  HourlySeries above_;
  std::unordered_set<std::string> queried_;
  std::unordered_set<std::string> resolved_;

  static void bump(HourlySeries& series, SimTime ts, std::uint64_t units,
                   bool nx, const DomainName& qname);
};

}  // namespace dnsnoise
