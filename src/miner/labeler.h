// Training-set construction (paper Section IV-B / V-B2).
//
// The paper hand-labeled 398 zones as disposable and 401 Alexa-top-1000
// 2LDs as non-disposable, keeping only zones with at least 15 observed
// disposable names.  Here labels come from the scenario's ground truth; an
// optional label-noise knob models human labeling error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "features/chr.h"
#include "features/domain_tree.h"
#include "features/extractor.h"
#include "ml/dataset.h"
#include "workload/scenario.h"

namespace dnsnoise {

struct LabelerConfig {
  std::size_t disposable_zones = 398;
  std::size_t nondisposable_zones = 401;
  /// Minimum observed group size for a zone to be labeled (paper: 15).
  std::size_t min_group_size = 15;
  /// Probability of flipping a label (simulated human labeling error).
  double label_noise = 0.0;
  std::uint64_t seed = 99;
};

struct LabeledZone {
  std::string zone;
  std::size_t depth = 0;
  int label = 0;  // 1 = disposable
  GroupFeatures features;
};

/// Extracts labeled feature vectors from one day's capture.  Disposable
/// samples are the truth zones' generation-depth groups; non-disposable
/// samples are the popular zones' hostname groups.
std::vector<LabeledZone> label_zones(DomainNameTree& tree,
                                     const CacheHitRateTracker& chr,
                                     const Scenario& scenario,
                                     const LabelerConfig& config = {});

/// Packs labeled zones into an ml::Dataset (feature order = kFeatureNames).
Dataset to_dataset(const std::vector<LabeledZone>& zones);

}  // namespace dnsnoise
