#include "miner/labeler.h"

#include "util/rng.h"

namespace dnsnoise {

namespace {

/// Features of the group at `depth` under `zone_apex`, if it exists and is
/// large enough.
bool group_features_at(DomainNameTree& tree, const CacheHitRateTracker& chr,
                       const std::string& zone_apex, std::size_t depth,
                       std::size_t min_size, GroupFeatures& out) {
  const auto apex = DomainName::parse(zone_apex);
  if (!apex) return false;
  DomainNameTree::Node* node = tree.find(*apex);
  if (node == nullptr) return false;
  const auto groups = tree.black_descendants_by_depth(*node);
  const auto it = groups.find(depth);
  if (it == groups.end() || it->second.size() < min_size) return false;
  out = compute_group_features(it->second, node->depth, chr);
  return true;
}

}  // namespace

std::vector<LabeledZone> label_zones(DomainNameTree& tree,
                                     const CacheHitRateTracker& chr,
                                     const Scenario& scenario,
                                     const LabelerConfig& config) {
  Rng rng(config.seed);
  std::vector<LabeledZone> out;

  // Disposable class: truth zones at their generation depth, in traffic-
  // weight order (the analyst labels the zones they see the most of).
  for (const GroundTruth::ZoneInfo& info :
       scenario.truth().disposable_zones) {
    if (out.size() >= config.disposable_zones) break;
    LabeledZone zone;
    if (!group_features_at(tree, chr, info.apex, info.name_depth,
                           config.min_group_size, zone.features)) {
      continue;
    }
    zone.zone = info.apex;
    zone.depth = info.name_depth;
    zone.label = rng.chance(config.label_noise) ? 0 : 1;
    out.push_back(std::move(zone));
  }

  // Non-disposable class: the popular zones' hostname groups (one label
  // below the apex).  A smaller minimum applies — popular zones have tens,
  // not thousands, of hostnames.
  const std::size_t popular_min = 3;
  std::size_t negatives = 0;
  for (const std::string& apex : scenario.popular_apexes()) {
    if (negatives >= config.nondisposable_zones) break;
    const auto apex_name = DomainName::parse(apex);
    if (!apex_name) continue;
    LabeledZone zone;
    if (!group_features_at(tree, chr, apex, apex_name->label_count() + 1,
                           popular_min, zone.features)) {
      continue;
    }
    zone.zone = apex;
    zone.depth = apex_name->label_count() + 1;
    zone.label = rng.chance(config.label_noise) ? 1 : 0;
    out.push_back(std::move(zone));
    ++negatives;
  }
  return out;
}

Dataset to_dataset(const std::vector<LabeledZone>& zones) {
  Dataset data(kFeatureCount);
  for (const LabeledZone& zone : zones) {
    const auto features = zone.features.as_array();
    data.add(features, zone.label);
  }
  return data;
}

}  // namespace dnsnoise
