#include "miner/algorithm1.h"

#include <algorithm>

#include "obs/metrics.h"

namespace dnsnoise {

DisposableZoneMiner::DisposableZoneMiner(const BinaryClassifier& model,
                                         MinerConfig config)
    : model_(model), config_(config) {
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *config_.metrics;
    zones_visited_ = &metrics.counter("miner.zones_visited");
    groups_classified_ = &metrics.counter("miner.groups_classified");
    groups_decolored_ = &metrics.counter("miner.groups_decolored");
    names_decolored_ = &metrics.counter("miner.names_decolored");
    features_timer_ = &metrics.timer("miner.features");
  }
  if (config_.trace != nullptr) {
    trace_stream_ = &config_.trace->stream(obs::TraceStage::kMiner, 0);
  }
}

void DisposableZoneMiner::mine_zone(
    DomainNameTree& tree, DomainNameTree::Node& zone,
    const CacheHitRateTracker& chr,
    std::vector<DisposableZoneFinding>& out) const {
  // One span per top-level (effective-2LD) walk; the recursion below goes
  // through mine_zone_walk so subzones don't open nested spans.
  obs::TraceSpan zone_span(trace_stream_, config_.trace,
                           obs::TraceOp::kMinerZone);
  if (trace_stream_ != nullptr) {
    zone_span.annotate(DomainNameTree::full_name(zone), 0,
                       obs::TraceOutcome::kNone, zone.depth);
  }
  // One scratch per top-level walk: the extraction buffers' capacity
  // survives across every group of this zone subtree, and each parallel
  // worker owns its own mine_zone call (never shared across threads).
  GroupFeatureScratch scratch;
  mine_zone_walk(tree, zone, chr, out, scratch);
}

void DisposableZoneMiner::mine_zone_walk(
    DomainNameTree& tree, DomainNameTree::Node& zone,
    const CacheHitRateTracker& chr, std::vector<DisposableZoneFinding>& out,
    GroupFeatureScratch& scratch) const {
  if (zones_visited_ != nullptr) zones_visited_->add();

  // Line 1-3: stop when the zone has no black descendants.
  if (!DomainNameTree::has_black_descendant(zone)) return;

  // Line 4: group black descendants by depth.
  const auto groups = tree.black_descendants_by_depth(zone);

  // Lines 6-14: classify each group; decolor + output on a confident hit.
  for (const auto& [depth, nodes] : groups) {
    if (nodes.size() < config_.min_group_size) continue;
    GroupFeatures features;
    {
      const obs::StageTimer span(features_timer_);
      features = compute_group_features(nodes, zone.depth, chr, scratch);
    }
    if (groups_classified_ != nullptr) groups_classified_->add();
    if (trace_stream_ != nullptr) {
      trace_stream_->instant(obs::TraceOp::kMinerGroupClassify,
                             config_.trace->now_ns(), {}, nodes.size());
    }
    const double confidence = model_.predict_proba(features.as_array());
    if (confidence >= config_.threshold) {
      for (DomainNameTree::Node* node : nodes) tree.decolor(*node);
      if (groups_decolored_ != nullptr) {
        groups_decolored_->add();
        names_decolored_->add(nodes.size());
      }
      if (trace_stream_ != nullptr) {
        trace_stream_->instant(obs::TraceOp::kMinerDecolor,
                               config_.trace->now_ns(),
                               DomainNameTree::full_name(zone), nodes.size());
      }
      DisposableZoneFinding finding;
      finding.zone = DomainNameTree::full_name(zone);
      finding.depth = depth;
      finding.confidence = confidence;
      finding.group_size = nodes.size();
      finding.features = features;
      out.push_back(std::move(finding));
    }
  }

  // Lines 15-17: recurse into child zones (sorted = legacy map order).
  for (DomainNameTree::Node* child : zone.children()) {
    mine_zone_walk(tree, *child, chr, out, scratch);
  }
}

void DisposableZoneMiner::sort_findings(
    std::vector<DisposableZoneFinding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const DisposableZoneFinding& a, const DisposableZoneFinding& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.group_size != b.group_size) {
                return a.group_size > b.group_size;
              }
              if (a.zone != b.zone) return a.zone < b.zone;
              return a.depth < b.depth;
            });
}

std::vector<DisposableZoneFinding> DisposableZoneMiner::mine(
    DomainNameTree& tree, const CacheHitRateTracker& chr) const {
  std::vector<DisposableZoneFinding> out;
  for (DomainNameTree::Node* zone : tree.effective_2ld_nodes(*config_.psl)) {
    mine_zone(tree, *zone, chr, out);
  }
  sort_findings(out);
  return out;
}

}  // namespace dnsnoise
