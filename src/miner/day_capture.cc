#include "miner/day_capture.h"

#include "workload/scenario.h"

namespace dnsnoise {

DayCapture::DayCapture(const DayCaptureConfig& config) : config_(config) {}

void DayCapture::attach(RdnsCluster& cluster) { cluster.add_tap_observer(this); }

void DayCapture::detach(RdnsCluster& cluster) {
  cluster.remove_tap_observer(this);
}

void DayCapture::on_tap_batch(const TapBatch& batch) {
  for (const TapEvent& event : batch) {
    if (event.direction == TapDirection::kBelow) {
      on_below(event.ts, event.client_id, event.question, event.rcode,
               batch.answers(event));
    } else {
      on_above(event.ts, event.question, event.rcode, batch.answers(event));
    }
  }
}

void DayCapture::start_day(std::int64_t day_index) {
  config_.day_index = day_index;
  tree_ = DomainNameTree();
  chr_ = CacheHitRateTracker();
  below_ = HourlySeries();
  above_ = HourlySeries();
  queried_.clear();
  resolved_.clear();
  fpdns_.clear();
}

void DayCapture::merge_from(const DayCapture& other) {
  tree_.merge_from(other.tree_);
  chr_.merge_from(other.chr_);
  below_ += other.below_;
  above_ += other.above_;
  queried_.insert(other.queried_.begin(), other.queried_.end());
  resolved_.insert(other.resolved_.begin(), other.resolved_.end());
  fpdns_.append(other.fpdns_);
  rpdns_.merge_from(other.rpdns_);
}

void DayCapture::bump(HourlySeries& series, SimTime ts, std::uint64_t units,
                      bool nx, const DomainName& qname) {
  const auto hour = static_cast<std::size_t>(hour_of_day(ts));
  series.total[hour] += units;
  if (nx) series.nxdomain[hour] += units;
  if (Scenario::is_google_name(qname)) series.google[hour] += units;
  if (Scenario::is_akamai_name(qname)) series.akamai[hour] += units;
}

void DayCapture::on_below(SimTime ts, std::uint64_t client_id,
                          const Question& question, RCode rcode,
                          std::span<const ResourceRecord> answers) {
  const bool nx = rcode != RCode::NoError;
  const std::uint64_t units = nx || answers.empty()
                                  ? 1
                                  : static_cast<std::uint64_t>(answers.size());
  bump(below_, ts, units, nx, question.name);
  queried_.insert(question.name.text());
  if (config_.keep_fpdns) {
    fpdns_.add_response(ts, client_id, FpDirection::kBelow, question, rcode,
                        answers);
  }
  if (nx) return;
  for (const ResourceRecord& rr : answers) {
    chr_.record_below(rr.name.text(), rr.type, rr.rdata, rr.ttl);
    tree_.insert(rr.name);
    resolved_.insert(rr.name.text());
    if (config_.feed_rpdns) {
      rpdns_.add(RRKey(rr), config_.day_index);
    }
  }
}

void DayCapture::on_above(SimTime ts, const Question& question, RCode rcode,
                          std::span<const ResourceRecord> answers) {
  const bool nx = rcode != RCode::NoError;
  const std::uint64_t units = nx || answers.empty()
                                  ? 1
                                  : static_cast<std::uint64_t>(answers.size());
  bump(above_, ts, units, nx, question.name);
  if (config_.keep_fpdns) {
    fpdns_.add_response(ts, 0, FpDirection::kAbove, question, rcode, answers);
  }
  if (nx) return;
  for (const ResourceRecord& rr : answers) {
    chr_.record_above(rr.name.text(), rr.type, rr.rdata, rr.ttl);
  }
}

}  // namespace dnsnoise
