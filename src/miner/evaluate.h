// Mining-quality evaluation against the scenario's ground truth, plus the
// finding index used to attribute traffic to mined disposable zones.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dns/public_suffix.h"
#include "miner/algorithm1.h"
#include "workload/scenario.h"

namespace dnsnoise {

/// Fast "is this name covered by a mined (zone, depth) pair?" lookup.
class FindingIndex {
 public:
  explicit FindingIndex(std::span<const DisposableZoneFinding> findings);

  /// True when the name's depth and an enclosing zone match some finding.
  bool is_disposable(const DomainName& name) const;

  std::size_t size() const noexcept { return count_; }

 private:
  // zone text -> set of group depths.
  std::unordered_map<std::string, std::unordered_set<std::size_t>> rules_;
  std::size_t count_ = 0;
};

struct MiningEvaluation {
  std::size_t findings = 0;
  std::size_t true_positive_findings = 0;
  std::size_t false_positive_findings = 0;
  std::size_t unique_2lds = 0;           // distinct 2LDs among findings
  std::size_t truth_zones_discovered = 0;
  /// Discovered truth zones per archetype — the paper's "industries that
  /// use disposable domains" row (Fig. 11).
  std::unordered_map<std::string, std::size_t> discovered_by_archetype;

  double finding_precision() const noexcept {
    return findings == 0 ? 0.0
                         : static_cast<double>(true_positive_findings) /
                               static_cast<double>(findings);
  }
};

/// A finding (z, k) is a true positive when some truth zone generates names
/// of depth k and its apex is in an ancestor/descendant relation with z.
MiningEvaluation evaluate_findings(
    std::span<const DisposableZoneFinding> findings, const GroundTruth& truth,
    const PublicSuffixList& psl = PublicSuffixList::builtin());

}  // namespace dnsnoise
