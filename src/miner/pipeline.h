// End-to-end daily mining pipeline (paper Fig. 10): traffic -> RDNS cluster
// -> monitoring tap -> domain name tree + CHR -> classifier -> ranked
// disposable zones.  This is the orchestration the examples and benches
// build on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "miner/algorithm1.h"
#include "miner/day_capture.h"
#include "miner/evaluate.h"
#include "miner/labeler.h"
#include "ml/lad_tree.h"
#include "workload/scenario.h"

namespace dnsnoise {

struct PipelineOptions {
  ScenarioScale scale;
  ClusterConfig cluster;
  LabelerConfig labeler;
  MinerConfig miner;
  LadTreeConfig model;
  /// When set, run_mining_day mines with this already-trained classifier
  /// instead of training a fresh one from the day's labels — the paper's
  /// actual protocol (one model, applied across the 11-month campaign).
  /// Must outlive the call.
  const BinaryClassifier* pretrained = nullptr;
  /// Run a reduced-volume warmup day first so caches reach steady state.
  bool warmup = true;
  double warmup_volume_fraction = 0.5;
  DayCaptureConfig capture;
};

/// Per-date aggregates used by the growth figures (Fig. 13, Tables I/II).
struct DayAggregates {
  std::size_t unique_queried = 0;
  std::size_t unique_resolved = 0;
  std::size_t unique_rrs = 0;
  std::size_t disposable_queried = 0;   // per mined findings
  std::size_t disposable_resolved = 0;
  std::size_t disposable_rrs = 0;
};

struct MiningDayResult {
  std::vector<LabeledZone> labeled;
  std::vector<DisposableZoneFinding> findings;
  MiningEvaluation evaluation;
  DayAggregates aggregates;
};

/// Runs one full mining day for `date`: simulate, label, train a fresh LAD
/// tree, run Algorithm 1, evaluate against ground truth, and compute the
/// day's disposable-share aggregates.  `capture`, when provided, receives
/// the day's tap data for further analysis (it is start_day()-reset first).
MiningDayResult run_mining_day(ScenarioDate date,
                               const PipelineOptions& options = {},
                               DayCapture* capture = nullptr);

/// Simulates one day of `scenario` traffic into `capture` (with optional
/// warmup day at reduced volume), without mining.  Returns the cluster's
/// aggregate cache stats.
DnsCacheStats simulate_day(Scenario& scenario, DayCapture& capture,
                           const PipelineOptions& options,
                           std::int64_t day_index);

}  // namespace dnsnoise
