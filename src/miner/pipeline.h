// End-to-end daily mining pipeline (paper Fig. 10): traffic -> RDNS cluster
// -> monitoring tap -> domain name tree + CHR -> classifier -> ranked
// disposable zones.  This is the orchestration the examples and benches
// build on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "miner/algorithm1.h"
#include "miner/day_capture.h"
#include "miner/evaluate.h"
#include "miner/labeler.h"
#include "ml/lad_tree.h"
#include "workload/scenario.h"

namespace dnsnoise::obs {
class MetricsRegistry;
class TraceCollector;
class TrafficSketchPlane;
}  // namespace dnsnoise::obs

namespace dnsnoise {

struct PipelineOptions {
  ScenarioScale scale;
  ClusterConfig cluster;
  LabelerConfig labeler;
  MinerConfig miner;
  LadTreeConfig model;
  /// When set, run_mining_day mines with this already-trained classifier
  /// instead of training a fresh one from the day's labels — the paper's
  /// actual protocol (one model, applied across the 11-month campaign).
  /// Must outlive the call.
  const BinaryClassifier* pretrained = nullptr;
  /// Run a reduced-volume warmup day first so caches reach steady state.
  bool warmup = true;
  double warmup_volume_fraction = 0.5;
  DayCaptureConfig capture;
  /// Opt-in observability sink (DESIGN.md §10): when set, every pipeline
  /// stage — workload generation, the RDNS cluster, the miner stages — is
  /// instrumented into this registry, and the final snapshot lands in
  /// MiningDayResult::metrics_json.  Must outlive the run.  Null (the
  /// default) disables all instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
  /// Opt-in event tracing (DESIGN.md §12): when set, every stage records
  /// spans/instants into this collector — head-sampled workload/cluster
  /// per-query spans plus the miner stage spans — and the final trace
  /// snapshot lands in MiningDayResult::trace_json
  /// (schema dnsnoise-trace-v1, obs/trace_export.h).  Must outlive the
  /// run.  Null (the default) disables all tracing; enabled, mining
  /// results are provably unchanged (TracePipeline.* tests).
  obs::TraceCollector* trace = nullptr;
  /// Opt-in streaming traffic introspection (DESIGN.md §17): when set,
  /// the measured day's below-stream answers additionally feed this
  /// sketch plane (shard 0 on the classic single-cluster path; one shard
  /// per engine shard in MiningSession).  Must outlive the run.  Null
  /// (the default) attaches nothing — zero hot-path overhead — and
  /// findings are byte-identical either way (TrafficPlane.* tests).
  obs::TrafficSketchPlane* sketch = nullptr;
  /// Opt-in live telemetry endpoint (DESIGN.md §13): when non-zero and
  /// `metrics` is set, run_mining_day serves GET /metrics (OpenMetrics),
  /// /healthz, and /trace on 127.0.0.1:<port> for the duration of the
  /// run.  MiningSession::enable_telemetry owns a session-lifetime server
  /// instead, surviving across days.  Scrapes snapshot on the serve
  /// thread; findings are bit-identical with the endpoint on or off.
  std::uint16_t telemetry_port = 0;
  /// /healthz flags a stage as stalled once its heartbeat gauge is older
  /// than this while a run is active.
  double telemetry_stall_seconds = 30.0;
  /// Opt-in stderr progress heartbeat (one background reader thread, no
  /// hot-path locks); requires `metrics`.  MiningSession::enable_progress
  /// sets both fields.
  bool progress = false;
  double progress_interval_seconds = 1.0;
};

/// Per-date aggregates used by the growth figures (Fig. 13, Tables I/II).
struct DayAggregates {
  std::size_t unique_queried = 0;
  std::size_t unique_resolved = 0;
  std::size_t unique_rrs = 0;
  std::size_t disposable_queried = 0;   // per mined findings
  std::size_t disposable_resolved = 0;
  std::size_t disposable_rrs = 0;
};

/// Status channel for a mining day.  Callers must check ok() before using
/// findings/evaluation/aggregates.
enum class MiningDayStatus {
  kOk = 0,
  /// The day's capture held no resolved names (e.g. a zero-volume scale);
  /// labeling/training on it would silently produce a degenerate model.
  kEmptyCapture,
  /// The requested configuration cannot run (engine: non-client-hash
  /// balancing with more than one shard, zero threads, ...).
  kInvalidConfig,
};

struct MiningDayResult {
  MiningDayStatus status = MiningDayStatus::kOk;
  /// Human-readable diagnosis when !ok().
  std::string error;
  std::vector<LabeledZone> labeled;
  std::vector<DisposableZoneFinding> findings;
  MiningEvaluation evaluation;
  DayAggregates aggregates;
  /// Final observability snapshot, serialized by obs/json_snapshot.h.
  /// Empty unless the run carried a PipelineOptions::metrics registry (or
  /// MiningSession::enable_metrics).
  std::string metrics_json;
  /// Final trace export (schema dnsnoise-trace-v1, obs/trace_export.h);
  /// loads in Perfetto / chrome://tracing.  Empty unless the run carried a
  /// PipelineOptions::trace collector (or MiningSession::enable_tracing).
  std::string trace_json;

  bool ok() const noexcept { return status == MiningDayStatus::kOk; }
};

/// Runs one full mining day for `date`: simulate, label, train a fresh LAD
/// tree (or apply options.pretrained), run Algorithm 1, evaluate against
/// ground truth, and compute the day's disposable-share aggregates.
/// `capture`, when provided, receives the day's tap data for further
/// analysis.  Returns a non-ok() result instead of mining when the day's
/// capture is empty.
MiningDayResult run_mining_day(ScenarioDate date,
                               const PipelineOptions& options = {},
                               DayCapture* capture = nullptr);

/// Simulates one day of `scenario` traffic into `capture` (with optional
/// warmup day at reduced volume), without mining.  Returns the cluster's
/// aggregate cache stats.
///
/// `capture` is taken by reference and reset exactly once, here, via
/// DayCapture::start_day(day_index) — the single documented reset point:
/// per-day state (tree, CHR, series, name sets, fpDNS) is cleared, the
/// cumulative rpDNS store is kept.  Warmup traffic runs before the reset,
/// so it warms the caches without polluting the capture.
DnsCacheStats simulate_day(Scenario& scenario, DayCapture& capture,
                           const PipelineOptions& options,
                           std::int64_t day_index);

/// Alternative mining strategy for finish_mining_day: produce findings from
/// the (tree, chr) pair using `miner`.  Must be output-equivalent to
/// DisposableZoneMiner::mine (the engine supplies a parallel fan-out).
using MineFn = std::function<std::vector<DisposableZoneFinding>(
    const DisposableZoneMiner& miner, DomainNameTree& tree,
    const CacheHitRateTracker& chr)>;

/// The post-capture half of a mining day, shared by run_mining_day and the
/// sharded engine: label zones, train (or reuse options.pretrained), mine
/// via `mine` (serial DisposableZoneMiner::mine when empty), evaluate, and
/// compute aggregates.  Returns kEmptyCapture without mining when `tap`
/// saw no resolved names.
MiningDayResult finish_mining_day(DayCapture& tap, const Scenario& scenario,
                                  const PipelineOptions& options,
                                  const MineFn& mine = {});

}  // namespace dnsnoise
