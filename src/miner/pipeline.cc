#include "miner/pipeline.h"

#include "obs/heartbeat.h"
#include "obs/json_snapshot.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/sketch/traffic_sketch.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace dnsnoise {

namespace {

/// Feeds one generated day into the cluster.  `heartbeat` (null-gated)
/// keeps the cluster stage alive on /healthz during the day.
void drive_day(TrafficGenerator& traffic, RdnsCluster& cluster,
               std::int64_t day, obs::Heartbeat* heartbeat = nullptr) {
  Question question;  // scratch reused across the day (zero-alloc re-parse)
  traffic.run_day(day, [&cluster, &question, heartbeat](
                           SimTime ts, std::uint64_t client,
                           const QuerySpec& query) {
    if (heartbeat != nullptr) heartbeat->tick();
    if (!question.name.assign(query.qname)) {
      return;  // generators only emit valid names; belt and braces
    }
    question.type = query.qtype;
    cluster.query_view(client, question, ts);
  });
}

}  // namespace

DnsCacheStats simulate_day(Scenario& scenario, DayCapture& capture,
                           const PipelineOptions& options,
                           std::int64_t day_index) {
  ClusterConfig cluster_config = options.cluster;
  cluster_config.metrics = options.metrics;
  cluster_config.trace = options.trace;
  RdnsCluster cluster(cluster_config, scenario.authority());
  scenario.traffic().set_metrics(options.metrics);
  scenario.traffic().set_trace(options.trace);
  obs::Heartbeat heartbeat(options.metrics, "cluster");
  heartbeat.beat();
  const obs::StageTimer simulate_span(
      options.metrics != nullptr ? &options.metrics->timer("cluster.simulate")
                                 : nullptr);
  obs::TraceSpan simulate_trace(
      options.trace != nullptr
          ? &options.trace->stream(obs::TraceStage::kCluster, 0)
          : nullptr,
      options.trace, obs::TraceOp::kClusterSimulate);
  if (options.warmup) {
    // Warm the caches with a reduced-volume preceding day.  The warmup
    // scenario shares the zone population (same seed) but draws a distinct
    // query stream, so disposable names are not artificially re-queried.
    ScenarioScale warm_scale = scenario.scale();
    warm_scale.queries_per_day = static_cast<std::uint64_t>(
        static_cast<double>(warm_scale.queries_per_day) *
        options.warmup_volume_fraction);
    warm_scale.traffic_stream ^= 0xbeefcafeULL;
    Scenario warm(scenario.date(), warm_scale);
    drive_day(warm.traffic(), cluster, day_index - 1, &heartbeat);
  }
  capture.start_day(day_index);
  capture.attach(cluster);
  // The traffic plane rides the cluster's wait-free hook: one cluster,
  // one writer, so the classic path feeds shard 0.
  obs::TrafficSketch* sketch_shard = nullptr;
  if (options.sketch != nullptr) {
    options.sketch->ensure_shards(1);
    sketch_shard = &options.sketch->shard(0);
    cluster.set_traffic_sketch(sketch_shard);
  }
  drive_day(scenario.traffic(), cluster, day_index, &heartbeat);
  // Flush pending tap batches and detach: the capture may outlive this
  // cluster.
  cluster.flush_taps();
  if (sketch_shard != nullptr) cluster.set_traffic_sketch(nullptr);
  capture.detach(cluster);
  return cluster.aggregate_stats();
}

MiningDayResult finish_mining_day(DayCapture& tap, const Scenario& scenario,
                                  const PipelineOptions& options,
                                  const MineFn& mine) {
  obs::MetricsRegistry* const metrics = options.metrics;
  const auto stage_timer = [metrics](const char* name) {
    return metrics != nullptr ? &metrics->timer(name) : nullptr;
  };
  obs::TraceCollector* const trace = options.trace;
  obs::TraceStream* const trace_stream =
      trace != nullptr ? &trace->stream(obs::TraceStage::kMiner, 0) : nullptr;
  obs::Heartbeat heartbeat(metrics, "miner");
  heartbeat.beat();

  MiningDayResult result;
  if (tap.tree().black_count() == 0) {
    result.status = MiningDayStatus::kEmptyCapture;
    result.error =
        "mining day captured no resolved names; check traffic volume";
    if (metrics != nullptr) {
      result.metrics_json = obs::to_json(metrics->snapshot());
    }
    if (trace != nullptr) {
      result.trace_json = obs::to_json(trace->snapshot());
    }
    return result;
  }
  {
    const obs::StageTimer span(stage_timer("miner.label"));
    const obs::TraceSpan tspan(trace_stream, trace, obs::TraceOp::kMinerLabel);
    result.labeled =
        label_zones(tap.tree(), tap.chr(), scenario, options.labeler);
  }
  LadTree own_model(options.model);
  const BinaryClassifier* model = options.pretrained;
  if (model == nullptr) {
    const obs::StageTimer span(stage_timer("miner.train"));
    const obs::TraceSpan tspan(trace_stream, trace, obs::TraceOp::kMinerTrain);
    own_model.train(to_dataset(result.labeled));
    model = &own_model;
  }

  MinerConfig miner_config = options.miner;
  if (miner_config.metrics == nullptr) miner_config.metrics = metrics;
  if (miner_config.trace == nullptr) miner_config.trace = trace;
  const DisposableZoneMiner miner(*model, miner_config);
  heartbeat.beat();
  {
    const obs::StageTimer span(stage_timer("miner.mine"));
    const obs::TraceSpan tspan(trace_stream, trace, obs::TraceOp::kMinerMine);
    result.findings = mine ? mine(miner, tap.tree(), tap.chr())
                           : miner.mine(tap.tree(), tap.chr());
  }
  {
    const obs::StageTimer span(stage_timer("miner.evaluate"));
    const obs::TraceSpan tspan(trace_stream, trace,
                               obs::TraceOp::kMinerEvaluate);
    result.evaluation = evaluate_findings(result.findings, scenario.truth());
  }
  if (metrics != nullptr) {
    metrics->counter("miner.findings").add(result.findings.size());
  }

  heartbeat.beat();
  const FindingIndex index(result.findings);
  DayAggregates& agg = result.aggregates;
  agg.unique_queried = tap.unique_queried();
  agg.unique_resolved = tap.unique_resolved();
  agg.unique_rrs = tap.chr().unique_rrs();
  for (const std::string& name : tap.queried_names()) {
    const auto parsed = DomainName::parse(name);
    if (parsed && index.is_disposable(*parsed)) ++agg.disposable_queried;
  }
  for (const std::string& name : tap.resolved_names()) {
    const auto parsed = DomainName::parse(name);
    if (parsed && index.is_disposable(*parsed)) ++agg.disposable_resolved;
  }
  for (const auto& [key, counts] : tap.chr().entries()) {
    const auto parsed = DomainName::parse(key.name);
    if (parsed && index.is_disposable(*parsed)) ++agg.disposable_rrs;
  }
  // Snapshot last, so the mining-stage timers above are included.
  if (metrics != nullptr) {
    result.metrics_json = obs::to_json(metrics->snapshot());
  }
  if (trace != nullptr) {
    result.trace_json = obs::to_json(trace->snapshot());
  }
  return result;
}

MiningDayResult run_mining_day(ScenarioDate date,
                               const PipelineOptions& options,
                               DayCapture* capture) {
  // Run-scoped observability surfaces.  Declaration order matters on the
  // way out: the run-active gauge drops first (so /healthz reads "idle"),
  // then the progress reporter flushes its final line, then the telemetry
  // server serves until destruction.
  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (options.telemetry_port != 0 && options.metrics != nullptr) {
    obs::TelemetryConfig config;
    config.port = options.telemetry_port;
    config.stall_seconds = options.telemetry_stall_seconds;
    telemetry =
        std::make_unique<obs::TelemetryServer>(*options.metrics, config);
    telemetry->start();
  }
  std::unique_ptr<obs::ProgressReporter> progress;
  if (options.progress && options.metrics != nullptr) {
    obs::ProgressConfig progress_config;
    progress_config.interval_seconds = options.progress_interval_seconds;
    progress = std::make_unique<obs::ProgressReporter>(*options.metrics,
                                                       progress_config);
  }
  const obs::RunActiveScope run_active(options.metrics);

  Scenario scenario(date, options.scale);
  DayCapture local_capture(options.capture);
  DayCapture& tap = capture != nullptr ? *capture : local_capture;
  simulate_day(scenario, tap, options, scenario_day_index(date));
  MiningDayResult result = finish_mining_day(tap, scenario, options);
  if (telemetry != nullptr && !result.trace_json.empty()) {
    telemetry->publish_trace(result.trace_json);
  }
  return result;
}

}  // namespace dnsnoise
