// Algorithm 1: the disposable domain classification walk (paper Section V-B).
//
// Starting from every effective 2LD in the day's domain name tree, group
// the zone's black descendants by depth, classify each group's statistical
// vector, decolor groups classified disposable with confidence >= theta,
// emit the (zone, depth) pair, and recurse into the child zones.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "features/chr.h"
#include "features/domain_tree.h"
#include "features/extractor.h"
#include "ml/classifier.h"
#include "obs/trace.h"

namespace dnsnoise::obs {
class Counter;
class MetricsRegistry;
class Timer;
}  // namespace dnsnoise::obs

namespace dnsnoise {

struct MinerConfig {
  /// Classifier confidence threshold theta (paper Line 5: 0.9).
  double threshold = 0.9;
  /// Groups smaller than this are not classified (implementation guard; the
  /// paper labels zones with >= 15 names and leaves tiny groups untouched).
  std::size_t min_group_size = 5;
  const PublicSuffixList* psl = &PublicSuffixList::builtin();
  /// Opt-in observability sink (DESIGN.md §10): the miner.* walk counters
  /// and the feature-extraction timer.  Must outlive the miner; null = no
  /// instrumentation.  Safe to share across the engine's parallel zone
  /// walks (all handles are atomics).
  obs::MetricsRegistry* metrics = nullptr;
  /// Opt-in event tracing (DESIGN.md §12): per effective-2LD zone-visit
  /// spans plus group-classify/decolor instant events into the miner
  /// stream.  Must outlive the miner; null = no tracing.  Safe to share
  /// across the engine's parallel zone walks (the stream's ring cursor is
  /// atomic).
  obs::TraceCollector* trace = nullptr;
};

/// One mined disposable zone: the output pair (zone, depth) of Algorithm 1
/// plus the classification evidence.
struct DisposableZoneFinding {
  std::string zone;
  std::size_t depth = 0;
  double confidence = 0.0;
  std::size_t group_size = 0;
  GroupFeatures features;
};

class DisposableZoneMiner {
 public:
  /// `model` must be trained and outlive the miner.
  DisposableZoneMiner(const BinaryClassifier& model, MinerConfig config = {});

  /// Runs Algorithm 1 over the whole tree (every effective 2LD).  Decolors
  /// classified groups in place.  Findings are ranked by confidence, then
  /// group size, descending.
  std::vector<DisposableZoneFinding> mine(DomainNameTree& tree,
                                          const CacheHitRateTracker& chr) const;

  /// Runs Algorithm 1 rooted at one zone node (exposed for tests and the
  /// parallel engine, which fans mine_zone over effective 2LDs).  When
  /// tracing is enabled, each top-level call records one miner.zone span
  /// labeled with the zone name.
  void mine_zone(DomainNameTree& tree, DomainNameTree::Node& zone,
                 const CacheHitRateTracker& chr,
                 std::vector<DisposableZoneFinding>& out) const;

  /// Ranks findings by confidence desc, group size desc, then (zone, depth)
  /// asc.  The key is a total order over distinct findings, so any
  /// permutation of `findings` — e.g. from parallel per-zone mining — sorts
  /// to the same sequence.
  static void sort_findings(std::vector<DisposableZoneFinding>& findings);

  const MinerConfig& config() const noexcept { return config_; }

 private:
  const BinaryClassifier& model_;
  MinerConfig config_;
  void mine_zone_walk(DomainNameTree& tree, DomainNameTree::Node& zone,
                      const CacheHitRateTracker& chr,
                      std::vector<DisposableZoneFinding>& out,
                      GroupFeatureScratch& scratch) const;

  // Metric handles resolved once at construction; all null when
  // config_.metrics is null.
  obs::Counter* zones_visited_ = nullptr;
  obs::Counter* groups_classified_ = nullptr;
  obs::Counter* groups_decolored_ = nullptr;
  obs::Counter* names_decolored_ = nullptr;
  obs::Timer* features_timer_ = nullptr;
  obs::TraceStream* trace_stream_ = nullptr;  // null when untraced
};

}  // namespace dnsnoise
