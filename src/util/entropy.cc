#include "util/entropy.h"

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace dnsnoise {

double shannon_entropy(std::string_view s) noexcept {
  if (s.empty()) return 0.0;
  std::array<std::uint32_t, 256> counts{};
  for (const char c : s) ++counts[static_cast<unsigned char>(c)];
  const auto n = static_cast<double>(s.size());
  double h = 0.0;
  for (const std::uint32_t count : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    h -= p * std::log2(p);
  }
  return h;
}

double normalized_entropy(std::string_view s) noexcept {
  if (s.size() < 2) return 0.0;
  const double h = shannon_entropy(s);
  // A string of length n can have at most min(n, 256) distinct symbols.
  const double max_symbols = static_cast<double>(s.size() < 256 ? s.size() : 256);
  return h / std::log2(max_symbols);
}

}  // namespace dnsnoise
