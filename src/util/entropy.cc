#include "util/entropy.h"

#include <cmath>

#include "util/simd/kernels.h"

namespace dnsnoise {

double shannon_entropy(std::string_view s) noexcept {
  // Histogram + shared LUT reducer at the runtime-dispatched kernel level
  // (scalar/SSE2/AVX2); all levels are bit-identical (DESIGN.md §15).
  return kernels::shannon_entropy(s);
}

double normalized_entropy(std::string_view s) noexcept {
  if (s.size() < 2) return 0.0;
  const double h = shannon_entropy(s);
  // A string of length n can have at most min(n, 256) distinct symbols.
  const double max_symbols = static_cast<double>(s.size() < 256 ? s.size() : 256);
  return h / std::log2(max_symbols);
}

}  // namespace dnsnoise
