// Simulated-time conventions.
//
// All timestamps in the simulator are integral seconds since the scenario
// epoch, matching the paper's fpDNS timestamp granularity ("in the
// granularity of seconds", Section III-A).
#pragma once

#include <cstdint>

namespace dnsnoise {

/// Seconds since the scenario epoch.
using SimTime = std::int64_t;

inline constexpr SimTime kSecondsPerMinute = 60;
inline constexpr SimTime kSecondsPerHour = 3600;
inline constexpr SimTime kSecondsPerDay = 86400;

/// Day index (0-based) of a timestamp.
constexpr std::int64_t day_of(SimTime t) noexcept { return t / kSecondsPerDay; }

/// Second within the day, in [0, 86400).
constexpr SimTime second_of_day(SimTime t) noexcept {
  return t % kSecondsPerDay;
}

/// Hour within the day, in [0, 24).
constexpr int hour_of_day(SimTime t) noexcept {
  return static_cast<int>(second_of_day(t) / kSecondsPerHour);
}

}  // namespace dnsnoise
