#include "util/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dnsnoise {

ZipfSampler::ZipfSampler(std::size_t n, double s) : exponent_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: exponent must be >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (auto& value : cdf_) value /= total;
  cdf_.back() = 1.0;  // guard against accumulated floating point error
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const noexcept {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace dnsnoise
