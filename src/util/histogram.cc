#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dnsnoise {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("LinearHistogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("LinearHistogram: bins must be > 0");
}

void LinearHistogram::add(double value, std::uint64_t weight) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::int64_t>(std::floor((value - lo_) / width));
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double LinearHistogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double LinearHistogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return bin_lo(bin) + width / 2.0;
}

LogHistogram::LogHistogram(double max, std::size_t bins_per_decade)
    : max_(max), bins_per_decade_(static_cast<double>(bins_per_decade)) {
  if (max <= 1.0) throw std::invalid_argument("LogHistogram: max must be > 1");
  if (bins_per_decade == 0) {
    throw std::invalid_argument("LogHistogram: bins_per_decade must be > 0");
  }
  const auto nbins =
      static_cast<std::size_t>(std::ceil(std::log10(max) * bins_per_decade_));
  counts_.assign(std::max<std::size_t>(nbins, 1), 0);
}

void LogHistogram::add(double value, std::uint64_t weight) noexcept {
  total_ += weight;
  if (value < 1.0) {
    zero_ += weight;
    return;
  }
  value = std::min(value, max_);
  auto bin = static_cast<std::size_t>(std::log10(value) * bins_per_decade_);
  bin = std::min(bin, counts_.size() - 1);
  counts_[bin] += weight;
}

double LogHistogram::bin_lo(std::size_t bin) const {
  return std::pow(10.0, static_cast<double>(bin) / bins_per_decade_);
}

double LogHistogram::bin_hi(std::size_t bin) const {
  return std::pow(10.0, static_cast<double>(bin + 1) / bins_per_decade_);
}

double LogHistogram::bin_center(std::size_t bin) const {
  return std::sqrt(bin_lo(bin) * bin_hi(bin));
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::size_t points) {
  std::vector<CdfPoint> cdf;
  if (values.empty() || points < 2) return cdf;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  cdf.reserve(points);
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    const auto idx = std::min<std::size_t>(
        static_cast<std::size_t>(q * (n - 1) + 0.5), sorted.size() - 1);
    // F(x) = fraction of samples <= x at this order statistic.
    const auto upper = std::upper_bound(sorted.begin(), sorted.end(), sorted[idx]);
    cdf.push_back({sorted[idx],
                   static_cast<double>(upper - sorted.begin()) / n});
  }
  return cdf;
}

double cdf_at(std::span<const double> values, double x) {
  if (values.empty()) return 0.0;
  std::size_t le = 0;
  for (const double v : values) {
    if (v <= x) ++le;
  }
  return static_cast<double>(le) / static_cast<double>(values.size());
}

}  // namespace dnsnoise
