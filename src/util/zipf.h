// Zipf (discrete power-law) sampler over ranks {0, ..., n-1}.
//
// Popularity of non-disposable hostnames follows a heavy-tailed rank
// distribution; the paper's "long tail" of lookup volume (Fig. 3a) emerges
// from exactly this shape.  We precompute the CDF once (O(n)) and sample by
// binary search (O(log n)); this is the right trade-off for our zone models,
// whose alphabets are fixed for the lifetime of a scenario.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace dnsnoise {

class ZipfSampler {
 public:
  /// Builds a sampler over n ranks with exponent s (s >= 0; s == 0 is
  /// uniform).  Probability of rank r is proportional to 1 / (r+1)^s.
  ZipfSampler(std::size_t n, double s);

  /// Number of ranks.
  std::size_t size() const noexcept { return cdf_.size(); }

  /// Zipf exponent used to build the sampler.
  double exponent() const noexcept { return exponent_; }

  /// Samples a rank in [0, size()).
  std::size_t sample(Rng& rng) const noexcept;

  /// Probability mass of the given rank.
  double pmf(std::size_t rank) const noexcept;

 private:
  std::vector<double> cdf_;
  double exponent_ = 1.0;
};

}  // namespace dnsnoise
