#include "util/rng.h"

#include <cmath>

namespace dnsnoise {

double Rng::exponential(double mean) noexcept {
  // Inverse CDF; guard against log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) noexcept {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double sample = normal(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return 0;  // degenerate; callers validate
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::string Rng::hex_string(std::size_t length) {
  return string_over("0123456789abcdef", length);
}

std::string Rng::string_over(std::string_view alphabet, std::size_t length) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(alphabet[below(alphabet.size())]);
  }
  return out;
}

}  // namespace dnsnoise
