#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace dnsnoise {

namespace {

// Median of an already-sorted sample.
double sorted_median(const std::vector<double>& sorted) {
  if (sorted.empty()) return 0.0;
  const std::size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

}  // namespace

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (const double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  s.median = sorted_median(sorted);
  double ss = 0.0;
  for (const double v : sorted) {
    const double d = v - s.mean;
    ss += d * d;
  }
  s.variance = ss / static_cast<double>(s.count);
  return s;
}

double median(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_median(sorted);
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double fraction_below(std::span<const double> values, double threshold) {
  if (values.empty()) return 0.0;
  std::size_t below = 0;
  for (const double v : values) {
    if (v < threshold) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(values.size());
}

double fraction_equal(std::span<const double> values, double target,
                      double eps) {
  if (values.empty()) return 0.0;
  std::size_t hits = 0;
  for (const double v : values) {
    if (std::abs(v - target) <= eps) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(values.size());
}

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace dnsnoise
