// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every experiment in this repository is seeded explicitly; there is no
// global RNG state.  Rng is a xoshiro256** generator seeded via splitmix64,
// which is fast, has a 256-bit state, and passes BigCrush.  It satisfies
// std::uniform_random_bit_generator so it can also drive <random>
// distributions when needed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

namespace dnsnoise {

/// splitmix64 step; used for seeding and for cheap hash mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a single value (finalizer of splitmix64).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Shard routing: maps an entity ID onto one of `count` shards through the
/// splitmix64 finalizer, so consecutive IDs spread uniformly.  Both the
/// cluster's client-hash balancing and the engine's by-server traffic
/// sharding use this single definition — they MUST agree for shard
/// decomposition to reproduce the monolithic routing.
constexpr std::size_t shard_of(std::uint64_t id, std::size_t count) noexcept {
  return static_cast<std::size_t>(mix64(id) % count);
}

/// Derives the seed of shard `index` from a base seed.  Every shard gets an
/// independently mixed stream — never hand the same raw seed to sibling
/// shards, or their "random" decisions correlate.
constexpr std::uint64_t shard_seed(std::uint64_t base,
                                   std::uint64_t index) noexcept {
  return mix64(base ^ mix64(index ^ 0xd1b54a32d192ed03ULL));
}

/// FNV-1a 64-bit hash of a byte string; used to derive per-entity seeds.
constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** deterministic generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Standard normal via Box-Muller (no cached spare; simple and stateless).
  double normal(double mu = 0.0, double sigma = 1.0) noexcept;

  /// Poisson-distributed count (Knuth for small means, normal approx above).
  std::uint64_t poisson(double mean) noexcept;

  /// Geometric number of failures before first success, success prob p.
  std::uint64_t geometric(double p) noexcept;

  /// Pareto (power-law) sample with scale xm and shape alpha.
  double pareto(double xm, double alpha) noexcept;

  /// Random lowercase hex string of the given length.
  std::string hex_string(std::size_t length);

  /// Random string over a custom alphabet.
  std::string string_over(std::string_view alphabet, std::size_t length);

  /// Derive an independent child generator (stable under call order changes).
  Rng fork(std::uint64_t stream) noexcept {
    return Rng(mix64(state_[0] ^ mix64(stream ^ 0xd1b54a32d192ed03ULL)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dnsnoise
