#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace dnsnoise {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string ascii_bars(std::span<const std::pair<std::string, double>> series,
                       std::size_t width) {
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& [label, value] : series) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  std::ostringstream out;
  for (const auto& [label, value] : series) {
    const auto bar_len =
        max_value <= 0.0
            ? std::size_t{0}
            : static_cast<std::size_t>(value / max_value *
                                       static_cast<double>(width));
    out << label << std::string(label_width - label.size(), ' ') << " |"
        << std::string(bar_len, '#') << ' ' << fixed(value, 3) << '\n';
  }
  return out.str();
}

std::string xy_series(std::span<const std::pair<double, double>> series,
                      const std::string& x_name, const std::string& y_name) {
  std::ostringstream out;
  out << x_name << '\t' << y_name << '\n';
  for (const auto& [x, y] : series) {
    out << fixed(x, 6) << '\t' << fixed(y, 6) << '\n';
  }
  return out.str();
}

}  // namespace dnsnoise
