// SSE2 kernels: 16-byte character classification for the name dot-scan
// and broadcast-compare byte histograms for short strings.
//
// Everything computed here is integer (counts, masks, offsets), so the
// outputs are bit-identical to the scalar kernels; the parity tests
// assert exactly that.
#include "util/simd/kernels_internal.h"

#if defined(DNSNOISE_KERNELS_X86)

#include <emmintrin.h>

#include <algorithm>
#include <cstring>

namespace dnsnoise::kernels::detail {

namespace {

inline std::uint32_t eq_mask(__m128i v, __m128i needle) noexcept {
  return static_cast<std::uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(needle, v)));
}

}  // namespace

void hist_build_sse2(CharHist& hist, std::string_view s) noexcept {
  const std::size_t n = s.size();
  if (n == 0) return;
  // Beyond four vectors the broadcast-compare sweep loses to plain
  // counting; names cap at 253 bytes, labels at 63, so this covers the
  // label path entirely and most full names.
  if (n > 64) {
    hist_build_scalar(hist, s);
    return;
  }
  alignas(16) unsigned char buf[64] = {};
  std::memcpy(buf, s.data(), n);
  const std::size_t chunks = (n + 15) / 16;
  __m128i v[4];
  for (std::size_t j = 0; j < chunks; ++j) {
    v[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(buf + 16 * j));
  }
  // Mask-consume loop: exactly one broadcast-compare per *distinct*
  // symbol.  `remaining` holds the not-yet-counted byte positions; each
  // pass counts every occurrence of the lowest remaining position's byte
  // and clears them all at once, so there is no per-position branch for
  // the predictor to miss on high-entropy labels.
  std::uint64_t remaining =
      n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  while (remaining != 0) {
    const unsigned char c = buf[std::countr_zero(remaining)];
    const __m128i needle = _mm_set1_epi8(static_cast<char>(c));
    std::uint64_t eq = 0;
    for (std::size_t j = 0; j < chunks; ++j) {
      eq |= static_cast<std::uint64_t>(eq_mask(v[j], needle)) << (16 * j);
    }
    const std::uint64_t hits = eq & remaining;
    remaining ^= hits;
    hist.counts[c] = static_cast<std::uint32_t>(std::popcount(hits));
    hist.present[c >> 6] |= std::uint64_t{1} << (c & 63);
  }
}

NameScan normalize_name_sse2(std::string_view in, char* out,
                             std::uint16_t* offsets) noexcept {
  const std::size_t n = in.size();
  offsets[0] = 0;
  ScanState st;
  const __m128i low_bit = _mm_set1_epi8(0x20);
  const __m128i ch_a = _mm_set1_epi8('a');
  const __m128i ch_z = _mm_set1_epi8('z');
  const __m128i ch_0 = _mm_set1_epi8('0');
  const __m128i ch_9 = _mm_set1_epi8('9');
  const __m128i ch_dash = _mm_set1_epi8('-');
  const __m128i ch_under = _mm_set1_epi8('_');
  const __m128i ch_dot = _mm_set1_epi8('.');
  for (std::size_t i = 0; i < n; i += 16) {
    const std::size_t take = std::min<std::size_t>(16, n - i);
    alignas(16) char buf[16];
    __m128i v;
    if (take == 16) {
      v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in.data() + i));
    } else {
      std::memset(buf, 'a', sizeof(buf));  // pad lanes classify as benign
      std::memcpy(buf, in.data() + i, take);
      v = _mm_load_si128(reinterpret_cast<const __m128i*>(buf));
    }
    // Letters via the OR-0x20 fold, digits via unsigned range compares.
    const __m128i folded = _mm_or_si128(v, low_bit);
    const __m128i alpha =
        _mm_and_si128(_mm_cmpeq_epi8(_mm_max_epu8(folded, ch_a), folded),
                      _mm_cmpeq_epi8(_mm_min_epu8(folded, ch_z), folded));
    const __m128i digit =
        _mm_and_si128(_mm_cmpeq_epi8(_mm_max_epu8(v, ch_0), v),
                      _mm_cmpeq_epi8(_mm_min_epu8(v, ch_9), v));
    const __m128i punct = _mm_or_si128(_mm_cmpeq_epi8(v, ch_dash),
                                       _mm_cmpeq_epi8(v, ch_under));
    const __m128i dot = _mm_cmpeq_epi8(v, ch_dot);
    const __m128i good =
        _mm_or_si128(_mm_or_si128(alpha, digit), _mm_or_si128(punct, dot));
    const std::uint32_t valid = take == 16 ? 0xffffu : ((1u << take) - 1);
    const auto good_mask =
        static_cast<std::uint32_t>(_mm_movemask_epi8(good));
    if ((good_mask & valid) != valid) return {false, 0};
    // Lowercase by setting bit 5 on letter lanes only.
    const __m128i lowered =
        _mm_or_si128(v, _mm_and_si128(alpha, low_bit));
    if (take == 16) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), lowered);
    } else {
      _mm_store_si128(reinterpret_cast<__m128i*>(buf), lowered);
      std::memcpy(out + i, buf, take);
    }
    const std::uint32_t dots =
        static_cast<std::uint32_t>(_mm_movemask_epi8(dot)) & valid;
    if (!consume_dots(dots, i, offsets, st)) return {false, 0};
  }
  return finish_scan(n, st);
}

}  // namespace dnsnoise::kernels::detail

#endif  // DNSNOISE_KERNELS_X86
