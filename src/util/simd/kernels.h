// dnsnoise::kernels — vectorized batch kernels for the mining hot path.
//
// The LAD miner spends its time in three embarrassingly data-parallel
// loops: per-label character histograms (Shannon entropy, Section V-A2),
// batched entropy over interned label/name arrays, and the dot-scan that
// normalizes every DomainName the capture path decodes.  This layer gives
// each of them an SSE2 and an AVX2 kernel behind one runtime-dispatched
// API with a portable scalar fallback.
//
// Determinism contract (DESIGN.md §15): a kernel may vectorize only the
// *integer* part of the work — byte counts, presence bitmaps, class
// masks, label offsets — which is bit-exact regardless of lane width.
// Every floating-point reduction (entropy_from_hist) is shared scalar
// code compiled once, summing in a fixed order (ascending byte value), so
// scalar, SSE2, and AVX2 produce bit-identical doubles by construction.
// The parity tests in tests/simd_kernels_test.cpp enforce this across
// every available dispatch level.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace dnsnoise::kernels {

// ---------------------------------------------------------------------------
// Runtime CPU dispatch

enum class DispatchLevel : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Human-readable level name ("scalar", "sse2", "avx2").
const char* level_name(DispatchLevel level) noexcept;

/// The level all un-suffixed kernels run at.  Resolved once on first use:
/// the best level the CPU supports, clamped by the DNSNOISE_KERNEL_LEVEL
/// environment variable (scalar|sse2|avx2) and by builds configured with
/// -DDNSNOISE_DISABLE_SIMD=ON (scalar only).
DispatchLevel active_level() noexcept;

/// True if `level` can run on this build + CPU (kScalar always can).
bool level_available(DispatchLevel level) noexcept;

/// Forces the active level (tests/benches).  Returns false and leaves the
/// level unchanged if `level` is unavailable.  A forced level also applies
/// to the histogram kernels (see hist_level).  Not safe to call while
/// other threads are inside kernels.
bool set_active_level(DispatchLevel level) noexcept;

/// The level hist_build / shannon_entropy / entropy_many actually run at.
/// When a level was forced (DNSNOISE_KERNEL_LEVEL or set_active_level)
/// this is the forced level; otherwise it is kScalar regardless of CPU:
/// the broadcast-compare histograms measure *slower* than the scalar
/// counting loop at DNS label/name sizes, where the distinct-symbol count
/// is close to the length (measured rule, DESIGN.md §15).  The normalize
/// kernel always runs at active_level(), where vectors win.
DispatchLevel hist_level() noexcept;

// ---------------------------------------------------------------------------
// Character histograms
//
// A CharHist is a reusable workspace: 256 byte counts plus a 256-bit
// presence bitmap that makes both the entropy reduction and the cleanup
// O(distinct symbols) instead of O(256).  The intended cycle is
// hist_init once, then per string: hist_build -> entropy_from_hist ->
// hist_reset.

struct CharHist {
  std::uint32_t counts[256];
  std::uint64_t present[4];  // bit c set <=> counts[c] > 0
};

/// Zeroes the whole workspace (once per workspace, not per string).
void hist_init(CharHist& hist) noexcept;

/// Fills counts/present for the bytes of `s`.  Requires a clean workspace
/// (fresh hist_init or hist_reset); does not accumulate across strings.
/// All dispatch levels produce identical counts and bitmap.
void hist_build(CharHist& hist, std::string_view s) noexcept;

/// hist_build at an explicit level (parity tests and benches).
void hist_build_at(DispatchLevel level, CharHist& hist,
                   std::string_view s) noexcept;

/// Clears only the buckets hist_build touched (O(distinct symbols)).
void hist_reset(CharHist& hist) noexcept;

// ---------------------------------------------------------------------------
// Shannon entropy
//
// entropy_from_hist is the *shared* floating-point reducer: it walks the
// presence bitmap in ascending byte order and computes
//   H = log2(n) - (sum_c count_c * log2(count_c)) / n
// with the count-indexed k*log2(k) lookup table (counts above the table
// fall back to direct log2).  One-symbol strings return exactly 0 and the
// result is clamped at 0 so rounding can never produce a negative
// entropy.

/// Entropy (bits/char) from a built histogram; `total` is the string
/// length the histogram was built from.
double entropy_from_hist(const CharHist& hist, std::uint64_t total) noexcept;

/// One-shot entropy of `s` at the active dispatch level.
double shannon_entropy(std::string_view s) noexcept;

/// One-shot entropy at an explicit level (parity tests).
double shannon_entropy_at(DispatchLevel level, std::string_view s) noexcept;

/// Batched entropy: out[i] = entropy of strings[i].  One workspace is
/// reused across the whole batch, so per-string setup cost vanishes;
/// views into an interned arena (NameTable, DomainNameTree labels) are
/// walked in storage order.  Requires out.size() >= strings.size().
void entropy_many(std::span<const std::string_view> strings,
                  std::span<double> out) noexcept;

// ---------------------------------------------------------------------------
// Domain-name normalization scan
//
// The vectorized replacement for DomainName's per-character parse loop:
// classifies 16/32 bytes per step (allowed LDH+underscore set, dots,
// uppercase), lowercases into `out`, and emits label-start offsets while
// validating label lengths (1..63) exactly like the scalar parser.

struct NameScan {
  bool ok = false;               // false: bad char, empty label, label > 63
  std::uint16_t label_count = 0; // offsets written when ok
};

/// Scans `in` (must be non-empty, <= 253 bytes, caller already stripped
/// any trailing dot), writing in.size() lowercased bytes to `out` and
/// label-start byte offsets to `offsets` (capacity >= 128).  On failure
/// the contents of out/offsets are unspecified.
NameScan normalize_name(std::string_view in, char* out,
                        std::uint16_t* offsets) noexcept;

/// normalize_name at an explicit level (parity tests).
NameScan normalize_name_at(DispatchLevel level, std::string_view in, char* out,
                           std::uint16_t* offsets) noexcept;

}  // namespace dnsnoise::kernels
