#include "util/simd/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/simd/kernels_internal.h"

namespace dnsnoise::kernels {

namespace {

DispatchLevel best_supported() noexcept {
#if defined(DNSNOISE_KERNELS_X86)
  if (__builtin_cpu_supports("avx2")) return DispatchLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return DispatchLevel::kSse2;
#endif
  return DispatchLevel::kScalar;
}

/// Active state: the dispatch level plus whether it was *forced* (env var
/// or set_active_level) rather than auto-detected.  Forced levels apply
/// to every kernel; the auto default applies the measured per-kernel
/// rules (hist_level).  Packed into one byte: bit 7 = forced.
constexpr std::uint8_t kForcedBit = 0x80;

/// Initial state: best the CPU supports, optionally clamped — and marked
/// forced — by the DNSNOISE_KERNEL_LEVEL env var (scalar|sse2|avx2).  An
/// env request for an unavailable level is ignored rather than crashing
/// the process.
std::uint8_t initial_state() noexcept {
  const DispatchLevel best = best_supported();
  if (const char* env = std::getenv("DNSNOISE_KERNEL_LEVEL")) {
    DispatchLevel wanted = best;
    bool recognized = false;
    if (std::strcmp(env, "scalar") == 0) {
      wanted = DispatchLevel::kScalar;
      recognized = true;
    }
    if (std::strcmp(env, "sse2") == 0) {
      wanted = DispatchLevel::kSse2;
      recognized = true;
    }
    if (std::strcmp(env, "avx2") == 0) {
      wanted = DispatchLevel::kAvx2;
      recognized = true;
    }
    if (recognized && wanted <= best) {
      return static_cast<std::uint8_t>(wanted) | kForcedBit;
    }
  }
  return static_cast<std::uint8_t>(best);
}

std::atomic<std::uint8_t>& active_slot() noexcept {
  static std::atomic<std::uint8_t> slot{initial_state()};
  return slot;
}

/// Count-indexed k*log2(k) and log2(k) lookups.  Counts and lengths above
/// 255 (longer than any DNS name) fall back to direct std::log2.
struct EntropyTables {
  double xlogx[256];
  double log2n[256];
};

const EntropyTables& entropy_tables() noexcept {
  static const EntropyTables tables = [] {
    EntropyTables t{};
    t.xlogx[0] = 0.0;
    t.log2n[0] = 0.0;
    for (int k = 1; k < 256; ++k) {
      const double lg = std::log2(static_cast<double>(k));
      t.log2n[k] = lg;
      t.xlogx[k] = static_cast<double>(k) * lg;
    }
    return t;
  }();
  return tables;
}

/// Per-thread histogram workspace for the one-shot and batched entropy
/// entry points.  Zero-initialized (== hist_init) and returned to the
/// clean state by hist_reset after every use.
CharHist& scratch_hist() noexcept {
  thread_local CharHist hist{};
  return hist;
}

}  // namespace

const char* level_name(DispatchLevel level) noexcept {
  switch (level) {
    case DispatchLevel::kSse2:
      return "sse2";
    case DispatchLevel::kAvx2:
      return "avx2";
    case DispatchLevel::kScalar:
      break;
  }
  return "scalar";
}

DispatchLevel active_level() noexcept {
  return static_cast<DispatchLevel>(
      active_slot().load(std::memory_order_relaxed) & ~kForcedBit);
}

bool level_available(DispatchLevel level) noexcept {
  return level <= best_supported();
}

bool set_active_level(DispatchLevel level) noexcept {
  if (!level_available(level)) return false;
  active_slot().store(static_cast<std::uint8_t>(level) | kForcedBit,
                      std::memory_order_relaxed);
  return true;
}

DispatchLevel hist_level() noexcept {
  const std::uint8_t state = active_slot().load(std::memory_order_relaxed);
  if ((state & kForcedBit) != 0) {
    return static_cast<DispatchLevel>(state & ~kForcedBit);
  }
  // Measured rule: at DNS label/name sizes the distinct-symbol count is
  // close to the length, so one broadcast-compare per distinct symbol
  // does more work than one counter increment per byte.  The scalar loop
  // wins on both short labels and full names; the vector histograms stay
  // reachable for forced runs and parity tests.
  return DispatchLevel::kScalar;
}

void hist_init(CharHist& hist) noexcept {
  std::memset(&hist, 0, sizeof(hist));
}

void hist_build_at(DispatchLevel level, CharHist& hist,
                   std::string_view s) noexcept {
#if defined(DNSNOISE_KERNELS_X86)
  switch (level) {
    case DispatchLevel::kAvx2:
      detail::hist_build_avx2(hist, s);
      return;
    case DispatchLevel::kSse2:
      detail::hist_build_sse2(hist, s);
      return;
    case DispatchLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  detail::hist_build_scalar(hist, s);
}

void hist_build(CharHist& hist, std::string_view s) noexcept {
  hist_build_at(hist_level(), hist, s);
}

void hist_reset(CharHist& hist) noexcept {
  for (int w = 0; w < 4; ++w) {
    std::uint64_t bits = hist.present[w];
    while (bits != 0) {
      const int k = std::countr_zero(bits);
      bits &= bits - 1;
      hist.counts[w * 64 + k] = 0;
    }
    hist.present[w] = 0;
  }
}

double entropy_from_hist(const CharHist& hist, std::uint64_t total) noexcept {
  if (total == 0) return 0.0;
  const EntropyTables& t = entropy_tables();
  double sum = 0.0;
  std::uint32_t distinct = 0;
  for (int w = 0; w < 4; ++w) {
    std::uint64_t bits = hist.present[w];
    while (bits != 0) {
      const int k = std::countr_zero(bits);
      bits &= bits - 1;
      const std::uint32_t count = hist.counts[w * 64 + k];
      sum += count < 256
                 ? t.xlogx[count]
                 : static_cast<double>(count) *
                       std::log2(static_cast<double>(count));
      ++distinct;
    }
  }
  // A single repeated symbol has exactly zero entropy; computing it via
  // log2(n) - n*log2(n)/n could round to a tiny nonzero residual.
  if (distinct <= 1) return 0.0;
  const double log2_total = total < 256
                                ? t.log2n[total]
                                : std::log2(static_cast<double>(total));
  const double h = log2_total - sum / static_cast<double>(total);
  return h > 0.0 ? h : 0.0;
}

double shannon_entropy_at(DispatchLevel level, std::string_view s) noexcept {
  CharHist& hist = scratch_hist();
  hist_build_at(level, hist, s);
  const double h = entropy_from_hist(hist, s.size());
  hist_reset(hist);
  return h;
}

double shannon_entropy(std::string_view s) noexcept {
  return shannon_entropy_at(hist_level(), s);
}

void entropy_many(std::span<const std::string_view> strings,
                  std::span<double> out) noexcept {
  const DispatchLevel level = hist_level();
  CharHist& hist = scratch_hist();
  for (std::size_t i = 0; i < strings.size(); ++i) {
    hist_build_at(level, hist, strings[i]);
    out[i] = entropy_from_hist(hist, strings[i].size());
    hist_reset(hist);
  }
}

NameScan normalize_name_at(DispatchLevel level, std::string_view in, char* out,
                           std::uint16_t* offsets) noexcept {
#if defined(DNSNOISE_KERNELS_X86)
  switch (level) {
    case DispatchLevel::kAvx2:
      return detail::normalize_name_avx2(in, out, offsets);
    case DispatchLevel::kSse2:
      return detail::normalize_name_sse2(in, out, offsets);
    case DispatchLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return detail::normalize_name_scalar(in, out, offsets);
}

NameScan normalize_name(std::string_view in, char* out,
                        std::uint16_t* offsets) noexcept {
  return normalize_name_at(active_level(), in, out, offsets);
}

namespace detail {

void hist_build_scalar(CharHist& hist, std::string_view s) noexcept {
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    ++hist.counts[c];
    hist.present[c >> 6] |= std::uint64_t{1} << (c & 63);
  }
}

NameScan normalize_name_scalar(std::string_view in, char* out,
                               std::uint16_t* offsets) noexcept {
  offsets[0] = 0;
  ScanState st;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const auto c = static_cast<unsigned char>(in[i]);
    if (kCharClass[c] == kClassDot) {
      const std::size_t len = i - st.label_start;
      if (len == 0 || len > 63) return {false, 0};
      out[i] = '.';
      st.label_start = i + 1;
      offsets[st.label_count++] = static_cast<std::uint16_t>(i + 1);
      continue;
    }
    if ((kCharClass[c] & kClassAllowed) == 0) return {false, 0};
    out[i] = kLowerTable[c];
  }
  return finish_scan(in.size(), st);
}

}  // namespace detail

}  // namespace dnsnoise::kernels
