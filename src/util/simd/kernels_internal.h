// Internal plumbing shared by the kernel dispatch layer (kernels.cc) and
// the per-ISA translation units (kernels_sse2.cc, kernels_avx2.cc).
//
// Everything here is integer bookkeeping: character class tables, the
// label-offset walk over dot bitmasks, and the scalar reference kernels
// the SIMD paths fall back to for oversized inputs.  Keeping the shared
// pieces integer-only is what makes cross-level bit-exactness automatic
// (see the determinism contract in kernels.h).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/simd/kernels.h"

namespace dnsnoise::kernels::detail {

// --- character classes (the LDH+underscore superset DomainName accepts) ----

inline constexpr std::uint8_t kClassAllowed = 1;  // alnum, '-', '_'
inline constexpr std::uint8_t kClassDot = 2;

inline constexpr std::array<std::uint8_t, 256> kCharClass = [] {
  std::array<std::uint8_t, 256> t{};
  for (int c = '0'; c <= '9'; ++c) t[static_cast<std::size_t>(c)] = kClassAllowed;
  for (int c = 'a'; c <= 'z'; ++c) t[static_cast<std::size_t>(c)] = kClassAllowed;
  for (int c = 'A'; c <= 'Z'; ++c) t[static_cast<std::size_t>(c)] = kClassAllowed;
  t[static_cast<std::size_t>('-')] = kClassAllowed;
  t[static_cast<std::size_t>('_')] = kClassAllowed;
  t[static_cast<std::size_t>('.')] = kClassDot;
  return t;
}();

inline constexpr std::array<char, 256> kLowerTable = [] {
  std::array<char, 256> t{};
  for (int c = 0; c < 256; ++c) t[static_cast<std::size_t>(c)] = static_cast<char>(c);
  for (int c = 'A'; c <= 'Z'; ++c) {
    t[static_cast<std::size_t>(c)] = static_cast<char>(c + 32);
  }
  return t;
}();

// --- label bookkeeping shared by the scalar and vector dot-scans ----------

struct ScanState {
  std::size_t label_start = 0;
  std::uint32_t label_count = 1;  // offsets[0] = 0 is written by the caller
};

/// Emits one label-start offset per set bit of `dots` (bit b = a dot at
/// byte base + b), validating that every finished label is 1..63 bytes.
/// Returns false on an empty or oversized label.
inline bool consume_dots(std::uint32_t dots, std::size_t base,
                         std::uint16_t* offsets, ScanState& st) noexcept {
  while (dots != 0) {
    const auto bit = static_cast<unsigned>(std::countr_zero(dots));
    dots &= dots - 1;
    const std::size_t pos = base + bit;
    const std::size_t len = pos - st.label_start;
    if (len == 0 || len > 63) return false;
    st.label_start = pos + 1;
    offsets[st.label_count++] = static_cast<std::uint16_t>(pos + 1);
  }
  return true;
}

/// Validates the final label of an `n`-byte name and closes the scan.
inline NameScan finish_scan(std::size_t n, const ScanState& st) noexcept {
  const std::size_t len = n - st.label_start;
  if (len == 0 || len > 63) return {false, 0};
  return {true, static_cast<std::uint16_t>(st.label_count)};
}

// --- per-level kernels ----------------------------------------------------

void hist_build_scalar(CharHist& hist, std::string_view s) noexcept;
NameScan normalize_name_scalar(std::string_view in, char* out,
                               std::uint16_t* offsets) noexcept;

#if defined(DNSNOISE_KERNELS_X86)
void hist_build_sse2(CharHist& hist, std::string_view s) noexcept;
void hist_build_avx2(CharHist& hist, std::string_view s) noexcept;
NameScan normalize_name_sse2(std::string_view in, char* out,
                             std::uint16_t* offsets) noexcept;
NameScan normalize_name_avx2(std::string_view in, char* out,
                             std::uint16_t* offsets) noexcept;
#endif

}  // namespace dnsnoise::kernels::detail
