// AVX2 kernels: 32-byte character classification for the name dot-scan
// and broadcast-compare byte histograms (a 63-byte label needs two
// compares per distinct symbol).
//
// Integer outputs only — bit-identical to the scalar kernels by
// construction; the parity tests assert it.
#include "util/simd/kernels_internal.h"

#if defined(DNSNOISE_KERNELS_X86)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace dnsnoise::kernels::detail {

namespace {

inline std::uint32_t eq_mask(__m256i v, __m256i needle) noexcept {
  return static_cast<std::uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(needle, v)));
}

}  // namespace

void hist_build_avx2(CharHist& hist, std::string_view s) noexcept {
  const std::size_t n = s.size();
  if (n == 0) return;
  if (n > 64) {
    hist_build_scalar(hist, s);
    return;
  }
  alignas(32) unsigned char buf[64] = {};
  std::memcpy(buf, s.data(), n);
  const __m256i v0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(buf));
  const __m256i v1 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(buf + 32));
  // Mask-consume loop: exactly one broadcast-compare per *distinct*
  // symbol.  `remaining` holds the not-yet-counted byte positions; each
  // pass counts every occurrence of the lowest remaining position's byte
  // and clears them all at once, so there is no per-position branch for
  // the predictor to miss on high-entropy labels.
  std::uint64_t remaining =
      n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  while (remaining != 0) {
    const unsigned char c = buf[std::countr_zero(remaining)];
    const __m256i needle = _mm256_set1_epi8(static_cast<char>(c));
    const std::uint64_t eq =
        static_cast<std::uint64_t>(eq_mask(v0, needle)) |
        (static_cast<std::uint64_t>(eq_mask(v1, needle)) << 32);
    const std::uint64_t hits = eq & remaining;
    remaining ^= hits;
    hist.counts[c] = static_cast<std::uint32_t>(std::popcount(hits));
    hist.present[c >> 6] |= std::uint64_t{1} << (c & 63);
  }
}

NameScan normalize_name_avx2(std::string_view in, char* out,
                             std::uint16_t* offsets) noexcept {
  const std::size_t n = in.size();
  offsets[0] = 0;
  ScanState st;
  const __m256i low_bit = _mm256_set1_epi8(0x20);
  const __m256i ch_a = _mm256_set1_epi8('a');
  const __m256i ch_z = _mm256_set1_epi8('z');
  const __m256i ch_0 = _mm256_set1_epi8('0');
  const __m256i ch_9 = _mm256_set1_epi8('9');
  const __m256i ch_dash = _mm256_set1_epi8('-');
  const __m256i ch_under = _mm256_set1_epi8('_');
  const __m256i ch_dot = _mm256_set1_epi8('.');
  for (std::size_t i = 0; i < n; i += 32) {
    const std::size_t take = std::min<std::size_t>(32, n - i);
    alignas(32) char buf[32];
    __m256i v;
    if (take == 32) {
      v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in.data() + i));
    } else {
      std::memset(buf, 'a', sizeof(buf));  // pad lanes classify as benign
      std::memcpy(buf, in.data() + i, take);
      v = _mm256_load_si256(reinterpret_cast<const __m256i*>(buf));
    }
    const __m256i folded = _mm256_or_si256(v, low_bit);
    const __m256i alpha = _mm256_and_si256(
        _mm256_cmpeq_epi8(_mm256_max_epu8(folded, ch_a), folded),
        _mm256_cmpeq_epi8(_mm256_min_epu8(folded, ch_z), folded));
    const __m256i digit =
        _mm256_and_si256(_mm256_cmpeq_epi8(_mm256_max_epu8(v, ch_0), v),
                         _mm256_cmpeq_epi8(_mm256_min_epu8(v, ch_9), v));
    const __m256i punct = _mm256_or_si256(_mm256_cmpeq_epi8(v, ch_dash),
                                          _mm256_cmpeq_epi8(v, ch_under));
    const __m256i dot = _mm256_cmpeq_epi8(v, ch_dot);
    const __m256i good = _mm256_or_si256(_mm256_or_si256(alpha, digit),
                                         _mm256_or_si256(punct, dot));
    const std::uint32_t valid =
        take == 32 ? 0xffffffffu : ((1u << take) - 1);
    const auto good_mask =
        static_cast<std::uint32_t>(_mm256_movemask_epi8(good));
    if ((good_mask & valid) != valid) return {false, 0};
    const __m256i lowered =
        _mm256_or_si256(v, _mm256_and_si256(alpha, low_bit));
    if (take == 32) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), lowered);
    } else {
      _mm256_store_si256(reinterpret_cast<__m256i*>(buf), lowered);
      std::memcpy(out + i, buf, take);
    }
    const std::uint32_t dots =
        static_cast<std::uint32_t>(_mm256_movemask_epi8(dot)) & valid;
    if (!consume_dots(dots, i, offsets, st)) return {false, 0};
  }
  return finish_scan(n, st);
}

}  // namespace dnsnoise::kernels::detail

#endif  // DNSNOISE_KERNELS_X86
