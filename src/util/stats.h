// Small statistics toolkit: summary statistics over samples and an online
// (streaming) accumulator.  Used by the feature extractor (entropy moments,
// CHR medians) and by the analytics/measurement layer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dnsnoise {

/// Summary of a sample: count, min, max, mean, median, variance (population).
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double variance = 0.0;
};

/// Computes the full summary of a sample.  Empty input yields a zero summary.
Summary summarize(std::span<const double> values);

/// Median of a sample (averaging the two central order statistics for even
/// sizes).  Empty input yields 0.
double median(std::span<const double> values);

/// q-th quantile (0 <= q <= 1) by linear interpolation between order
/// statistics.  Empty input yields 0.
double quantile(std::span<const double> values, double q);

/// Fraction of values strictly below `threshold`.  Empty input yields 0.
double fraction_below(std::span<const double> values, double threshold);

/// Fraction of values equal to `target` within `eps`.
double fraction_equal(std::span<const double> values, double target,
                      double eps = 1e-12);

/// Streaming mean/variance accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace dnsnoise
