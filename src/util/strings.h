// String helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dnsnoise {

/// Splits `s` on every occurrence of `sep`; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string_view>& parts, char sep);
std::string join(const std::vector<std::string>& parts, char sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Formats a count with thousands separators ("14488" -> "14,488").
std::string with_commas(std::uint64_t value);

/// Formats a double with fixed precision.
std::string fixed(double value, int precision);

/// Formats a ratio in [0,1] as a percentage string, e.g. "23.1%".
std::string percent(double ratio, int precision = 1);

}  // namespace dnsnoise
