#include "util/strings.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace dnsnoise {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

namespace {
template <typename Range>
std::string join_impl(const Range& parts, char sep) {
  std::string out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out.push_back(sep);
    out.append(part);
    first = false;
  }
  return out;
}
}  // namespace

std::string join(const std::vector<std::string_view>& parts, char sep) {
  return join_impl(parts, sep);
}

std::string join(const std::vector<std::string>& parts, char sep) {
  return join_impl(parts, sep);
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string percent(double ratio, int precision) {
  return fixed(ratio * 100.0, precision) + "%";
}

}  // namespace dnsnoise
