// ASCII rendering of tables and series, used by the benchmark harnesses to
// print the paper's tables and figure series in a readable form.
#pragma once

#include <cstddef>
#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace dnsnoise {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a header separator, right-padding every cell.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a (label, value) series as a horizontal ASCII bar chart, scaled to
/// `width` characters at the maximum value.  Used to sketch figure shapes in
/// bench output.
std::string ascii_bars(std::span<const std::pair<std::string, double>> series,
                       std::size_t width = 50);

/// Renders an (x, y) series as "x<TAB>y" lines, suitable for re-plotting.
std::string xy_series(std::span<const std::pair<double, double>> series,
                      const std::string& x_name, const std::string& y_name);

}  // namespace dnsnoise
