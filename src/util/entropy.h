// Shannon entropy of the character distribution of a string.
//
// The paper's tree-structure feature family (Section V-A2) is built from the
// per-label character entropy H(l): algorithmically generated labels (hex
// hashes, base32 digests, metric blobs) have high entropy relative to human
// labels ("www", "mail", dictionary words).
#pragma once

#include <string_view>

namespace dnsnoise {

/// Shannon entropy, in bits per character, of the byte histogram of `s`.
/// Empty strings have zero entropy.
double shannon_entropy(std::string_view s) noexcept;

/// Entropy normalised by the maximum achievable for the string's length
/// (log2 of the number of distinct achievable symbols given length), in
/// [0, 1].  Returns 0 for strings of length < 2.
double normalized_entropy(std::string_view s) noexcept;

}  // namespace dnsnoise
