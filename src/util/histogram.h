// Histograms and empirical CDFs for the measurement layer.
//
// The paper reports several distributional views: CDFs of domain/cache hit
// rates (Figs. 3b, 4, 7), log-scale lookup-volume tails (Fig. 3a), and a
// log-binned TTL histogram (Fig. 14).  These types produce those series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dnsnoise {

/// Fixed-width linear histogram over [lo, hi); values outside are clamped
/// into the first/last bin.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double value, std::uint64_t weight = 1) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }
  /// Center of the given bin.
  double bin_center(std::size_t bin) const;
  /// Lower edge of the given bin.
  double bin_lo(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Logarithmically binned histogram for positive values (e.g. TTLs 0..86400).
/// Zero values land in a dedicated underflow bin, mirroring the paper's
/// Fig. 14 where TTL=0 is plotted distinctly on a log axis.
class LogHistogram {
 public:
  /// bins_per_decade log10 bins covering [1, max]; values > max are clamped.
  LogHistogram(double max, std::size_t bins_per_decade = 4);

  void add(double value, std::uint64_t weight = 1) noexcept;

  std::uint64_t zero_count() const noexcept { return zero_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }
  /// Geometric center of the given bin.
  double bin_center(std::size_t bin) const;
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double max_;
  double bins_per_decade_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t zero_ = 0;
  std::uint64_t total_ = 0;
};

/// One (x, F(x)) point of an empirical CDF.
struct CdfPoint {
  double x = 0.0;
  double f = 0.0;
};

/// Empirical CDF evaluated at `points` evenly spaced quantile positions, in
/// the exact style of the paper's CDF figures.
std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::size_t points = 101);

/// Evaluates the empirical CDF of `values` at a specific x: P(X <= x).
double cdf_at(std::span<const double> values, double x);

}  // namespace dnsnoise
