#include "resolver/cluster.h"

namespace dnsnoise {

RdnsCluster::RdnsCluster(const ClusterConfig& config,
                         const SyntheticAuthority& authority)
    : authority_(authority),
      balancing_(config.balancing),
      rng_(config.seed) {
  if (config.server_count == 0) {
    throw std::invalid_argument("RdnsCluster: server_count must be > 0");
  }
  caches_.reserve(config.server_count);
  for (std::size_t i = 0; i < config.server_count; ++i) {
    caches_.emplace_back(config.cache);
  }
}

std::size_t RdnsCluster::pick_server(std::uint64_t client_id) {
  switch (balancing_) {
    case Balancing::kClientHash:
      return static_cast<std::size_t>(mix64(client_id) % caches_.size());
    case Balancing::kRandom:
      return static_cast<std::size_t>(rng_.below(caches_.size()));
    case Balancing::kRoundRobin: {
      const std::size_t server = round_robin_next_;
      round_robin_next_ = (round_robin_next_ + 1) % caches_.size();
      return server;
    }
  }
  return 0;
}

QueryOutcome RdnsCluster::query(std::uint64_t client_id,
                                const Question& question, SimTime now) {
  QueryOutcome outcome;
  outcome.server = pick_server(client_id);
  DnsCache& cache = caches_[outcome.server];
  const QuestionKey key{question.name.text(), question.type};

  if (const CachedAnswer* cached = cache.lookup(key, now)) {
    outcome.rcode = cached->rcode;
    outcome.cache_hit = true;
    outcome.answers = cached->answers;
  } else {
    // Cache miss: iterate to the authority; its answer is observed above.
    const AuthorityAnswer upstream = authority_.resolve(question, now);
    outcome.rcode = upstream.rcode;
    outcome.answers = upstream.answers;
    ++above_answers_;
    if (upstream.rcode == RCode::NoError) {
      ++answered_misses_;
      if (upstream.disposable_zone) ++disposable_answered_misses_;
    }
    if (upstream.dnssec_signed && upstream.rcode == RCode::NoError) {
      ++dnssec_validations_;
      if (upstream.disposable_zone) ++dnssec_disposable_validations_;
    }
    if (above_sink_) {
      above_sink_(now, question, upstream.rcode, upstream.answers);
    }
    if (upstream.rcode == RCode::NoError) {
      cache.insert_positive(key, upstream.answers, now,
                            upstream.disposable_zone);
    } else if (upstream.rcode == RCode::NXDomain) {
      cache.insert_negative(key, now);
    }
  }

  ++below_answers_;
  if (below_sink_) {
    below_sink_(now, client_id, question, outcome.rcode, outcome.answers);
  }
  return outcome;
}

DnsCacheStats RdnsCluster::aggregate_stats() const {
  DnsCacheStats total;
  for (const DnsCache& cache : caches_) {
    const DnsCacheStats& s = cache.stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.expired_misses += s.expired_misses;
    total.inserts += s.inserts;
    total.evictions += s.evictions;
    total.premature_evictions += s.premature_evictions;
    total.premature_nondisposable_evictions +=
        s.premature_nondisposable_evictions;
  }
  return total;
}

}  // namespace dnsnoise
