#include "resolver/cluster.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/sketch/traffic_sketch.h"

namespace dnsnoise {

RdnsCluster::RdnsCluster(const ClusterConfig& config,
                         const SyntheticAuthority& authority)
    : authority_(authority),
      balancing_(config.balancing),
      tap_batch_events_(std::max<std::size_t>(config.tap_batch_events, 1)),
      rng_(config.seed) {
  if (config.server_count == 0) {
    throw std::invalid_argument("RdnsCluster: server_count must be > 0");
  }
  caches_.reserve(config.server_count);
  for (std::size_t i = 0; i < config.server_count; ++i) {
    caches_.emplace_back(config.cache);
  }
  if (config.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *config.metrics;
    server_metrics_.reserve(config.server_count);
    for (std::size_t i = 0; i < config.server_count; ++i) {
      const std::string prefix =
          "cluster.server" + std::to_string(config.metrics_server_base + i);
      server_metrics_.push_back({&metrics.counter(prefix + ".cache_hits"),
                                 &metrics.counter(prefix + ".cache_misses"),
                                 &metrics.counter(prefix + ".nxdomain")});
    }
    below_answers_metric_ = &metrics.counter("cluster.below_answers");
    above_answers_metric_ = &metrics.counter("cluster.above_answers");
    tap_batch_size_ = &metrics.histogram("cluster.tap_batch_size", 1e6);
  }
  if (config.trace != nullptr) {
    trace_ = config.trace;
    server_trace_.reserve(config.server_count);
    for (std::size_t i = 0; i < config.server_count; ++i) {
      const auto server =
          static_cast<std::uint32_t>(config.metrics_server_base + i);
      // Sampling phase derives from the cluster's per-shard seed, so the
      // sampled query subset is fixed by (seed, server, query order) —
      // identical whichever thread runs the shard.
      server_trace_.push_back(
          {&trace_->stream(obs::TraceStage::kCluster, server),
           trace_->sampler(shard_seed(config.seed, server))});
    }
  }
}

RdnsCluster::~RdnsCluster() { flush_taps(); }

void RdnsCluster::add_tap_observer(TapObserver* observer) {
  if (observer == nullptr) {
    throw std::invalid_argument("RdnsCluster: null tap observer");
  }
  if (std::find(observers_.begin(), observers_.end(), observer) ==
      observers_.end()) {
    observers_.push_back(observer);
  }
}

void RdnsCluster::remove_tap_observer(TapObserver* observer) {
  flush_taps();
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void RdnsCluster::set_below_sink_impl(BelowSink sink) {
  // Flush before swapping so each sink sees exactly the events observed
  // while it was set (no-drop contract, same as remove_tap_observer).
  if (sink_adapter_registered_) flush_taps();
  sink_adapter_.below = std::move(sink);
  update_sink_adapter();
}

void RdnsCluster::set_above_sink_impl(AboveSink sink) {
  if (sink_adapter_registered_) flush_taps();
  sink_adapter_.above = std::move(sink);
  update_sink_adapter();
}

void RdnsCluster::update_sink_adapter() {
  const bool wanted = static_cast<bool>(sink_adapter_.below) ||
                      static_cast<bool>(sink_adapter_.above);
  if (wanted && !sink_adapter_registered_) {
    observers_.push_back(&sink_adapter_);
    sink_adapter_registered_ = true;
  } else if (!wanted && sink_adapter_registered_) {
    remove_tap_observer(&sink_adapter_);
    sink_adapter_registered_ = false;
  }
}

void RdnsCluster::set_traffic_sketch(obs::TrafficSketch* sketch) {
  // Drain before swapping so each sketch sees exactly the queries served
  // while it was attached (same no-drop contract as remove_tap_observer).
  if (traffic_sketch_ != nullptr) traffic_sketch_->flush_pending();
  traffic_sketch_ = sketch;
  if (sketch == nullptr) return;
  std::vector<const NameTable*> tables;
  tables.reserve(caches_.size());
  for (const DnsCache& cache : caches_) tables.push_back(&cache.names());
  sketch->bind_sources(std::move(tables));
}

void RdnsCluster::flush_taps() {
  if (traffic_sketch_ != nullptr) traffic_sketch_->flush_pending();
  if (tap_events_.empty()) return;
  if (tap_batch_size_ != nullptr) {
    tap_batch_size_->record(static_cast<double>(tap_events_.size()));
  }
  const TapBatch batch(tap_events_, tap_answers_);
  for (TapObserver* observer : observers_) observer->on_tap_batch(batch);
  tap_events_.clear();
  tap_answers_.clear();
}

void RdnsCluster::buffer_tap_event(SimTime ts, TapDirection direction,
                                   std::uint64_t client_id,
                                   const Question& question, RCode rcode,
                                   std::span<const ResourceRecord> answers) {
  TapEvent event;
  event.ts = ts;
  event.direction = direction;
  event.client_id = client_id;
  event.rcode = rcode;
  event.question = question;
  event.answer_offset = static_cast<std::uint32_t>(tap_answers_.size());
  event.answer_count = static_cast<std::uint32_t>(answers.size());
  tap_answers_.insert(tap_answers_.end(), answers.begin(), answers.end());
  tap_events_.push_back(std::move(event));
  if (tap_events_.size() >= tap_batch_events_) flush_taps();
}

std::size_t RdnsCluster::pick_server(std::uint64_t client_id) {
  switch (balancing_) {
    case Balancing::kClientHash:
      // Must match the traffic shard routing: see shard_of() in util/rng.h.
      return shard_of(client_id, caches_.size());
    case Balancing::kRandom:
      return static_cast<std::size_t>(rng_.below(caches_.size()));
    case Balancing::kRoundRobin: {
      const std::size_t server = round_robin_next_;
      round_robin_next_ = (round_robin_next_ + 1) % caches_.size();
      return server;
    }
  }
  return 0;
}

QueryView RdnsCluster::query_view(std::uint64_t client_id,
                                  const Question& question, SimTime now) {
  QueryView view;
  view.server = pick_server(client_id);
  DnsCache& cache = caches_[view.server];
  const std::string& qname = question.name.text();

  ServerMetrics* const metrics =
      server_metrics_.empty() ? nullptr : &server_metrics_[view.server];
  // Deterministic head sampling: the per-server counter advances on every
  // query, so the traced subset is a pure function of the query order.
  ServerTrace* const trace =
      server_trace_.empty() ? nullptr : &server_trace_[view.server];
  const bool traced = trace != nullptr && trace->sampler.sample();
  const std::uint64_t trace_start = traced ? trace_->now_ns() : 0;

  // Traffic-sketch hook: intern the qname up front — one pass over the
  // name bytes, exactly what lookup()'s own probe costs — so the sketch
  // can be handed a table-stable id once the outcome is known.  The
  // interned probe reuses the stored hash instead of rehashing.
  obs::TrafficSketch* const sketch = traffic_sketch_;
  NameId sketch_name = kInvalidNameId;
  const CachedAnswer* cached;
  if (sketch == nullptr) {
    cached = cache.lookup(qname, question.type, now);
  } else {
    sketch_name = cache.intern_name(qname);
    cached = cache.lookup_interned(sketch_name, question.type, now);
  }
  if (cached != nullptr) {
    view.rcode = cached->rcode;
    view.cache_hit = true;
    view.answers = cached->answers;
    if (metrics != nullptr) metrics->cache_hits->add();
  } else {
    // Cache miss: iterate to the authority; its answer is observed above.
    AuthorityAnswer upstream = authority_.resolve(question, now);
    view.rcode = upstream.rcode;
    ++above_answers_;
    if (metrics != nullptr) {
      metrics->cache_misses->add();
      above_answers_metric_->add();
    }
    if (upstream.rcode == RCode::NoError) {
      ++answered_misses_;
      if (upstream.disposable_zone) ++disposable_answered_misses_;
    }
    if (upstream.dnssec_signed && upstream.rcode == RCode::NoError) {
      ++dnssec_validations_;
      if (upstream.disposable_zone) ++dnssec_disposable_validations_;
    }
    // Buffer the above-tap copy before the answers may be moved into the
    // cache below.
    if (!observers_.empty()) {
      buffer_tap_event(now, TapDirection::kAbove, 0, question, upstream.rcode,
                       upstream.answers);
    }
    const CachedAnswer* resident = nullptr;
    if (upstream.rcode == RCode::NoError) {
      resident = cache.insert_positive(qname, question.type, upstream.answers,
                                       now, upstream.disposable_zone);
    } else if (upstream.rcode == RCode::NXDomain) {
      cache.insert_negative(qname, question.type, now);
    }
    if (resident != nullptr) {
      view.answers = resident->answers;
    } else {
      // Uncacheable (zero TTL / empty / error): park the answers in the
      // scratch buffer so the view outlives `upstream`.
      miss_answers_ = std::move(upstream.answers);
      view.answers = miss_answers_;
    }
  }

  ++below_answers_;
  if (metrics != nullptr) {
    below_answers_metric_->add();
    if (view.rcode == RCode::NXDomain) metrics->nxdomain->add();
  }
  if (!observers_.empty()) {
    buffer_tap_event(now, TapDirection::kBelow, client_id, question,
                     view.rcode, view.answers);
  }
  if (sketch != nullptr && !qname.empty()) {
    sketch->observe(static_cast<std::uint32_t>(view.server), sketch_name,
                    client_id, view.rcode, now);
  }
  if (traced) {
    const obs::TraceOutcome outcome =
        view.rcode == RCode::NXDomain ? obs::TraceOutcome::kNxDomain
        : view.cache_hit              ? obs::TraceOutcome::kHit
                                      : obs::TraceOutcome::kMiss;
    trace->stream->span(obs::TraceOp::kClusterQuery, trace_start,
                        trace_->now_ns() - trace_start, qname,
                        static_cast<std::uint16_t>(question.type), outcome);
  }
  return view;
}

QueryOutcome RdnsCluster::query(std::uint64_t client_id,
                                const Question& question, SimTime now) {
  const QueryView view = query_view(client_id, question, now);
  QueryOutcome outcome;
  outcome.rcode = view.rcode;
  outcome.cache_hit = view.cache_hit;
  outcome.server = view.server;
  outcome.answers.assign(view.answers.begin(), view.answers.end());
  return outcome;
}

DnsCacheStats RdnsCluster::aggregate_stats() const {
  DnsCacheStats total;
  for (const DnsCache& cache : caches_) accumulate(total, cache.stats());
  return total;
}

}  // namespace dnsnoise
