// Wire-format DNS front-end for the RDNS cluster (DESIGN.md §14).
//
// Turns the simulated cluster into a real DNS server: RFC 1035 queries
// arrive over UDP (per-core SO_REUSEPORT shards, recvmmsg/sendmmsg
// batching via net/udp_server) or TCP, are decoded with the non-throwing
// bounds-checked codec (dns/wire), routed through RdnsCluster::query_view
// — the same zero-copy path in-process traffic takes, so served queries
// feed the same batched tap, caches, and metrics — and the answer is
// encoded back to the wire.  Responses larger than the UDP payload limit
// are truncated (TC=1) and the client retries over the TCP listener on the
// same port.
//
// Robustness contract: malformed input never crashes the server.  Payloads
// too short to carry a header are dropped; anything else undecodable is
// answered with FORMERR.  Decoding and encoding run concurrently on the
// shard threads; only the cluster round trip itself is serialized (the
// cluster and its tap observers are single-threaded by design).
//
// Replay mode (allow_replay_meta): queries may carry the (timestamp,
// client) pair of a captured timeline in a reserved TXT additional record
// (net/udp_client.h), which the frontend consumes instead of assigning
// live values — the mechanism behind the "findings are bit-identical
// in-process vs over-the-socket" golden test.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "net/udp_server.h"
#include "obs/heartbeat.h"
#include "obs/latency.h"
#include "resolver/cluster.h"
#include "util/sim_time.h"

namespace dnsnoise {

struct WireFrontendConfig {
  /// Transport configuration (port 0 picks an ephemeral port; the TCP
  /// listener binds the same resolved port).
  net::UdpServerConfig udp;
  /// Serve truncated responses in full over TCP.
  bool tcp_fallback = true;
  /// UDP responses above this size are truncated to a TC=1 header+question
  /// (classic 512-byte limit; this codec speaks no EDNS0).
  std::size_t max_udp_payload = 512;
  /// Honor replay-meta records (see net/udp_client.h).  Off for real
  /// traffic: clients must not choose their own timestamps.
  bool allow_replay_meta = false;
  /// Simulated timestamp of the serving day's start; live queries get
  /// day_start + seconds-since-start(), clamped into the day.
  SimTime day_start = 0;
  /// Opt-in observability: registers the server.* counters and the
  /// "server" heartbeat stage.  Must outlive the frontend; null disables.
  obs::MetricsRegistry* metrics = nullptr;
  /// With metrics on, every well-formed query's decode → cluster →
  /// encode spans are recorded into wait-free per-thread latency shards
  /// (obs/latency) and periodically flushed into the registry's
  /// server.latency.{decode,cluster,encode,total}_ns histograms — the
  /// OpenMetrics `_bucket`/`_percentile` series on /metrics.
  bool track_latency = true;
  /// Queries whose total span lands among the `slowlog_capacity` slowest
  /// are kept with their stage breakdown (slowlog_json / GET /slowlog).
  std::size_t slowlog_capacity = 32;
  /// Flush period: each serving thread folds latency deltas into the
  /// registry histograms every N answered queries.
  std::uint64_t latency_flush_every_n = 512;
};

/// Per-stage merged latency views (exact once serving threads quiesce).
struct StageLatencyBreakdown {
  obs::LatencySnapshot decode;
  obs::LatencySnapshot cluster;  // includes the cluster-mutex wait: that
                                 // queueing delay is real serving latency
  obs::LatencySnapshot encode;
  obs::LatencySnapshot total;
};

/// Monotonic counters of the wire front-end (also exported as server.*
/// metrics when a registry is configured).
struct WireFrontendStats {
  std::uint64_t queries = 0;      // well-formed queries answered
  std::uint64_t udp_queries = 0;  // ... of which arrived over UDP
  std::uint64_t tcp_queries = 0;  // ... of which arrived over TCP
  std::uint64_t formerr = 0;      // undecodable, answered FORMERR
  std::uint64_t notimp = 0;       // non-QUERY opcode, answered NOTIMP
  std::uint64_t dropped = 0;      // unanswerable (short/looping/response)
  std::uint64_t truncated = 0;    // UDP responses cut to TC=1
};

class WireFrontend {
 public:
  /// `cluster` must outlive the frontend and must not be driven by anyone
  /// else while the frontend is running.
  WireFrontend(RdnsCluster& cluster, const WireFrontendConfig& config);
  ~WireFrontend();

  WireFrontend(const WireFrontend&) = delete;
  WireFrontend& operator=(const WireFrontend&) = delete;

  /// Binds UDP (and, with tcp_fallback, TCP) and starts serving.  Returns
  /// false with the reason in error().
  bool start();
  void stop();

  bool running() const noexcept { return udp_.running(); }
  std::uint16_t udp_port() const noexcept { return udp_.port(); }
  std::uint16_t tcp_port() const noexcept { return tcp_.port(); }
  std::size_t shard_count() const noexcept { return udp_.shard_count(); }
  const std::string& error() const noexcept { return error_; }

  WireFrontendStats stats() const noexcept;

  /// Whether per-query stage latency is being recorded (metrics wired
  /// and config.track_latency).
  bool latency_tracked() const noexcept { return latency_enabled_; }

  /// Merged per-stage latency snapshots (decode / cluster / encode /
  /// total); zeros when latency_tracked() is false.
  StageLatencyBreakdown stage_latency() const;

  /// Folds all not-yet-published latency counts into the registry
  /// histograms now.  The periodic flush covers steady state; call this
  /// for the final partial window before reading the registry.  The
  /// registry must still be alive — stop() deliberately never flushes,
  /// because a stopped frontend may outlive its registry.
  void flush_latency_metrics();

  /// dnsnoise-slowlog-v1 JSON of the worst-N queries (obs::SlowQueryLog);
  /// wire it to TelemetryServer::set_slowlog_source for GET /slowlog.
  /// `max_entries` caps the emitted entries (0 = all retained).
  std::string slowlog_json(std::size_t max_entries = 0) const {
    return slowlog_.to_json(max_entries);
  }

  /// Drops all recorded slow queries (POST /slowlog/clear).
  void clear_slowlog() { slowlog_.clear(); }

  /// The slowest retained queries with stage breakdowns, slowest first.
  std::vector<obs::SlowQueryEntry> slow_queries() const {
    return slowlog_.entries();
  }

  enum class Transport : std::uint8_t { kUdp, kTcp };

  /// The pure wire-level request handler both transports dispatch to,
  /// exposed for table-driven robustness tests: decode, route, encode.
  /// Returns false to drop (no response).  Thread-safe.
  bool handle_query(std::span<const std::uint8_t> request,
                    const net::UdpPeer& peer,
                    std::vector<std::uint8_t>& response, Transport transport);

 private:
  SimTime live_timestamp() const noexcept;
  void record_stage_latency(std::uint64_t decode_ns, std::uint64_t cluster_ns,
                            std::uint64_t encode_ns, SimTime ts,
                            const std::string& qname);

  RdnsCluster& cluster_;
  WireFrontendConfig config_;
  net::UdpServer udp_;
  net::DnsTcpListener tcp_;
  std::string error_;
  std::mutex cluster_mutex_;
  std::chrono::steady_clock::time_point started_{};
  obs::Heartbeat heartbeat_;

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> udp_queries_{0};
  std::atomic<std::uint64_t> tcp_queries_{0};
  std::atomic<std::uint64_t> formerr_{0};
  std::atomic<std::uint64_t> notimp_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> truncated_{0};

  // Pre-resolved metric handles (registry lookups are mutex-guarded; the
  // serve path must stay lock-free outside the cluster round trip).
  obs::Counter* queries_metric_ = nullptr;
  obs::Counter* formerr_metric_ = nullptr;
  obs::Counter* notimp_metric_ = nullptr;
  obs::Counter* dropped_metric_ = nullptr;
  obs::Counter* truncated_metric_ = nullptr;
  obs::Counter* tcp_metric_ = nullptr;

  // Per-query stage latency (obs/latency): wait-free per-thread shards,
  // periodically delta-flushed into the registry histograms below.
  bool latency_enabled_ = false;
  obs::LatencyRecorder decode_latency_;
  obs::LatencyRecorder cluster_latency_;
  obs::LatencyRecorder encode_latency_;
  obs::LatencyRecorder total_latency_;
  obs::SlowQueryLog slowlog_;
  std::atomic<std::uint64_t> flush_tick_{0};
  std::mutex flush_mutex_;  // guards published_* (one flusher at a time)
  obs::LatencySnapshot published_decode_;
  obs::LatencySnapshot published_cluster_;
  obs::LatencySnapshot published_encode_;
  obs::LatencySnapshot published_total_;
  obs::Histogram* decode_hist_ = nullptr;
  obs::Histogram* cluster_hist_ = nullptr;
  obs::Histogram* encode_hist_ = nullptr;
  obs::Histogram* total_hist_ = nullptr;
};

}  // namespace dnsnoise
