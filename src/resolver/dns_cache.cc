#include "resolver/dns_cache.h"

#include <algorithm>

namespace dnsnoise {

DnsCache::DnsCache(const DnsCacheConfig& config)
    : config_(config),
      names_(/*track_labels=*/false),
      cache_(config.capacity) {
  cache_.set_eviction_listener(
      [this](const Key&, const CachedAnswer& answer) {
        ++stats_.evictions;
        if (answer.expires > now_) {
          ++stats_.premature_evictions;
          if (!answer.disposable_hint) {
            ++stats_.premature_nondisposable_evictions;
          }
        }
      });
}

const CachedAnswer* DnsCache::lookup(std::string_view name, RRType type,
                                     SimTime now) {
  now_ = now;
  const NameId id = names_.find(name);
  if (id == kInvalidNameId) {
    // Name never cached (or long since forgotten by the intern table's
    // clients): definite miss, no LRU probe needed.
    ++stats_.misses;
    return nullptr;
  }
  const Key key = make_key(id, type);
  CachedAnswer* entry = cache_.get(key);
  if (entry == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  if (entry->expires <= now) {
    cache_.erase(key);
    ++stats_.expired_misses;
    return nullptr;
  }
  ++stats_.hits;
  return entry;
}

const CachedAnswer* DnsCache::lookup_interned(NameId id, RRType type,
                                              SimTime now) {
  now_ = now;
  const Key key = make_key(id, type);
  CachedAnswer* entry = cache_.get(key);
  if (entry == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  if (entry->expires <= now) {
    cache_.erase(key);
    ++stats_.expired_misses;
    return nullptr;
  }
  ++stats_.hits;
  return entry;
}

const CachedAnswer* DnsCache::insert_positive(
    std::string_view name, RRType type, std::vector<ResourceRecord>& answers,
    SimTime now, bool disposable_hint) {
  if (answers.empty()) return nullptr;
  now_ = now;
  std::uint32_t ttl = answers.front().ttl;
  for (const ResourceRecord& rr : answers) ttl = std::min(ttl, rr.ttl);
  ttl = std::clamp(ttl, config_.min_ttl, config_.max_ttl);
  if (ttl == 0) return nullptr;  // zero-TTL answers are never cached
  const Key key = make_key(names_.intern(name), type);
  CachedAnswer entry;
  entry.rcode = RCode::NoError;
  entry.answers = std::move(answers);
  entry.inserted = now;
  entry.expires = now + ttl;
  entry.disposable_hint = disposable_hint;
  CachedAnswer* resident =
      (config_.low_priority_disposable && disposable_hint)
          ? cache_.put_cold(key, std::move(entry))
          : cache_.put(key, std::move(entry));
  ++stats_.inserts;
  return resident;
}

void DnsCache::insert_negative(std::string_view name, RRType type,
                               SimTime now) {
  if (!config_.negative_cache) return;
  now_ = now;
  const Key key = make_key(names_.intern(name), type);
  CachedAnswer entry;
  entry.rcode = RCode::NXDomain;
  entry.inserted = now;
  entry.expires = now + config_.negative_ttl;
  entry.disposable_hint = false;
  cache_.put(key, std::move(entry));
  ++stats_.inserts;
}

}  // namespace dnsnoise
