#include "resolver/dns_cache.h"

#include <algorithm>

namespace dnsnoise {

DnsCache::DnsCache(const DnsCacheConfig& config)
    : config_(config), cache_(config.capacity) {
  cache_.set_eviction_listener(
      [this](const QuestionKey&, const CachedAnswer& answer) {
        ++stats_.evictions;
        if (answer.expires > now_) {
          ++stats_.premature_evictions;
          if (!answer.disposable_hint) {
            ++stats_.premature_nondisposable_evictions;
          }
        }
      });
}

const CachedAnswer* DnsCache::lookup(const QuestionKey& key, SimTime now) {
  now_ = now;
  CachedAnswer* entry = cache_.get(key);
  if (entry == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  if (entry->expires <= now) {
    cache_.erase(key);
    ++stats_.expired_misses;
    return nullptr;
  }
  ++stats_.hits;
  return entry;
}

void DnsCache::insert_positive(const QuestionKey& key,
                               std::vector<ResourceRecord> answers,
                               SimTime now, bool disposable_hint) {
  if (answers.empty()) return;
  now_ = now;
  std::uint32_t ttl = answers.front().ttl;
  for (const ResourceRecord& rr : answers) ttl = std::min(ttl, rr.ttl);
  ttl = std::clamp(ttl, config_.min_ttl, config_.max_ttl);
  if (ttl == 0) return;  // zero-TTL answers are never cached
  CachedAnswer entry;
  entry.rcode = RCode::NoError;
  entry.answers = std::move(answers);
  entry.inserted = now;
  entry.expires = now + ttl;
  entry.disposable_hint = disposable_hint;
  if (config_.low_priority_disposable && disposable_hint) {
    cache_.put_cold(key, std::move(entry));
  } else {
    cache_.put(key, std::move(entry));
  }
  ++stats_.inserts;
}

void DnsCache::insert_negative(const QuestionKey& key, SimTime now) {
  if (!config_.negative_cache) return;
  now_ = now;
  CachedAnswer entry;
  entry.rcode = RCode::NXDomain;
  entry.inserted = now;
  entry.expires = now + config_.negative_ttl;
  entry.disposable_hint = false;
  cache_.put(key, std::move(entry));
  ++stats_.inserts;
}

}  // namespace dnsnoise
