// TTL-aware DNS answer cache, keyed by question (qname, qtype).
//
// Models the cache of one recursive server: fixed-capacity LRU beneath a
// TTL layer.  Expired entries count as misses.  Negative caching
// (RFC 2308) is optional — the paper observes the monitored resolvers were
// *not* honoring it, so the default is off (Section III-C1).
#pragma once

#include <cstdint>
#include <vector>

#include "dns/rr.h"
#include "resolver/lru_cache.h"
#include "util/sim_time.h"

namespace dnsnoise {

/// A cached answer RRset (positive or negative).
struct CachedAnswer {
  RCode rcode = RCode::NoError;
  std::vector<ResourceRecord> answers;
  SimTime inserted = 0;
  SimTime expires = 0;
  bool disposable_hint = false;  // set by experiments that know ground truth
};

struct DnsCacheConfig {
  std::size_t capacity = 1 << 20;
  bool negative_cache = false;     // RFC 2308 negative caching
  std::uint32_t negative_ttl = 300;
  /// Some implementations clamp tiny TTLs up (paper §VI-A cites RFC 1536 /
  /// RFC 1912 behaviour of holding records a minimum time).
  std::uint32_t min_ttl = 0;
  std::uint32_t max_ttl = 86400;
  /// Section VI-A mitigation: entries flagged disposable are inserted at
  /// the cold end of the LRU, so they never displace useful records.
  bool low_priority_disposable = false;
};

struct DnsCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;              // absent entries
  std::uint64_t expired_misses = 0;      // present but TTL-expired
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;           // total LRU evictions
  std::uint64_t premature_evictions = 0; // evicted while still fresh
  /// Premature evictions of entries *not* flagged disposable — the paper's
  /// collateral-damage metric (useful records pushed out by noise).
  std::uint64_t premature_nondisposable_evictions = 0;

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses + expired_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Adds `delta` into `total` field-wise — the one definition of cache-stat
/// merging, shared by cluster aggregation and engine shard merging.
inline void accumulate(DnsCacheStats& total,
                       const DnsCacheStats& delta) noexcept {
  total.hits += delta.hits;
  total.misses += delta.misses;
  total.expired_misses += delta.expired_misses;
  total.inserts += delta.inserts;
  total.evictions += delta.evictions;
  total.premature_evictions += delta.premature_evictions;
  total.premature_nondisposable_evictions +=
      delta.premature_nondisposable_evictions;
}

class DnsCache {
 public:
  explicit DnsCache(const DnsCacheConfig& config);

  /// Fresh cached answer for `key`, or nullptr (miss).  Misses and hits are
  /// tallied; expired entries are erased on access.
  const CachedAnswer* lookup(const QuestionKey& key, SimTime now);

  /// Inserts a positive answer.  TTL is the minimum TTL across `answers`,
  /// clamped to [min_ttl, max_ttl]; an empty answer set or effective TTL of
  /// zero is not cached.
  void insert_positive(const QuestionKey& key,
                       std::vector<ResourceRecord> answers, SimTime now,
                       bool disposable_hint = false);

  /// Inserts a negative (NXDOMAIN) entry if negative caching is enabled.
  void insert_negative(const QuestionKey& key, SimTime now);

  const DnsCacheStats& stats() const noexcept { return stats_; }
  std::size_t size() const noexcept { return cache_.size(); }
  std::size_t capacity() const noexcept { return cache_.capacity(); }

  /// Visits every resident entry (fresh or expired), MRU first.
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    cache_.for_each(std::forward<Visitor>(visit));
  }

 private:
  DnsCacheConfig config_;
  LruCache<QuestionKey, CachedAnswer> cache_;
  DnsCacheStats stats_;
  SimTime now_ = 0;  // updated on every lookup/insert, read by the listener
};

}  // namespace dnsnoise
