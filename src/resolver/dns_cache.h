// TTL-aware DNS answer cache, keyed by question (qname, qtype).
//
// Models the cache of one recursive server: fixed-capacity LRU beneath a
// TTL layer.  Expired entries count as misses.  Negative caching
// (RFC 2308) is optional — the paper observes the monitored resolvers were
// *not* honoring it, so the default is off (Section III-C1).
//
// Internally keyed on (NameId, qtype): qnames are interned once into a
// per-cache NameTable, the LRU is probed with the precomputed name hash,
// and the hot lookup/insert path takes string_views — no QuestionKey
// construction, no string copies.  A lookup for a never-interned name is a
// miss without touching the LRU at all.  The QuestionKey overloads remain
// as compatibility shims.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "dns/name_table.h"
#include "dns/rr.h"
#include "resolver/lru_cache.h"
#include "util/sim_time.h"

namespace dnsnoise {

/// A cached answer RRset (positive or negative).
struct CachedAnswer {
  RCode rcode = RCode::NoError;
  std::vector<ResourceRecord> answers;
  SimTime inserted = 0;
  SimTime expires = 0;
  bool disposable_hint = false;  // set by experiments that know ground truth
};

struct DnsCacheConfig {
  std::size_t capacity = 1 << 20;
  bool negative_cache = false;     // RFC 2308 negative caching
  std::uint32_t negative_ttl = 300;
  /// Some implementations clamp tiny TTLs up (paper §VI-A cites RFC 1536 /
  /// RFC 1912 behaviour of holding records a minimum time).
  std::uint32_t min_ttl = 0;
  std::uint32_t max_ttl = 86400;
  /// Section VI-A mitigation: entries flagged disposable are inserted at
  /// the cold end of the LRU, so they never displace useful records.
  bool low_priority_disposable = false;
};

struct DnsCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;              // absent entries
  std::uint64_t expired_misses = 0;      // present but TTL-expired
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;           // total LRU evictions
  std::uint64_t premature_evictions = 0; // evicted while still fresh
  /// Premature evictions of entries *not* flagged disposable — the paper's
  /// collateral-damage metric (useful records pushed out by noise).
  std::uint64_t premature_nondisposable_evictions = 0;

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses + expired_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Adds `delta` into `total` field-wise — the one definition of cache-stat
/// merging, shared by cluster aggregation and engine shard merging.
inline void accumulate(DnsCacheStats& total,
                       const DnsCacheStats& delta) noexcept {
  total.hits += delta.hits;
  total.misses += delta.misses;
  total.expired_misses += delta.expired_misses;
  total.inserts += delta.inserts;
  total.evictions += delta.evictions;
  total.premature_evictions += delta.premature_evictions;
  total.premature_nondisposable_evictions +=
      delta.premature_nondisposable_evictions;
}

class DnsCache {
 public:
  explicit DnsCache(const DnsCacheConfig& config);

  // --- Hot path (string_view, interned) ------------------------------------

  /// Fresh cached answer for (name, type), or nullptr (miss).  Misses and
  /// hits are tallied; expired entries are erased on access.  Never
  /// allocates; the pointer stays valid until the next mutating call.
  const CachedAnswer* lookup(std::string_view name, RRType type, SimTime now);

  /// Interns `name` into the cache's qname pool and returns its stable id.
  /// Unlike lookup(), this registers names the cache has never answered for
  /// (NXDOMAIN noise under negative_cache=false never reaches insert_*), so
  /// the traffic-sketch hook can key *every* query by a dense per-server id
  /// whose text and hash outlive the query.  Hashing cost is identical to
  /// lookup()'s own probe — one pass over the name bytes.
  NameId intern_name(std::string_view name) { return names_.intern(name); }

  /// lookup() for a pre-interned qname: same stats tallies, same expiry
  /// eviction, but keyed by id so the name bytes are not rehashed.  Pair
  /// with intern_name() when the caller needs the id anyway.
  const CachedAnswer* lookup_interned(NameId id, RRType type, SimTime now);

  /// The cache's qname intern pool (id -> text/hash).  Arena-stable views;
  /// the traffic sketch resolves ring records through this table.
  const NameTable& names() const noexcept { return names_; }

  /// Inserts a positive answer and returns the resident entry, or nullptr
  /// when the answer is uncacheable (empty set or effective TTL 0 after the
  /// [min_ttl, max_ttl] clamp).  `answers` is consumed (moved from) only on
  /// a non-null return, so callers may keep using it when the insert was
  /// declined.
  const CachedAnswer* insert_positive(std::string_view name, RRType type,
                                      std::vector<ResourceRecord>& answers,
                                      SimTime now,
                                      bool disposable_hint = false);

  /// Inserts a negative (NXDOMAIN) entry if negative caching is enabled.
  void insert_negative(std::string_view name, RRType type, SimTime now);

  // --- QuestionKey compatibility shims -------------------------------------

  const CachedAnswer* lookup(const QuestionKey& key, SimTime now) {
    return lookup(key.name, key.type, now);
  }
  void insert_positive(const QuestionKey& key,
                       std::vector<ResourceRecord> answers, SimTime now,
                       bool disposable_hint = false) {
    insert_positive(key.name, key.type, answers, now, disposable_hint);
  }
  void insert_negative(const QuestionKey& key, SimTime now) {
    insert_negative(key.name, key.type, now);
  }

  // -------------------------------------------------------------------------

  const DnsCacheStats& stats() const noexcept { return stats_; }
  std::size_t size() const noexcept { return cache_.size(); }
  std::size_t capacity() const noexcept { return cache_.capacity(); }

  /// Visits every resident entry (fresh or expired), MRU first.  The
  /// visitor receives a materialized QuestionKey (this is the diagnostic /
  /// test path, not the hot one).
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    cache_.for_each([this, &visit](const Key& key, const CachedAnswer& value) {
      visit(QuestionKey{std::string(names_.name(key.name)), key.type}, value);
    });
  }

 private:
  /// Interned cache key with its precomputed hash (the LRU never rehashes
  /// key bytes).
  struct Key {
    NameId name = kInvalidNameId;
    RRType type = RRType::A;
    std::uint64_t hash = 0;

    friend bool operator==(const Key& a, const Key& b) noexcept {
      return a.name == b.name && a.type == b.type;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      return static_cast<std::size_t>(key.hash);
    }
  };

  Key make_key(NameId id, RRType type) const noexcept {
    return Key{id, type,
               mix64(names_.name_hash(id) ^
                     mix64(static_cast<std::uint64_t>(type)))};
  }

  DnsCacheConfig config_;
  NameTable names_;  // qname intern pool; lives as long as the cache
  LruCache<Key, CachedAnswer, KeyHash> cache_;
  DnsCacheStats stats_;
  SimTime now_ = 0;  // updated on every lookup/insert, read by the listener
};

}  // namespace dnsnoise
