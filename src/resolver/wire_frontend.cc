#include "resolver/wire_frontend.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "dns/wire.h"
#include "net/udp_client.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace dnsnoise {

namespace {

constexpr std::size_t kWireHeaderSize = 12;

/// Stable anonymized client id for a socket peer — the live-mode stand-in
/// for the simulator's client ids.
std::uint64_t client_id_for_peer(const net::UdpPeer& peer) {
  return mix64((static_cast<std::uint64_t>(peer.addr) << 16) ^ peer.port);
}

void bump(std::atomic<std::uint64_t>& local, obs::Counter* metric) {
  local.fetch_add(1, std::memory_order_relaxed);
  if (metric != nullptr) metric->add(1);
}

/// Minimal response skeleton echoing the request identity.
DnsMessage make_skeleton(std::uint16_t id, bool rd, RCode rcode) {
  DnsMessage response;
  response.header.id = id;
  response.header.qr = true;
  response.header.rd = rd;
  response.header.ra = true;
  response.header.rcode = rcode;
  return response;
}

}  // namespace

WireFrontend::WireFrontend(RdnsCluster& cluster,
                           const WireFrontendConfig& config)
    : cluster_(cluster),
      config_(config),
      heartbeat_(config.metrics, "server", /*every_n=*/64),
      // One shard per UDP serving thread plus margin for TCP handlers.
      // More threads than shards only share-write min/max maintenance
      // (counts stay exact: they are fetch_add).
      decode_latency_(config.udp.shards + 4),
      cluster_latency_(config.udp.shards + 4),
      encode_latency_(config.udp.shards + 4),
      total_latency_(config.udp.shards + 4),
      slowlog_(config.slowlog_capacity) {
  if (config_.metrics != nullptr) {
    queries_metric_ = &config_.metrics->counter("server.queries");
    formerr_metric_ = &config_.metrics->counter("server.formerr");
    notimp_metric_ = &config_.metrics->counter("server.notimp");
    dropped_metric_ = &config_.metrics->counter("server.dropped");
    truncated_metric_ = &config_.metrics->counter("server.truncated");
    tcp_metric_ = &config_.metrics->counter("server.tcp_queries");
    if (config_.track_latency) {
      latency_enabled_ = true;
      // 8 bins/decade keeps the exposition's within-bin interpolation
      // error ≤ ~33% — the recorder itself stays the precise view.
      constexpr double kMaxNs = 1e10;
      constexpr std::size_t kBins = 8;
      decode_hist_ =
          &config_.metrics->histogram("server.latency.decode_ns", kMaxNs,
                                      kBins);
      cluster_hist_ =
          &config_.metrics->histogram("server.latency.cluster_ns", kMaxNs,
                                      kBins);
      encode_hist_ =
          &config_.metrics->histogram("server.latency.encode_ns", kMaxNs,
                                      kBins);
      total_hist_ =
          &config_.metrics->histogram("server.latency.total_ns", kMaxNs,
                                      kBins);
    }
  }
}

WireFrontend::~WireFrontend() { stop(); }

bool WireFrontend::start() {
  if (running()) {
    error_ = "frontend already running";
    return false;
  }
  error_.clear();
  started_ = std::chrono::steady_clock::now();
  const auto udp_handler = [this](std::span<const std::uint8_t> request,
                                  const net::UdpPeer& peer,
                                  std::vector<std::uint8_t>& response) {
    return handle_query(request, peer, response, Transport::kUdp);
  };
  if (!udp_.start(config_.udp, udp_handler)) {
    error_ = "udp: " + udp_.error();
    return false;
  }
  if (config_.tcp_fallback) {
    const auto tcp_handler = [this](std::span<const std::uint8_t> request,
                                    const net::UdpPeer& peer,
                                    std::vector<std::uint8_t>& response) {
      return handle_query(request, peer, response, Transport::kTcp);
    };
    // Same port number as the resolved UDP socket: TC retries need no
    // out-of-band port discovery.
    if (!tcp_.start(config_.udp.host, udp_.port(), tcp_handler)) {
      error_ = "tcp: " + tcp_.error();
      udp_.stop();
      return false;
    }
  }
  heartbeat_.beat();
  return true;
}

// stop() deliberately does NOT flush latency metrics: the registry the
// histogram pointers lead into is caller-owned and may already be gone
// by teardown time (a frontend is allowed to outlive its registry once
// it stops serving).  Callers that want the final partial window flushed
// call flush_latency_metrics() themselves while the registry is alive —
// see ServedMiningDay::finish() and bench/fig_loadgen.
void WireFrontend::stop() {
  tcp_.stop();
  udp_.stop();
}

StageLatencyBreakdown WireFrontend::stage_latency() const {
  StageLatencyBreakdown out;
  out.decode = decode_latency_.snapshot();
  out.cluster = cluster_latency_.snapshot();
  out.encode = encode_latency_.snapshot();
  out.total = total_latency_.snapshot();
  return out;
}

void WireFrontend::flush_latency_metrics() {
  if (!latency_enabled_) return;
  const std::lock_guard<std::mutex> lock(flush_mutex_);
  const auto publish = [](const obs::LatencyRecorder& recorder,
                          obs::LatencySnapshot& published,
                          obs::Histogram* histogram) {
    obs::LatencySnapshot now = recorder.snapshot();
    now.delta_since(published).publish_to(*histogram);
    published = std::move(now);
  };
  publish(decode_latency_, published_decode_, decode_hist_);
  publish(cluster_latency_, published_cluster_, cluster_hist_);
  publish(encode_latency_, published_encode_, encode_hist_);
  publish(total_latency_, published_total_, total_hist_);
}

void WireFrontend::record_stage_latency(std::uint64_t decode_ns,
                                        std::uint64_t cluster_ns,
                                        std::uint64_t encode_ns, SimTime ts,
                                        const std::string& qname) {
  decode_latency_.thread_shard().record(decode_ns);
  cluster_latency_.thread_shard().record(cluster_ns);
  encode_latency_.thread_shard().record(encode_ns);
  const std::uint64_t total_ns = decode_ns + cluster_ns + encode_ns;
  total_latency_.thread_shard().record(total_ns);

  // The qname copy only happens for queries that currently qualify as
  // slow; the fast-path check is one relaxed load.
  if (slowlog_.would_admit(total_ns)) {
    obs::SlowQueryEntry slow;
    slow.total_ns = total_ns;
    slow.decode_ns = decode_ns;
    slow.cluster_ns = cluster_ns;
    slow.encode_ns = encode_ns;
    slow.ts = static_cast<std::uint64_t>(ts);
    slow.qname = qname;
    slowlog_.maybe_add(slow);
  }

  const std::uint64_t tick =
      flush_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.latency_flush_every_n != 0 &&
      tick % config_.latency_flush_every_n == 0) {
    flush_latency_metrics();
  }
}

WireFrontendStats WireFrontend::stats() const noexcept {
  WireFrontendStats stats;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.udp_queries = udp_queries_.load(std::memory_order_relaxed);
  stats.tcp_queries = tcp_queries_.load(std::memory_order_relaxed);
  stats.formerr = formerr_.load(std::memory_order_relaxed);
  stats.notimp = notimp_.load(std::memory_order_relaxed);
  stats.dropped = dropped_.load(std::memory_order_relaxed);
  stats.truncated = truncated_.load(std::memory_order_relaxed);
  return stats;
}

SimTime WireFrontend::live_timestamp() const noexcept {
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                           std::chrono::steady_clock::now() - started_)
                           .count();
  return config_.day_start +
         std::min<SimTime>(static_cast<SimTime>(elapsed), kSecondsPerDay - 1);
}

bool WireFrontend::handle_query(std::span<const std::uint8_t> request,
                                const net::UdpPeer& peer,
                                std::vector<std::uint8_t>& response,
                                Transport transport) {
  try {
    if (request.size() < kWireHeaderSize) {
      // Not even a header to echo: silent drop, like real servers.
      bump(dropped_, dropped_metric_);
      return false;
    }
    const std::uint16_t id =
        static_cast<std::uint16_t>((request[0] << 8) | request[1]);
    const bool rd = (request[2] & 0x01) != 0;

    // Stage clocks for the decode → cluster → encode breakdown; only
    // read when latency tracking is on (two clock reads per stage).
    using Clock = std::chrono::steady_clock;
    const auto stage_now = [this]() {
      return latency_enabled_ ? Clock::now() : Clock::time_point{};
    };
    const auto t_start = stage_now();

    auto message = decode_message(request);
    if (!message) {
      // Truncated sections, label overruns, compression loops, junk: the
      // decoder is non-throwing, so the worst malformed input costs is a
      // FORMERR round trip.
      bump(formerr_, formerr_metric_);
      response = encode_message(make_skeleton(id, rd, RCode::FormErr));
      return true;
    }
    if (message->header.qr) {
      // A response, not a query; answering would loop two servers forever.
      bump(dropped_, dropped_metric_);
      return false;
    }
    if (message->header.opcode != 0) {
      bump(notimp_, notimp_metric_);
      response = encode_message(make_skeleton(id, rd, RCode::NotImp));
      return true;
    }
    if (message->questions.size() != 1) {
      bump(formerr_, formerr_metric_);
      response = encode_message(make_skeleton(id, rd, RCode::FormErr));
      return true;
    }

    SimTime ts = 0;
    std::uint64_t client_id = 0;
    bool have_meta = false;
    if (config_.allow_replay_meta) {
      if (const auto meta = net::extract_replay_meta(*message)) {
        ts = meta->ts;
        client_id = meta->client_id;
        have_meta = true;
      }
    }
    if (!have_meta) {
      ts = live_timestamp();
      client_id = client_id_for_peer(peer);
    }

    DnsMessage reply = make_skeleton(id, rd, RCode::NoError);
    reply.questions.push_back(message->questions.front());
    const auto t_decoded = stage_now();
    {
      // The cluster, its caches, and its tap observers are single-threaded
      // by contract; serialize the round trip and copy the zero-copy view
      // out before releasing (it aliases cluster scratch).
      const std::lock_guard<std::mutex> lock(cluster_mutex_);
      heartbeat_.tick();
      const QueryView view =
          cluster_.query_view(client_id, reply.questions.front(), ts);
      reply.header.rcode = view.rcode;
      reply.answers.assign(view.answers.begin(), view.answers.end());
    }
    const auto t_clustered = stage_now();
    bump(queries_, queries_metric_);
    if (transport == Transport::kTcp) {
      bump(tcp_queries_, tcp_metric_);
    } else {
      udp_queries_.fetch_add(1, std::memory_order_relaxed);
    }

    response = encode_message(reply);
    if (transport == Transport::kUdp &&
        response.size() > config_.max_udp_payload) {
      // Classic truncation: header + question only, TC=1; the client
      // retries over TCP for the full answer.
      bump(truncated_, truncated_metric_);
      reply.answers.clear();
      reply.authority.clear();
      reply.additional.clear();
      reply.header.tc = true;
      response = encode_message(reply);
    }
    if (latency_enabled_) {
      const auto span_ns = [](Clock::time_point from, Clock::time_point to) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
                .count());
      };
      record_stage_latency(span_ns(t_start, t_decoded),
                           span_ns(t_decoded, t_clustered),
                           span_ns(t_clustered, stage_now()), ts,
                           reply.questions.front().name.text());
    }
    return true;
  } catch (const std::exception&) {
    // encode_message throws only on unparseable A/AAAA rdata; whatever the
    // cause, a serving thread must never die on one query.
    bump(dropped_, dropped_metric_);
    return false;
  }
}

}  // namespace dnsnoise
