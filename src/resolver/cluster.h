// Recursive DNS server cluster simulator.
//
// Reproduces the paper's vantage point (Section III-A): client queries are
// load-balanced across a cluster of recursive servers, each with an
// independent cache.  Observers can subscribe to the two answer streams the
// monitoring tap records — "below" (server -> client) and "above"
// (authority -> server) — and to nothing else, exactly like the paper's
// black-box view.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dns/message.h"
#include "resolver/authority.h"
#include "resolver/dns_cache.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace dnsnoise {

/// How client queries are spread over the cluster.
enum class Balancing : std::uint8_t {
  kClientHash,  // sticky: hash(client) -> server (typical anycast/LB setup)
  kRandom,      // independent per query
  kRoundRobin,
};

struct ClusterConfig {
  std::size_t server_count = 4;
  Balancing balancing = Balancing::kClientHash;
  DnsCacheConfig cache;
  std::uint64_t seed = 1;
};

/// Result of one client query, as seen below the cluster.
struct QueryOutcome {
  RCode rcode = RCode::NoError;
  bool cache_hit = false;
  std::size_t server = 0;
  std::vector<ResourceRecord> answers;
};

class RdnsCluster {
 public:
  /// `authority` must outlive the cluster.
  RdnsCluster(const ClusterConfig& config, const SyntheticAuthority& authority);

  /// Answer stream below the cluster (every answered client query).
  using BelowSink =
      std::function<void(SimTime, std::uint64_t client_id, const Question&,
                         RCode, std::span<const ResourceRecord>)>;
  /// Answer stream above the cluster (authority answers on cache misses).
  using AboveSink = std::function<void(SimTime, const Question&, RCode,
                                       std::span<const ResourceRecord>)>;

  void set_below_sink(BelowSink sink) { below_sink_ = std::move(sink); }
  void set_above_sink(AboveSink sink) { above_sink_ = std::move(sink); }

  /// Resolves one client query at simulated time `now`.
  QueryOutcome query(std::uint64_t client_id, const Question& question,
                     SimTime now);

  std::size_t server_count() const noexcept { return caches_.size(); }
  const DnsCacheStats& server_stats(std::size_t server) const {
    return caches_.at(server).stats();
  }
  const DnsCache& server_cache(std::size_t server) const {
    return caches_.at(server);
  }

  /// Cluster-wide aggregate of the per-server cache stats.
  DnsCacheStats aggregate_stats() const;

  std::uint64_t below_answers() const noexcept { return below_answers_; }
  std::uint64_t above_answers() const noexcept { return above_answers_; }

  /// DNSSEC cost counters (Section VI-B): every cache miss against a signed
  /// zone forces the validating resolver to verify one RRSIG chain; misses
  /// for disposable names are validations whose result is never reused.
  std::uint64_t dnssec_validations() const noexcept {
    return dnssec_validations_;
  }
  std::uint64_t dnssec_disposable_validations() const noexcept {
    return dnssec_disposable_validations_;
  }

  /// Successful cache misses (answered upstream), total and disposable:
  /// under *universal* DNSSEC deployment every such miss costs one
  /// validation, so these drive the Section VI-B what-if analysis.
  std::uint64_t answered_misses() const noexcept { return answered_misses_; }
  std::uint64_t disposable_answered_misses() const noexcept {
    return disposable_answered_misses_;
  }

 private:
  const SyntheticAuthority& authority_;
  Balancing balancing_;
  std::vector<DnsCache> caches_;
  Rng rng_;
  std::size_t round_robin_next_ = 0;
  BelowSink below_sink_;
  AboveSink above_sink_;
  std::uint64_t below_answers_ = 0;
  std::uint64_t above_answers_ = 0;
  std::uint64_t dnssec_validations_ = 0;
  std::uint64_t dnssec_disposable_validations_ = 0;
  std::uint64_t answered_misses_ = 0;
  std::uint64_t disposable_answered_misses_ = 0;

  std::size_t pick_server(std::uint64_t client_id);
};

}  // namespace dnsnoise
