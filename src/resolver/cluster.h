// Recursive DNS server cluster simulator.
//
// Reproduces the paper's vantage point (Section III-A): client queries are
// load-balanced across a cluster of recursive servers, each with an
// independent cache.  Observers subscribe to the two answer streams the
// monitoring tap records — "below" (server -> client) and "above"
// (authority -> server) — and to nothing else, exactly like the paper's
// black-box view.  Delivery is batched through the TapObserver API (see
// resolver/tap.h); the legacy per-answer sinks remain as deprecated shims.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dns/message.h"
#include "obs/trace.h"
#include "resolver/authority.h"
#include "resolver/dns_cache.h"
#include "resolver/tap.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace dnsnoise::obs {
class Counter;
class Histogram;
class MetricsRegistry;
class TrafficSketch;
}  // namespace dnsnoise::obs

namespace dnsnoise {

/// How client queries are spread over the cluster.
enum class Balancing : std::uint8_t {
  kClientHash,  // sticky: hash(client) -> server (typical anycast/LB setup)
  kRandom,      // independent per query
  kRoundRobin,
};

struct ClusterConfig {
  std::size_t server_count = 4;
  Balancing balancing = Balancing::kClientHash;
  DnsCacheConfig cache;
  std::uint64_t seed = 1;
  /// Tap events buffered before observers receive a batch.  Larger batches
  /// amortize dispatch further at the cost of arena memory; 1 degenerates
  /// to per-event delivery.
  std::size_t tap_batch_events = 256;
  /// Opt-in observability sink (see DESIGN.md §10).  When set, the cluster
  /// registers per-server cache hit/miss/NXDOMAIN counters plus the
  /// tap-batch size histogram.  Must outlive the cluster.  Null = no
  /// instrumentation, no overhead beyond one branch per query.
  obs::MetricsRegistry* metrics = nullptr;
  /// Offset added to server indices in metric names: shard k of a sharded
  /// engine run is a 1-server cluster, but its metrics must land under
  /// cluster.server<k>, not cluster.server0.
  std::size_t metrics_server_base = 0;
  /// Opt-in event tracing (DESIGN.md §12).  When set, each server records
  /// head-sampled per-query spans (qname, qtype, hit/miss/NXDOMAIN) into
  /// the collector's cluster stream for that server index.  Sampling is
  /// deterministic per server, phase-seeded from `seed` — independent of
  /// thread count and of the simulation RNG streams.  Must outlive the
  /// cluster; null = no tracing, one predicted branch per query.
  obs::TraceCollector* trace = nullptr;

  /// The configuration of one shard of this cluster: a single-server slice
  /// whose RNG stream is split off the cluster seed per shard index (never
  /// the shared seed itself — sibling shards must not correlate).  The
  /// engine builds one RdnsCluster per shard from these.
  ClusterConfig for_shard(std::size_t shard_index) const {
    ClusterConfig shard = *this;
    shard.server_count = 1;
    shard.seed = shard_seed(seed, shard_index);
    shard.metrics_server_base = metrics_server_base + shard_index;
    return shard;
  }
};

/// Result of one client query, as seen below the cluster.
struct QueryOutcome {
  RCode rcode = RCode::NoError;
  bool cache_hit = false;
  std::size_t server = 0;
  std::vector<ResourceRecord> answers;
};

/// Zero-copy variant of QueryOutcome: `answers` views storage owned by the
/// cluster (the resident cache entry, or the cluster's miss scratch buffer)
/// and stays valid until the next query()/query_view()/flush_taps() call on
/// the same cluster.  The steady-state hit path hands out a view of the
/// cache entry without copying a single record.
struct QueryView {
  RCode rcode = RCode::NoError;
  bool cache_hit = false;
  std::size_t server = 0;
  std::span<const ResourceRecord> answers;
};

class RdnsCluster {
 public:
  /// `authority` must outlive the cluster.
  RdnsCluster(const ClusterConfig& config, const SyntheticAuthority& authority);

  /// Destruction flushes any buffered tap events to the observers still
  /// registered (which must therefore outlive the cluster or be removed
  /// first).
  ~RdnsCluster();

  RdnsCluster(const RdnsCluster&) = delete;
  RdnsCluster& operator=(const RdnsCluster&) = delete;

  // --- Tap observation (the redesigned API) --------------------------------

  /// Registers `observer` for batched tap delivery.  The observer must stay
  /// valid until removed or until the cluster is destroyed.
  void add_tap_observer(TapObserver* observer);

  /// Flushes buffered events, then unregisters `observer`.  Unknown
  /// observers are ignored.
  void remove_tap_observer(TapObserver* observer);

  /// Delivers any buffered events to all observers immediately.  Call after
  /// the last query of a run so trailing events are not stuck in the batch.
  void flush_taps();

  /// Observers subscribed via add_tap_observer (the internal legacy-sink
  /// adapter is not counted).
  std::size_t tap_observer_count() const noexcept {
    return observers_.size() - (sink_adapter_registered_ ? 1 : 0);
  }

  // --- Traffic-sketch hook (DESIGN.md §17) ---------------------------------

  /// Attaches the streaming traffic sketch to the dedicated wait-free
  /// hook: every answered client query is recorded as (server, interned
  /// cache NameId, client, rcode, ts) — a ring append, no event copies,
  /// no extra hashing (the cache interns the qname in place of its normal
  /// lookup probe).  The sketch's source tables are bound to this
  /// cluster's caches; it must outlive the cluster or be detached first.
  /// Passing nullptr detaches, draining the sketch's pending ring so
  /// day-end exports observe every event.  Detached (the default), the
  /// hook costs exactly one predicted branch per query.  Writer-thread
  /// only, like query_view itself.
  void set_traffic_sketch(obs::TrafficSketch* sketch);

  obs::TrafficSketch* traffic_sketch() const noexcept {
    return traffic_sketch_;
  }

  // --- Legacy sink API (deprecated shims) ----------------------------------
  //
  // The shims are implemented on top of the batched tap: the sinks are held
  // by an internal TapObserver that unpacks each batch back into per-answer
  // calls.  Delivery therefore follows the batching contract (batch-full or
  // flush_taps()), not the per-query timing of the old API; clearing the
  // last sink flushes pending events first, so none are dropped.

  /// Answer stream below the cluster (every answered client query).
  using BelowSink =
      std::function<void(SimTime, std::uint64_t client_id, const Question&,
                         RCode, std::span<const ResourceRecord>)>;
  /// Answer stream above the cluster (authority answers on cache misses).
  using AboveSink = std::function<void(SimTime, const Question&, RCode,
                                       std::span<const ResourceRecord>)>;

  [[deprecated("subscribe a TapObserver via add_tap_observer instead")]]
  void set_below_sink(BelowSink sink) {
    set_below_sink_impl(std::move(sink));
  }
  [[deprecated("subscribe a TapObserver via add_tap_observer instead")]]
  void set_above_sink(AboveSink sink) {
    set_above_sink_impl(std::move(sink));
  }

  // -------------------------------------------------------------------------

  /// Resolves one client query at simulated time `now`.  Copies the answer
  /// set into the outcome; hot callers should prefer query_view().
  QueryOutcome query(std::uint64_t client_id, const Question& question,
                     SimTime now);

  /// Resolves one client query without copying answers: on a cache hit the
  /// returned view aliases the resident cache entry, on a miss it aliases
  /// either the freshly inserted entry or the cluster's scratch buffer (for
  /// uncacheable answers).  See QueryView for the lifetime contract.
  QueryView query_view(std::uint64_t client_id, const Question& question,
                       SimTime now);

  std::size_t server_count() const noexcept { return caches_.size(); }
  const DnsCacheStats& server_stats(std::size_t server) const {
    return caches_.at(server).stats();
  }
  const DnsCache& server_cache(std::size_t server) const {
    return caches_.at(server);
  }

  /// Cluster-wide aggregate of the per-server cache stats.
  DnsCacheStats aggregate_stats() const;

  std::uint64_t below_answers() const noexcept { return below_answers_; }
  std::uint64_t above_answers() const noexcept { return above_answers_; }

  /// DNSSEC cost counters (Section VI-B): every cache miss against a signed
  /// zone forces the validating resolver to verify one RRSIG chain; misses
  /// for disposable names are validations whose result is never reused.
  std::uint64_t dnssec_validations() const noexcept {
    return dnssec_validations_;
  }
  std::uint64_t dnssec_disposable_validations() const noexcept {
    return dnssec_disposable_validations_;
  }

  /// Successful cache misses (answered upstream), total and disposable:
  /// under *universal* DNSSEC deployment every such miss costs one
  /// validation, so these drive the Section VI-B what-if analysis.
  std::uint64_t answered_misses() const noexcept { return answered_misses_; }
  std::uint64_t disposable_answered_misses() const noexcept {
    return disposable_answered_misses_;
  }

 private:
  /// Forwards batched tap events to the deprecated per-answer sinks.  Lives
  /// inside the cluster and registers itself in observers_ while at least
  /// one sink is set, so the legacy API exercises the exact same buffering
  /// and flush path as first-class observers.
  class SinkAdapter final : public TapObserver {
   public:
    BelowSink below;
    AboveSink above;

    void on_tap_batch(const TapBatch& batch) override {
      for (const TapEvent& event : batch) {
        if (event.direction == TapDirection::kBelow) {
          if (below) {
            below(event.ts, event.client_id, event.question, event.rcode,
                  batch.answers(event));
          }
        } else if (above) {
          above(event.ts, event.question, event.rcode, batch.answers(event));
        }
      }
    }
  };

  /// Per-server metric handles, resolved once at construction (registry
  /// lookups are mutex-guarded; query() must stay lock-free).
  struct ServerMetrics {
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* nxdomain = nullptr;
  };

  /// Per-server trace stream + deterministic query sampler, resolved once
  /// at construction (stream acquisition is mutex-guarded too).
  struct ServerTrace {
    obs::TraceStream* stream = nullptr;
    obs::TraceSampler sampler;
  };

  const SyntheticAuthority& authority_;
  Balancing balancing_;
  std::size_t tap_batch_events_;
  std::vector<DnsCache> caches_;
  Rng rng_;
  std::size_t round_robin_next_ = 0;
  std::vector<TapObserver*> observers_;
  std::vector<TapEvent> tap_events_;
  std::vector<ResourceRecord> tap_answers_;
  // Owns the answers of the last uncacheable miss so QueryView can alias
  // them (reused across queries; see QueryView lifetime contract).
  std::vector<ResourceRecord> miss_answers_;
  SinkAdapter sink_adapter_;
  bool sink_adapter_registered_ = false;
  obs::TrafficSketch* traffic_sketch_ = nullptr;
  std::uint64_t below_answers_ = 0;
  std::uint64_t above_answers_ = 0;
  std::uint64_t dnssec_validations_ = 0;
  std::uint64_t dnssec_disposable_validations_ = 0;
  std::uint64_t answered_misses_ = 0;
  std::uint64_t disposable_answered_misses_ = 0;
  std::vector<ServerMetrics> server_metrics_;  // empty when uninstrumented
  std::vector<ServerTrace> server_trace_;      // empty when untraced
  obs::TraceCollector* trace_ = nullptr;
  obs::Counter* below_answers_metric_ = nullptr;
  obs::Counter* above_answers_metric_ = nullptr;
  obs::Histogram* tap_batch_size_ = nullptr;

  std::size_t pick_server(std::uint64_t client_id);
  void buffer_tap_event(SimTime ts, TapDirection direction,
                        std::uint64_t client_id, const Question& question,
                        RCode rcode, std::span<const ResourceRecord> answers);
  void set_below_sink_impl(BelowSink sink);
  void set_above_sink_impl(AboveSink sink);
  void update_sink_adapter();
};

}  // namespace dnsnoise
