// Generic LRU cache with fixed capacity.
//
// The paper's Section VI-A assumes "a typical Least Recently Used (LRU)
// cache implementation with a fixed memory allocation (a common
// configuration in DNS resolvers)"; this is that cache.  An eviction
// listener lets experiments observe *premature* evictions (entries pushed
// out while still fresh) — the paper's predicted failure mode under heavy
// disposable-domain load.
//
// Storage layout (the zero-allocation hot path, DESIGN.md §11): entries
// live in a deque with intrusive index links forming the recency list, and
// the key index is a flat open-addressed slot array sized once from the
// capacity (power of two, linear probing, backward-shift deletion).  After
// the cache has filled once, every get/put/evict cycle recycles entry
// storage through a free list and never touches the allocator — unlike the
// previous std::list + std::unordered_map layout, which allocated a list
// node and a hash node per insert and rehashed under growth.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace dnsnoise {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  using EvictionListener = std::function<void(const Key&, const Value&)>;

  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("LruCache: capacity 0");
    // Slot array: one allocation for the cache's lifetime, sized so load
    // never exceeds 1/2 at full capacity — no rehash, ever.
    std::size_t slots = 16;
    while (slots < capacity * 2) slots <<= 1;
    slots_.assign(slots, 0);
    slot_mask_ = slots - 1;
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return size_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

  /// Called with the (key, value) of every entry evicted by capacity
  /// pressure (not by erase()).
  void set_eviction_listener(EvictionListener listener) {
    listener_ = std::move(listener);
  }

  /// Returns the value and marks the entry most-recently-used.  The pointer
  /// stays valid until the next mutating call (put/put_cold/erase/clear).
  Value* get(const Key& key) {
    const std::size_t slot = find_slot(key, hash_of(key));
    if (slot == kNoSlot) return nullptr;
    Entry& entry = entries_[slots_[slot] - 1];
    move_to_front(slots_[slot] - 1);
    return &entry.value;
  }

  /// Lookup without touching recency.
  const Value* peek(const Key& key) const {
    const std::size_t slot = find_slot(key, hash_of(key));
    return slot == kNoSlot ? nullptr : &entries_[slots_[slot] - 1].value;
  }

  /// Inserts or replaces; the entry becomes most-recently-used.  Evicts the
  /// least-recently-used entry when at capacity.  One hash computation per
  /// call; existing keys are found and updated in a single probe.  Returns
  /// the resident value (valid until the next mutating call).
  Value* put(Key key, Value value) {
    return put_impl(std::move(key), std::move(value), /*cold=*/false);
  }

  /// Inserts or replaces at the *cold* (least-recently-used) end: the
  /// entry becomes the first eviction candidate.  This is the mechanism
  /// behind the paper's Section VI-A mitigation sketch — "disposable
  /// domains could be treated with low priority".
  Value* put_cold(Key key, Value value) {
    return put_impl(std::move(key), std::move(value), /*cold=*/true);
  }

  /// Removes an entry without notifying the eviction listener.
  bool erase(const Key& key) {
    const std::size_t slot = find_slot(key, hash_of(key));
    if (slot == kNoSlot) return false;
    remove_entry(slot);
    return true;
  }

  void clear() noexcept {
    entries_.clear();
    free_.clear();
    std::fill(slots_.begin(), slots_.end(), 0u);
    head_ = kNil;
    tail_ = kNil;
    size_ = 0;
  }

  /// Visits every (key, value), most-recently-used first.
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    for (std::uint32_t i = head_; i != kNil; i = entries_[i].next) {
      visit(entries_[i].key, entries_[i].value);
    }
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  struct Entry {
    Key key;
    Value value;
    std::uint64_t hash = 0;  // cached: probing and deletion never rehash
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  std::uint64_t hash_of(const Key& key) const {
    return static_cast<std::uint64_t>(hash_(key));
  }

  /// Slot index holding `key`, or kNoSlot.
  std::size_t find_slot(const Key& key, std::uint64_t hash) const {
    std::size_t i = static_cast<std::size_t>(hash) & slot_mask_;
    while (true) {
      const std::uint32_t ref = slots_[i];
      if (ref == 0) return kNoSlot;
      const Entry& entry = entries_[ref - 1];
      if (entry.hash == hash && entry.key == key) return i;
      i = (i + 1) & slot_mask_;
    }
  }

  Value* put_impl(Key key, Value value, bool cold) {
    const std::uint64_t hash = hash_of(key);
    std::size_t i = static_cast<std::size_t>(hash) & slot_mask_;
    while (true) {
      const std::uint32_t ref = slots_[i];
      if (ref == 0) break;
      Entry& entry = entries_[ref - 1];
      if (entry.hash == hash && entry.key == key) {
        entry.value = std::move(value);
        if (cold) {
          move_to_back(ref - 1);
        } else {
          move_to_front(ref - 1);
        }
        return &entry.value;
      }
      i = (i + 1) & slot_mask_;
    }
    if (size_ >= capacity_) {
      evict_one();
      // Backward-shift deletion may have reshaped our probe chain; find the
      // insertion slot again (still the same single hash computation).
      i = static_cast<std::size_t>(hash) & slot_mask_;
      while (slots_[i] != 0) i = (i + 1) & slot_mask_;
    }
    std::uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
      Entry& entry = entries_[index];
      entry.key = std::move(key);
      entry.value = std::move(value);
      entry.hash = hash;
    } else {
      index = static_cast<std::uint32_t>(entries_.size());
      entries_.push_back(Entry{std::move(key), std::move(value), hash});
    }
    slots_[i] = index + 1;
    link(index, cold);
    ++size_;
    return &entries_[index].value;
  }

  /// Links entry `index` at the hot (front) or cold (back) end.
  void link(std::uint32_t index, bool cold) noexcept {
    Entry& entry = entries_[index];
    if (cold) {
      entry.next = kNil;
      entry.prev = tail_;
      if (tail_ != kNil) entries_[tail_].next = index;
      tail_ = index;
      if (head_ == kNil) head_ = index;
    } else {
      entry.prev = kNil;
      entry.next = head_;
      if (head_ != kNil) entries_[head_].prev = index;
      head_ = index;
      if (tail_ == kNil) tail_ = index;
    }
  }

  void unlink(std::uint32_t index) noexcept {
    Entry& entry = entries_[index];
    if (entry.prev != kNil) {
      entries_[entry.prev].next = entry.next;
    } else {
      head_ = entry.next;
    }
    if (entry.next != kNil) {
      entries_[entry.next].prev = entry.prev;
    } else {
      tail_ = entry.prev;
    }
  }

  void move_to_front(std::uint32_t index) noexcept {
    if (head_ == index) return;
    unlink(index);
    link(index, /*cold=*/false);
  }

  void move_to_back(std::uint32_t index) noexcept {
    if (tail_ == index) return;
    unlink(index);
    link(index, /*cold=*/true);
  }

  /// Empties slot `i`, compacting the probe cluster behind it
  /// (backward-shift deletion: no tombstones, so probe chains never decay).
  void slot_erase(std::size_t i) noexcept {
    std::size_t j = i;
    while (true) {
      slots_[i] = 0;
      while (true) {
        j = (j + 1) & slot_mask_;
        const std::uint32_t ref = slots_[j];
        if (ref == 0) return;
        const std::size_t ideal =
            static_cast<std::size_t>(entries_[ref - 1].hash) & slot_mask_;
        // Move j's entry into the hole iff the hole lies on its probe path
        // (cyclic interval ideal..j).
        const bool movable = i <= j ? (ideal <= i || ideal > j)
                                    : (ideal <= i && ideal > j);
        if (movable) {
          slots_[i] = ref;
          i = j;
          break;
        }
      }
    }
  }

  /// Removes the entry referenced by slot `slot` (no listener).
  void remove_entry(std::size_t slot) {
    const std::uint32_t index = slots_[slot] - 1;
    unlink(index);
    slot_erase(slot);
    release(index);
  }

  /// Returns entry storage to the free list (keeps capacity, drops values
  /// eagerly so evicted payloads don't linger).
  void release(std::uint32_t index) {
    entries_[index].key = Key();
    entries_[index].value = Value();
    free_.push_back(index);
    --size_;
  }

  void evict_one() {
    const std::uint32_t victim = tail_;
    Entry& entry = entries_[victim];
    if (listener_) listener_(entry.key, entry.value);
    unlink(victim);
    slot_erase(find_slot(entry.key, entry.hash));
    release(victim);
    ++evictions_;
  }

  std::size_t capacity_;
  // Deque keeps entry addresses stable while the storage grows toward
  // capacity, so get()/peek() pointers survive unrelated growth.
  std::deque<Entry> entries_;
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> slots_;  // entry index + 1; 0 = empty
  std::size_t slot_mask_ = 0;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t size_ = 0;
  std::uint64_t evictions_ = 0;
  EvictionListener listener_;
  [[no_unique_address]] Hash hash_;
};

}  // namespace dnsnoise
