// Generic LRU cache with fixed capacity.
//
// The paper's Section VI-A assumes "a typical Least Recently Used (LRU)
// cache implementation with a fixed memory allocation (a common
// configuration in DNS resolvers)"; this is that cache.  An eviction
// listener lets experiments observe *premature* evictions (entries pushed
// out while still fresh) — the paper's predicted failure mode under heavy
// disposable-domain load.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace dnsnoise {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  using EvictionListener = std::function<void(const Key&, const Value&)>;

  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("LruCache: capacity 0");
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return index_.size(); }
  std::uint64_t evictions() const noexcept { return evictions_; }

  /// Called with the (key, value) of every entry evicted by capacity
  /// pressure (not by erase()).
  void set_eviction_listener(EvictionListener listener) {
    listener_ = std::move(listener);
  }

  /// Returns the value and marks the entry most-recently-used.
  Value* get(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Lookup without touching recency.
  const Value* peek(const Key& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  /// Inserts or replaces; the entry becomes most-recently-used.  Evicts the
  /// least-recently-used entry when at capacity.
  void put(Key key, Value value) {
    if (auto it = index_.find(key); it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (index_.size() >= capacity_) evict_one();
    order_.emplace_front(std::move(key), std::move(value));
    index_.emplace(order_.front().first, order_.begin());
  }

  /// Inserts or replaces at the *cold* (least-recently-used) end: the
  /// entry becomes the first eviction candidate.  This is the mechanism
  /// behind the paper's Section VI-A mitigation sketch — "disposable
  /// domains could be treated with low priority".
  void put_cold(Key key, Value value) {
    if (auto it = index_.find(key); it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.end(), order_, it->second);
      return;
    }
    if (index_.size() >= capacity_) evict_one();
    order_.emplace_back(std::move(key), std::move(value));
    index_.emplace(order_.back().first, std::prev(order_.end()));
  }

  /// Removes an entry without notifying the eviction listener.
  bool erase(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void clear() noexcept {
    order_.clear();
    index_.clear();
  }

  /// Visits every (key, value), most-recently-used first.
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    for (const auto& [key, value] : order_) visit(key, value);
  }

 private:
  void evict_one() {
    auto& victim = order_.back();
    if (listener_) listener_(victim.first, victim.second);
    index_.erase(victim.first);
    order_.pop_back();
    ++evictions_;
  }

  std::size_t capacity_;
  std::list<std::pair<Key, Value>> order_;
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash>
      index_;
  std::uint64_t evictions_ = 0;
  EvictionListener listener_;
};

}  // namespace dnsnoise
