// Monitoring-tap observer API: batched answer-stream delivery.
//
// The paper's vantage point (Section III-A) is a passive tap that sees the
// two DNS answer streams around the RDNS cluster — "below" (server ->
// client) and "above" (authority -> server) — and nothing else.  Consumers
// subscribe as TapObserver and receive TapEvent *spans*: the cluster
// accumulates events plus their answer RRs into a contiguous batch and
// delivers the whole batch with one virtual call, amortizing dispatch over
// hundreds of answers instead of paying a std::function hop per answer.
//
// Batching contract:
//  - Events within a batch are in observation order; batches are delivered
//    in order.  Concatenating all batches reproduces the per-event stream
//    exactly, so batch size never changes what an observer accumulates.
//  - A batch and everything it references (events, questions, answer RRs)
//    is only valid for the duration of on_tap_batch(); observers must copy
//    what they keep.
//  - Delivery happens when the batch fills (ClusterConfig::tap_batch_events)
//    and on RdnsCluster::flush_taps(); removing an observer or destroying
//    the cluster flushes first, so no event is ever silently dropped.
//  - Observers are invoked on the thread that drives the cluster.  The
//    sharded engine gives every shard its own cluster and observer, so
//    observer implementations need no internal locking.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>

#include "dns/message.h"
#include "dns/rr.h"
#include "util/sim_time.h"

namespace dnsnoise {

/// Which side of the RDNS cluster an answer was observed on.
enum class TapDirection : std::uint8_t {
  kBelow,  // RDNS -> client
  kAbove,  // authority -> RDNS
};

/// One observed answer event.  Answer RRs live in the enclosing batch's
/// arena (TapBatch::answers); an event only carries its slice bounds.
struct TapEvent {
  SimTime ts = 0;
  TapDirection direction = TapDirection::kBelow;
  std::uint64_t client_id = 0;  // anonymized; 0 for above events
  RCode rcode = RCode::NoError;
  Question question;
  std::uint32_t answer_offset = 0;  // into TapBatch::answers()
  std::uint32_t answer_count = 0;
};

/// A span of tap events plus the shared answer arena they index into.
class TapBatch {
 public:
  TapBatch(std::span<const TapEvent> events,
           std::span<const ResourceRecord> answers) noexcept
      : events_(events), answers_(answers) {}

  std::span<const TapEvent> events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }

  /// The answer RRs of one event of this batch.
  std::span<const ResourceRecord> answers(const TapEvent& event) const {
    return answers_.subspan(event.answer_offset, event.answer_count);
  }

  auto begin() const noexcept { return events_.begin(); }
  auto end() const noexcept { return events_.end(); }

 private:
  std::span<const TapEvent> events_;
  std::span<const ResourceRecord> answers_;
};

/// Interface for tap consumers.  Replaces the deprecated per-answer
/// BelowSink/AboveSink std::function pair.
class TapObserver {
 public:
  virtual ~TapObserver() = default;

  /// Receives one batch of tap events.  See the batching contract above.
  virtual void on_tap_batch(const TapBatch& batch) = 0;
};

/// Adapts a callable to TapObserver — convenient for tests and examples
/// that previously passed lambdas to set_below_sink/set_above_sink.
class FunctionTapObserver final : public TapObserver {
 public:
  explicit FunctionTapObserver(std::function<void(const TapBatch&)> fn)
      : fn_(std::move(fn)) {}

  void on_tap_batch(const TapBatch& batch) override { fn_(batch); }

 private:
  std::function<void(const TapBatch&)> fn_;
};

}  // namespace dnsnoise
