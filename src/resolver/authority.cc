#include "resolver/authority.h"

#include "dns/ip.h"
#include "util/rng.h"

namespace dnsnoise {

void SyntheticAuthority::register_zone(const DomainName& apex,
                                       Handler handler) {
  zones_[apex.text()] = std::move(handler);
}

AuthorityAnswer SyntheticAuthority::resolve(const Question& question,
                                            SimTime now) const {
  ++queries_;
  // Longest-suffix (most specific apex) match.
  const std::size_t labels = question.name.label_count();
  for (std::size_t k = labels; k >= 1; --k) {
    const std::string apex(question.name.nld_view(k));
    if (const auto it = zones_.find(apex); it != zones_.end()) {
      AuthorityAnswer answer = it->second(question, now);
      if (answer.rcode == RCode::NXDomain) ++nxdomains_;
      return answer;
    }
  }
  ++nxdomains_;
  return AuthorityAnswer{};
}

std::string synthetic_a_rdata(std::string_view qname) {
  const std::uint64_t h = mix64(fnv1a64(qname));
  // Stay inside a documentation-friendly /8 to make synthetic data obvious.
  const Ipv4 ip = Ipv4::from_octets(
      10, static_cast<std::uint8_t>(h >> 16),
      static_cast<std::uint8_t>(h >> 8), static_cast<std::uint8_t>(h));
  return format_ipv4(ip);
}

std::string synthetic_aaaa_rdata(std::string_view qname) {
  const std::uint64_t h1 = mix64(fnv1a64(qname));
  const std::uint64_t h2 = mix64(h1);
  Ipv6 ip;
  ip.bytes[0] = 0x20;
  ip.bytes[1] = 0x01;
  ip.bytes[2] = 0x0d;
  ip.bytes[3] = 0xb8;  // 2001:db8::/32 documentation prefix
  for (std::size_t i = 0; i < 6; ++i) {
    ip.bytes[4 + i] = static_cast<std::uint8_t>(h1 >> (i * 8));
    ip.bytes[10 + i] = static_cast<std::uint8_t>(h2 >> (i * 8));
  }
  return format_ipv6(ip);
}

SyntheticAuthority::Handler SyntheticAuthority::make_flat_a_zone(
    std::uint32_t ttl, bool dnssec_signed) {
  return [ttl, dnssec_signed](const Question& q, SimTime) {
    AuthorityAnswer answer;
    answer.rcode = RCode::NoError;
    answer.dnssec_signed = dnssec_signed;
    ResourceRecord rr;
    rr.name = q.name;
    rr.ttl = ttl;
    if (q.type == RRType::AAAA) {
      rr.type = RRType::AAAA;
      rr.rdata = synthetic_aaaa_rdata(q.name.text());
    } else {
      rr.type = RRType::A;
      rr.rdata = synthetic_a_rdata(q.name.text());
    }
    answer.answers.push_back(std::move(rr));
    return answer;
  };
}

}  // namespace dnsnoise
