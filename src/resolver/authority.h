// Synthetic authoritative DNS namespace.
//
// Stands in for "the rest of the Internet" above the RDNS cluster: zone
// handlers are registered at an apex name and answer every question that
// falls under it (longest-suffix match); everything else is NXDOMAIN.
// Handlers are deterministic functions of the question, so the same name
// always resolves to the same rdata — a property the rpDNS deduplication
// experiments rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "dns/message.h"
#include "dns/rr.h"
#include "util/sim_time.h"

namespace dnsnoise {

/// An authoritative response plus zone-level ground truth used by
/// experiments (never visible to the classifier under test).
struct AuthorityAnswer {
  RCode rcode = RCode::NXDomain;
  std::vector<ResourceRecord> answers;
  bool dnssec_signed = false;
  bool disposable_zone = false;
};

class SyntheticAuthority {
 public:
  using Handler = std::function<AuthorityAnswer(const Question&, SimTime)>;

  /// Registers a zone handler at `apex`.  Re-registering an apex replaces
  /// the previous handler.
  void register_zone(const DomainName& apex, Handler handler);

  /// Resolves a question: the handler of the most specific registered apex
  /// enclosing qname, else NXDOMAIN.
  AuthorityAnswer resolve(const Question& question, SimTime now) const;

  std::uint64_t queries() const noexcept { return queries_; }
  std::uint64_t nxdomains() const noexcept { return nxdomains_; }
  std::size_t zone_count() const noexcept { return zones_.size(); }

  /// Deterministic A-record zone: every name under the apex resolves to a
  /// stable pseudo-random address with the given TTL.
  static Handler make_flat_a_zone(std::uint32_t ttl,
                                  bool dnssec_signed = false);

 private:
  std::unordered_map<std::string, Handler> zones_;
  mutable std::uint64_t queries_ = 0;
  mutable std::uint64_t nxdomains_ = 0;
};

/// Stable pseudo-random IPv4 for a name (public, shared by zone models).
std::string synthetic_a_rdata(std::string_view qname);

/// Stable pseudo-random IPv6 for a name.
std::string synthetic_aaaa_rdata(std::string_view qname);

}  // namespace dnsnoise
