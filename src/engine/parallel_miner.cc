#include "engine/parallel_miner.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "engine/thread_pool.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace dnsnoise {

MiningSession::MiningSession(const ScenarioScale& scale) {
  options_.scale = scale;
}

MiningSession& MiningSession::scale(const ScenarioScale& scale) {
  options_.scale = scale;
  return *this;
}

MiningSession& MiningSession::cluster(const ClusterConfig& cluster) {
  options_.cluster = cluster;
  return *this;
}

MiningSession& MiningSession::labeler(const LabelerConfig& labeler) {
  options_.labeler = labeler;
  return *this;
}

MiningSession& MiningSession::miner(const MinerConfig& miner) {
  options_.miner = miner;
  return *this;
}

MiningSession& MiningSession::model(const LadTreeConfig& model) {
  options_.model = model;
  return *this;
}

MiningSession& MiningSession::pretrained(const BinaryClassifier* model) {
  options_.pretrained = model;
  return *this;
}

MiningSession& MiningSession::threads(std::size_t n) {
  threads_ = n;
  return *this;
}

MiningSession& MiningSession::warmup(bool enabled, double volume_fraction) {
  options_.warmup = enabled;
  options_.warmup_volume_fraction = volume_fraction;
  return *this;
}

MiningSession& MiningSession::capture_config(const DayCaptureConfig& config) {
  options_.capture = config;
  return *this;
}

MiningSession& MiningSession::enable_metrics(bool enabled) {
  metrics_ = enabled ? std::make_shared<obs::MetricsRegistry>() : nullptr;
  options_.metrics = metrics_.get();
  // A running telemetry server holds a reference to the old registry;
  // rebind it (or stop it when metrics just went away).
  if (telemetry_ != nullptr) restart_telemetry();
  return *this;
}

MiningSession& MiningSession::enable_tracing(bool enabled,
                                             std::uint64_t sample_every_n) {
  if (enabled) {
    obs::TraceConfig config;
    config.sample_every_n = sample_every_n;
    trace_ = std::make_shared<obs::TraceCollector>(config);
  } else {
    trace_ = nullptr;
  }
  options_.trace = trace_.get();
  return *this;
}

MiningSession& MiningSession::enable_progress(bool enabled,
                                              double interval_seconds) {
  options_.progress = enabled;
  options_.progress_interval_seconds = interval_seconds;
  if (enabled && metrics_ == nullptr) enable_metrics();
  return *this;
}

MiningSession& MiningSession::enable_telemetry(bool enabled,
                                               std::uint16_t port,
                                               double stall_seconds) {
  if (!enabled) {
    telemetry_ = nullptr;
    return *this;
  }
  telemetry_ = nullptr;  // drop first so enable_metrics skips a restart
  telemetry_port_ = port;
  telemetry_stall_seconds_ = stall_seconds;
  if (metrics_ == nullptr) enable_metrics();
  restart_telemetry();
  return *this;
}

MiningSession& MiningSession::enable_traffic_sketch(
    bool enabled, const obs::TrafficSketchConfig& config) {
  sketch_ =
      enabled ? std::make_shared<obs::TrafficSketchPlane>(config) : nullptr;
  options_.sketch = sketch_.get();
  // A running telemetry server serves the old plane on /traffic; rewire
  // it (or drop the endpoint when the plane just went away).
  if (telemetry_ != nullptr) restart_telemetry();
  return *this;
}

MiningSession& MiningSession::enable_dns_server(
    bool enabled, std::uint16_t port, const DnsServerOptions& server) {
  server_enabled_ = enabled;
  server_options_ = server;
  server_options_.port = port;
  return *this;
}

std::unique_ptr<ServedMiningDay> MiningSession::serve(ScenarioDate date) {
  if (!server_enabled_) return nullptr;
  // Handing the telemetry server over publishes the day's slow-query log
  // on GET /slowlog next to /metrics (no-op when telemetry is off).
  return std::make_unique<ServedMiningDay>(date, options_, threads_,
                                           server_options_, telemetry_);
}

void MiningSession::restart_telemetry() {
  telemetry_ = nullptr;  // stop the old server before rebinding the port
  if (metrics_ == nullptr) return;
  obs::TelemetryConfig config;
  config.port = telemetry_port_;
  config.stall_seconds = telemetry_stall_seconds_;
  telemetry_ = std::make_shared<obs::TelemetryServer>(*metrics_, config);
  if (sketch_ != nullptr) {
    // Both callables run on the scrape thread; the shared_ptr copies keep
    // the plane and registry alive even if the session re-enables them
    // while a scrape is in flight.
    const std::shared_ptr<obs::TrafficSketchPlane> plane = sketch_;
    telemetry_->set_traffic_source([plane]() { return plane->to_json(); });
    const std::shared_ptr<obs::MetricsRegistry> registry = metrics_;
    telemetry_->set_metrics_refresh(
        [plane, registry]() { plane->publish_gauges(*registry); });
  }
  telemetry_->start();
}

void MiningSession::publish_trace_snapshot() {
  if (telemetry_ == nullptr || trace_ == nullptr) return;
  telemetry_->publish_trace(obs::to_json(trace_->snapshot()));
}

EngineReport MiningSession::simulate(ScenarioDate date, DayCapture& capture) {
  return simulate(date, capture, scenario_day_index(date));
}

EngineReport MiningSession::simulate(ScenarioDate date, DayCapture& capture,
                                     std::int64_t day_index) {
  EngineReport report;
  const std::size_t shard_count = options_.cluster.server_count;
  report.shard_count = shard_count;
  report.threads = threads_;
  if (threads_ == 0) {
    report.status = MiningDayStatus::kInvalidConfig;
    report.error = "engine needs at least one thread";
    return report;
  }
  if (shard_count == 0) {
    report.status = MiningDayStatus::kInvalidConfig;
    report.error = "cluster server_count must be >= 1";
    return report;
  }
  if (shard_count > 1 &&
      options_.cluster.balancing != Balancing::kClientHash) {
    report.status = MiningDayStatus::kInvalidConfig;
    report.error =
        "sharding by server requires client-hash balancing (kClientHash); "
        "random/round-robin balancing depends on the global query order";
    return report;
  }
  if (options_.scale.queries_per_day == 0) {
    report.status = MiningDayStatus::kEmptyCapture;
    report.error = "scenario volume is zero; nothing to capture";
    return report;
  }

  capture.start_day(day_index);
  // One sketch shard per engine shard, created up front so run_shard only
  // reads stable references (plane growth is not hot-path safe).
  obs::TrafficSketchPlane* const sketch = sketch_.get();
  if (sketch != nullptr) sketch->ensure_shards(shard_count);

  std::vector<ShardResult> shards;
  shards.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards.emplace_back(options_.capture);
  }

  obs::MetricsRegistry* const metrics = metrics_.get();
  obs::Timer* const shard_timer =
      metrics != nullptr ? &metrics->timer("engine.shard") : nullptr;
  obs::TraceCollector* const trace = trace_.get();

  // The heartbeat only loads the pre-resolved handles it captures here;
  // shards keep hammering their relaxed atomics, no lock is shared.
  std::unique_ptr<obs::ProgressReporter> progress;
  if (options_.progress && metrics != nullptr) {
    obs::ProgressConfig progress_config;
    progress_config.interval_seconds = options_.progress_interval_seconds;
    progress_config.expected_queries = options_.scale.queries_per_day;
    progress_config.shard_count = shard_count;
    progress =
        std::make_unique<obs::ProgressReporter>(*metrics, progress_config);
  }
  // All shards beat the one "engine" gauge (atomic store, last writer
  // wins) — any progress keeps the stage fresh on /healthz.
  obs::Gauge* const engine_heartbeat =
      metrics != nullptr ? &obs::heartbeat_gauge(*metrics, "engine") : nullptr;
  const obs::RunActiveScope run_active(metrics);

  std::atomic<std::uint64_t> queries{0};
  const auto run_shard = [&](std::size_t index) {
    ShardResult& shard = shards[index];
    try {
      obs::StageTimer shard_span(shard_timer);
      obs::TraceSpan shard_trace(
          trace != nullptr
              ? &trace->stream(obs::TraceStage::kEngine,
                               static_cast<std::uint32_t>(index))
              : nullptr,
          trace, obs::TraceOp::kEngineShard);
      shard_trace.annotate({}, 0, obs::TraceOutcome::kNone, index);
      // Every shard builds its own Scenario: zone models mutate while
      // sampling and the authority keeps lookup counters, so sharing one
      // instance across workers would race.  Same (date, scale) => same
      // zone population in every shard.
      Scenario scenario(date, options_.scale);
      ClusterConfig shard_config = options_.cluster.for_shard(index);
      shard_config.metrics = metrics;
      shard_config.trace = trace;
      RdnsCluster cluster(shard_config, scenario.authority());
      const TrafficGenerator::ShardSpec spec{shard_count, index};
      std::uint64_t fed = 0;
      Question question;  // scratch reused across the shard's day
      obs::Heartbeat heartbeat(engine_heartbeat);
      heartbeat.beat();
      const auto feed = [&cluster, &fed, &question, &heartbeat](
                            SimTime ts, std::uint64_t client,
                            const QuerySpec& query) {
        heartbeat.tick();
        if (!question.name.assign(query.qname)) return;
        question.type = query.qtype;
        cluster.query_view(client, question, ts);
        ++fed;
      };
      if (options_.warmup) {
        // Same reduced-volume warmup day the classic pipeline runs, shard
        // filtered: warm clients hash into the same partition, so each
        // shard cache warms exactly like its server would.
        ScenarioScale warm_scale = options_.scale;
        warm_scale.queries_per_day = static_cast<std::uint64_t>(
            static_cast<double>(warm_scale.queries_per_day) *
            options_.warmup_volume_fraction);
        warm_scale.traffic_stream ^= 0xbeefcafeULL;
        Scenario warm(date, warm_scale);
        warm.traffic().run_day_shard(day_index - 1, spec, feed);
        fed = 0;  // warmup queries are not part of the day
      }
      shard.capture.start_day(day_index);
      shard.capture.attach(cluster);
      // The traffic plane observes the measured day only (not warmup),
      // one sketch shard per engine shard — single writer, this thread —
      // through the cluster's wait-free hook, not the copying tap.
      obs::TrafficSketch* const sketch_shard =
          sketch != nullptr ? &sketch->shard(index) : nullptr;
      if (sketch_shard != nullptr) cluster.set_traffic_sketch(sketch_shard);
      // Instrument the measured day only; warmup queries already fed above
      // through an uninstrumented generator.
      scenario.traffic().set_metrics(metrics);
      scenario.traffic().set_trace(trace, static_cast<std::uint32_t>(index));
      scenario.traffic().run_day_shard(day_index, spec, feed);
      cluster.flush_taps();
      if (sketch_shard != nullptr) cluster.set_traffic_sketch(nullptr);
      shard.capture.detach(cluster);
      shard.counters.stats = cluster.aggregate_stats();
      shard.counters.below_answers = cluster.below_answers();
      shard.counters.above_answers = cluster.above_answers();
      shard.counters.dnssec_validations = cluster.dnssec_validations();
      shard.counters.dnssec_disposable_validations =
          cluster.dnssec_disposable_validations();
      shard.counters.answered_misses = cluster.answered_misses();
      shard.counters.disposable_answered_misses =
          cluster.disposable_answered_misses();
      queries.fetch_add(fed, std::memory_order_relaxed);
      if (metrics != nullptr) {
        metrics->gauge("engine.shard" + std::to_string(index) +
                       ".wall_seconds")
            .set(shard_span.elapsed_seconds());
      }
    } catch (const std::exception& e) {
      shard.error = e.what();
    } catch (...) {
      shard.error = "unknown shard failure";
    }
  };

  if (threads_ > 1 && shard_count > 1) {
    // threads_ - 1 pool workers: the calling thread participates in
    // parallel_for, so exactly threads_ workers touch shard state.
    ThreadPool pool(std::min(threads_ - 1, shard_count - 1), metrics);
    pool.parallel_for(shard_count, run_shard);
  } else {
    for (std::size_t i = 0; i < shard_count; ++i) run_shard(i);
  }

  if (progress) progress->stop();

  std::string merge_error;
  {
    const obs::StageTimer merge_span(
        metrics != nullptr ? &metrics->timer("engine.merge") : nullptr);
    const obs::TraceSpan merge_trace(
        trace != nullptr ? &trace->stream(obs::TraceStage::kEngine, 0)
                         : nullptr,
        trace, obs::TraceOp::kEngineMerge);
    report.counters = merge_shards(shards, capture, merge_error);
  }
  // Shard workers joined above, so the trace snapshot contract holds.
  publish_trace_snapshot();
  if (!merge_error.empty()) {
    report.status = MiningDayStatus::kInvalidConfig;
    report.error = merge_error;
    return report;
  }
  report.queries = queries.load(std::memory_order_relaxed);
  if (report.queries == 0) {
    report.status = MiningDayStatus::kEmptyCapture;
    report.error = "sharded day produced no queries";
  }
  return report;
}

MiningDayResult MiningSession::run(ScenarioDate date) {
  DayCapture capture(options_.capture);
  return run(date, capture, scenario_day_index(date));
}

MiningDayResult MiningSession::run(ScenarioDate date, DayCapture& capture,
                                   std::int64_t day_index) {
  // Nested with simulate()'s scope (add/sub gauge), so /healthz sees the
  // run as active through the mining stages too.
  const obs::RunActiveScope run_active(metrics_.get());
  Scenario scenario(date, options_.scale);
  const EngineReport report = simulate(date, capture, day_index);
  if (!report.ok()) {
    MiningDayResult result;
    result.status = report.status;
    result.error = report.error;
    return result;
  }
  const MineFn mine = [this](const DisposableZoneMiner& miner,
                             DomainNameTree& tree,
                             const CacheHitRateTracker& chr) {
    return mine_zones_parallel(miner, tree, chr, *options_.miner.psl,
                               threads_);
  };
  MiningDayResult result = finish_mining_day(capture, scenario, options_, mine);
  // finish_mining_day already froze the trace into result.trace_json;
  // serve that exact document on /trace.
  if (telemetry_ != nullptr && !result.trace_json.empty()) {
    telemetry_->publish_trace(result.trace_json);
  }
  if (sketch_ != nullptr && result.ok()) {
    // Today's mined zones become the live classifier for the next day —
    // the paper's protocol (yesterday's model applied to today's traffic)
    // carried into the streaming plane.
    std::vector<std::string> zones;
    zones.reserve(result.findings.size());
    for (const DisposableZoneFinding& finding : result.findings) {
      zones.push_back(finding.zone);
    }
    sketch_->set_disposable_zones(std::move(zones));
    if (metrics_ != nullptr) sketch_->publish_gauges(*metrics_);
  }
  return result;
}

std::vector<DisposableZoneFinding> mine_zones_parallel(
    const DisposableZoneMiner& miner, DomainNameTree& tree,
    const CacheHitRateTracker& chr, const PublicSuffixList& psl,
    std::size_t threads) {
  obs::MetricsRegistry* const metrics = miner.config().metrics;
  const obs::StageTimer classify_span(
      metrics != nullptr ? &metrics->timer("engine.classify") : nullptr);
  obs::TraceCollector* const trace = miner.config().trace;
  const obs::TraceSpan classify_trace(
      trace != nullptr ? &trace->stream(obs::TraceStage::kEngine, 0)
                       : nullptr,
      trace, obs::TraceOp::kEngineClassify);
  std::vector<DomainNameTree::Node*> roots = tree.effective_2ld_nodes(psl);
  std::vector<std::vector<DisposableZoneFinding>> outs(roots.size());
  const auto mine_root = [&](std::size_t i) {
    // Effective-2LD subtrees are disjoint and decolor touches only the
    // node, so concurrent zone walks never share mutable state.
    miner.mine_zone(tree, *roots[i], chr, outs[i]);
  };
  if (threads > 1 && roots.size() > 1) {
    ThreadPool pool(std::min(threads - 1, roots.size() - 1), metrics);
    pool.parallel_for(roots.size(), mine_root);
  } else {
    for (std::size_t i = 0; i < roots.size(); ++i) mine_root(i);
  }
  std::vector<DisposableZoneFinding> findings;
  for (std::vector<DisposableZoneFinding>& out : outs) {
    for (DisposableZoneFinding& finding : out) {
      findings.push_back(std::move(finding));
    }
  }
  DisposableZoneMiner::sort_findings(findings);
  return findings;
}

}  // namespace dnsnoise
