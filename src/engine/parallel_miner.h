// Sharded parallel mining engine — the redesigned front door of the daily
// pipeline.
//
// MiningSession is a fluent builder over PipelineOptions plus a thread
// count.  run() executes the same logical day as run_mining_day, but:
//
//   * the simulated day is partitioned by RDNS server (one shard per
//     server; requires client-hash balancing for server_count > 1),
//   * each shard runs on the work-stealing pool with its own Scenario,
//     single-server RdnsCluster (seed split per shard, see
//     ClusterConfig::for_shard) and thread-local DayCapture,
//   * shard captures are merged in shard-index order (see shard_merge.h),
//   * the classify stage fans Algorithm 1 over the effective-2LD zones on
//     the same pool (subtrees are disjoint, so zone mining is race-free),
//     and re-ranks with the total-order finding sort.
//
// Shard decomposition is fixed by server_count — threads only schedule
// shards — and per-shard seeds derive from the scenario seed, so
// threads(1) and threads(N) produce byte-identical findings.
//
//   const MiningDayResult result = MiningSession(scale)
//                                      .cluster(cluster_config)
//                                      .threads(4)
//                                      .pretrained(&model)
//                                      .run(ScenarioDate::kSep2011);
//   if (!result.ok()) { /* result.error */ }
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "engine/serve.h"
#include "engine/shard_merge.h"
#include "miner/pipeline.h"
#include "obs/sketch/traffic_sketch.h"

namespace dnsnoise::obs {
class MetricsRegistry;
class TelemetryServer;
class TraceCollector;
}  // namespace dnsnoise::obs

namespace dnsnoise {

/// What the simulation half of an engine day produced (cluster-side view;
/// the capture itself goes to the caller's DayCapture).
struct EngineReport {
  MiningDayStatus status = MiningDayStatus::kOk;
  std::string error;  // non-empty when !ok()
  std::size_t shard_count = 0;
  std::size_t threads = 0;
  std::uint64_t queries = 0;  // client queries fed below the cluster
  ShardCounters counters;

  bool ok() const noexcept { return status == MiningDayStatus::kOk; }
};

class MiningSession {
 public:
  explicit MiningSession(const ScenarioScale& scale = {});

  // --- Fluent configuration (each returns *this) ---------------------------
  MiningSession& scale(const ScenarioScale& scale);
  MiningSession& cluster(const ClusterConfig& cluster);
  MiningSession& labeler(const LabelerConfig& labeler);
  MiningSession& miner(const MinerConfig& miner);
  MiningSession& model(const LadTreeConfig& model);
  /// Mine with an already-trained classifier (must outlive run()).
  MiningSession& pretrained(const BinaryClassifier* model);
  /// Worker threads for the shard and classify stages (>= 1).  Changes the
  /// schedule only, never the results.
  MiningSession& threads(std::size_t n);
  MiningSession& warmup(bool enabled, double volume_fraction = 0.5);
  MiningSession& capture_config(const DayCaptureConfig& config);
  /// Opt-in observability (DESIGN.md §10): creates (or drops) the session's
  /// MetricsRegistry.  Enabled, every stage of simulate()/run() reports
  /// into it and run()'s MiningDayResult carries the JSON snapshot;
  /// disabled (the default), no instrumentation runs at all.  Re-enabling
  /// resets previously collected metrics.
  MiningSession& enable_metrics(bool enabled = true);
  /// Opt-in event tracing (DESIGN.md §12): creates (or drops) the session's
  /// TraceCollector.  Enabled, every stage records spans/instants — the
  /// per-query workload/cluster spans head-sampled 1-in-`sample_every_n`
  /// with deterministic per-shard phases — and run()'s MiningDayResult
  /// carries the dnsnoise-trace-v1 JSON export.  Tracing never changes
  /// findings (TracePipeline.* tests) and threads(N) records the same
  /// trace content as threads(1).  Re-enabling resets collected events.
  MiningSession& enable_tracing(bool enabled = true,
                                std::uint64_t sample_every_n = 64);
  /// Opt-in live heartbeat: while simulate()/run() shards execute, a
  /// background thread rewrites one stderr status line (answered queries,
  /// queries/sec, shards done, ETA) every `interval_seconds`.  Reads
  /// pre-resolved metric handles only — no new hot-path locks — and
  /// auto-enables metrics if they are off.
  MiningSession& enable_progress(bool enabled = true,
                                 double interval_seconds = 1.0);
  /// Opt-in live telemetry endpoint (DESIGN.md §13): starts a
  /// session-lifetime HTTP server on 127.0.0.1:<port> (0 picks an
  /// ephemeral port, see telemetry()->port()) serving GET /metrics
  /// (OpenMetrics exposition of the live registry), /healthz (per-stage
  /// heartbeat health, 503 on stall while a run is active), and /trace
  /// (the latest frozen trace snapshot, published after each
  /// simulate()/run()).  Auto-enables metrics.  Scrapes snapshot on the
  /// serve thread only; findings are bit-identical with telemetry on or
  /// off (TelemetryServer.* tests).  Port 0 with `enabled=false` stops
  /// and drops the server.
  MiningSession& enable_telemetry(bool enabled = true, std::uint16_t port = 0,
                                  double stall_seconds = 30.0);
  /// Opt-in streaming traffic introspection (DESIGN.md §17): creates (or
  /// drops) the session's TrafficSketchPlane.  Enabled, every engine
  /// shard's below-stream answers feed a per-shard sketch set (heavy
  /// hitters, cardinality, windowed disposable-share); the merged
  /// dnsnoise-traffic-v1 document is served live on GET /traffic when
  /// telemetry is on, traffic.* gauges land in /metrics, and after each
  /// run() the day's mined zones become the plane's live classifier for
  /// the next day.  Findings are byte-identical with the plane on or off
  /// (TrafficPlane.* tests), and threads(N) produces byte-identical
  /// sketch output to threads(1).  Re-enabling resets collected sketches.
  MiningSession& enable_traffic_sketch(
      bool enabled = true, const obs::TrafficSketchConfig& config = {});
  /// Opt-in DNS server mode (DESIGN.md §14): configures serve() to answer
  /// RFC 1035 wire queries on UDP 127.0.0.1:<port> (0 picks an ephemeral
  /// port) with TCP fallback for truncated responses.  `server` supplies
  /// the remaining knobs (socket shards, batching, smoke-zone hooks); its
  /// port/tcp_fallback fields are overridden by the arguments here.
  MiningSession& enable_dns_server(bool enabled = true, std::uint16_t port = 0,
                                   const DnsServerOptions& server = {});

  const PipelineOptions& options() const noexcept { return options_; }
  std::size_t thread_count() const noexcept { return threads_; }
  /// The session's live registry — null unless enable_metrics() was called.
  /// Valid until the session is destroyed or metrics are re-/dis-abled.
  obs::MetricsRegistry* metrics() const noexcept { return metrics_.get(); }
  /// The session's live collector — null unless enable_tracing() was
  /// called.  Valid until the session is destroyed or tracing is
  /// re-/dis-abled.
  obs::TraceCollector* trace() const noexcept { return trace_.get(); }
  /// The session's live telemetry server — null unless enable_telemetry()
  /// was called.  Valid until the session is destroyed or telemetry is
  /// re-/dis-abled.
  obs::TelemetryServer* telemetry() const noexcept { return telemetry_.get(); }
  /// The session's live traffic plane — null unless enable_traffic_sketch()
  /// was called.  Valid until the session is destroyed or the plane is
  /// re-/dis-abled.
  obs::TrafficSketchPlane* traffic_sketch() const noexcept {
    return sketch_.get();
  }

  /// Simulates one sharded day into `capture` (start_day(day_index)-reset
  /// here, the engine's single reset point — mirrors simulate_day), without
  /// mining.  On a non-ok() report the capture contents are unspecified.
  EngineReport simulate(ScenarioDate date, DayCapture& capture,
                        std::int64_t day_index);
  /// Same, with day_index = scenario_day_index(date).
  EngineReport simulate(ScenarioDate date, DayCapture& capture);

  /// Runs the full mining day (simulate + label/train + parallel classify +
  /// evaluate).  Check result.ok() before using the findings.
  MiningDayResult run(ScenarioDate date);
  /// Same full mining day into a caller-owned capture with an explicit
  /// engine day index (mirrors the simulate() overloads).  Multi-day
  /// campaign drivers use this so each finished day's findings arm the
  /// live traffic classifier while they keep the capture for their own
  /// hourly tables.
  MiningDayResult run(ScenarioDate date, DayCapture& capture,
                      std::int64_t day_index);

  /// Starts the day in server mode: warmup runs in-process, then queries
  /// arrive over the socket at ->udp_port() and feed the same tap/metrics
  /// path; ->finish() mines the captured day.  Null unless
  /// enable_dns_server was called; check ->ok() before serving (a failed
  /// socket bind reports there).
  std::unique_ptr<ServedMiningDay> serve(ScenarioDate date);

 private:
  /// Rebuilds (or stops) the telemetry server against the current
  /// registry; called by enable_telemetry and by enable_metrics when a
  /// server is already running.
  void restart_telemetry();
  /// Publishes the frozen trace snapshot to the telemetry server (no-op
  /// when either side is off).  Callers must have quiesced all trace
  /// writers first — shard workers joined — per the TraceCollector
  /// snapshot contract.
  void publish_trace_snapshot();

  PipelineOptions options_;
  std::size_t threads_ = 1;
  bool server_enabled_ = false;
  DnsServerOptions server_options_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::shared_ptr<obs::TraceCollector> trace_;
  std::shared_ptr<obs::TrafficSketchPlane> sketch_;
  std::shared_ptr<obs::TelemetryServer> telemetry_;
  std::uint16_t telemetry_port_ = 0;
  double telemetry_stall_seconds_ = 30.0;
};

/// Parallel drop-in for DisposableZoneMiner::mine: fans mine_zone over the
/// effective-2LD zones on `threads` workers and sorts with the total-order
/// ranking.  Output is identical to the serial mine().
std::vector<DisposableZoneFinding> mine_zones_parallel(
    const DisposableZoneMiner& miner, DomainNameTree& tree,
    const CacheHitRateTracker& chr, const PublicSuffixList& psl,
    std::size_t threads);

}  // namespace dnsnoise
