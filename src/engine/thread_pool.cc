#include "engine/thread_pool.h"

#include <algorithm>
#include <latch>

#include "obs/metrics.h"

namespace dnsnoise {

namespace {
// Index of the worker deque owned by the current thread, or npos when the
// thread does not belong to a pool.  One pool at a time per thread is
// enough for the engine (pools are scoped to a simulate/mine call).
constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);
thread_local std::size_t tls_worker_index = kNoWorker;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads, obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    tasks_metric_ = &metrics->counter("engine.pool.tasks_submitted");
    steals_metric_ = &metrics->counter("engine.pool.steals");
    queue_depth_max_ = &metrics->gauge("engine.pool.queue_depth_max");
  }
  const std::size_t count = std::max<std::size_t>(threads, 1);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard lock(wait_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t here = tls_worker_index;
  const std::size_t target =
      here != kNoWorker && here < workers_.size()
          ? here
          : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                workers_.size();
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  {
    // Incrementing under wait_mutex_ pairs with the workers' predicate
    // check, closing the missed-wakeup window between check and wait.
    std::lock_guard lock(wait_mutex_);
    const std::size_t depth =
        queued_.fetch_add(1, std::memory_order_release) + 1;
    if (queue_depth_max_ != nullptr) {
      queue_depth_max_->set_max(static_cast<double>(depth));
    }
  }
  if (tasks_metric_ != nullptr) tasks_metric_->add();
  work_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t index, std::function<void()>& task) {
  // Own deque first, back (LIFO)...
  {
    Worker& own = *workers_[index];
    std::lock_guard lock(own.mutex);
    if (!own.queue.empty()) {
      task = std::move(own.queue.back());
      own.queue.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // ...then steal from a victim's front (FIFO).
  for (std::size_t offset = 1; offset < workers_.size(); ++offset) {
    Worker& victim = *workers_[(index + offset) % workers_.size()];
    std::lock_guard lock(victim.mutex);
    if (!victim.queue.empty()) {
      task = std::move(victim.queue.front());
      victim.queue.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      if (steals_metric_ != nullptr) steals_metric_->add();
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(std::function<void()>& task) {
  task();
  task = nullptr;
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last pending task: wake wait_idle() under the lock so the waiter
    // cannot miss the notification between its check and its wait.
    std::lock_guard lock(wait_mutex_);
    idle_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker_index = index;
  std::function<void()> task;
  for (;;) {
    if (try_pop(index, task)) {
      run_task(task);
      continue;
    }
    std::unique_lock lock(wait_mutex_);
    work_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_acquire) == 0) {
      break;
    }
  }
  tls_worker_index = kNoWorker;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(wait_mutex_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t helpers = std::min(thread_count(), n);
  auto done = std::make_shared<std::latch>(
      static_cast<std::ptrdiff_t>(helpers));
  const auto drain = [next, &body, n] {
    for (std::size_t i = next->fetch_add(1, std::memory_order_relaxed); i < n;
         i = next->fetch_add(1, std::memory_order_relaxed)) {
      body(i);
    }
  };
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([drain, done] {
      drain();
      done->count_down();
    });
  }
  // The caller joins the index race instead of blocking idle.
  drain();
  done->wait();
}

}  // namespace dnsnoise
