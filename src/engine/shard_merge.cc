#include "engine/shard_merge.h"

namespace dnsnoise {

ShardCounters merge_shards(std::vector<ShardResult>& shards, DayCapture& into,
                           std::string& error_out) {
  ShardCounters total;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    ShardResult& shard = shards[i];
    if (!shard.error.empty()) {
      error_out = "shard " + std::to_string(i) + ": " + shard.error;
      return total;
    }
    into.merge_from(shard.capture);
    total += shard.counters;
  }
  into.fpdns().stable_sort_by_time();
  return total;
}

}  // namespace dnsnoise
