// Served mining days: the wire front-end wired into the mining engine
// (DESIGN.md §14).
//
// A ServedMiningDay is the socket-fed twin of MiningSession::run(): it
// builds the day's Scenario and RdnsCluster, runs the usual in-process
// warmup day, attaches the DayCapture tap, then starts a
// resolver/wire_frontend serving RFC 1035 queries over UDP (+ TCP
// fallback) instead of driving the generator loop itself.  Every served
// query flows through the same RdnsCluster::query_view path, so the
// batched tap, metrics, and heartbeats observe wire traffic exactly as
// they observe in-process traffic.  finish() stops serving, flushes the
// tap, and runs the standard post-capture mining half
// (finish_mining_day with the engine's parallel zone fan-out).
//
// Golden contract: replaying a captured day's (ts, client, query) stream
// through the socket in timestamp order — replay metadata attached, one
// lockstep client — yields findings byte-identical to simulate_day over
// the same stream (WireGolden.* tests).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "miner/pipeline.h"
#include "obs/telemetry_server.h"
#include "resolver/wire_frontend.h"

namespace dnsnoise::obs {
class TrafficSketch;
}  // namespace dnsnoise::obs

namespace dnsnoise {

/// Server-mode knobs, layered on top of the session's PipelineOptions.
struct DnsServerOptions {
  /// UDP port to bind (0 picks an ephemeral port; read it back from
  /// ServedMiningDay::udp_port).  The TCP fallback listener binds the
  /// same resolved port.
  std::uint16_t port = 0;
  std::string host = "127.0.0.1";
  /// SO_REUSEPORT socket shards, one serving thread each (clamped to 1
  /// on platforms without SO_REUSEPORT).
  std::size_t socket_shards = 1;
  /// Datagrams per recvmmsg/sendmmsg batch on Linux.
  std::size_t batch = 32;
  bool tcp_fallback = true;
  /// Honor replay-meta records (net/udp_client.h).  Defaults on: the
  /// in-repo clients (golden tests, throughput bench) replay captured
  /// timelines.  Turn off when serving real clients, which must not
  /// choose their own timestamps.
  bool allow_replay_meta = true;
  /// UDP responses above this are truncated to TC=1 (classic 512).
  std::size_t max_udp_payload = 512;
  /// Runs against the scenario's authority before the cluster is built —
  /// the hook for registering extra zones (CI smoke zones, demo data).
  std::function<void(SyntheticAuthority&)> authority_hook;
};

/// One mining day whose queries arrive over the socket.  Construct (via
/// MiningSession::serve), send wire queries at udp_port(), then finish().
class ServedMiningDay {
 public:
  /// Builds scenario + cluster, runs the in-process warmup day, attaches
  /// the capture, and starts serving.  On failure ok() is false and
  /// error() has the reason; finish() then returns a non-ok result.
  /// With `telemetry` set, the frontend's slow-query log is published on
  /// GET /slowlog for the day's lifetime (detached on finish/destroy).
  ServedMiningDay(ScenarioDate date, const PipelineOptions& options,
                  std::size_t threads, const DnsServerOptions& server,
                  std::shared_ptr<obs::TelemetryServer> telemetry = nullptr);
  ~ServedMiningDay();

  ServedMiningDay(const ServedMiningDay&) = delete;
  ServedMiningDay& operator=(const ServedMiningDay&) = delete;

  bool ok() const noexcept { return error_.empty(); }
  const std::string& error() const noexcept { return error_; }

  std::uint16_t udp_port() const noexcept { return frontend_->udp_port(); }
  std::uint16_t tcp_port() const noexcept { return frontend_->tcp_port(); }
  WireFrontend& frontend() noexcept { return *frontend_; }
  DayCapture& capture() noexcept { return capture_; }
  Scenario& scenario() noexcept { return scenario_; }
  std::int64_t day_index() const noexcept { return day_index_; }

  /// Stops serving, flushes the tap, and mines the captured day (same
  /// post-capture half as MiningSession::run, parallel zone fan-out).
  /// Callable once; a finished day no longer answers queries.
  MiningDayResult finish();

 private:
  /// Clears the /slowlog source before the frontend it closes over dies.
  void detach_slowlog();

  PipelineOptions options_;
  std::size_t threads_;
  std::int64_t day_index_;
  std::string error_;
  bool attached_ = false;
  bool finished_ = false;
  /// Shard 0 of options_.sketch while attached to the cluster's
  /// traffic-sketch hook.
  obs::TrafficSketch* sketch_shard_ = nullptr;
  std::shared_ptr<obs::TelemetryServer> telemetry_;
  // Declaration order is load-bearing: the frontend references the
  // cluster (stop threads first), and the cluster's destructor flushes
  // into still-attached taps (capture must outlive it).
  Scenario scenario_;
  DayCapture capture_;
  std::unique_ptr<RdnsCluster> cluster_;
  std::unique_ptr<WireFrontend> frontend_;
};

}  // namespace dnsnoise
