// Per-shard capture slots and their deterministic merge.
//
// The engine partitions a simulated day by RDNS server (client-hash
// balancing makes each server's traffic — and so its cache — independent of
// the others), runs one ShardResult per server on the thread pool, and then
// merges the shards *in shard-index order*.  Every merge operation used here
// is either order-independent (CHR sums, rpDNS first-seen union, tree union
// into ordered maps) or made deterministic by the fixed merge order plus a
// final stable time sort of the fpDNS entries, so the merged capture is a
// pure function of the scenario, never of the thread schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "miner/day_capture.h"
#include "resolver/dns_cache.h"

namespace dnsnoise {

/// Cluster-side counters of one shard (mirrors the RdnsCluster accessors).
struct ShardCounters {
  DnsCacheStats stats;
  std::uint64_t below_answers = 0;
  std::uint64_t above_answers = 0;
  std::uint64_t dnssec_validations = 0;
  std::uint64_t dnssec_disposable_validations = 0;
  std::uint64_t answered_misses = 0;
  std::uint64_t disposable_answered_misses = 0;

  ShardCounters& operator+=(const ShardCounters& other) noexcept {
    accumulate(stats, other.stats);
    below_answers += other.below_answers;
    above_answers += other.above_answers;
    dnssec_validations += other.dnssec_validations;
    dnssec_disposable_validations += other.dnssec_disposable_validations;
    answered_misses += other.answered_misses;
    disposable_answered_misses += other.disposable_answered_misses;
    return *this;
  }
};

/// Everything one shard task produces.  Tasks must not throw on the pool,
/// so failures land in `error` instead.
struct ShardResult {
  explicit ShardResult(const DayCaptureConfig& config = {})
      : capture(config) {}

  DayCapture capture;
  ShardCounters counters;
  std::string error;  // empty on success
};

/// Merges `shards` (in index order) into `into`, which must already be
/// start_day()-reset for the same day.  Counters are summed into the return
/// value.  On the first shard with a non-empty error the merge stops and
/// that error is reported through `error_out`; `into` should then be
/// discarded.  After the last shard the fpDNS entries are stable-sorted by
/// time, restoring the chronological order of a single tap.
ShardCounters merge_shards(std::vector<ShardResult>& shards, DayCapture& into,
                           std::string& error_out);

}  // namespace dnsnoise
