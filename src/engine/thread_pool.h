// Small work-stealing thread pool for the sharded mining engine.
//
// Each worker owns a deque: the owner pushes/pops at the back (LIFO, cache
// friendly), idle workers steal from the front of a victim's deque (FIFO,
// takes the oldest — usually largest — task).  The pool is deliberately
// minimal: tasks are type-erased void() callables, submission round-robins
// across worker deques, and parallel_for hands out indices through a shared
// atomic counter so callers get dynamic load balancing without choosing a
// chunk size.
//
// Contract: tasks must not throw — a throwing task calls std::terminate.
// Callers that can fail (e.g. the engine's shard tasks) catch inside the
// task and report through their own result slot.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dnsnoise::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace dnsnoise::obs

namespace dnsnoise {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).  A non-null `metrics`
  /// registry (DESIGN.md §10) receives the engine.pool.* scheduler metrics:
  /// tasks submitted, steals, and the queue-depth high-water mark.
  explicit ThreadPool(std::size_t threads,
                      obs::MetricsRegistry* metrics = nullptr);

  /// Drains nothing: pending tasks are completed before the workers exit.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return threads_.size(); }

  /// Enqueues one task.  From a worker thread the task lands in that
  /// worker's own deque (LIFO); from outside it round-robins.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void wait_idle();

  /// Runs body(0..n-1) across the pool and returns when all calls are done.
  /// The calling thread participates, so the pool is never left idle while
  /// the caller blocks.  Indices are claimed dynamically (shared atomic).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> queue;
  };

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex wait_mutex_;
  std::condition_variable work_cv_;  // wakes sleeping workers
  std::condition_variable idle_cv_;  // wakes wait_idle
  std::atomic<std::size_t> queued_{0};   // tasks sitting in deques
  std::atomic<std::size_t> pending_{0};  // tasks submitted but not finished
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
  obs::Counter* tasks_metric_ = nullptr;
  obs::Counter* steals_metric_ = nullptr;
  obs::Gauge* queue_depth_max_ = nullptr;

  void worker_loop(std::size_t index);
  bool try_pop(std::size_t index, std::function<void()>& task);
  void run_task(std::function<void()>& task);
};

}  // namespace dnsnoise
