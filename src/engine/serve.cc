#include "engine/serve.h"

#include <utility>

#include "engine/parallel_miner.h"
#include "obs/heartbeat.h"
#include "obs/sketch/traffic_sketch.h"

namespace dnsnoise {

namespace {

/// In-process warmup feed, identical to the pipeline's drive loop.
void drive_warmup(TrafficGenerator& traffic, RdnsCluster& cluster,
                  std::int64_t day, obs::Heartbeat& heartbeat) {
  Question question;  // scratch reused across the day (zero-alloc re-parse)
  traffic.run_day(day, [&cluster, &question, &heartbeat](
                           SimTime ts, std::uint64_t client,
                           const QuerySpec& query) {
    heartbeat.tick();
    if (!question.name.assign(query.qname)) return;
    question.type = query.qtype;
    cluster.query_view(client, question, ts);
  });
}

}  // namespace

ServedMiningDay::ServedMiningDay(
    ScenarioDate date, const PipelineOptions& options, std::size_t threads,
    const DnsServerOptions& server,
    std::shared_ptr<obs::TelemetryServer> telemetry)
    : options_(options),
      threads_(threads == 0 ? 1 : threads),
      day_index_(scenario_day_index(date)),
      telemetry_(std::move(telemetry)),
      scenario_(date, options.scale),
      capture_(options.capture) {
  // Extra zones must exist before the cluster takes its (const, lock-free)
  // authority reference.
  if (server.authority_hook) server.authority_hook(scenario_.authority_mut());

  ClusterConfig cluster_config = options_.cluster;
  cluster_config.metrics = options_.metrics;
  cluster_config.trace = options_.trace;
  cluster_ = std::make_unique<RdnsCluster>(cluster_config,
                                           scenario_.authority());

  obs::Heartbeat heartbeat(options_.metrics, "cluster");
  heartbeat.beat();
  if (options_.warmup) {
    // The same reduced-volume warmup day simulate_day runs, in-process and
    // before the capture attaches: caches reach steady state identically
    // whether the measured day then arrives in-process or over the wire.
    ScenarioScale warm_scale = scenario_.scale();
    warm_scale.queries_per_day = static_cast<std::uint64_t>(
        static_cast<double>(warm_scale.queries_per_day) *
        options_.warmup_volume_fraction);
    warm_scale.traffic_stream ^= 0xbeefcafeULL;
    Scenario warm(date, warm_scale);
    drive_warmup(warm.traffic(), *cluster_, day_index_ - 1, heartbeat);
  }

  capture_.start_day(day_index_);
  capture_.attach(*cluster_);
  attached_ = true;
  if (options_.sketch != nullptr) {
    // One cluster, serialized under the frontend's cluster mutex — a
    // single logical writer, so the served day feeds sketch shard 0
    // through the wait-free hook (the mutex orders ring appends).
    options_.sketch->ensure_shards(1);
    sketch_shard_ = &options_.sketch->shard(0);
    cluster_->set_traffic_sketch(sketch_shard_);
  }

  WireFrontendConfig frontend_config;
  frontend_config.udp.port = server.port;
  frontend_config.udp.host = server.host;
  frontend_config.udp.shards = server.socket_shards;
  frontend_config.udp.batch = server.batch;
  frontend_config.tcp_fallback = server.tcp_fallback;
  frontend_config.allow_replay_meta = server.allow_replay_meta;
  frontend_config.max_udp_payload = server.max_udp_payload;
  frontend_config.day_start = day_index_ * kSecondsPerDay;
  frontend_config.metrics = options_.metrics;
  frontend_ = std::make_unique<WireFrontend>(*cluster_, frontend_config);
  if (!frontend_->start()) error_ = frontend_->error();
  if (telemetry_ != nullptr && error_.empty()) {
    // The source closes over this day's frontend; detach_slowlog() runs
    // before the frontend is destroyed (finish/destructor), so the
    // telemetry server never scrapes a dangling pointer.
    WireFrontend* frontend = frontend_.get();
    telemetry_->set_slowlog_source(obs::SlowlogSource{
        [frontend](std::size_t max_entries) {
          return frontend->slowlog_json(max_entries);
        },
        [frontend]() { frontend->clear_slowlog(); }});
  }
}

void ServedMiningDay::detach_slowlog() {
  if (telemetry_ != nullptr) {
    telemetry_->set_slowlog_source({});
    telemetry_.reset();
  }
}

ServedMiningDay::~ServedMiningDay() {
  detach_slowlog();
  frontend_->stop();
  if (attached_) {
    cluster_->flush_taps();
    if (sketch_shard_ != nullptr) {
      cluster_->set_traffic_sketch(nullptr);
      sketch_shard_ = nullptr;
    }
    capture_.detach(*cluster_);
  }
}

MiningDayResult ServedMiningDay::finish() {
  MiningDayResult result;
  if (finished_) {
    result.status = MiningDayStatus::kInvalidConfig;
    result.error = "served day already finished";
    return result;
  }
  finished_ = true;
  if (!error_.empty()) {
    result.status = MiningDayStatus::kInvalidConfig;
    result.error = error_;
    return result;
  }
  // Quiesce the serving threads before touching the tap; queries arriving
  // after stop() are no longer answered (clients see a timeout).  Flush
  // the final partial latency window first — the session registry is
  // alive here, and stop() itself never touches it (an abandoned,
  // unfinished day may be destroyed after its registry).
  detach_slowlog();
  frontend_->flush_latency_metrics();
  frontend_->stop();
  cluster_->flush_taps();
  if (sketch_shard_ != nullptr) {
    cluster_->set_traffic_sketch(nullptr);
    sketch_shard_ = nullptr;
  }
  capture_.detach(*cluster_);
  attached_ = false;

  const obs::RunActiveScope run_active(options_.metrics);
  const MineFn mine = [this](const DisposableZoneMiner& miner,
                             DomainNameTree& tree,
                             const CacheHitRateTracker& chr) {
    return mine_zones_parallel(miner, tree, chr, *options_.miner.psl,
                               threads_);
  };
  // A served day can be arbitrarily sparse (a demo server answering a
  // handful of digs): it passes the empty-capture guard yet leaves the
  // trainer with no usable rows, which surfaces as a throw deep in
  // labeling/training.  That is an undermined day, not a crash.
  try {
    result = finish_mining_day(capture_, scenario_, options_, mine);
    if (options_.sketch != nullptr && result.ok()) {
      // The served day's mined zones arm the live classifier for the
      // next served day (MiningSession::run does the same).
      std::vector<std::string> zones;
      zones.reserve(result.findings.size());
      for (const DisposableZoneFinding& finding : result.findings) {
        zones.push_back(finding.zone);
      }
      options_.sketch->set_disposable_zones(std::move(zones));
    }
    return result;
  } catch (const std::exception& ex) {
    result.status = MiningDayStatus::kEmptyCapture;
    result.error = std::string("mining the served day failed (too little "
                               "traffic?): ") +
                   ex.what();
    return result;
  }
}

}  // namespace dnsnoise
