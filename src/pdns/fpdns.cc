#include "pdns/fpdns.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace dnsnoise {

namespace {

constexpr char kMagic[4] = {'F', 'P', 'D', '1'};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    require(1);
    return bytes_[pos_++];
  }

  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[pos_ + static_cast<std::size_t>(i)]} << (i * 8);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[pos_ + static_cast<std::size_t>(i)]} << (i * 8);
    pos_ += 8;
    return v;
  }

  std::string str() {
    const std::uint32_t len = u32();
    require(len);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  void expect_magic() {
    require(4);
    if (std::memcmp(bytes_.data() + pos_, kMagic, 4) != 0) {
      throw std::invalid_argument("FpDnsDataset: bad magic");
    }
    pos_ += 4;
  }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > bytes_.size()) {
      throw std::invalid_argument("FpDnsDataset: truncated input");
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

void FpDnsDataset::add_response(SimTime ts, std::uint64_t client_id,
                                FpDirection direction,
                                const Question& question, RCode rcode,
                                std::span<const ResourceRecord> answers) {
  if (rcode != RCode::NoError || answers.empty()) {
    FpDnsEntry entry;
    entry.ts = ts;
    entry.client_id = client_id;
    entry.direction = direction;
    entry.rcode = rcode;
    entry.qname = question.name.text();
    entry.qtype = question.type;
    entries_.push_back(std::move(entry));
    return;
  }
  for (const ResourceRecord& rr : answers) {
    FpDnsEntry entry;
    entry.ts = ts;
    entry.client_id = client_id;
    entry.direction = direction;
    entry.rcode = rcode;
    entry.qname = rr.name.text();
    entry.qtype = rr.type;
    entry.ttl = rr.ttl;
    entry.rdata = rr.rdata;
    entries_.push_back(std::move(entry));
  }
}

void FpDnsDataset::stable_sort_by_time() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const FpDnsEntry& a, const FpDnsEntry& b) {
                     return a.ts < b.ts;
                   });
}

std::vector<std::uint8_t> FpDnsDataset::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(32 + entries_.size() * 48);
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  put_u64(out, entries_.size());
  for (const FpDnsEntry& e : entries_) {
    put_u64(out, static_cast<std::uint64_t>(e.ts));
    put_u64(out, e.client_id);
    out.push_back(static_cast<std::uint8_t>(e.direction));
    out.push_back(static_cast<std::uint8_t>(e.rcode));
    put_u32(out, static_cast<std::uint32_t>(e.qtype));
    put_u32(out, e.ttl);
    put_string(out, e.qname);
    put_string(out, e.rdata);
  }
  return out;
}

FpDnsDataset FpDnsDataset::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes);
  reader.expect_magic();
  const std::uint64_t count = reader.u64();
  FpDnsDataset dataset;
  dataset.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    FpDnsEntry e;
    e.ts = static_cast<SimTime>(reader.u64());
    e.client_id = reader.u64();
    e.direction = static_cast<FpDirection>(reader.u8());
    e.rcode = static_cast<RCode>(reader.u8());
    e.qtype = static_cast<RRType>(reader.u32());
    e.ttl = reader.u32();
    e.qname = reader.str();
    e.rdata = reader.str();
    dataset.add(std::move(e));
  }
  return dataset;
}

void FpDnsDataset::save(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("FpDnsDataset: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("FpDnsDataset: write failed " + path);
}

FpDnsDataset FpDnsDataset::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("FpDnsDataset: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("FpDnsDataset: read failed " + path);
  return deserialize(bytes);
}

}  // namespace dnsnoise
