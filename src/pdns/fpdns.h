// Full passive DNS (fpDNS) dataset.
//
// Mirrors the paper's Section III-A: each entry is one answer resource
// record observed at the monitoring point — timestamp (second granularity),
// anonymized client ID, queried name, query type, TTL and RDATA — plus the
// tap direction and rcode so the traffic-volume analyses (Fig. 2) can
// separate below/above and NXDOMAIN streams.  NXDOMAIN responses carry no
// RRs and are stored as a single empty-rdata entry.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dns/message.h"
#include "dns/rr.h"
#include "util/sim_time.h"

namespace dnsnoise {

/// Tap side; duplicated from netio to keep pdns independent of the packet
/// stack (the two enums convert by value).
enum class FpDirection : std::uint8_t {
  kBelow = 0,
  kAbove = 1,
};

struct FpDnsEntry {
  SimTime ts = 0;
  std::uint64_t client_id = 0;  // 0 for above-tap entries
  FpDirection direction = FpDirection::kBelow;
  RCode rcode = RCode::NoError;
  std::string qname;
  RRType qtype = RRType::A;
  std::uint32_t ttl = 0;
  std::string rdata;  // empty for unsuccessful resolutions

  bool successful() const noexcept { return rcode == RCode::NoError; }

  friend bool operator==(const FpDnsEntry&, const FpDnsEntry&) = default;
};

/// In-memory fpDNS dataset with binary (de)serialization.
class FpDnsDataset {
 public:
  void add(FpDnsEntry entry) { entries_.push_back(std::move(entry)); }

  /// Appends one entry per answer RR of a response (or a single NXDOMAIN
  /// entry), the paper's flattening of responses into RR tuples.
  void add_response(SimTime ts, std::uint64_t client_id,
                    FpDirection direction, const Question& question,
                    RCode rcode, std::span<const ResourceRecord> answers);

  /// Appends every entry of `other` (shard merging).  Shards record
  /// time-ordered slices of interleaved client populations, so call
  /// stable_sort_by_time() once after the last append to restore the
  /// chronological order a single tap would have produced.
  void append(const FpDnsDataset& other) {
    entries_.insert(entries_.end(), other.entries_.begin(),
                    other.entries_.end());
  }

  /// Stable time sort: entries with equal timestamps keep their append
  /// order, so merging shards in shard order stays deterministic.
  void stable_sort_by_time();

  std::span<const FpDnsEntry> entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Binary serialization (little-endian, length-prefixed strings).
  std::vector<std::uint8_t> serialize() const;
  static FpDnsDataset deserialize(std::span<const std::uint8_t> bytes);

  void save(const std::string& path) const;
  static FpDnsDataset load(const std::string& path);

 private:
  std::vector<FpDnsEntry> entries_;
};

}  // namespace dnsnoise
