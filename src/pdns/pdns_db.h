// Passive DNS database with optional wildcard aggregation.
//
// Section VI-C: disposable domains bloat pDNS-DB storage; the paper's
// proposed mitigation replaces each disposable name by a wildcard under its
// disposable zone ("1022vr5.dns.xx.fbcdn.net" -> "*.dns.xx.fbcdn.net"),
// which collapsed 129,674,213 distinct disposable RRs into 945,065 (0.7%).
// PassiveDnsDb implements both the raw store and the folding store; the
// §VI-C bench compares them.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "dns/name.h"
#include "dns/rr.h"
#include "pdns/rpdns.h"

namespace dnsnoise {

/// A mined disposable group: names of exactly `depth` labels under `zone`
/// (the output pairs of the paper's Algorithm 1).
struct DisposableGroupRule {
  std::string zone;   // normalized zone text
  std::size_t depth;  // total label count of names in the group

  friend bool operator==(const DisposableGroupRule&,
                         const DisposableGroupRule&) = default;
};

class PassiveDnsDb {
 public:
  explicit PassiveDnsDb(bool wildcard_folding = false)
      : folding_(wildcard_folding) {}

  /// Installs a disposable-group rule; names matching any rule are folded
  /// when wildcard folding is enabled.
  void add_rule(const DisposableGroupRule& rule);
  std::size_t rule_count() const noexcept;

  /// Returns the stored form of `qname`: "*.<zone>" when a rule matches and
  /// folding is on, the name itself otherwise.
  std::string stored_name(const DomainName& qname) const;

  /// Records one successful resolution RR on `day`; returns true when it
  /// created a new database record (after folding, if enabled).
  bool add(const DomainName& qname, RRType qtype, const std::string& rdata,
           std::int64_t day);

  std::size_t unique_records() const noexcept {
    return store_.unique_records();
  }
  std::uint64_t storage_bytes() const noexcept {
    return store_.storage_bytes();
  }
  std::uint64_t new_records_on(std::int64_t day) const {
    return store_.new_records_on(day);
  }
  /// RR additions that were folded into a wildcard record.
  std::uint64_t folded_additions() const noexcept { return folded_additions_; }
  const RpDnsDataset& store() const noexcept { return store_; }

 private:
  bool folding_;
  // zone text -> set of group depths mined as disposable under it.
  std::unordered_map<std::string, std::unordered_set<std::size_t>> rules_;
  RpDnsDataset store_;
  std::uint64_t folded_additions_ = 0;

  /// The matching rule's zone for `qname`, or nullptr.
  const std::string* match_rule(const DomainName& qname) const;
};

}  // namespace dnsnoise
