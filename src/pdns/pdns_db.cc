#include "pdns/pdns_db.h"

namespace dnsnoise {

void PassiveDnsDb::add_rule(const DisposableGroupRule& rule) {
  rules_[rule.zone].insert(rule.depth);
}

std::size_t PassiveDnsDb::rule_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [zone, depths] : rules_) n += depths.size();
  return n;
}

const std::string* PassiveDnsDb::match_rule(const DomainName& qname) const {
  const std::size_t depth = qname.label_count();
  // Walk enclosing zones from most to least specific; a rule matches when
  // the group depth equals the name's own depth.
  for (std::size_t k = depth - 1; k >= 1; --k) {
    const std::string zone(qname.nld_view(k));
    const auto it = rules_.find(zone);
    if (it != rules_.end() && it->second.contains(depth)) {
      return &it->first;
    }
    if (k == 1) break;
  }
  return nullptr;
}

std::string PassiveDnsDb::stored_name(const DomainName& qname) const {
  if (!folding_ || qname.label_count() < 2) return qname.text();
  const std::string* zone = match_rule(qname);
  if (zone == nullptr) return qname.text();
  return "*." + *zone;
}

bool PassiveDnsDb::add(const DomainName& qname, RRType qtype,
                       const std::string& rdata, std::int64_t day) {
  std::string name = stored_name(qname);
  if (folding_ && !name.empty() && name.front() == '*') ++folded_additions_;
  return store_.add(RRKey{std::move(name), qtype, rdata}, day);
}

}  // namespace dnsnoise
