// Reduced passive DNS (rpDNS) dataset: distinct resource records from
// successful resolutions, tagged with the first date each was seen
// (Section III-A).  The Fig. 5 / Fig. 15 analyses ride on the per-day
// new-RR counters this class maintains.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/rr.h"
#include "util/sim_time.h"

namespace dnsnoise {

struct RpDnsRecord {
  std::int64_t first_seen_day = 0;
};

class RpDnsDataset {
 public:
  /// Records one successful resolution RR observed on `day`.  Returns true
  /// if the RR was new (never seen on any previous day).
  bool add(const RRKey& key, std::int64_t day);

  /// Total distinct RRs accumulated.
  std::size_t unique_records() const noexcept { return records_.size(); }

  /// Distinct RRs first seen on `day` (0 if the day saw none).
  std::uint64_t new_records_on(std::int64_t day) const;

  /// First-seen day for a record, or -1 if absent.
  std::int64_t first_seen(const RRKey& key) const;

  /// Unions `other` into this dataset.  A record present in both keeps the
  /// earliest first-seen day; per-day new-record counters follow.  The
  /// result is independent of merge order (shard merging relies on this).
  void merge_from(const RpDnsDataset& other);

  /// Days with at least one new record, ascending.
  std::vector<std::int64_t> days() const;

  /// Visits every (RRKey, RpDnsRecord).
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    for (const auto& [key, record] : records_) visit(key, record);
  }

  /// Approximate storage footprint in bytes (names + rdata + bookkeeping),
  /// the paper's §VI-C pDNS-DB storage-cost measure.
  std::uint64_t storage_bytes() const noexcept { return storage_bytes_; }

 private:
  std::unordered_map<RRKey, RpDnsRecord> records_;
  std::unordered_map<std::int64_t, std::uint64_t> new_per_day_;
  std::uint64_t storage_bytes_ = 0;
};

}  // namespace dnsnoise
