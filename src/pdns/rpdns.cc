#include "pdns/rpdns.h"

#include <algorithm>

namespace dnsnoise {

namespace {
// Fixed bookkeeping cost per stored record: hash-table slot, type tag,
// first-seen date.  Matches the flat layout a production pDNS-DB would use.
constexpr std::uint64_t kRecordOverheadBytes = 24;
}  // namespace

bool RpDnsDataset::add(const RRKey& key, std::int64_t day) {
  const auto [it, inserted] = records_.try_emplace(key, RpDnsRecord{day});
  if (inserted) {
    ++new_per_day_[day];
    storage_bytes_ +=
        kRecordOverheadBytes + key.name.size() + key.rdata.size();
  }
  return inserted;
}

void RpDnsDataset::merge_from(const RpDnsDataset& other) {
  for (const auto& [key, record] : other.records_) {
    const auto [it, inserted] =
        records_.try_emplace(key, RpDnsRecord{record.first_seen_day});
    if (inserted) {
      ++new_per_day_[record.first_seen_day];
      storage_bytes_ +=
          kRecordOverheadBytes + key.name.size() + key.rdata.size();
    } else if (record.first_seen_day < it->second.first_seen_day) {
      // Both shards saw the RR; the earlier observation wins and the later
      // day's "new" counter gives the record back.
      --new_per_day_[it->second.first_seen_day];
      ++new_per_day_[record.first_seen_day];
      it->second.first_seen_day = record.first_seen_day;
    }
  }
}

std::uint64_t RpDnsDataset::new_records_on(std::int64_t day) const {
  const auto it = new_per_day_.find(day);
  return it == new_per_day_.end() ? 0 : it->second;
}

std::int64_t RpDnsDataset::first_seen(const RRKey& key) const {
  const auto it = records_.find(key);
  return it == records_.end() ? -1 : it->second.first_seen_day;
}

std::vector<std::int64_t> RpDnsDataset::days() const {
  std::vector<std::int64_t> out;
  out.reserve(new_per_day_.size());
  for (const auto& [day, count] : new_per_day_) out.push_back(day);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dnsnoise
