#include "features/domain_tree.h"

#include "util/rng.h"

namespace dnsnoise {

DomainNameTree::DomainNameTree() {
  nodes_.emplace_back();  // the root: seq 0, empty label
  root_ = &nodes_.front();
  edge_grow(64);
}

void DomainNameTree::edge_grow(std::size_t min_slots) {
  std::size_t n = 64;
  while (n < min_slots) n <<= 1;
  std::vector<Edge> fresh(n);
  const std::size_t mask = n - 1;
  for (const Edge& edge : edges_) {
    if (edge.child == nullptr) continue;
    std::size_t i = static_cast<std::size_t>(mix64(edge.key)) & mask;
    while (fresh[i].child != nullptr) i = (i + 1) & mask;
    fresh[i] = edge;
  }
  edges_.swap(fresh);
  edge_mask_ = mask;
}

DomainNameTree::Node* DomainNameTree::find_child(
    const Node& parent, std::string_view label) const noexcept {
  const LabelId lid = table_.find_label(label);
  if (lid == kInvalidNameId) return nullptr;
  const std::uint64_t key = edge_key(parent, lid);
  std::size_t i = static_cast<std::size_t>(mix64(key)) & edge_mask_;
  while (true) {
    const Edge& edge = edges_[i];
    if (edge.child == nullptr) return nullptr;
    if (edge.key == key) return edge.child;
    i = (i + 1) & edge_mask_;
  }
}

DomainNameTree::Node& DomainNameTree::child_of(Node& parent,
                                               std::string_view label) {
  const LabelId lid = table_.intern_label(label);
  const std::uint64_t key = edge_key(parent, lid);
  std::size_t i = static_cast<std::size_t>(mix64(key)) & edge_mask_;
  while (true) {
    const Edge& edge = edges_[i];
    if (edge.child == nullptr) break;
    if (edge.key == key) return *edge.child;
    i = (i + 1) & edge_mask_;
  }
  // New edge: grow first (re-probing afterwards) so load stays below 7/8.
  if (edge_count_ + edge_count_ / 7 + 1 >= edges_.size()) {
    edge_grow(edges_.size() * 2);
    i = static_cast<std::size_t>(mix64(key)) & edge_mask_;
    while (edges_[i].child != nullptr) i = (i + 1) & edge_mask_;
  }
  nodes_.emplace_back();
  Node& node = nodes_.back();
  node.label = table_.label(lid);
  node.parent = &parent;
  node.depth = parent.depth + 1;
  node.seq = static_cast<std::uint32_t>(nodes_.size() - 1);
  parent.kids_.push_back(&node);
  if (parent.kids_.size() > 1) parent.kids_sorted_ = false;
  edges_[i] = Edge{key, &node};
  ++edge_count_;
  ++node_count_;
  return node;
}

DomainNameTree::Node& DomainNameTree::insert(const DomainName& name) {
  Node* node = root_;
  const std::size_t labels = name.label_count();
  // Walk right-to-left: TLD first.
  for (std::size_t i = 0; i < labels; ++i) {
    node = &child_of(*node, name.label_from_right(i));
  }
  if (node != root_) node->black = true;
  return *node;
}

DomainNameTree::Node* DomainNameTree::find(const DomainName& name) {
  Node* node = root_;
  for (std::size_t i = 0; i < name.label_count(); ++i) {
    node = find_child(*node, name.label_from_right(i));
    if (node == nullptr) return nullptr;
  }
  return node;
}

namespace {

std::size_t count_black(const DomainNameTree::Node& node) {
  std::size_t count = node.black ? 1 : 0;
  for (const DomainNameTree::Node* child : node.kids_) {
    count += count_black(*child);
  }
  return count;
}

}  // namespace

std::size_t DomainNameTree::black_count() const noexcept {
  return count_black(*root_);
}

void DomainNameTree::merge_from(const DomainNameTree& other) {
  // Recursive union; `dst` and `src` are corresponding nodes.  Iterates
  // src children in insertion order — cheaper than sorting, and the merged
  // traversal order is label-sorted on demand either way.
  const auto merge_node = [this](auto&& self, Node& dst,
                                 const Node& src) -> void {
    if (src.black) dst.black = true;
    for (const Node* src_child : src.kids_) {
      self(self, child_of(dst, src_child->label), *src_child);
    }
  };
  merge_node(merge_node, *root_, *other.root_);
}

void DomainNameTree::full_name_into(const Node& node, std::string& out) {
  out.clear();
  if (node.parent == nullptr) return;
  out.append(node.label);
  for (const Node* up = node.parent; up != nullptr && up->parent != nullptr;
       up = up->parent) {
    out.push_back('.');
    out.append(up->label);
  }
}

std::string DomainNameTree::full_name(const Node& node) {
  std::string name;
  full_name_into(node, name);
  return name;
}

namespace {

void collect_black(const DomainNameTree::Node& node,
                   std::map<std::size_t, std::vector<DomainNameTree::Node*>>&
                       groups) {
  for (DomainNameTree::Node* child : node.children()) {
    if (child->black) groups[child->depth].push_back(child);
    collect_black(*child, groups);
  }
}

}  // namespace

std::map<std::size_t, std::vector<DomainNameTree::Node*>>
DomainNameTree::black_descendants_by_depth(Node& zone) const {
  std::map<std::size_t, std::vector<Node*>> groups;
  collect_black(zone, groups);
  return groups;
}

bool DomainNameTree::has_black_descendant(const Node& zone) noexcept {
  for (const Node* child : zone.kids_) {
    if (child->black || has_black_descendant(*child)) return true;
  }
  return false;
}

namespace {

void collect_2lds(DomainNameTree::Node& node, const std::string& suffix_name,
                  const PublicSuffixList& psl,
                  std::vector<DomainNameTree::Node*>& out) {
  for (DomainNameTree::Node* child : node.children()) {
    const std::string child_name =
        suffix_name.empty()
            ? std::string(child->label)
            : std::string(child->label) + "." + suffix_name;
    const DomainName child_domain(child_name);
    if (psl.suffix_label_count(child_domain) == child_domain.label_count()) {
      // This node is itself a public suffix; its children may be 2LDs.
      collect_2lds(*child, child_name, psl, out);
    } else {
      out.push_back(child);
    }
  }
}

}  // namespace

std::vector<DomainNameTree::Node*> DomainNameTree::effective_2ld_nodes(
    const PublicSuffixList& psl) {
  std::vector<Node*> out;
  collect_2lds(*root_, "", psl, out);
  return out;
}

}  // namespace dnsnoise
