#include "features/domain_tree.h"

namespace dnsnoise {

DomainNameTree::DomainNameTree() : root_(std::make_unique<Node>()) {}

DomainNameTree::Node& DomainNameTree::insert(const DomainName& name) {
  Node* node = root_.get();
  const std::size_t labels = name.label_count();
  // Walk right-to-left: TLD first.
  for (std::size_t i = 0; i < labels; ++i) {
    const std::string_view label = name.label_from_right(i);
    const auto it = node->children.find(label);
    if (it != node->children.end()) {
      node = it->second.get();
      continue;
    }
    auto child = std::make_unique<Node>();
    child->label = std::string(label);
    child->parent = node;
    child->depth = node->depth + 1;
    Node* raw = child.get();
    node->children.emplace(raw->label, std::move(child));
    ++node_count_;
    node = raw;
  }
  if (node != root_.get()) node->black = true;
  return *node;
}

namespace {

std::size_t count_black(const DomainNameTree::Node& node) {
  std::size_t count = node.black ? 1 : 0;
  for (const auto& [label, child] : node.children) count += count_black(*child);
  return count;
}

}  // namespace

std::size_t DomainNameTree::black_count() const noexcept {
  return count_black(*root_);
}

DomainNameTree::Node* DomainNameTree::find(const DomainName& name) {
  Node* node = root_.get();
  for (std::size_t i = 0; i < name.label_count(); ++i) {
    const auto it = node->children.find(name.label_from_right(i));
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

const DomainNameTree::Node* DomainNameTree::find(
    const DomainName& name) const {
  return const_cast<DomainNameTree*>(this)->find(name);
}

void DomainNameTree::merge_from(const DomainNameTree& other) {
  // Recursive union; `dst` and `src` are corresponding nodes.
  const auto merge_node = [this](auto&& self, Node& dst,
                                 const Node& src) -> void {
    if (src.black) dst.black = true;
    for (const auto& [label, src_child] : src.children) {
      const auto it = dst.children.find(label);
      Node* dst_child = nullptr;
      if (it != dst.children.end()) {
        dst_child = it->second.get();
      } else {
        auto child = std::make_unique<Node>();
        child->label = label;
        child->parent = &dst;
        child->depth = dst.depth + 1;
        dst_child = child.get();
        dst.children.emplace(dst_child->label, std::move(child));
        ++node_count_;
      }
      self(self, *dst_child, *src_child);
    }
  };
  merge_node(merge_node, *root_, *other.root_);
}

std::string DomainNameTree::full_name(const Node& node) {
  if (node.parent == nullptr) return {};
  std::string name = node.label;
  for (const Node* up = node.parent; up != nullptr && up->parent != nullptr;
       up = up->parent) {
    name.push_back('.');
    name += up->label;
  }
  return name;
}

namespace {

void collect_black(DomainNameTree::Node& node,
                   std::map<std::size_t, std::vector<DomainNameTree::Node*>>&
                       groups) {
  for (auto& [label, child] : node.children) {
    if (child->black) groups[child->depth].push_back(child.get());
    collect_black(*child, groups);
  }
}

}  // namespace

std::map<std::size_t, std::vector<DomainNameTree::Node*>>
DomainNameTree::black_descendants_by_depth(Node& zone) const {
  std::map<std::size_t, std::vector<Node*>> groups;
  collect_black(zone, groups);
  return groups;
}

bool DomainNameTree::has_black_descendant(const Node& zone) noexcept {
  for (const auto& [label, child] : zone.children) {
    if (child->black || has_black_descendant(*child)) return true;
  }
  return false;
}

namespace {

void collect_2lds(DomainNameTree::Node& node, std::string suffix_name,
                  const PublicSuffixList& psl,
                  std::vector<DomainNameTree::Node*>& out) {
  for (auto& [label, child] : node.children) {
    const std::string child_name =
        suffix_name.empty() ? child->label : child->label + "." + suffix_name;
    const DomainName child_domain(child_name);
    if (psl.suffix_label_count(child_domain) == child_domain.label_count()) {
      // This node is itself a public suffix; its children may be 2LDs.
      collect_2lds(*child, child_name, psl, out);
    } else {
      out.push_back(child.get());
    }
  }
}

}  // namespace

std::vector<DomainNameTree::Node*> DomainNameTree::effective_2ld_nodes(
    const PublicSuffixList& psl) {
  std::vector<Node*> out;
  collect_2lds(*root_, "", psl, out);
  return out;
}

}  // namespace dnsnoise
