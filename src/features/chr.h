// Cache-hit-rate accounting (paper Section III-C2).
//
// The monitoring point sees answer RRs below (client-facing) and above
// (authority-facing) the cluster.  Per RR and per day:
//   total queries  = below observations,
//   cache misses   = above observations,
//   DHR            = (queries - misses) / queries        [domain hit rate]
//   CHR_i          = DHR for each of the n misses        [cache hit rate]
// i.e. the CHR *distribution* repeats an RR's DHR once per miss, exactly
// the paper's black-box simplification of the renewal model.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/rr.h"

namespace dnsnoise {

class CacheHitRateTracker {
 public:
  struct Counts {
    std::uint64_t below = 0;  // total queries (answers seen below)
    std::uint64_t above = 0;  // cache misses (answers seen above)
    std::uint32_t ttl = 0;    // authoritative TTL (first observation wins)
  };

  void record_below(const std::string& name, RRType type,
                    const std::string& rdata, std::uint32_t ttl = 0);
  void record_above(const std::string& name, RRType type,
                    const std::string& rdata, std::uint32_t ttl = 0);

  std::size_t unique_rrs() const noexcept { return entries_.size(); }

  /// Counts for one RR, or nullptr if never seen.
  const Counts* find(const RRKey& key) const;

  /// Sums `other`'s per-RR counts into this tracker (shard merging).  An RR
  /// new to this tracker is appended in `other`'s entry order and takes
  /// other's TTL; an RR present in both keeps this tracker's TTL.
  void merge_from(const CacheHitRateTracker& other);

  /// Domain hit rate of an RR's counts (0 when it was never queried below,
  /// clamped at 0 when above > below).
  static double dhr(const Counts& counts) noexcept;

  /// Indices (into entries()) of all RRs whose name is `name`.
  std::span<const std::uint32_t> rrs_of_name(const std::string& name) const;

  /// Flat access to every (key, counts) entry.
  std::span<const std::pair<RRKey, Counts>> entries() const noexcept {
    return entries_;
  }

  /// DHR of every RR (order matches entries()).
  std::vector<double> all_dhr() const;

  /// The day's CHR distribution: every RR's DHR repeated once per miss.
  /// (Paper Figs. 4 and 7 plot the CDF of exactly this multiset.)
  std::vector<double> chr_distribution() const;

 private:
  std::vector<std::pair<RRKey, Counts>> entries_;
  std::unordered_map<RRKey, std::uint32_t> index_;
  std::unordered_map<std::string, std::vector<std::uint32_t>> by_name_;

  Counts& entry_for(const std::string& name, RRType type,
                    const std::string& rdata);
};

}  // namespace dnsnoise
