// Cache-hit-rate accounting (paper Section III-C2).
//
// The monitoring point sees answer RRs below (client-facing) and above
// (authority-facing) the cluster.  Per RR and per day:
//   total queries  = below observations,
//   cache misses   = above observations,
//   DHR            = (queries - misses) / queries        [domain hit rate]
//   CHR_i          = DHR for each of the n misses        [cache hit rate]
// i.e. the CHR *distribution* repeats an RR's DHR once per miss, exactly
// the paper's black-box simplification of the renewal model.
//
// Hot-path layout (DESIGN.md §11): the RR index is a flat open-addressed
// slot array probed with a precomputed (name, type, rdata) hash, and the
// per-name index maps names through an interned NameTable to dense ids.
// Re-recording an already-seen RR therefore compares string_views against
// the stored entry and allocates nothing; only first observations
// materialize strings.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dns/name_table.h"
#include "dns/rr.h"
#include "util/rng.h"

namespace dnsnoise {

class CacheHitRateTracker {
 public:
  struct Counts {
    std::uint64_t below = 0;  // total queries (answers seen below)
    std::uint64_t above = 0;  // cache misses (answers seen above)
    std::uint32_t ttl = 0;    // authoritative TTL (first observation wins)
  };

  CacheHitRateTracker();

  CacheHitRateTracker(const CacheHitRateTracker&) = delete;
  CacheHitRateTracker& operator=(const CacheHitRateTracker&) = delete;
  CacheHitRateTracker(CacheHitRateTracker&&) = default;
  CacheHitRateTracker& operator=(CacheHitRateTracker&&) = default;

  void record_below(std::string_view name, RRType type, std::string_view rdata,
                    std::uint32_t ttl = 0);
  void record_above(std::string_view name, RRType type, std::string_view rdata,
                    std::uint32_t ttl = 0);

  std::size_t unique_rrs() const noexcept { return entries_.size(); }

  /// Counts for one RR, or nullptr if never seen.
  const Counts* find(const RRKey& key) const;

  /// Sums `other`'s per-RR counts into this tracker (shard merging).  An RR
  /// new to this tracker is appended in `other`'s entry order and takes
  /// other's TTL; an RR present in both keeps this tracker's TTL.
  void merge_from(const CacheHitRateTracker& other);

  /// Domain hit rate of an RR's counts (0 when it was never queried below,
  /// clamped at 0 when above > below).
  static double dhr(const Counts& counts) noexcept;

  /// Indices (into entries()) of all RRs whose name is `name`.  Never
  /// allocates.
  std::span<const std::uint32_t> rrs_of_name(std::string_view name) const;

  /// Flat access to every (key, counts) entry, in first-observation order.
  std::span<const std::pair<RRKey, Counts>> entries() const noexcept {
    return entries_;
  }

  /// DHR of every RR (order matches entries()).
  std::vector<double> all_dhr() const;

  /// The day's CHR distribution: every RR's DHR repeated once per miss.
  /// (Paper Figs. 4 and 7 plot the CDF of exactly this multiset.)
  std::vector<double> chr_distribution() const;

 private:
  static std::uint64_t rr_hash(std::string_view name, RRType type,
                               std::string_view rdata) noexcept {
    return mix64(fnv1a64(name) ^
                 mix64(static_cast<std::uint64_t>(type) + 0x9e3779b9u) ^
                 (fnv1a64(rdata) * 0x9e3779b97f4a7c15ull));
  }

  /// Counts slot for the RR, created on first observation.
  Counts& entry_for(std::string_view name, RRType type,
                    std::string_view rdata);

  void grow_slots(std::size_t min_slots);

  std::vector<std::pair<RRKey, Counts>> entries_;
  std::vector<std::uint64_t> hashes_;  // parallel to entries_; never recomputed
  std::vector<std::uint32_t> slots_;   // entry index + 1; 0 = empty
  std::size_t slot_mask_ = 0;
  NameTable names_{/*track_labels=*/false};
  std::vector<std::vector<std::uint32_t>> by_name_;  // indexed by NameId
};

}  // namespace dnsnoise
