// Statistical feature extraction for a depth group G_k (Section V-A2).
//
// Two feature families:
//   Tree structure — over L_k, the set of labels adjacent to the zone under
//   inspection: cardinality m plus max/min/mean/median/variance of each
//   label's Shannon character entropy.
//   Cache hit rate — over the group's RRs: weighted median of the CHR
//   distribution and the fraction of RRs with zero CHR.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "features/chr.h"
#include "features/domain_tree.h"

namespace dnsnoise {

inline constexpr std::size_t kFeatureCount = 8;

inline constexpr std::array<const char*, kFeatureCount> kFeatureNames = {
    "label_cardinality", "entropy_max",    "entropy_min",
    "entropy_mean",      "entropy_median", "entropy_var",
    "chr_median",        "chr_zero_frac",
};

struct GroupFeatures {
  // Tree-structure family.
  double label_cardinality = 0.0;
  double entropy_max = 0.0;
  double entropy_min = 0.0;
  double entropy_mean = 0.0;
  double entropy_median = 0.0;
  double entropy_var = 0.0;
  // Cache-hit-rate family.
  double chr_median = 0.0;
  double chr_zero_frac = 0.0;
  // Not a classifier input: used for minimum-group-size gating.
  std::size_t group_size = 0;

  std::array<double, kFeatureCount> as_array() const noexcept {
    return {label_cardinality, entropy_max,    entropy_min, entropy_mean,
            entropy_median,    entropy_var,    chr_median,  chr_zero_frac};
  }
};

/// Reusable flat buffers for compute_group_features.  The extraction is
/// structured as SoA passes — gather adjacent nodes, dedup labels, batch
/// the entropy kernel over the label array, then flat CHR arrays — and
/// this scratch keeps those arrays' capacity alive across the groups of a
/// mining walk so steady-state extraction allocates nothing.  One scratch
/// per worker thread (never shared concurrently).
struct GroupFeatureScratch {
  std::vector<const DomainNameTree::Node*> adjacent;
  std::vector<std::string_view> labels;
  std::vector<double> entropies;
  std::vector<double> chr_rates;
  std::vector<std::uint64_t> chr_weights;
  std::vector<std::uint32_t> chr_order;
  std::string name;
};

/// Computes the features of the group of black nodes `group` (all at the
/// same depth) under the zone node at depth `zone_depth`.
/// `chr` supplies per-RR query/miss counts for the same day.
GroupFeatures compute_group_features(
    std::span<DomainNameTree::Node* const> group, std::size_t zone_depth,
    const CacheHitRateTracker& chr);

/// Scratch-reusing overload for hot callers (the miner walk); identical
/// output, zero steady-state allocations.
GroupFeatures compute_group_features(
    std::span<DomainNameTree::Node* const> group, std::size_t zone_depth,
    const CacheHitRateTracker& chr, GroupFeatureScratch& scratch);

}  // namespace dnsnoise
