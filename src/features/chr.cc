#include "features/chr.h"

namespace dnsnoise {

CacheHitRateTracker::CacheHitRateTracker() {
  slots_.assign(256, 0);
  slot_mask_ = 255;
}

void CacheHitRateTracker::grow_slots(std::size_t min_slots) {
  std::size_t n = slots_.size();
  while (n < min_slots) n <<= 1;
  std::vector<std::uint32_t> fresh(n, 0);
  const std::size_t mask = n - 1;
  for (const std::uint32_t ref : slots_) {
    if (ref == 0) continue;
    std::size_t i = static_cast<std::size_t>(hashes_[ref - 1]) & mask;
    while (fresh[i] != 0) i = (i + 1) & mask;
    fresh[i] = ref;
  }
  slots_.swap(fresh);
  slot_mask_ = mask;
}

CacheHitRateTracker::Counts& CacheHitRateTracker::entry_for(
    std::string_view name, RRType type, std::string_view rdata) {
  const std::uint64_t h = rr_hash(name, type, rdata);
  std::size_t i = static_cast<std::size_t>(h) & slot_mask_;
  while (true) {
    const std::uint32_t ref = slots_[i];
    if (ref == 0) break;
    const std::uint32_t idx = ref - 1;
    if (hashes_[idx] == h) {
      const RRKey& key = entries_[idx].first;
      if (key.type == type && name == key.name && rdata == key.rdata) {
        return entries_[idx].second;
      }
    }
    i = (i + 1) & slot_mask_;
  }
  // First observation: materialize the key, keep slot load below 7/8.
  if (entries_.size() + 1 + (entries_.size() + 1) / 7 >= slots_.size()) {
    grow_slots(slots_.size() * 2);
    i = static_cast<std::size_t>(h) & slot_mask_;
    while (slots_[i] != 0) i = (i + 1) & slot_mask_;
  }
  const auto idx = static_cast<std::uint32_t>(entries_.size());
  entries_.emplace_back(RRKey{std::string(name), type, std::string(rdata)},
                        Counts{});
  hashes_.push_back(h);
  slots_[i] = idx + 1;
  const NameId id = names_.intern(name);
  if (id >= by_name_.size()) by_name_.resize(id + 1);
  by_name_[id].push_back(idx);
  return entries_.back().second;
}

void CacheHitRateTracker::record_below(std::string_view name, RRType type,
                                       std::string_view rdata,
                                       std::uint32_t ttl) {
  Counts& counts = entry_for(name, type, rdata);
  if (counts.below + counts.above == 0) counts.ttl = ttl;
  ++counts.below;
}

void CacheHitRateTracker::record_above(std::string_view name, RRType type,
                                       std::string_view rdata,
                                       std::uint32_t ttl) {
  Counts& counts = entry_for(name, type, rdata);
  if (counts.below + counts.above == 0) counts.ttl = ttl;
  ++counts.above;
}

void CacheHitRateTracker::merge_from(const CacheHitRateTracker& other) {
  for (const auto& [key, src] : other.entries_) {
    Counts& dst = entry_for(key.name, key.type, key.rdata);
    if (dst.below + dst.above == 0) dst.ttl = src.ttl;
    dst.below += src.below;
    dst.above += src.above;
  }
}

const CacheHitRateTracker::Counts* CacheHitRateTracker::find(
    const RRKey& key) const {
  const std::uint64_t h = rr_hash(key.name, key.type, key.rdata);
  std::size_t i = static_cast<std::size_t>(h) & slot_mask_;
  while (true) {
    const std::uint32_t ref = slots_[i];
    if (ref == 0) return nullptr;
    const std::uint32_t idx = ref - 1;
    if (hashes_[idx] == h) {
      const RRKey& stored = entries_[idx].first;
      if (stored.type == key.type && stored.name == key.name &&
          stored.rdata == key.rdata) {
        return &entries_[idx].second;
      }
    }
    i = (i + 1) & slot_mask_;
  }
}

double CacheHitRateTracker::dhr(const Counts& counts) noexcept {
  if (counts.below == 0) return 0.0;
  if (counts.above >= counts.below) return 0.0;
  return static_cast<double>(counts.below - counts.above) /
         static_cast<double>(counts.below);
}

std::span<const std::uint32_t> CacheHitRateTracker::rrs_of_name(
    std::string_view name) const {
  const NameId id = names_.find(name);
  if (id == kInvalidNameId || id >= by_name_.size()) return {};
  return by_name_[id];
}

std::vector<double> CacheHitRateTracker::all_dhr() const {
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const auto& [key, counts] : entries_) out.push_back(dhr(counts));
  return out;
}

std::vector<double> CacheHitRateTracker::chr_distribution() const {
  std::vector<double> out;
  for (const auto& [key, counts] : entries_) {
    const double rate = dhr(counts);
    for (std::uint64_t i = 0; i < counts.above; ++i) out.push_back(rate);
  }
  return out;
}

}  // namespace dnsnoise
