#include "features/chr.h"

namespace dnsnoise {

CacheHitRateTracker::Counts& CacheHitRateTracker::entry_for(
    const std::string& name, RRType type, const std::string& rdata) {
  RRKey key{name, type, rdata};
  const auto it = index_.find(key);
  if (it != index_.end()) return entries_[it->second].second;
  const auto idx = static_cast<std::uint32_t>(entries_.size());
  entries_.emplace_back(std::move(key), Counts{});
  index_.emplace(entries_.back().first, idx);
  by_name_[entries_.back().first.name].push_back(idx);
  return entries_.back().second;
}

void CacheHitRateTracker::record_below(const std::string& name, RRType type,
                                       const std::string& rdata,
                                       std::uint32_t ttl) {
  Counts& counts = entry_for(name, type, rdata);
  if (counts.below + counts.above == 0) counts.ttl = ttl;
  ++counts.below;
}

void CacheHitRateTracker::record_above(const std::string& name, RRType type,
                                       const std::string& rdata,
                                       std::uint32_t ttl) {
  Counts& counts = entry_for(name, type, rdata);
  if (counts.below + counts.above == 0) counts.ttl = ttl;
  ++counts.above;
}

void CacheHitRateTracker::merge_from(const CacheHitRateTracker& other) {
  for (const auto& [key, src] : other.entries_) {
    Counts& dst = entry_for(key.name, key.type, key.rdata);
    if (dst.below + dst.above == 0) dst.ttl = src.ttl;
    dst.below += src.below;
    dst.above += src.above;
  }
}

const CacheHitRateTracker::Counts* CacheHitRateTracker::find(
    const RRKey& key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &entries_[it->second].second;
}

double CacheHitRateTracker::dhr(const Counts& counts) noexcept {
  if (counts.below == 0) return 0.0;
  if (counts.above >= counts.below) return 0.0;
  return static_cast<double>(counts.below - counts.above) /
         static_cast<double>(counts.below);
}

std::span<const std::uint32_t> CacheHitRateTracker::rrs_of_name(
    const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return {};
  return it->second;
}

std::vector<double> CacheHitRateTracker::all_dhr() const {
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const auto& [key, counts] : entries_) out.push_back(dhr(counts));
  return out;
}

std::vector<double> CacheHitRateTracker::chr_distribution() const {
  std::vector<double> out;
  for (const auto& [key, counts] : entries_) {
    const double rate = dhr(counts);
    for (std::uint64_t i = 0; i < counts.above; ++i) out.push_back(rate);
  }
  return out;
}

}  // namespace dnsnoise
