#include "features/extractor.h"

#include <algorithm>
#include <unordered_set>

#include "util/entropy.h"
#include "util/stats.h"

namespace dnsnoise {

namespace {

/// Weighted median of (value, weight) pairs; 1.0 for an empty sample (an
/// RR set with zero misses behaves as perfectly cached).
double weighted_median(std::vector<std::pair<double, std::uint64_t>> sample) {
  std::uint64_t total = 0;
  for (const auto& [value, weight] : sample) total += weight;
  if (total == 0) return 1.0;
  std::sort(sample.begin(), sample.end());
  std::uint64_t seen = 0;
  for (const auto& [value, weight] : sample) {
    seen += weight;
    if (seen * 2 >= total) return value;
  }
  return sample.back().first;
}

}  // namespace

GroupFeatures compute_group_features(
    std::span<DomainNameTree::Node* const> group, std::size_t zone_depth,
    const CacheHitRateTracker& chr) {
  GroupFeatures features;
  features.group_size = group.size();
  if (group.empty()) return features;

  // --- Tree-structure family: labels adjacent to the zone.
  std::unordered_set<std::string_view> adjacent_labels;
  for (const DomainNameTree::Node* node : group) {
    // Walk up until the child-of-zone level (depth zone_depth + 1).
    while (node->depth > zone_depth + 1) node = node->parent;
    adjacent_labels.insert(node->label);
  }
  std::vector<double> entropies;
  entropies.reserve(adjacent_labels.size());
  for (const std::string_view label : adjacent_labels) {
    entropies.push_back(shannon_entropy(label));
  }
  const Summary entropy_summary = summarize(entropies);
  features.label_cardinality = static_cast<double>(adjacent_labels.size());
  features.entropy_max = entropy_summary.max;
  features.entropy_min = entropy_summary.min;
  features.entropy_mean = entropy_summary.mean;
  features.entropy_median = entropy_summary.median;
  features.entropy_var = entropy_summary.variance;

  // --- Cache-hit-rate family: the group's RRs.
  std::vector<std::pair<double, std::uint64_t>> chr_sample;  // (DHR, misses)
  std::size_t rr_count = 0;
  std::size_t rr_zero = 0;
  std::string name;  // one buffer reused across the whole group
  for (const DomainNameTree::Node* node : group) {
    DomainNameTree::full_name_into(*node, name);
    for (const std::uint32_t idx : chr.rrs_of_name(name)) {
      const auto& [key, counts] = chr.entries()[idx];
      const double rate = CacheHitRateTracker::dhr(counts);
      ++rr_count;
      if (counts.above > 0) {
        chr_sample.emplace_back(rate, counts.above);
        if (rate == 0.0) ++rr_zero;
      }
    }
  }
  features.chr_median = weighted_median(std::move(chr_sample));
  features.chr_zero_frac =
      rr_count == 0 ? 0.0
                    : static_cast<double>(rr_zero) /
                          static_cast<double>(rr_count);
  return features;
}

}  // namespace dnsnoise
