#include "features/extractor.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "util/simd/kernels.h"
#include "util/stats.h"

namespace dnsnoise {

namespace {

/// Weighted median over parallel (rate, weight) arrays; 1.0 for an empty
/// sample (an RR set with zero misses behaves as perfectly cached).
/// `order` is scratch for the sort permutation.  Ties in rate need no
/// tiebreak: whichever of the equal entries crosses the halfway mark, the
/// returned *value* is the same.
double weighted_median(std::span<const double> rates,
                       std::span<const std::uint64_t> weights,
                       std::vector<std::uint32_t>& order) {
  std::uint64_t total = 0;
  for (const std::uint64_t w : weights) total += w;
  if (total == 0) return 1.0;
  order.resize(rates.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&rates](std::uint32_t a, std::uint32_t b) {
              return rates[a] < rates[b];
            });
  std::uint64_t seen = 0;
  for (const std::uint32_t idx : order) {
    seen += weights[idx];
    if (seen * 2 >= total) return rates[idx];
  }
  return rates[order.back()];
}

}  // namespace

GroupFeatures compute_group_features(
    std::span<DomainNameTree::Node* const> group, std::size_t zone_depth,
    const CacheHitRateTracker& chr) {
  GroupFeatureScratch scratch;
  return compute_group_features(group, zone_depth, chr, scratch);
}

GroupFeatures compute_group_features(
    std::span<DomainNameTree::Node* const> group, std::size_t zone_depth,
    const CacheHitRateTracker& chr, GroupFeatureScratch& scratch) {
  GroupFeatures features;
  features.group_size = group.size();
  if (group.empty()) return features;

  // --- Tree-structure family, as three flat passes.
  // Pass 1 (gather): ascend each member once to its child-of-zone
  // ancestor (depth zone_depth + 1); deep groups funnel into few
  // ancestors, so dedup by node first.
  scratch.adjacent.clear();
  for (const DomainNameTree::Node* node : group) {
    while (node->depth > zone_depth + 1) node = node->parent;
    scratch.adjacent.push_back(node);
  }
  std::sort(scratch.adjacent.begin(), scratch.adjacent.end());
  scratch.adjacent.erase(
      std::unique(scratch.adjacent.begin(), scratch.adjacent.end()),
      scratch.adjacent.end());
  // Pass 2 (dedup labels): distinct nodes can still carry equal label
  // text (same label under different parents) — L_k is a set of labels.
  scratch.labels.clear();
  for (const DomainNameTree::Node* node : scratch.adjacent) {
    scratch.labels.push_back(node->label);
  }
  std::sort(scratch.labels.begin(), scratch.labels.end());
  scratch.labels.erase(
      std::unique(scratch.labels.begin(), scratch.labels.end()),
      scratch.labels.end());
  // Pass 3 (batch kernel): one entropy kernel sweep over the whole label
  // array; summarize() sorts internally, so the moments are independent
  // of gather order.
  scratch.entropies.resize(scratch.labels.size());
  kernels::entropy_many(scratch.labels, scratch.entropies);
  const Summary entropy_summary = summarize(scratch.entropies);
  features.label_cardinality = static_cast<double>(scratch.labels.size());
  features.entropy_max = entropy_summary.max;
  features.entropy_min = entropy_summary.min;
  features.entropy_mean = entropy_summary.mean;
  features.entropy_median = entropy_summary.median;
  features.entropy_var = entropy_summary.variance;

  // --- Cache-hit-rate family: gather the group's RR (DHR, miss-count)
  // pairs into flat parallel arrays, then reduce.
  scratch.chr_rates.clear();
  scratch.chr_weights.clear();
  std::size_t rr_count = 0;
  std::size_t rr_zero = 0;
  for (const DomainNameTree::Node* node : group) {
    DomainNameTree::full_name_into(*node, scratch.name);
    for (const std::uint32_t idx : chr.rrs_of_name(scratch.name)) {
      const auto& [key, counts] = chr.entries()[idx];
      const double rate = CacheHitRateTracker::dhr(counts);
      ++rr_count;
      if (counts.above > 0) {
        scratch.chr_rates.push_back(rate);
        scratch.chr_weights.push_back(counts.above);
        if (rate == 0.0) ++rr_zero;
      }
    }
  }
  features.chr_median =
      weighted_median(scratch.chr_rates, scratch.chr_weights,
                      scratch.chr_order);
  features.chr_zero_frac =
      rr_count == 0 ? 0.0
                    : static_cast<double>(rr_zero) /
                          static_cast<double>(rr_count);
  return features;
}

}  // namespace dnsnoise
