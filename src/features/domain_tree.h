// Domain name tree (paper Section V-A1).
//
// The root is ".", its children are TLD labels, and so on.  A node is
// *black* when a resource record for that exact name was observed in the
// day's traffic; decoloring a node (after its group is classified
// disposable) turns it white so deeper passes of Algorithm 1 don't count it
// again.  Depth is the label count of a node's name (path length to root).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dns/name.h"
#include "dns/public_suffix.h"

namespace dnsnoise {

class DomainNameTree {
 public:
  struct Node {
    std::string label;
    Node* parent = nullptr;
    std::size_t depth = 0;  // 0 for the root
    bool black = false;
    // Ordered map keeps traversal (and therefore miner output) fully
    // deterministic across runs.
    std::map<std::string, std::unique_ptr<Node>, std::less<>> children;
  };

  DomainNameTree();

  /// Inserts `name`, marking its node black.  Intermediate nodes stay
  /// white unless they are themselves inserted.
  Node& insert(const DomainName& name);

  /// Finds the node for `name`, or nullptr.
  Node* find(const DomainName& name);
  const Node* find(const DomainName& name) const;

  Node& root() noexcept { return *root_; }
  const Node& root() const noexcept { return *root_; }

  std::size_t node_count() const noexcept { return node_count_; }

  /// Number of black nodes, counted by traversal.  O(node_count); meant for
  /// per-day summaries and tests, not hot loops.
  std::size_t black_count() const noexcept;

  /// Turns a black node white.  Touches only `node` — no shared tree state —
  /// so concurrent decolors in disjoint subtrees are race-free (the parallel
  /// miner relies on this).
  static void decolor(Node& node) noexcept { node.black = false; }

  /// Unions `other` into this tree: every node of `other` is created here
  /// if absent, and black nodes stay black (black |= other.black).  Node and
  /// black counts follow.  Children live in ordered maps, so the merged
  /// traversal order is independent of merge order (shard merging).
  void merge_from(const DomainNameTree& other);

  /// Reconstructs the full domain name of a node ("" for the root).
  static std::string full_name(const Node& node);

  /// All black descendants of `zone` (excluding `zone` itself), grouped by
  /// absolute depth — the paper's G_k sets.
  std::map<std::size_t, std::vector<Node*>> black_descendants_by_depth(
      Node& zone) const;

  /// True if `zone` has at least one black proper descendant.
  static bool has_black_descendant(const Node& zone) noexcept;

  /// The effective-2LD nodes: children of public-suffix nodes that are not
  /// public suffixes themselves.  Algorithm 1 starts from these.
  std::vector<Node*> effective_2ld_nodes(const PublicSuffixList& psl);

 private:
  std::unique_ptr<Node> root_;
  std::size_t node_count_ = 1;
};

}  // namespace dnsnoise
