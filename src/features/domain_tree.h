// Domain name tree (paper Section V-A1).
//
// The root is ".", its children are TLD labels, and so on.  A node is
// *black* when a resource record for that exact name was observed in the
// day's traffic; decoloring a node (after its group is classified
// disposable) turns it white so deeper passes of Algorithm 1 don't count it
// again.  Depth is the label count of a node's name (path length to root).
//
// Layout (DESIGN.md §11): nodes are flat records in a deque (stable
// addresses, no per-node unique_ptr), labels are interned into the tree's
// NameTable so each distinct label is stored once, and child lookup goes
// through one tree-wide open-addressed edge map keyed (parent seq,
// LabelId).  Children are kept per node in insertion order and lazily
// sorted by label text on first sorted traversal — exactly the ordering
// the previous std::map<std::string, unique_ptr<Node>> produced, so miner
// output is byte-identical while the steady-state insert path (all labels
// already interned, all edges present) performs zero allocations.
//
// Thread-safety contract: the lazy child sort mutates a node under a const
// traversal, which is safe under the parallel miner's existing discipline —
// effective-2LD subtrees are disjoint, each worker only traverses and
// decolors nodes of its own subtree, and the subtree roots themselves are
// collected single-threaded before the workers start.  Concurrent sorted
// traversals of the SAME node from different threads are not allowed (and
// never happen under that contract).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dns/name.h"
#include "dns/name_table.h"
#include "dns/public_suffix.h"

namespace dnsnoise {

class DomainNameTree {
 public:
  struct Node {
    std::string_view label;  // stable view into the tree's label arena
    Node* parent = nullptr;
    std::size_t depth = 0;  // 0 for the root
    bool black = false;
    std::uint32_t seq = 0;  // dense per-tree node number (edge-map key)

    /// Children sorted by label text (the deterministic traversal order of
    /// the legacy ordered-map layout).  Sorts lazily on first call after an
    /// insertion; see the thread-safety contract above.
    std::span<Node* const> children() const {
      if (!kids_sorted_) {
        std::sort(kids_.begin(), kids_.end(),
                  [](const Node* a, const Node* b) {
                    return a->label < b->label;
                  });
        kids_sorted_ = true;
      }
      return kids_;
    }

    bool leaf() const noexcept { return kids_.empty(); }

    // Internal child storage (insertion order until lazily sorted).  Public
    // because Node is an aggregate handled by the tree; treat as private.
    mutable std::vector<Node*> kids_;
    mutable bool kids_sorted_ = true;
  };

  DomainNameTree();

  DomainNameTree(const DomainNameTree&) = delete;
  DomainNameTree& operator=(const DomainNameTree&) = delete;
  DomainNameTree(DomainNameTree&&) = default;
  DomainNameTree& operator=(DomainNameTree&&) = default;

  /// Inserts `name`, marking its node black.  Intermediate nodes stay
  /// white unless they are themselves inserted.  Allocation-free when the
  /// name's path already exists.
  Node& insert(const DomainName& name);

  /// Finds the node for `name`, or nullptr.  Never allocates.
  Node* find(const DomainName& name);
  const Node* find(const DomainName& name) const {
    return const_cast<DomainNameTree*>(this)->find(name);
  }

  Node& root() noexcept { return *root_; }
  const Node& root() const noexcept { return *root_; }

  std::size_t node_count() const noexcept { return node_count_; }

  /// Number of black nodes, counted by traversal.  O(node_count); meant for
  /// per-day summaries and tests, not hot loops.
  std::size_t black_count() const noexcept;

  /// Turns a black node white.  Touches only `node` — no shared tree state —
  /// so concurrent decolors in disjoint subtrees are race-free (the parallel
  /// miner relies on this).
  static void decolor(Node& node) noexcept { node.black = false; }

  /// Unions `other` into this tree: every node of `other` is created here
  /// if absent, and black nodes stay black (black |= other.black).  Node and
  /// black counts follow.  Labels are remapped through their text into this
  /// tree's intern table, and traversal stays label-sorted, so the merged
  /// order is independent of merge order (shard merging).
  void merge_from(const DomainNameTree& other);

  /// Reconstructs the full domain name of a node ("" for the root).
  static std::string full_name(const Node& node);

  /// Appends nothing for the root; otherwise replaces `out` with the node's
  /// full name.  Allocation-free once `out` has capacity (hot callers reuse
  /// one buffer across nodes).
  static void full_name_into(const Node& node, std::string& out);

  /// All black descendants of `zone` (excluding `zone` itself), grouped by
  /// absolute depth — the paper's G_k sets.
  std::map<std::size_t, std::vector<Node*>> black_descendants_by_depth(
      Node& zone) const;

  /// True if `zone` has at least one black proper descendant.
  static bool has_black_descendant(const Node& zone) noexcept;

  /// The effective-2LD nodes: children of public-suffix nodes that are not
  /// public suffixes themselves.  Algorithm 1 starts from these.
  std::vector<Node*> effective_2ld_nodes(const PublicSuffixList& psl);

 private:
  /// Child of `parent` labeled `label`, created if absent.
  Node& child_of(Node& parent, std::string_view label);

  /// Edge-map lookup; kInvalidNameId-safe (returns nullptr when the label
  /// was never interned).
  Node* find_child(const Node& parent, std::string_view label) const noexcept;

  void edge_grow(std::size_t min_slots);
  static std::uint64_t edge_key(const Node& parent, LabelId label) noexcept {
    return (static_cast<std::uint64_t>(parent.seq) << 32) |
           static_cast<std::uint64_t>(label);
  }

  struct Edge {
    std::uint64_t key = 0;
    Node* child = nullptr;  // nullptr = empty slot
  };

  NameTable table_{/*track_labels=*/true};
  std::deque<Node> nodes_;  // stable node addresses; nodes_[0] is the root
  std::vector<Edge> edges_;
  std::size_t edge_mask_ = 0;
  std::size_t edge_count_ = 0;
  Node* root_ = nullptr;
  std::size_t node_count_ = 1;
};

}  // namespace dnsnoise
