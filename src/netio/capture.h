// DNS capture pipeline: raw frames -> tap events.
//
// The paper's vantage (Section III-A) sees two streams of DNS *responses*:
//   below — RDNS server -> client (stub resolver),
//   above — authoritative server -> RDNS server.
// CaptureDecoder reproduces that vantage: it accepts frames, keeps only DNS
// responses on port 53, and classifies each by whether the source or the
// destination address belongs to the monitored RDNS cluster.  Client
// addresses are anonymized to stable opaque IDs, as in the fpDNS dataset.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "dns/message.h"
#include "netio/packet.h"
#include "netio/pcap.h"
#include "resolver/tap.h"  // TapDirection — shared with the cluster tap API
#include "util/sim_time.h"

namespace dnsnoise {

/// One observed DNS response, fully decoded.  Unlike the cluster's
/// lightweight TapEvent (resolver/tap.h), this carries the whole message —
/// the pcap path pays decode cost anyway and callers want header access.
struct DecodedResponse {
  SimTime ts = 0;
  TapDirection direction = TapDirection::kBelow;
  /// Anonymized client identifier (below only; 0 for above events).
  std::uint64_t client_id = 0;
  DnsMessage message;
};

/// Decodes frames into tap events.
class CaptureDecoder {
 public:
  /// `resolver_ips`: addresses of the RDNS cluster; `anonymization_salt`
  /// keys the client-ID hash (same salt => same IDs across runs).
  CaptureDecoder(std::vector<Ipv4> resolver_ips,
                 std::uint64_t anonymization_salt = 0x5eedULL);

  /// Decodes one frame.  Returns std::nullopt for anything that is not a
  /// well-formed DNS response touching the cluster on port 53.
  std::optional<DecodedResponse> decode(
      SimTime ts, std::span<const std::uint8_t> frame);

  /// Runs a whole pcap buffer through the decoder, invoking `sink` per
  /// event.  Returns the number of events produced.
  std::size_t decode_pcap(
      std::span<const std::uint8_t> pcap_bytes,
      const std::function<void(const DecodedResponse&)>& sink);

  /// Frames seen that failed any parse/filter stage.
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t accepted() const noexcept { return accepted_; }

 private:
  std::unordered_set<std::uint32_t> resolver_ips_;
  std::uint64_t salt_;
  std::uint64_t dropped_ = 0;
  std::uint64_t accepted_ = 0;

  bool is_resolver(const Endpoint& ep) const noexcept;
};

/// Builds the Ethernet/IPv4/UDP frame carrying `msg` as a DNS response from
/// `src` to `dst` (the counterpart of CaptureDecoder::decode).
std::vector<std::uint8_t> build_dns_frame(Ipv4 src_ip, std::uint16_t src_port,
                                          Ipv4 dst_ip, std::uint16_t dst_port,
                                          const DnsMessage& msg);

}  // namespace dnsnoise
