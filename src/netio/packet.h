// Link/network/transport codecs: Ethernet II, IPv4, IPv6, UDP.
//
// Builds the frames the traffic generator writes into pcap, and parses them
// back on the capture path.  Parsing is zero-copy: ParsedPacket::payload
// views into the input frame.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dns/ip.h"

namespace dnsnoise {

/// Either end of a parsed packet, IPv4 or IPv6.
struct Endpoint {
  bool is_v6 = false;
  Ipv4 v4{};
  Ipv6 v6{};
  std::uint16_t port = 0;
};

/// A parsed UDP datagram.
struct ParsedPacket {
  Endpoint src;
  Endpoint dst;
  std::span<const std::uint8_t> payload;
};

/// Internet checksum (RFC 1071) over a byte range.
std::uint16_t inet_checksum(std::span<const std::uint8_t> data) noexcept;

/// Builds an Ethernet/IPv4/UDP frame around `payload`.  MAC addresses are
/// synthetic constants (the capture path never inspects them).
std::vector<std::uint8_t> build_udp4_frame(Ipv4 src_ip, std::uint16_t src_port,
                                           Ipv4 dst_ip, std::uint16_t dst_port,
                                           std::span<const std::uint8_t> payload);

/// Builds an Ethernet/IPv6/UDP frame around `payload`.
std::vector<std::uint8_t> build_udp6_frame(const Ipv6& src_ip,
                                           std::uint16_t src_port,
                                           const Ipv6& dst_ip,
                                           std::uint16_t dst_port,
                                           std::span<const std::uint8_t> payload);

/// Parses an Ethernet frame down to a UDP datagram.  Returns std::nullopt
/// for non-IP ethertypes, non-UDP protocols, or any truncation.  Does not
/// verify checksums (the capture path, like real taps, trusts the NIC).
std::optional<ParsedPacket> parse_frame(std::span<const std::uint8_t> frame) noexcept;

/// Verifies the IPv4 header checksum of a frame previously accepted by
/// parse_frame; exposed for tests.
bool verify_ipv4_checksum(std::span<const std::uint8_t> frame) noexcept;

}  // namespace dnsnoise
