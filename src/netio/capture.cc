#include "netio/capture.h"

#include "dns/wire.h"
#include "util/rng.h"

namespace dnsnoise {

namespace {
constexpr std::uint16_t kDnsPort = 53;
}

CaptureDecoder::CaptureDecoder(std::vector<Ipv4> resolver_ips,
                               std::uint64_t anonymization_salt)
    : salt_(anonymization_salt) {
  for (const Ipv4 ip : resolver_ips) resolver_ips_.insert(ip.value);
}

bool CaptureDecoder::is_resolver(const Endpoint& ep) const noexcept {
  return !ep.is_v6 && resolver_ips_.contains(ep.v4.value);
}

std::optional<DecodedResponse> CaptureDecoder::decode(
    SimTime ts, std::span<const std::uint8_t> frame) {
  const auto pkt = parse_frame(frame);
  if (!pkt) {
    ++dropped_;
    return std::nullopt;
  }
  // DNS responses are sourced from port 53 (RDNS answering a stub, or an
  // authority answering the RDNS).
  if (pkt->src.port != kDnsPort) {
    ++dropped_;
    return std::nullopt;
  }
  auto msg = decode_message(pkt->payload);
  if (!msg || !msg->header.qr) {
    ++dropped_;
    return std::nullopt;
  }
  DecodedResponse event;
  event.ts = ts;
  if (is_resolver(pkt->src)) {
    event.direction = TapDirection::kBelow;
    event.client_id = mix64(std::uint64_t{pkt->dst.v4.value} ^ salt_);
  } else if (is_resolver(pkt->dst)) {
    event.direction = TapDirection::kAbove;
    event.client_id = 0;
  } else {
    ++dropped_;
    return std::nullopt;
  }
  event.message = std::move(*msg);
  ++accepted_;
  return event;
}

std::size_t CaptureDecoder::decode_pcap(
    std::span<const std::uint8_t> pcap_bytes,
    const std::function<void(const DecodedResponse&)>& sink) {
  PcapReader reader(pcap_bytes);
  std::size_t produced = 0;
  while (auto record = reader.next_view()) {
    auto event = decode(static_cast<SimTime>(record->ts_sec), record->data);
    if (event) {
      sink(*event);
      ++produced;
    }
  }
  return produced;
}

std::vector<std::uint8_t> build_dns_frame(Ipv4 src_ip, std::uint16_t src_port,
                                          Ipv4 dst_ip, std::uint16_t dst_port,
                                          const DnsMessage& msg) {
  const std::vector<std::uint8_t> payload = encode_message(msg);
  return build_udp4_frame(src_ip, src_port, dst_ip, dst_port, payload);
}

}  // namespace dnsnoise
