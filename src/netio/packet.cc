#include "netio/packet.h"

namespace dnsnoise {

namespace {

constexpr std::size_t kEthernetHeaderSize = 14;
constexpr std::size_t kIpv4MinHeaderSize = 20;
constexpr std::size_t kIpv6HeaderSize = 40;
constexpr std::size_t kUdpHeaderSize = 8;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::uint16_t kEtherTypeIpv6 = 0x86dd;
constexpr std::uint8_t kProtoUdp = 17;

// Synthetic MAC addresses for built frames.
constexpr std::uint8_t kSrcMac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
constexpr std::uint8_t kDstMac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};

void put_u16be(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get_u16be(std::span<const std::uint8_t> b, std::size_t at) noexcept {
  return static_cast<std::uint16_t>((b[at] << 8) | b[at + 1]);
}

// One's-complement sum used by both the IPv4 header checksum and the UDP
// pseudo-header checksum.
std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data,
                                  std::uint32_t sum) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(get_u16be(data, i));
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  return sum;
}

std::uint16_t checksum_finish(std::uint32_t sum) noexcept {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace

std::uint16_t inet_checksum(std::span<const std::uint8_t> data) noexcept {
  return checksum_finish(checksum_accumulate(data, 0));
}

std::vector<std::uint8_t> build_udp4_frame(Ipv4 src_ip, std::uint16_t src_port,
                                           Ipv4 dst_ip, std::uint16_t dst_port,
                                           std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  const std::size_t udp_len = kUdpHeaderSize + payload.size();
  const std::size_t ip_len = kIpv4MinHeaderSize + udp_len;
  frame.reserve(kEthernetHeaderSize + ip_len);

  // Ethernet II header.
  frame.insert(frame.end(), std::begin(kDstMac), std::end(kDstMac));
  frame.insert(frame.end(), std::begin(kSrcMac), std::end(kSrcMac));
  put_u16be(frame, kEtherTypeIpv4);

  // IPv4 header (no options).
  const std::size_t ip_start = frame.size();
  frame.push_back(0x45);  // version 4, IHL 5
  frame.push_back(0);     // DSCP/ECN
  put_u16be(frame, static_cast<std::uint16_t>(ip_len));
  put_u16be(frame, 0);     // identification
  put_u16be(frame, 0x4000);  // don't fragment
  frame.push_back(64);     // TTL
  frame.push_back(kProtoUdp);
  put_u16be(frame, 0);     // checksum placeholder
  for (const std::uint8_t b : src_ip.octets()) frame.push_back(b);
  for (const std::uint8_t b : dst_ip.octets()) frame.push_back(b);
  const std::uint16_t ip_csum = inet_checksum(
      std::span(frame).subspan(ip_start, kIpv4MinHeaderSize));
  frame[ip_start + 10] = static_cast<std::uint8_t>(ip_csum >> 8);
  frame[ip_start + 11] = static_cast<std::uint8_t>(ip_csum);

  // UDP header + payload.
  const std::size_t udp_start = frame.size();
  put_u16be(frame, src_port);
  put_u16be(frame, dst_port);
  put_u16be(frame, static_cast<std::uint16_t>(udp_len));
  put_u16be(frame, 0);  // checksum placeholder
  frame.insert(frame.end(), payload.begin(), payload.end());

  // UDP checksum over pseudo-header + UDP segment.
  std::uint32_t sum = 0;
  sum = checksum_accumulate(
      std::span(frame).subspan(ip_start + 12, 8), sum);  // src + dst IPs
  sum += kProtoUdp;
  sum += static_cast<std::uint32_t>(udp_len);
  sum = checksum_accumulate(std::span(frame).subspan(udp_start), sum);
  std::uint16_t udp_csum = checksum_finish(sum);
  if (udp_csum == 0) udp_csum = 0xffff;  // RFC 768: 0 means "no checksum"
  frame[udp_start + 6] = static_cast<std::uint8_t>(udp_csum >> 8);
  frame[udp_start + 7] = static_cast<std::uint8_t>(udp_csum);
  return frame;
}

std::vector<std::uint8_t> build_udp6_frame(const Ipv6& src_ip,
                                           std::uint16_t src_port,
                                           const Ipv6& dst_ip,
                                           std::uint16_t dst_port,
                                           std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  const std::size_t udp_len = kUdpHeaderSize + payload.size();
  frame.reserve(kEthernetHeaderSize + kIpv6HeaderSize + udp_len);

  frame.insert(frame.end(), std::begin(kDstMac), std::end(kDstMac));
  frame.insert(frame.end(), std::begin(kSrcMac), std::end(kSrcMac));
  put_u16be(frame, kEtherTypeIpv6);

  frame.push_back(0x60);  // version 6
  frame.push_back(0);
  frame.push_back(0);
  frame.push_back(0);
  put_u16be(frame, static_cast<std::uint16_t>(udp_len));
  frame.push_back(kProtoUdp);  // next header
  frame.push_back(64);         // hop limit
  frame.insert(frame.end(), src_ip.bytes.begin(), src_ip.bytes.end());
  frame.insert(frame.end(), dst_ip.bytes.begin(), dst_ip.bytes.end());

  const std::size_t udp_start = frame.size();
  put_u16be(frame, src_port);
  put_u16be(frame, dst_port);
  put_u16be(frame, static_cast<std::uint16_t>(udp_len));
  put_u16be(frame, 0);
  frame.insert(frame.end(), payload.begin(), payload.end());

  std::uint32_t sum = 0;
  sum = checksum_accumulate(std::span(src_ip.bytes), sum);
  sum = checksum_accumulate(std::span(dst_ip.bytes), sum);
  sum += static_cast<std::uint32_t>(udp_len);
  sum += kProtoUdp;
  sum = checksum_accumulate(std::span(frame).subspan(udp_start), sum);
  std::uint16_t udp_csum = checksum_finish(sum);
  if (udp_csum == 0) udp_csum = 0xffff;
  frame[udp_start + 6] = static_cast<std::uint8_t>(udp_csum >> 8);
  frame[udp_start + 7] = static_cast<std::uint8_t>(udp_csum);
  return frame;
}

std::optional<ParsedPacket> parse_frame(
    std::span<const std::uint8_t> frame) noexcept {
  if (frame.size() < kEthernetHeaderSize) return std::nullopt;
  const std::uint16_t ethertype = get_u16be(frame, 12);
  ParsedPacket pkt;
  std::size_t transport = 0;

  if (ethertype == kEtherTypeIpv4) {
    const std::size_t ip_start = kEthernetHeaderSize;
    if (frame.size() < ip_start + kIpv4MinHeaderSize) return std::nullopt;
    const std::uint8_t version_ihl = frame[ip_start];
    if ((version_ihl >> 4) != 4) return std::nullopt;
    const std::size_t ihl = static_cast<std::size_t>(version_ihl & 0x0f) * 4;
    if (ihl < kIpv4MinHeaderSize || frame.size() < ip_start + ihl) {
      return std::nullopt;
    }
    const std::uint16_t total_len = get_u16be(frame, ip_start + 2);
    if (total_len < ihl || frame.size() < ip_start + total_len) {
      return std::nullopt;
    }
    if (frame[ip_start + 9] != kProtoUdp) return std::nullopt;
    pkt.src.v4 = Ipv4::from_octets(frame[ip_start + 12], frame[ip_start + 13],
                                   frame[ip_start + 14], frame[ip_start + 15]);
    pkt.dst.v4 = Ipv4::from_octets(frame[ip_start + 16], frame[ip_start + 17],
                                   frame[ip_start + 18], frame[ip_start + 19]);
    transport = ip_start + ihl;
  } else if (ethertype == kEtherTypeIpv6) {
    const std::size_t ip_start = kEthernetHeaderSize;
    if (frame.size() < ip_start + kIpv6HeaderSize) return std::nullopt;
    if ((frame[ip_start] >> 4) != 6) return std::nullopt;
    if (frame[ip_start + 6] != kProtoUdp) return std::nullopt;  // no ext hdrs
    pkt.src.is_v6 = true;
    pkt.dst.is_v6 = true;
    for (std::size_t i = 0; i < 16; ++i) {
      pkt.src.v6.bytes[i] = frame[ip_start + 8 + i];
      pkt.dst.v6.bytes[i] = frame[ip_start + 24 + i];
    }
    transport = ip_start + kIpv6HeaderSize;
  } else {
    return std::nullopt;
  }

  if (frame.size() < transport + kUdpHeaderSize) return std::nullopt;
  pkt.src.port = get_u16be(frame, transport);
  pkt.dst.port = get_u16be(frame, transport + 2);
  const std::uint16_t udp_len = get_u16be(frame, transport + 4);
  if (udp_len < kUdpHeaderSize || frame.size() < transport + udp_len) {
    return std::nullopt;
  }
  pkt.payload = frame.subspan(transport + kUdpHeaderSize,
                              udp_len - kUdpHeaderSize);
  return pkt;
}

bool verify_ipv4_checksum(std::span<const std::uint8_t> frame) noexcept {
  if (frame.size() < kEthernetHeaderSize + kIpv4MinHeaderSize) return false;
  if (get_u16be(frame, 12) != kEtherTypeIpv4) return false;
  const std::size_t ip_start = kEthernetHeaderSize;
  const std::size_t ihl = static_cast<std::size_t>(frame[ip_start] & 0x0f) * 4;
  if (frame.size() < ip_start + ihl) return false;
  return inet_checksum(frame.subspan(ip_start, ihl)) == 0;
}

}  // namespace dnsnoise
