#include "netio/pcap.h"

#include <fstream>
#include <stdexcept>

namespace dnsnoise {

namespace {

constexpr std::uint32_t kMagicUsec = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNsec = 0xa1b23c4d;
constexpr std::uint32_t kMagicUsecSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNsecSwapped = 0x4d3cb2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::size_t kGlobalHeaderSize = 24;
constexpr std::size_t kRecordHeaderSize = 16;

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u16le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

constexpr std::uint32_t bswap32(std::uint32_t v) noexcept {
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
         ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}

}  // namespace

PcapWriter::PcapWriter(bool nanosecond, std::uint32_t snaplen)
    : nanosecond_(nanosecond) {
  put_u32le(buffer_, nanosecond_ ? kMagicNsec : kMagicUsec);
  put_u16le(buffer_, 2);  // version major
  put_u16le(buffer_, 4);  // version minor
  put_u32le(buffer_, 0);  // thiszone
  put_u32le(buffer_, 0);  // sigfigs
  put_u32le(buffer_, snaplen);
  put_u32le(buffer_, kLinkTypeEthernet);
}

void PcapWriter::write(std::uint32_t ts_sec, std::uint32_t ts_nsec,
                       std::span<const std::uint8_t> frame) {
  put_u32le(buffer_, ts_sec);
  put_u32le(buffer_, nanosecond_ ? ts_nsec : ts_nsec / 1000);
  put_u32le(buffer_, static_cast<std::uint32_t>(frame.size()));
  put_u32le(buffer_, static_cast<std::uint32_t>(frame.size()));
  buffer_.insert(buffer_.end(), frame.begin(), frame.end());
  ++packet_count_;
}

void PcapWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("PcapWriter: cannot open " + path);
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
  if (!out) throw std::runtime_error("PcapWriter: write failed for " + path);
}

PcapReader::PcapReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {
  if (bytes_.size() < kGlobalHeaderSize) {
    throw std::invalid_argument("PcapReader: truncated global header");
  }
  const std::uint32_t magic = read_u32(0);
  switch (magic) {
    case kMagicUsec: break;
    case kMagicNsec: nanosecond_ = true; break;
    case kMagicUsecSwapped: swapped_ = true; break;
    case kMagicNsecSwapped:
      swapped_ = true;
      nanosecond_ = true;
      break;
    default:
      throw std::invalid_argument("PcapReader: bad magic");
  }
  link_type_ = read_u32(20);
  if (swapped_) link_type_ = bswap32(link_type_);
  offset_ = kGlobalHeaderSize;
}

std::uint32_t PcapReader::read_u32(std::size_t at) const noexcept {
  // pcap headers are written in the producer's native order; we read
  // little-endian and swap when the magic says so.
  return std::uint32_t{bytes_[at]} | (std::uint32_t{bytes_[at + 1]} << 8) |
         (std::uint32_t{bytes_[at + 2]} << 16) |
         (std::uint32_t{bytes_[at + 3]} << 24);
}

std::optional<PcapReader::RecordView> PcapReader::next_view() {
  if (offset_ + kRecordHeaderSize > bytes_.size()) return std::nullopt;
  std::uint32_t ts_sec = read_u32(offset_);
  std::uint32_t ts_frac = read_u32(offset_ + 4);
  std::uint32_t incl_len = read_u32(offset_ + 8);
  if (swapped_) {
    ts_sec = bswap32(ts_sec);
    ts_frac = bswap32(ts_frac);
    incl_len = bswap32(incl_len);
  }
  const std::size_t data_start = offset_ + kRecordHeaderSize;
  if (data_start + incl_len > bytes_.size()) return std::nullopt;  // truncated
  offset_ = data_start + incl_len;
  return RecordView{ts_sec, nanosecond_ ? ts_frac : ts_frac * 1000,
                    bytes_.subspan(data_start, incl_len)};
}

std::optional<PcapRecord> PcapReader::next() {
  auto view = next_view();
  if (!view) return std::nullopt;
  return PcapRecord{view->ts_sec, view->ts_nsec,
                    std::vector<std::uint8_t>(view->data.begin(),
                                              view->data.end())};
}

std::vector<std::uint8_t> PcapReader::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("PcapReader: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("PcapReader: read failed for " + path);
  return bytes;
}

}  // namespace dnsnoise
