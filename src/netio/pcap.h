// Classic libpcap file format (.pcap) reader and writer.
//
// The paper's monitoring point records DNS response packets above and below
// the RDNS cluster.  Our traffic generator can materialize its synthetic
// streams as genuine pcap bytes, and the capture pipeline parses them back
// at high throughput — preserving the paper's real ingestion path even
// though the bytes are synthetic (see DESIGN.md §2).
//
// Supported: both magic byte orders, microsecond and nanosecond timestamp
// variants, LINKTYPE_ETHERNET.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace dnsnoise {

/// One captured frame: timestamp plus link-layer bytes.
struct PcapRecord {
  std::uint32_t ts_sec = 0;
  std::uint32_t ts_nsec = 0;  // always normalized to nanoseconds
  std::vector<std::uint8_t> data;
};

/// Serializes records into an in-memory pcap byte stream.
class PcapWriter {
 public:
  /// snaplen: capture length advertised in the global header.
  explicit PcapWriter(bool nanosecond = false, std::uint32_t snaplen = 65535);

  /// Appends one frame (copies `frame` into the stream).
  void write(std::uint32_t ts_sec, std::uint32_t ts_nsec,
             std::span<const std::uint8_t> frame);

  /// The bytes written so far (global header included).
  const std::vector<std::uint8_t>& bytes() const noexcept { return buffer_; }

  /// Writes the stream to a file.  Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  std::size_t packet_count() const noexcept { return packet_count_; }

 private:
  bool nanosecond_;
  std::vector<std::uint8_t> buffer_;
  std::size_t packet_count_ = 0;
};

/// Parses an in-memory pcap byte stream.  Construction fails (throws
/// std::invalid_argument) on a bad global header; per-record truncation
/// terminates iteration.
class PcapReader {
 public:
  explicit PcapReader(std::span<const std::uint8_t> bytes);

  /// Loads a pcap file fully into memory and returns a reader over it.
  static std::vector<std::uint8_t> load_file(const std::string& path);

  bool nanosecond() const noexcept { return nanosecond_; }
  bool swapped() const noexcept { return swapped_; }
  std::uint32_t link_type() const noexcept { return link_type_; }

  /// Reads the next record; std::nullopt at end of stream or on a truncated
  /// record.  The returned record's data is copied out of the buffer.
  std::optional<PcapRecord> next();

  /// Zero-copy variant: views into the underlying buffer, valid as long as
  /// the buffer passed to the constructor outlives the reader.  This is the
  /// high-throughput path used by the capture pipeline.
  struct RecordView {
    std::uint32_t ts_sec = 0;
    std::uint32_t ts_nsec = 0;
    std::span<const std::uint8_t> data;
  };
  std::optional<RecordView> next_view();

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
  bool swapped_ = false;
  bool nanosecond_ = false;
  std::uint32_t link_type_ = 0;

  std::uint32_t read_u32(std::size_t at) const noexcept;
};

}  // namespace dnsnoise
