#include "analytics/related_work.h"

#include <algorithm>
#include <unordered_map>

#include "util/rng.h"

namespace dnsnoise {

TrafficTaxonomy classify_taxonomy(const FpDnsDataset& fpdns,
                                  const DisposablePredicate& is_disposable) {
  TrafficTaxonomy taxonomy;
  for (const FpDnsEntry& entry : fpdns.entries()) {
    if (entry.direction != FpDirection::kBelow) continue;
    if (!entry.successful()) {
      ++taxonomy.unwanted;
      continue;
    }
    const auto name = DomainName::parse(entry.qname);
    if (name && is_disposable(*name)) {
      ++taxonomy.overloaded;
    } else {
      ++taxonomy.canonical;
    }
  }
  return taxonomy;
}

CovertChannelStudy covert_channel_study(
    const FpDnsDataset& fpdns,
    const std::function<std::string(const DomainName&)>& zone_of,
    std::uint64_t threshold) {
  CovertChannelStudy study;
  study.threshold = threshold;

  struct PairHash {
    std::size_t operator()(
        const std::pair<std::uint64_t, std::string>& key) const noexcept {
      return static_cast<std::size_t>(mix64(key.first) ^ fnv1a64(key.second));
    }
  };
  std::unordered_map<std::pair<std::uint64_t, std::string>, std::uint64_t,
                     PairHash>
      per_pair;
  std::unordered_map<std::string, std::uint64_t> per_zone;

  for (const FpDnsEntry& entry : fpdns.entries()) {
    if (entry.direction != FpDirection::kBelow || !entry.successful()) {
      continue;
    }
    const auto name = DomainName::parse(entry.qname);
    if (!name) continue;
    const std::string zone = zone_of(*name);
    if (zone.empty()) continue;
    // The channel payload is the variable part of the name: everything the
    // sender controls left of the zone apex.
    const std::uint64_t payload =
        entry.qname.size() > zone.size() ? entry.qname.size() - zone.size()
                                         : 0;
    per_pair[{entry.client_id, zone}] += payload;
    per_zone[zone] += payload;
  }

  study.per_client_zone_bytes.reserve(per_pair.size());
  std::uint64_t under = 0;
  for (const auto& [key, bytes] : per_pair) {
    study.per_client_zone_bytes.push_back(bytes);
    if (bytes < threshold) ++under;
  }
  std::sort(study.per_client_zone_bytes.begin(),
            study.per_client_zone_bytes.end(), std::greater<>());
  if (!per_pair.empty()) {
    study.under_threshold_fraction =
        static_cast<double>(under) / static_cast<double>(per_pair.size());
  }
  for (const auto& [zone, bytes] : per_zone) {
    study.busiest_zone_bytes = std::max(study.busiest_zone_bytes, bytes);
  }
  return study;
}

}  // namespace dnsnoise
