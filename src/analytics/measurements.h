// Per-figure measurement routines: each function computes exactly the
// statistic one of the paper's figures or tables reports, from a day's
// capture (see DESIGN.md §4 for the figure -> function mapping).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "features/chr.h"
#include "util/histogram.h"

namespace dnsnoise {

/// Predicate deciding whether a resolved name is disposable — either the
/// scenario ground truth or a mined FindingIndex, depending on the study.
using DisposablePredicate = std::function<bool(const DomainName&)>;

// --------------------------------------------------------------------------
// Fig. 3a — lookup-volume long tail.

/// Per-RR daily lookup volumes, descending (the paper's sorted series).
std::vector<std::uint64_t> sorted_lookup_volumes(
    const CacheHitRateTracker& chr);

/// Fraction of RRs with fewer than `threshold` lookups (paper: >90% below
/// 10 lookups/day).
double lookup_tail_fraction(const CacheHitRateTracker& chr,
                            std::uint64_t threshold = 10);

// --------------------------------------------------------------------------
// Fig. 3b / Fig. 4 — DHR and CHR distributions.

/// Empirical CDF of the per-RR domain hit rate (Fig. 3b).
std::vector<CdfPoint> dhr_cdf(const CacheHitRateTracker& chr,
                              std::size_t points = 101);

/// Fraction of RRs with zero domain hit rate (paper: 89% -> 93% over 2011).
double zero_dhr_fraction(const CacheHitRateTracker& chr);

/// Empirical CDF of the CHR distribution, miss-weighted (Fig. 4).
std::vector<CdfPoint> chr_cdf(const CacheHitRateTracker& chr,
                              std::size_t points = 101);

/// Fraction of CHR mass strictly below `x` (paper: 58% below 0.5).
double chr_fraction_below(const CacheHitRateTracker& chr, double x);

// --------------------------------------------------------------------------
// Fig. 7 — CHR distributions of labeled disposable vs non-disposable zones.

struct LabeledChrStudy {
  std::vector<double> disposable_chr;     // miss-weighted CHR samples
  std::vector<double> nondisposable_chr;
  double disposable_zero_fraction = 0.0;          // paper: ~90% at zero
  double nondisposable_above_058_fraction = 0.0;  // paper: 45% above 0.58
};

LabeledChrStudy labeled_chr_study(const CacheHitRateTracker& chr,
                                  const DisposablePredicate& is_disposable);

/// Variant restricted to labeled zones, the paper's actual comparison: RRs
/// matching `is_disposable` form the positive class, RRs matching
/// `is_labeled_nondisposable` the negative class, and everything else is
/// excluded (the paper compares 398 disposable zones against 401 Alexa
/// zones, not against the rest of the traffic).
LabeledChrStudy labeled_chr_study(
    const CacheHitRateTracker& chr, const DisposablePredicate& is_disposable,
    const DisposablePredicate& is_labeled_nondisposable);

// --------------------------------------------------------------------------
// Tables I / II — tail composition.

struct TailComposition {
  double tail_fraction = 0.0;             // column "Volume < 10" / "zero DHR"
  double disposable_share_of_tail = 0.0;  // column "% of tail disposable"
  double disposable_inside_tail = 0.0;    // column "% of all disposable..."
};

/// Table I row: the low-lookup-volume tail (< threshold lookups).
TailComposition lookup_tail_composition(const CacheHitRateTracker& chr,
                                        const DisposablePredicate& is_disposable,
                                        std::uint64_t threshold = 10);

/// Table II row: the zero-DHR tail.
TailComposition zero_dhr_tail_composition(
    const CacheHitRateTracker& chr, const DisposablePredicate& is_disposable);

// --------------------------------------------------------------------------
// Fig. 14 — TTL histogram of disposable RRs.

/// Log-binned TTL histogram over disposable RRs (values clamped to 86400s,
/// zero TTL in the dedicated underflow bin, like the paper's plot).
LogHistogram disposable_ttl_histogram(const CacheHitRateTracker& chr,
                                      const DisposablePredicate& is_disposable);

/// Fraction of disposable RRs with TTL <= `value`.
double disposable_ttl_fraction_at_most(const CacheHitRateTracker& chr,
                                       const DisposablePredicate& is_disposable,
                                       std::uint32_t value);

}  // namespace dnsnoise
