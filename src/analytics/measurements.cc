#include "analytics/measurements.h"

#include <algorithm>

namespace dnsnoise {

namespace {

/// Parses and classifies an RR's name once per entry.
bool entry_is_disposable(const RRKey& key,
                         const DisposablePredicate& is_disposable) {
  const auto name = DomainName::parse(key.name);
  return name && is_disposable(*name);
}

}  // namespace

std::vector<std::uint64_t> sorted_lookup_volumes(
    const CacheHitRateTracker& chr) {
  std::vector<std::uint64_t> volumes;
  volumes.reserve(chr.unique_rrs());
  for (const auto& [key, counts] : chr.entries()) {
    volumes.push_back(counts.below);
  }
  std::sort(volumes.begin(), volumes.end(), std::greater<>());
  return volumes;
}

double lookup_tail_fraction(const CacheHitRateTracker& chr,
                            std::uint64_t threshold) {
  if (chr.unique_rrs() == 0) return 0.0;
  std::size_t tail = 0;
  for (const auto& [key, counts] : chr.entries()) {
    if (counts.below < threshold) ++tail;
  }
  return static_cast<double>(tail) / static_cast<double>(chr.unique_rrs());
}

std::vector<CdfPoint> dhr_cdf(const CacheHitRateTracker& chr,
                              std::size_t points) {
  return empirical_cdf(chr.all_dhr(), points);
}

double zero_dhr_fraction(const CacheHitRateTracker& chr) {
  if (chr.unique_rrs() == 0) return 0.0;
  std::size_t zero = 0;
  for (const auto& [key, counts] : chr.entries()) {
    if (CacheHitRateTracker::dhr(counts) == 0.0) ++zero;
  }
  return static_cast<double>(zero) / static_cast<double>(chr.unique_rrs());
}

std::vector<CdfPoint> chr_cdf(const CacheHitRateTracker& chr,
                              std::size_t points) {
  return empirical_cdf(chr.chr_distribution(), points);
}

double chr_fraction_below(const CacheHitRateTracker& chr, double x) {
  std::uint64_t below = 0;
  std::uint64_t total = 0;
  for (const auto& [key, counts] : chr.entries()) {
    total += counts.above;
    if (CacheHitRateTracker::dhr(counts) < x) below += counts.above;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(below) / static_cast<double>(total);
}

LabeledChrStudy labeled_chr_study(const CacheHitRateTracker& chr,
                                  const DisposablePredicate& is_disposable) {
  return labeled_chr_study(chr, is_disposable,
                           [](const DomainName&) { return true; });
}

LabeledChrStudy labeled_chr_study(
    const CacheHitRateTracker& chr, const DisposablePredicate& is_disposable,
    const DisposablePredicate& is_labeled_nondisposable) {
  LabeledChrStudy study;
  std::uint64_t disposable_zero = 0;
  std::uint64_t nondisposable_high = 0;
  for (const auto& [key, counts] : chr.entries()) {
    if (counts.above == 0) continue;  // never missed: no CHR samples
    const double rate = CacheHitRateTracker::dhr(counts);
    const bool disposable = entry_is_disposable(key, is_disposable);
    if (!disposable && !entry_is_disposable(key, is_labeled_nondisposable)) {
      continue;  // unlabeled traffic is not part of the Fig. 7 comparison
    }
    auto& bucket =
        disposable ? study.disposable_chr : study.nondisposable_chr;
    for (std::uint64_t i = 0; i < counts.above; ++i) bucket.push_back(rate);
    if (&bucket == &study.disposable_chr && rate == 0.0) {
      disposable_zero += counts.above;
    }
    if (&bucket == &study.nondisposable_chr && rate > 0.58) {
      nondisposable_high += counts.above;
    }
  }
  if (!study.disposable_chr.empty()) {
    study.disposable_zero_fraction =
        static_cast<double>(disposable_zero) /
        static_cast<double>(study.disposable_chr.size());
  }
  if (!study.nondisposable_chr.empty()) {
    study.nondisposable_above_058_fraction =
        static_cast<double>(nondisposable_high) /
        static_cast<double>(study.nondisposable_chr.size());
  }
  return study;
}

TailComposition lookup_tail_composition(
    const CacheHitRateTracker& chr, const DisposablePredicate& is_disposable,
    std::uint64_t threshold) {
  TailComposition result;
  std::uint64_t tail = 0;
  std::uint64_t tail_disposable = 0;
  std::uint64_t disposable = 0;
  const std::uint64_t total = chr.unique_rrs();
  for (const auto& [key, counts] : chr.entries()) {
    const bool in_tail = counts.below < threshold;
    const bool is_disp = entry_is_disposable(key, is_disposable);
    if (in_tail) ++tail;
    if (is_disp) ++disposable;
    if (in_tail && is_disp) ++tail_disposable;
  }
  if (total > 0) {
    result.tail_fraction =
        static_cast<double>(tail) / static_cast<double>(total);
  }
  if (tail > 0) {
    result.disposable_share_of_tail =
        static_cast<double>(tail_disposable) / static_cast<double>(tail);
  }
  if (disposable > 0) {
    result.disposable_inside_tail =
        static_cast<double>(tail_disposable) /
        static_cast<double>(disposable);
  }
  return result;
}

TailComposition zero_dhr_tail_composition(
    const CacheHitRateTracker& chr, const DisposablePredicate& is_disposable) {
  TailComposition result;
  std::uint64_t tail = 0;
  std::uint64_t tail_disposable = 0;
  std::uint64_t disposable = 0;
  const std::uint64_t total = chr.unique_rrs();
  for (const auto& [key, counts] : chr.entries()) {
    const bool in_tail = CacheHitRateTracker::dhr(counts) == 0.0;
    const bool is_disp = entry_is_disposable(key, is_disposable);
    if (in_tail) ++tail;
    if (is_disp) ++disposable;
    if (in_tail && is_disp) ++tail_disposable;
  }
  if (total > 0) {
    result.tail_fraction =
        static_cast<double>(tail) / static_cast<double>(total);
  }
  if (tail > 0) {
    result.disposable_share_of_tail =
        static_cast<double>(tail_disposable) / static_cast<double>(tail);
  }
  if (disposable > 0) {
    result.disposable_inside_tail =
        static_cast<double>(tail_disposable) /
        static_cast<double>(disposable);
  }
  return result;
}

LogHistogram disposable_ttl_histogram(
    const CacheHitRateTracker& chr, const DisposablePredicate& is_disposable) {
  LogHistogram histogram(86400.0, 4);
  for (const auto& [key, counts] : chr.entries()) {
    if (!entry_is_disposable(key, is_disposable)) continue;
    histogram.add(static_cast<double>(std::min<std::uint32_t>(counts.ttl,
                                                              86400)));
  }
  return histogram;
}

double disposable_ttl_fraction_at_most(
    const CacheHitRateTracker& chr, const DisposablePredicate& is_disposable,
    std::uint32_t value) {
  std::uint64_t total = 0;
  std::uint64_t at_most = 0;
  for (const auto& [key, counts] : chr.entries()) {
    if (!entry_is_disposable(key, is_disposable)) continue;
    ++total;
    if (counts.ttl <= value) ++at_most;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(at_most) /
                          static_cast<double>(total);
}

}  // namespace dnsnoise
