// Analyses from the paper's related-work discussion (Section II-B).
//
// 1. Plonka & Barford's treetop taxonomy: DNS traffic splits into
//    *canonical* (ordinary name->IP mapping), *overloaded* (DNS used as a
//    signaling/transport channel — the superclass of disposable traffic),
//    and *unwanted* (unsuccessful resolutions, i.e. NXDOMAIN).
//
// 2. Paxson et al.'s covert-channel bound: an enterprise detector enforcing
//    ~4 kB/day of outbound name data per (client, destination zone) pair.
//    The paper argues disposable domains "can be stealthy and stay under
//    this threshold", yet are identifiable *collectively* from the zone's
//    aggregate — these routines measure exactly that contrast.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analytics/measurements.h"
#include "pdns/fpdns.h"

namespace dnsnoise {

/// Treetop-style traffic split, in below-tap response units.
struct TrafficTaxonomy {
  std::uint64_t canonical = 0;
  std::uint64_t overloaded = 0;  // entries under disposable zones
  std::uint64_t unwanted = 0;    // unsuccessful resolutions

  std::uint64_t total() const noexcept {
    return canonical + overloaded + unwanted;
  }
};

/// Classifies every below-tap fpDNS entry.
TrafficTaxonomy classify_taxonomy(const FpDnsDataset& fpdns,
                                  const DisposablePredicate& is_disposable);

/// Per-(client, disposable zone) outbound information volume: the sum of
/// queried-name bytes a covert-channel detector would meter.
struct CovertChannelStudy {
  /// Daily name-byte volumes, one per (client, zone) pair, descending.
  std::vector<std::uint64_t> per_client_zone_bytes;
  /// Fraction of pairs below the detector threshold (stealthy senders).
  double under_threshold_fraction = 0.0;
  /// Aggregate name bytes of the busiest single zone across all clients —
  /// the collective footprint the zone miner keys on instead.
  std::uint64_t busiest_zone_bytes = 0;
  std::uint64_t threshold = 0;
};

/// `zone_of` maps a queried name to its disposable zone apex (empty string
/// when the name is not disposable); `threshold` defaults to Paxson's
/// 4 kB/day bound.
CovertChannelStudy covert_channel_study(
    const FpDnsDataset& fpdns,
    const std::function<std::string(const DomainName&)>& zone_of,
    std::uint64_t threshold = 4096);

}  // namespace dnsnoise
