#include "ml/baselines.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dnsnoise {

namespace {
constexpr double kVarianceFloor = 1e-9;

double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

// --------------------------------------------------------------------------
// Standardizer

void Standardizer::fit(const Dataset& data) {
  const std::size_t dim = data.dim();
  mean_.assign(dim, 0.0);
  inv_std_.assign(dim, 1.0);
  if (data.size() == 0) return;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto x = data.features(i);
    for (std::size_t d = 0; d < dim; ++d) mean_[d] += x[d];
  }
  for (double& m : mean_) m /= static_cast<double>(data.size());
  std::vector<double> var(dim, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto x = data.features(i);
    for (std::size_t d = 0; d < dim; ++d) {
      const double delta = x[d] - mean_[d];
      var[d] += delta * delta;
    }
  }
  for (std::size_t d = 0; d < dim; ++d) {
    inv_std_[d] =
        1.0 / std::sqrt(std::max(var[d] / static_cast<double>(data.size()),
                                 kVarianceFloor));
  }
}

std::vector<double> Standardizer::transform(std::span<const double> x) const {
  if (x.size() != mean_.size()) {
    throw std::invalid_argument("Standardizer: dimension mismatch");
  }
  std::vector<double> out(x.size());
  for (std::size_t d = 0; d < x.size(); ++d) {
    out[d] = (x[d] - mean_[d]) * inv_std_[d];
  }
  return out;
}

// --------------------------------------------------------------------------
// GaussianNaiveBayes

void GaussianNaiveBayes::train(const Dataset& data) {
  if (data.size() == 0) throw std::invalid_argument("NB: empty dataset");
  dim_ = data.dim();
  std::size_t counts[2] = {0, 0};
  for (ClassModel& model : models_) {
    model.mean.assign(dim_, 0.0);
    model.var.assign(dim_, 0.0);
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int y = data.label(i);
    ++counts[y];
    const auto x = data.features(i);
    for (std::size_t d = 0; d < dim_; ++d) models_[y].mean[d] += x[d];
  }
  for (int y = 0; y < 2; ++y) {
    const double n = std::max<double>(static_cast<double>(counts[y]), 1.0);
    for (double& m : models_[y].mean) m /= n;
    models_[y].log_prior =
        std::log((static_cast<double>(counts[y]) + 1.0) /
                 (static_cast<double>(data.size()) + 2.0));
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int y = data.label(i);
    const auto x = data.features(i);
    for (std::size_t d = 0; d < dim_; ++d) {
      const double delta = x[d] - models_[y].mean[d];
      models_[y].var[d] += delta * delta;
    }
  }
  for (int y = 0; y < 2; ++y) {
    const double n = std::max<double>(static_cast<double>(counts[y]), 1.0);
    for (double& v : models_[y].var) v = std::max(v / n, kVarianceFloor);
  }
}

double GaussianNaiveBayes::predict_proba(std::span<const double> x) const {
  if (x.size() != dim_) throw std::invalid_argument("NB: dimension mismatch");
  double log_like[2];
  for (int y = 0; y < 2; ++y) {
    double ll = models_[y].log_prior;
    for (std::size_t d = 0; d < dim_; ++d) {
      const double var = models_[y].var[d];
      const double delta = x[d] - models_[y].mean[d];
      ll += -0.5 * std::log(2.0 * 3.14159265358979323846 * var) -
            delta * delta / (2.0 * var);
    }
    log_like[y] = ll;
  }
  const double max_ll = std::max(log_like[0], log_like[1]);
  const double exp0 = std::exp(log_like[0] - max_ll);
  const double exp1 = std::exp(log_like[1] - max_ll);
  return exp1 / (exp0 + exp1);
}

// --------------------------------------------------------------------------
// KnnClassifier

void KnnClassifier::train(const Dataset& data) {
  if (data.size() == 0) throw std::invalid_argument("kNN: empty dataset");
  standardizer_.fit(data);
  dim_ = data.dim();
  points_.clear();
  labels_.clear();
  points_.reserve(data.size() * dim_);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::vector<double> z = standardizer_.transform(data.features(i));
    points_.insert(points_.end(), z.begin(), z.end());
    labels_.push_back(data.label(i));
  }
}

double KnnClassifier::predict_proba(std::span<const double> x) const {
  if (labels_.empty()) throw std::logic_error("kNN: not trained");
  const std::vector<double> z = standardizer_.transform(x);
  std::vector<std::pair<double, int>> distances;  // (squared dist, label)
  distances.reserve(labels_.size());
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    double dist = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) {
      const double delta = points_[i * dim_ + d] - z[d];
      dist += delta * delta;
    }
    distances.emplace_back(dist, labels_[i]);
  }
  const std::size_t k = std::min(k_, distances.size());
  std::partial_sort(distances.begin(),
                    distances.begin() + static_cast<std::ptrdiff_t>(k),
                    distances.end());
  double votes = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    votes += static_cast<double>(distances[i].second);
  }
  // Laplace smoothing keeps scores off the 0/1 rails for ROC sweeps.
  return (votes + 0.5) / (static_cast<double>(k) + 1.0);
}

// --------------------------------------------------------------------------
// LogisticRegression

void LogisticRegression::train(const Dataset& data) {
  if (data.size() == 0) throw std::invalid_argument("LR: empty dataset");
  standardizer_.fit(data);
  const std::size_t n = data.size();
  const std::size_t dim = data.dim();
  weights_.assign(dim, 0.0);
  bias_ = 0.0;
  std::vector<std::vector<double>> z;
  z.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    z.push_back(standardizer_.transform(data.features(i)));
  }
  std::vector<double> grad(dim);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double margin = bias_;
      for (std::size_t d = 0; d < dim; ++d) margin += weights_[d] * z[i][d];
      const double err =
          sigmoid(margin) - static_cast<double>(data.label(i));
      for (std::size_t d = 0; d < dim; ++d) grad[d] += err * z[i][d];
      grad_bias += err;
    }
    const double scale = config_.learning_rate / static_cast<double>(n);
    for (std::size_t d = 0; d < dim; ++d) {
      weights_[d] -= scale * (grad[d] + config_.l2 * weights_[d]);
    }
    bias_ -= scale * grad_bias;
  }
}

double LogisticRegression::predict_proba(std::span<const double> x) const {
  const std::vector<double> z = standardizer_.transform(x);
  double margin = bias_;
  for (std::size_t d = 0; d < z.size(); ++d) margin += weights_[d] * z[d];
  return sigmoid(margin);
}

// --------------------------------------------------------------------------
// Mlp

void Mlp::train(const Dataset& data) {
  if (data.size() == 0) throw std::invalid_argument("MLP: empty dataset");
  standardizer_.fit(data);
  dim_ = data.dim();
  const std::size_t h = config_.hidden;
  Rng rng(config_.seed);
  auto init = [&rng] { return rng.uniform(-0.3, 0.3); };
  w1_.resize(h * dim_);
  b1_.assign(h, 0.0);
  w2_.resize(h);
  b2_ = 0.0;
  for (double& w : w1_) w = init();
  for (double& w : w2_) w = init();

  std::vector<std::vector<double>> z;
  z.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    z.push_back(standardizer_.transform(data.features(i)));
  }
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<double> hidden(h);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Fisher-Yates shuffle for SGD.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    for (const std::size_t i : order) {
      const std::vector<double>& input = z[i];
      for (std::size_t j = 0; j < h; ++j) {
        double sum = b1_[j];
        for (std::size_t d = 0; d < dim_; ++d) {
          sum += w1_[j * dim_ + d] * input[d];
        }
        hidden[j] = std::tanh(sum);
      }
      double out = b2_;
      for (std::size_t j = 0; j < h; ++j) out += w2_[j] * hidden[j];
      const double err =
          sigmoid(out) - static_cast<double>(data.label(i));
      const double lr = config_.learning_rate;
      for (std::size_t j = 0; j < h; ++j) {
        const double grad_hidden =
            err * w2_[j] * (1.0 - hidden[j] * hidden[j]);
        w2_[j] -= lr * err * hidden[j];
        for (std::size_t d = 0; d < dim_; ++d) {
          w1_[j * dim_ + d] -= lr * grad_hidden * input[d];
        }
        b1_[j] -= lr * grad_hidden;
      }
      b2_ -= lr * err;
    }
  }
}

double Mlp::predict_proba(std::span<const double> x) const {
  const std::vector<double> z = standardizer_.transform(x);
  double out = b2_;
  for (std::size_t j = 0; j < config_.hidden; ++j) {
    double sum = b1_[j];
    for (std::size_t d = 0; d < dim_; ++d) sum += w1_[j * dim_ + d] * z[d];
    out += w2_[j] * std::tanh(sum);
  }
  return sigmoid(out);
}

}  // namespace dnsnoise
