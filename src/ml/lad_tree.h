// LAD tree: an alternating decision tree trained with LogitBoost.
//
// The paper's selected model (Section V-C) is WEKA's LADTree.  An ADT is a
// sum-of-rules model: a root prediction plus splitter nodes, each anchored
// at a *prediction node* of the existing tree (its precondition), carrying
// a single-feature threshold test and two leaf predictions.  The score of
// an instance is the sum of every leaf prediction it reaches; LogitBoost
// adds one splitter per iteration, fitted to the working response by
// weighted least squares (Friedman, Hastie & Tibshirani 2000).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "ml/classifier.h"

namespace dnsnoise {

struct LadTreeConfig {
  std::size_t iterations = 24;      // splitter nodes to grow
  std::size_t threshold_candidates = 32;  // quantile split candidates/feature
  double min_leaf_weight = 1e-6;    // guard against empty leaves
  /// Leaf-value shrinkage (boosting learning rate).  Values < 1 temper the
  /// overconfident probabilities additive boosting otherwise produces,
  /// giving the threshold sweep (Fig. 12) meaningful operating points.
  double shrinkage = 0.5;
};

class LadTree final : public BinaryClassifier {
 public:
  explicit LadTree(LadTreeConfig config = {}) : config_(config) {}

  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::string_view name() const noexcept override { return "lad-tree"; }

  /// One splitter node of the alternating tree.
  struct Splitter {
    std::int32_t parent = -1;    // prediction-node index of the precondition
    std::size_t feature = 0;
    double threshold = 0.0;
    double left_value = 0.0;     // prediction when x[feature] < threshold
    double right_value = 0.0;
    std::int32_t left_node = 0;  // prediction-node ids introduced by this
    std::int32_t right_node = 0; // splitter (attachment points for children)
  };

  std::span<const Splitter> splitters() const noexcept { return splitters_; }
  double root_prediction() const noexcept { return root_prediction_; }
  /// Feature dimensionality the model was trained (or deserialized) with.
  std::size_t dim() const noexcept { return dim_; }

  /// Additive margin F(x); predict_proba is the logistic link of 2F.
  double margin(std::span<const double> x) const;

  /// Binary model persistence: a trained model round-trips exactly
  /// (bit-identical predictions), so a miner can ship a model trained on a
  /// labeled day and apply it elsewhere — the paper's deployment mode.
  std::vector<std::uint8_t> serialize() const;
  static std::optional<LadTree> deserialize(
      std::span<const std::uint8_t> bytes);

 private:
  LadTreeConfig config_;
  double root_prediction_ = 0.0;
  std::vector<Splitter> splitters_;
  std::size_t dim_ = 0;
};

}  // namespace dnsnoise
