// Evaluation tooling: confusion metrics, ROC/AUC, stratified k-fold
// cross-validation — the paper's Section V-C protocol (10-fold CV, ROC of
// the disposable class, TPR/FPR at thresholds 0.5 and 0.9).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/classifier.h"

namespace dnsnoise {

struct Confusion {
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t tn = 0;
  std::uint64_t fn = 0;

  double tpr() const noexcept {
    return tp + fn == 0 ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fn);
  }
  double fpr() const noexcept {
    return fp + tn == 0 ? 0.0
                        : static_cast<double>(fp) /
                              static_cast<double>(fp + tn);
  }
  double accuracy() const noexcept {
    const std::uint64_t total = tp + fp + tn + fn;
    return total == 0 ? 0.0
                      : static_cast<double>(tp + tn) /
                            static_cast<double>(total);
  }
  double precision() const noexcept {
    return tp + fp == 0 ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fp);
  }
};

/// Confusion at a score threshold (score >= threshold => predicted 1).
Confusion confusion_at(std::span<const double> scores,
                       std::span<const int> labels, double threshold);

struct RocPoint {
  double threshold = 0.0;
  double fpr = 0.0;
  double tpr = 0.0;
};

/// ROC curve over all distinct score thresholds, ordered by increasing FPR
/// (starts at (0,0), ends at (1,1)).
std::vector<RocPoint> roc_curve(std::span<const double> scores,
                                std::span<const int> labels);

/// Area under the ROC curve (trapezoidal).
double auc(std::span<const RocPoint> curve);

/// Stratified k-fold cross-validation.  Returns out-of-fold scores aligned
/// with the dataset's sample order.
std::vector<double> cross_val_scores(const Dataset& data,
                                     const ClassifierFactory& factory,
                                     std::size_t folds, std::uint64_t seed);

}  // namespace dnsnoise
