#include "ml/lad_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace dnsnoise {

namespace {

constexpr double kMaxWorkingResponse = 4.0;
constexpr double kMinWeight = 1e-24;

struct MemberStat {
  double value = 0.0;  // feature value
  double wz = 0.0;     // weight * working response
  double w = 0.0;      // weight
};

/// Best split of one candidate node on one feature: returns (gain,
/// threshold, left fit, right fit); gain < 0 means no valid split.
struct SplitFit {
  double gain = -1.0;
  double threshold = 0.0;
  double left = 0.0;
  double right = 0.0;
};

SplitFit best_split(std::vector<MemberStat>& members, double min_leaf_weight) {
  SplitFit fit;
  if (members.size() < 2) return fit;
  std::sort(members.begin(), members.end(),
            [](const MemberStat& a, const MemberStat& b) {
              return a.value < b.value;
            });
  double total_wz = 0.0;
  double total_w = 0.0;
  for (const MemberStat& m : members) {
    total_wz += m.wz;
    total_w += m.w;
  }
  double left_wz = 0.0;
  double left_w = 0.0;
  for (std::size_t i = 0; i + 1 < members.size(); ++i) {
    left_wz += members[i].wz;
    left_w += members[i].w;
    if (members[i].value == members[i + 1].value) continue;
    const double right_wz = total_wz - left_wz;
    const double right_w = total_w - left_w;
    if (left_w < min_leaf_weight || right_w < min_leaf_weight) continue;
    // Weighted-least-squares gain of fitting each side by its mean.
    const double gain =
        left_wz * left_wz / left_w + right_wz * right_wz / right_w;
    if (gain > fit.gain) {
      fit.gain = gain;
      fit.threshold = 0.5 * (members[i].value + members[i + 1].value);
      fit.left = 0.5 * left_wz / left_w;    // LogitBoost half-step
      fit.right = 0.5 * right_wz / right_w;
    }
  }
  return fit;
}

}  // namespace

void LadTree::train(const Dataset& data) {
  if (data.size() == 0) throw std::invalid_argument("LadTree: empty dataset");
  dim_ = data.dim();
  splitters_.clear();
  const std::size_t n = data.size();

  // Root prediction from the class prior (Laplace-smoothed log odds).
  const double positives = static_cast<double>(data.positives());
  const double negatives = static_cast<double>(n) - positives;
  root_prediction_ = 0.5 * std::log((positives + 1.0) / (negatives + 1.0));

  std::vector<double> margin_of(n, root_prediction_);
  // Membership of samples in prediction nodes; node 0 is the root.
  std::vector<std::vector<std::uint32_t>> node_members(1);
  node_members[0].resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    node_members[0][i] = static_cast<std::uint32_t>(i);
  }

  std::vector<double> weight(n);
  std::vector<double> response(n);

  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    // LogitBoost working response and weights.
    for (std::size_t i = 0; i < n; ++i) {
      const double p = 1.0 / (1.0 + std::exp(-2.0 * margin_of[i]));
      const double w = std::max(p * (1.0 - p), kMinWeight);
      const double y = static_cast<double>(data.label(i));
      weight[i] = w;
      response[i] = std::clamp((y - p) / w, -kMaxWorkingResponse,
                               kMaxWorkingResponse);
    }

    // Search every (prediction node, feature) pair for the best split.
    double best_gain = 0.0;
    std::int32_t best_parent = -1;
    std::size_t best_feature = 0;
    SplitFit best_fit;
    std::vector<MemberStat> members;
    for (std::size_t node = 0; node < node_members.size(); ++node) {
      const auto& samples = node_members[node];
      if (samples.size() < 2) continue;
      for (std::size_t feature = 0; feature < dim_; ++feature) {
        members.clear();
        members.reserve(samples.size());
        for (const std::uint32_t i : samples) {
          members.push_back({data.features(i)[feature],
                             weight[i] * response[i], weight[i]});
        }
        const SplitFit fit = best_split(members, config_.min_leaf_weight);
        if (fit.gain > best_gain) {
          best_gain = fit.gain;
          best_parent = static_cast<std::int32_t>(node);
          best_feature = feature;
          best_fit = fit;
        }
      }
    }
    if (best_parent < 0) break;  // nothing splittable left

    Splitter splitter;
    splitter.parent = best_parent;
    splitter.feature = best_feature;
    splitter.threshold = best_fit.threshold;
    splitter.left_value = best_fit.left * config_.shrinkage;
    splitter.right_value = best_fit.right * config_.shrinkage;
    splitter.left_node = static_cast<std::int32_t>(node_members.size());
    splitter.right_node = splitter.left_node + 1;

    // Route the parent's members and update margins.
    std::vector<std::uint32_t> left_members;
    std::vector<std::uint32_t> right_members;
    for (const std::uint32_t i :
         node_members[static_cast<std::size_t>(best_parent)]) {
      if (data.features(i)[best_feature] < splitter.threshold) {
        margin_of[i] += splitter.left_value;
        left_members.push_back(i);
      } else {
        margin_of[i] += splitter.right_value;
        right_members.push_back(i);
      }
    }
    node_members.push_back(std::move(left_members));
    node_members.push_back(std::move(right_members));
    splitters_.push_back(splitter);
  }
}

double LadTree::margin(std::span<const double> x) const {
  if (x.size() != dim_) {
    throw std::invalid_argument("LadTree: feature dimension mismatch");
  }
  double total = root_prediction_;
  // Prediction-node activity; parents are always created before children,
  // so one forward pass suffices.
  std::vector<char> active(1 + 2 * splitters_.size(), 0);
  active[0] = 1;
  for (const Splitter& s : splitters_) {
    if (!active[static_cast<std::size_t>(s.parent)]) continue;
    if (x[s.feature] < s.threshold) {
      total += s.left_value;
      active[static_cast<std::size_t>(s.left_node)] = 1;
    } else {
      total += s.right_value;
      active[static_cast<std::size_t>(s.right_node)] = 1;
    }
  }
  return total;
}

double LadTree::predict_proba(std::span<const double> x) const {
  return 1.0 / (1.0 + std::exp(-2.0 * margin(x)));
}

namespace {

constexpr char kModelMagic[4] = {'L', 'A', 'D', '1'};

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

bool get_u64(std::span<const std::uint8_t> bytes, std::size_t& pos,
             std::uint64_t& out) {
  if (pos + 8 > bytes.size()) return false;
  out = 0;
  for (int i = 0; i < 8; ++i) out |= std::uint64_t{bytes[pos + static_cast<std::size_t>(i)]} << (i * 8);
  pos += 8;
  return true;
}

bool get_f64(std::span<const std::uint8_t> bytes, std::size_t& pos,
             double& out) {
  std::uint64_t bits = 0;
  if (!get_u64(bytes, pos, bits)) return false;
  std::memcpy(&out, &bits, sizeof(out));
  return true;
}

}  // namespace

std::vector<std::uint8_t> LadTree::serialize() const {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), std::begin(kModelMagic), std::end(kModelMagic));
  put_u64(out, dim_);
  put_f64(out, root_prediction_);
  put_u64(out, splitters_.size());
  for (const Splitter& s : splitters_) {
    put_u64(out, static_cast<std::uint64_t>(s.parent));
    put_u64(out, s.feature);
    put_f64(out, s.threshold);
    put_f64(out, s.left_value);
    put_f64(out, s.right_value);
    put_u64(out, static_cast<std::uint64_t>(s.left_node));
    put_u64(out, static_cast<std::uint64_t>(s.right_node));
  }
  return out;
}

std::optional<LadTree> LadTree::deserialize(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4 ||
      std::memcmp(bytes.data(), kModelMagic, 4) != 0) {
    return std::nullopt;
  }
  std::size_t pos = 4;
  LadTree model;
  std::uint64_t dim = 0;
  std::uint64_t count = 0;
  if (!get_u64(bytes, pos, dim)) return std::nullopt;
  if (!get_f64(bytes, pos, model.root_prediction_)) return std::nullopt;
  if (!get_u64(bytes, pos, count)) return std::nullopt;
  model.dim_ = static_cast<std::size_t>(dim);
  // Each splitter occupies 7 * 8 bytes; reject counts the input can't hold
  // (also bounds the reserve below on corrupt input).
  constexpr std::uint64_t kSplitterBytes = 56;
  if (count > (bytes.size() - pos) / kSplitterBytes) return std::nullopt;
  model.splitters_.reserve(count);
  const std::uint64_t node_limit = 1 + 2 * count;
  for (std::uint64_t i = 0; i < count; ++i) {
    Splitter s;
    std::uint64_t parent = 0;
    std::uint64_t feature = 0;
    std::uint64_t left = 0;
    std::uint64_t right = 0;
    if (!get_u64(bytes, pos, parent)) return std::nullopt;
    if (!get_u64(bytes, pos, feature)) return std::nullopt;
    if (!get_f64(bytes, pos, s.threshold)) return std::nullopt;
    if (!get_f64(bytes, pos, s.left_value)) return std::nullopt;
    if (!get_f64(bytes, pos, s.right_value)) return std::nullopt;
    if (!get_u64(bytes, pos, left)) return std::nullopt;
    if (!get_u64(bytes, pos, right)) return std::nullopt;
    // Structural validation (on the raw 64-bit values, before any
    // narrowing) keeps margin() in bounds on corrupt input.
    if (parent >= node_limit || feature >= model.dim_ || left == 0 ||
        left >= node_limit || right == 0 || right >= node_limit) {
      return std::nullopt;
    }
    s.parent = static_cast<std::int32_t>(parent);
    s.feature = static_cast<std::size_t>(feature);
    s.left_node = static_cast<std::int32_t>(left);
    s.right_node = static_cast<std::int32_t>(right);
    model.splitters_.push_back(s);
  }
  return model;
}

}  // namespace dnsnoise
