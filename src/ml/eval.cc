#include "ml/eval.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace dnsnoise {

Confusion confusion_at(std::span<const double> scores,
                       std::span<const int> labels, double threshold) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("confusion_at: size mismatch");
  }
  Confusion c;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] >= threshold;
    if (labels[i] == 1) {
      predicted ? ++c.tp : ++c.fn;
    } else {
      predicted ? ++c.fp : ++c.tn;
    }
  }
  return c;
}

std::vector<RocPoint> roc_curve(std::span<const double> scores,
                                std::span<const int> labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("roc_curve: size mismatch");
  }
  std::vector<std::pair<double, int>> ranked;
  ranked.reserve(scores.size());
  std::uint64_t positives = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    ranked.emplace_back(scores[i], labels[i]);
    positives += static_cast<std::uint64_t>(labels[i]);
  }
  const std::uint64_t negatives = ranked.size() - positives;
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<RocPoint> curve;
  curve.push_back({1.0 + (ranked.empty() ? 0.0 : ranked.front().first), 0.0,
                   0.0});
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].second == 1) {
      ++tp;
    } else {
      ++fp;
    }
    // Emit a point only after the last sample of a score tie.
    if (i + 1 < ranked.size() && ranked[i + 1].first == ranked[i].first) {
      continue;
    }
    RocPoint point;
    point.threshold = ranked[i].first;
    point.tpr = positives == 0 ? 0.0
                               : static_cast<double>(tp) /
                                     static_cast<double>(positives);
    point.fpr = negatives == 0 ? 0.0
                               : static_cast<double>(fp) /
                                     static_cast<double>(negatives);
    curve.push_back(point);
  }
  return curve;
}

double auc(std::span<const RocPoint> curve) {
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double width = curve[i].fpr - curve[i - 1].fpr;
    area += width * 0.5 * (curve[i].tpr + curve[i - 1].tpr);
  }
  return area;
}

std::vector<double> cross_val_scores(const Dataset& data,
                                     const ClassifierFactory& factory,
                                     std::size_t folds, std::uint64_t seed) {
  if (folds < 2) throw std::invalid_argument("cross_val: folds must be >= 2");
  const std::size_t n = data.size();
  if (n < folds) throw std::invalid_argument("cross_val: too few samples");

  // Stratified fold assignment: shuffle within each class, deal round-robin.
  Rng rng(seed);
  std::vector<std::size_t> fold_of(n);
  for (int klass = 0; klass < 2; ++klass) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < n; ++i) {
      if (data.label(i) == klass) members.push_back(i);
    }
    for (std::size_t i = members.size(); i > 1; --i) {
      std::swap(members[i - 1], members[rng.below(i)]);
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      fold_of[members[i]] = i % folds;
    }
  }

  std::vector<double> scores(n, 0.0);
  for (std::size_t fold = 0; fold < folds; ++fold) {
    std::vector<std::size_t> train_idx;
    std::vector<std::size_t> test_idx;
    for (std::size_t i = 0; i < n; ++i) {
      (fold_of[i] == fold ? test_idx : train_idx).push_back(i);
    }
    const Dataset train = data.subset(train_idx);
    const std::unique_ptr<BinaryClassifier> model = factory();
    model->train(train);
    for (const std::size_t i : test_idx) {
      scores[i] = model->predict_proba(data.features(i));
    }
  }
  return scores;
}

}  // namespace dnsnoise
