// Binary classifier interface used by the disposable zone miner and the
// model-selection study (Section V-C: LAD tree chosen over naive Bayes,
// nearest neighbours, neural networks and logistic regression).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string_view>

#include "ml/dataset.h"

namespace dnsnoise {

class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  virtual void train(const Dataset& data) = 0;

  /// P(label == 1 | x).  Must only be called after train().
  virtual double predict_proba(std::span<const double> x) const = 0;

  virtual std::string_view name() const noexcept = 0;
};

/// Produces a fresh untrained classifier (cross-validation trains one per
/// fold).
using ClassifierFactory = std::function<std::unique_ptr<BinaryClassifier>()>;

}  // namespace dnsnoise
