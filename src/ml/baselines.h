// The model-selection comparators from Section V-C: Gaussian naive Bayes,
// k-nearest-neighbours, logistic regression and a small neural network.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.h"
#include "util/rng.h"

namespace dnsnoise {

/// Per-feature z-score standardizer shared by the distance/gradient models.
class Standardizer {
 public:
  void fit(const Dataset& data);
  std::vector<double> transform(std::span<const double> x) const;
  std::size_t dim() const noexcept { return mean_.size(); }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

class GaussianNaiveBayes final : public BinaryClassifier {
 public:
  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::string_view name() const noexcept override { return "naive-bayes"; }

 private:
  struct ClassModel {
    double log_prior = 0.0;
    std::vector<double> mean;
    std::vector<double> var;
  };
  ClassModel models_[2];
  std::size_t dim_ = 0;
};

class KnnClassifier final : public BinaryClassifier {
 public:
  explicit KnnClassifier(std::size_t k = 5) : k_(k) {}
  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::string_view name() const noexcept override { return "knn"; }

 private:
  std::size_t k_;
  Standardizer standardizer_;
  std::vector<double> points_;  // flat standardized features
  std::vector<int> labels_;
  std::size_t dim_ = 0;
};

struct LogisticConfig {
  double learning_rate = 0.5;
  double l2 = 1e-4;
  std::size_t epochs = 400;
};

class LogisticRegression final : public BinaryClassifier {
 public:
  explicit LogisticRegression(LogisticConfig config = {}) : config_(config) {}
  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::string_view name() const noexcept override { return "logistic"; }

 private:
  LogisticConfig config_;
  Standardizer standardizer_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

struct MlpConfig {
  std::size_t hidden = 16;
  double learning_rate = 0.05;
  std::size_t epochs = 300;
  std::uint64_t seed = 17;
};

/// One-hidden-layer tanh network with sigmoid output, SGD-trained.
class Mlp final : public BinaryClassifier {
 public:
  explicit Mlp(MlpConfig config = {}) : config_(config) {}
  void train(const Dataset& data) override;
  double predict_proba(std::span<const double> x) const override;
  std::string_view name() const noexcept override { return "mlp"; }

 private:
  MlpConfig config_;
  Standardizer standardizer_;
  std::size_t dim_ = 0;
  std::vector<double> w1_;  // hidden x dim
  std::vector<double> b1_;  // hidden
  std::vector<double> w2_;  // hidden
  double b2_ = 0.0;
};

}  // namespace dnsnoise
