// Flat dense dataset for binary classification.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace dnsnoise {

class Dataset {
 public:
  explicit Dataset(std::size_t dim) : dim_(dim) {
    if (dim == 0) throw std::invalid_argument("Dataset: dim must be > 0");
  }

  void add(std::span<const double> features, int label) {
    if (features.size() != dim_) {
      throw std::invalid_argument("Dataset: feature dimension mismatch");
    }
    if (label != 0 && label != 1) {
      throw std::invalid_argument("Dataset: label must be 0 or 1");
    }
    data_.insert(data_.end(), features.begin(), features.end());
    labels_.push_back(label);
  }

  std::size_t size() const noexcept { return labels_.size(); }
  std::size_t dim() const noexcept { return dim_; }

  std::span<const double> features(std::size_t i) const {
    return std::span<const double>(data_).subspan(i * dim_, dim_);
  }
  int label(std::size_t i) const { return labels_.at(i); }

  std::size_t positives() const noexcept {
    std::size_t n = 0;
    for (const int y : labels_) n += static_cast<std::size_t>(y);
    return n;
  }

  /// Subset by sample indices.
  Dataset subset(std::span<const std::size_t> indices) const {
    Dataset out(dim_);
    for (const std::size_t i : indices) out.add(features(i), label(i));
    return out;
  }

 private:
  std::size_t dim_;
  std::vector<double> data_;
  std::vector<int> labels_;
};

}  // namespace dnsnoise
