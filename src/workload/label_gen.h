// Label generators: the building blocks of synthetic domain names.
//
// Disposable names (paper Fig. 6) are produced by software composing labels
// level by level — hash digests, counters, metric blobs, fixed protocol
// tags.  A NamePattern is an ordered list of per-level generators (leftmost
// label first) applied on top of a zone apex; it reproduces the structural
// property the classifier keys on: same depth, algorithmic label sets.
//
// Every generator offers two forms drawing the SAME RNG sequence: generate()
// returns a fresh string, append_to() appends into a caller-owned buffer so
// the steady-state sampling path reuses capacity and never allocates.
#pragma once

#include <charconv>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dnsnoise {

namespace detail {

/// Appends the decimal rendering of `value` (allocation-free).
inline void append_decimal(std::string& out, std::uint64_t value) {
  char buf[20];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, result.ptr);
}

}  // namespace detail

/// Generates one label of a domain name.
class LabelGenerator {
 public:
  virtual ~LabelGenerator() = default;
  virtual std::string generate(Rng& rng) const = 0;
  /// Appends one label to `out`, consuming exactly the same RNG draws as
  /// generate().
  virtual void append_to(std::string& out, Rng& rng) const {
    out += generate(rng);
  }
};

/// Constant label ("p2", "avqs", "device").
class FixedLabel final : public LabelGenerator {
 public:
  explicit FixedLabel(std::string value) : value_(std::move(value)) {}
  std::string generate(Rng&) const override { return value_; }
  void append_to(std::string& out, Rng&) const override { out += value_; }

 private:
  std::string value_;
};

/// Uniform random string over an alphabet (hex digests, base32/36 hashes).
class RandomStringLabel final : public LabelGenerator {
 public:
  RandomStringLabel(std::string alphabet, std::size_t length)
      : alphabet_(std::move(alphabet)), length_(length) {}

  static std::unique_ptr<RandomStringLabel> hex(std::size_t length) {
    return std::make_unique<RandomStringLabel>("0123456789abcdef", length);
  }
  static std::unique_ptr<RandomStringLabel> base32(std::size_t length) {
    return std::make_unique<RandomStringLabel>("abcdefghijklmnopqrstuvwxyz234567",
                                               length);
  }
  static std::unique_ptr<RandomStringLabel> base36(std::size_t length) {
    return std::make_unique<RandomStringLabel>(
        "abcdefghijklmnopqrstuvwxyz0123456789", length);
  }

  std::string generate(Rng& rng) const override {
    return rng.string_over(alphabet_, length_);
  }
  void append_to(std::string& out, Rng& rng) const override {
    // Same per-character draws as Rng::string_over.
    for (std::size_t i = 0; i < length_; ++i) {
      out.push_back(alphabet_[rng.below(alphabet_.size())]);
    }
  }

 private:
  std::string alphabet_;
  std::size_t length_;
};

/// Random decimal counter in [lo, hi] (device IDs, experiment counters).
class CounterLabel final : public LabelGenerator {
 public:
  CounterLabel(std::uint64_t lo, std::uint64_t hi) : lo_(lo), hi_(hi) {}
  std::string generate(Rng& rng) const override {
    return std::to_string(lo_ + rng.below(hi_ - lo_ + 1));
  }
  void append_to(std::string& out, Rng& rng) const override {
    detail::append_decimal(out, lo_ + rng.below(hi_ - lo_ + 1));
  }

 private:
  std::uint64_t lo_;
  std::uint64_t hi_;
};

/// One label drawn uniformly from a fixed small set ("i1"/"i2"/"s1",
/// "ds"/"v4").
class ChoiceLabel final : public LabelGenerator {
 public:
  explicit ChoiceLabel(std::vector<std::string> choices)
      : choices_(std::move(choices)) {}
  std::string generate(Rng& rng) const override {
    return choices_[rng.below(choices_.size())];
  }
  void append_to(std::string& out, Rng& rng) const override {
    out += choices_[rng.below(choices_.size())];
  }

 private:
  std::vector<std::string> choices_;
};

/// eSoft-style telemetry blob: "<tag>-<num>[-<num>...][-0-p-<num>]".
class MetricsLabel final : public LabelGenerator {
 public:
  /// `tag`: metric name ("load", "up", "mem", "swap");
  /// `fields`: how many dash-separated numbers follow;
  /// `percent_suffix`: whether to append "-0-p-<0..99>".
  MetricsLabel(std::string tag, int fields, bool percent_suffix)
      : tag_(std::move(tag)), fields_(fields), percent_(percent_suffix) {}

  std::string generate(Rng& rng) const override;
  void append_to(std::string& out, Rng& rng) const override;

 private:
  std::string tag_;
  int fields_;
  bool percent_;
};

/// Human-chosen hostname from a service dictionary ("www", "mail",
/// "api3", ...) — the low-entropy contrast class.
class HumanLabel final : public LabelGenerator {
 public:
  /// `variants`: how many distinct labels this instance can emit.
  explicit HumanLabel(std::size_t variants = 32);
  std::string generate(Rng& rng) const override;
  void append_to(std::string& out, Rng& rng) const override {
    out += pool_[rng.below(pool_.size())];
  }

 private:
  std::vector<std::string> pool_;
};

/// Reversed-IPv4 DNSBL query: emits four octet labels in one go is not
/// possible per-label, so this emits a single label; DNSBL patterns use
/// four OctetLabel levels.
class OctetLabel final : public LabelGenerator {
 public:
  std::string generate(Rng& rng) const override {
    return std::to_string(rng.below(256));
  }
  void append_to(std::string& out, Rng& rng) const override {
    detail::append_decimal(out, rng.below(256));
  }
};

/// Deterministic human hostname for index i ("www", "mail", ..., "www2").
std::string human_hostname(std::size_t i);

/// Appends human_hostname(i) without allocating.
void human_hostname_into(std::size_t i, std::string& out);

/// Deterministic pronounceable pseudo-word for index i.  Distinct indices
/// yield distinct words (base-syllable encoding), padded to `min_len`.
std::string pseudo_word(std::uint64_t i, std::size_t min_len = 5);

/// Appends pseudo_word(i, min_len) without allocating.
void pseudo_word_into(std::uint64_t i, std::string& out,
                      std::size_t min_len = 5);

/// An ordered list of per-level generators, leftmost label first.
class NamePattern {
 public:
  NamePattern() = default;
  explicit NamePattern(std::vector<std::unique_ptr<LabelGenerator>> levels)
      : levels_(std::move(levels)) {}

  void add(std::unique_ptr<LabelGenerator> level) {
    levels_.push_back(std::move(level));
  }

  std::size_t depth() const noexcept { return levels_.size(); }

  /// Renders the child part (no apex), e.g. "p2.a22a43lt5rwfg.191742.i1.v4".
  std::string generate(Rng& rng) const;

  /// Appends what generate() would return (same RNG draws, no allocation
  /// once `out` has capacity).
  void generate_into(std::string& out, Rng& rng) const;

 private:
  std::vector<std::unique_ptr<LabelGenerator>> levels_;
};

}  // namespace dnsnoise
