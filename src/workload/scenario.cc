#include "workload/scenario.h"

#include <cmath>
#include <span>

namespace dnsnoise {

namespace {

struct DateInfo {
  ScenarioDate date;
  const char* name;
  std::int64_t day_index;  // days since 02/01/2011
};

constexpr std::array<DateInfo, 6> kDates = {{
    {ScenarioDate::kFeb01, "02/01/2011", 0},
    {ScenarioDate::kSep02, "09/02/2011", 213},
    {ScenarioDate::kSep13, "09/13/2011", 224},
    {ScenarioDate::kNov14, "11/14/2011", 286},
    {ScenarioDate::kNov29, "11/29/2011", 301},
    {ScenarioDate::kDec30, "12/30/2011", 332},
}};

const DateInfo& date_info(ScenarioDate date) noexcept {
  return kDates[static_cast<std::size_t>(date)];
}

/// One (ttl, probability) policy table row.
struct TtlRow {
  std::uint32_t ttl;
  double p;
};

// Fig. 14, February: 0.8% TTL=0, 28% TTL=1, the rest spread upward.
constexpr TtlRow kTtlFeb[] = {
    {0, 0.008}, {1, 0.45},  {30, 0.10},    {60, 0.08},
    {300, 0.15}, {3600, 0.12}, {21600, 0.05}, {86400, 0.042},
};
// Fig. 14, December: the mode has moved to 300s.
constexpr TtlRow kTtlDec[] = {
    {0, 0.005}, {1, 0.04},  {30, 0.05},   {60, 0.10},
    {300, 0.55}, {900, 0.08}, {3600, 0.12}, {86400, 0.055},
};

std::uint32_t sample_ttl_table(Rng& rng, std::span<const TtlRow> table) {
  double total = 0.0;
  for (const TtlRow& row : table) total += row.p;
  double u = rng.uniform() * total;
  for (const TtlRow& row : table) {
    if (u < row.p) return row.ttl;
    u -= row.p;
  }
  return table.back().ttl;
}

/// Per-date knobs.  Volume shares are fractions of daily query volume;
/// they were calibrated so the *unique-name* shares land in the paper's
/// measured bands (see EXPERIMENTS.md).
struct DateParams {
  double progress;
  std::size_t disposable_zone_count;
  double disposable_share;  // all disposable tenants, incl. the big one
  double flagship_fraction; // share of disposable volume owned by the
                            // Google-style experiment zone
  double nx_share;
  double google_share;
  double akamai_share;
  double popular_share;
  double other_share;
};

DateParams params_for(ScenarioDate date, double disposable_multiplier) {
  const double t = scenario_progress(date);
  DateParams p;
  p.progress = t;
  p.disposable_zone_count = static_cast<std::size_t>(350.0 + 450.0 * t);
  p.disposable_share = (0.038 + 0.041 * t) * disposable_multiplier;
  p.flagship_fraction = 0.35 + 0.35 * t;
  p.nx_share = 0.043 + 0.045 * t;
  p.akamai_share = 0.14;
  p.popular_share = 0.22;
  p.other_share = 0.17;
  // Google's user-facing traffic absorbs the remaining volume.
  p.google_share = 1.0 - p.disposable_share - p.nx_share - p.akamai_share -
                   p.popular_share - p.other_share;
  return p;
}

/// A disposable zone under construction.
struct ZoneBuild {
  DisposableZoneConfig config;
  NamePattern pattern;
  std::string archetype;
};

constexpr const char* kZoneTlds[] = {"com", "net", "org", "com", "net"};

ZoneBuild make_disposable_zone(std::size_t i, std::uint64_t seed,
                               double progress) {
  // Stable per-zone attributes (apex, pattern, pools) come from a seed that
  // depends only on the zone index; the TTL policy drifts with the date.
  Rng zone_rng(mix64(seed ^ (0xd15005ab1eULL + i * 0x9e37ULL)));
  Rng ttl_rng(mix64(seed ^ (0x771ULL + i) ^
                    static_cast<std::uint64_t>(progress * 4096.0)));
  const std::string vendor =
      pseudo_word(1'000'000 + i * 13) + "." + kZoneTlds[i % std::size(kZoneTlds)];

  ZoneBuild build;
  build.config.ttl = sample_ttl_table(
      ttl_rng, ttl_rng.chance(progress) ? std::span<const TtlRow>(kTtlDec)
                                        : std::span<const TtlRow>(kTtlFeb));
  build.config.repeat_probability = zone_rng.uniform(0.06, 0.30);
  build.config.dnssec_signed = (i % 8) == 0;
  static constexpr std::size_t kPools[] = {1, 2, 4, 8, 16, 32};
  build.config.rdata_pool = kPools[zone_rng.below(std::size(kPools))];

  switch (i % 5) {
    case 0: {  // anti-virus / file-reputation lookups (McAfee-style)
      build.archetype = "reputation";
      build.config.apex = "avqs." + vendor;
      build.pattern.add(std::make_unique<FixedLabel>("0"));
      build.pattern.add(std::make_unique<ChoiceLabel>(
          std::vector<std::string>{"0", "1"}));
      build.pattern.add(RandomStringLabel::hex(2));
      build.pattern.add(RandomStringLabel::base32(26));
      break;
    }
    case 1: {  // device telemetry over DNS (eSoft-style)
      build.archetype = "telemetry";
      build.config.apex = "device.trans.manage." + vendor;
      build.pattern.add(std::make_unique<MetricsLabel>("load", 0, true));
      build.pattern.add(std::make_unique<MetricsLabel>("mem", 2, true));
      build.pattern.add(std::make_unique<CounterLabel>(1'000'000, 9'999'999));
      build.pattern.add(
          std::make_unique<CounterLabel>(1'000'000'000, 3'999'999'999));
      break;
    }
    case 2: {  // measurement experiment (Google-IPv6-style)
      build.archetype = "experiment";
      build.config.apex = "exp.l." + vendor;
      build.config.rr_per_answer = 2;
      build.pattern.add(std::make_unique<FixedLabel>("p2"));
      build.pattern.add(RandomStringLabel::base36(13));
      build.pattern.add(RandomStringLabel::base36(16));
      build.pattern.add(std::make_unique<CounterLabel>(100'000, 999'999));
      build.pattern.add(std::make_unique<ChoiceLabel>(
          std::vector<std::string>{"i1", "i2", "s1"}));
      build.pattern.add(std::make_unique<ChoiceLabel>(
          std::vector<std::string>{"ds", "v4"}));
      break;
    }
    case 3: {  // DNS blocklist lookups (reversed-IP labels)
      build.archetype = "dnsbl";
      build.config.apex = "zen." + vendor;
      for (int level = 0; level < 4; ++level) {
        build.pattern.add(std::make_unique<OctetLabel>());
      }
      break;
    }
    default: {  // cookie/analytics tracker beacons
      build.archetype = "tracker";
      build.config.apex = "metrics." + vendor;
      build.config.rr_per_answer = 2;
      build.pattern.add(RandomStringLabel::hex(16));
      break;
    }
  }
  return build;
}

constexpr const char* kAkamaiApexes[] = {
    "g.akamai.net",
    "a.akamai.net",
    "e.akamaiedge.net",
    "s.edgesuite.net",
};

constexpr const char* kAkamai2Lds[] = {
    "akamai.com",    "akamai.net",  "akamaiedge.net", "akamaihd.net",
    "edgesuite.net", "akamaitech.net", "akadns.net",  "akam.net",
};

}  // namespace

std::string_view scenario_date_name(ScenarioDate date) noexcept {
  return date_info(date).name;
}

std::int64_t scenario_day_index(ScenarioDate date) noexcept {
  return date_info(date).day_index;
}

double scenario_progress(ScenarioDate date) noexcept {
  return static_cast<double>(date_info(date).day_index) /
         static_cast<double>(kDates.back().day_index);
}

std::uint32_t sample_disposable_ttl(Rng& rng, double progress) {
  return sample_ttl_table(rng, rng.chance(progress)
                                   ? std::span<const TtlRow>(kTtlDec)
                                   : std::span<const TtlRow>(kTtlFeb));
}

bool GroundTruth::is_disposable_name(const DomainName& name) const {
  for (std::size_t k = name.label_count(); k >= 2; --k) {
    if (disposable_apexes.contains(std::string(name.nld_view(k)))) {
      return true;
    }
  }
  return false;
}

Scenario::Scenario(ScenarioDate date, const ScenarioScale& scale)
    : date_(date), scale_(scale) {
  TrafficConfig traffic_config;
  traffic_config.queries_per_day = scale.queries_per_day;
  traffic_config.client_count = scale.client_count;
  traffic_config.seed = scale.seed ^ (static_cast<std::uint64_t>(date) << 32) ^
                        mix64(0x7aff1c ^ scale.traffic_stream);
  traffic_ = std::make_unique<TrafficGenerator>(traffic_config);
  build();
}

bool Scenario::is_google_name(const DomainName& name) {
  return name.is_within("google.com");
}

bool Scenario::is_akamai_name(const DomainName& name) {
  for (const char* apex : kAkamai2Lds) {
    if (name.is_within(apex)) return true;
  }
  return false;
}

void Scenario::build() {
  const DateParams params = params_for(date_, scale_.disposable_traffic_multiplier);
  Rng rng(scale_.seed);

  // --- Google: a huge popular tenant plus its disposable experiment zone.
  {
    PopularZoneConfig google;
    google.apex = "google.com";
    google.hostnames = 64;
    google.zipf_s = 1.0;
    google.ttl = 300;
    google.aaaa_fraction = 0.10;
    google.dnssec_signed = true;
    auto model = std::make_shared<PopularZoneModel>(google);
    model->install(authority_);
    traffic_->add_model(std::move(model), params.google_share);
  }
  if (params.disposable_share > 0.0) {
    DisposableZoneConfig exp;
    exp.apex = "ipv6-exp.l.google.com";
    // The flagship operator's documented policy drift: tiny TTLs while the
    // experiment launched, 300s once it ran at scale (Fig. 14's mode).
    exp.ttl = params.progress < 0.3 ? 60 : 300;
    exp.dnssec_signed = true;
    exp.rdata_pool = 8;
    exp.repeat_probability = 0.12;
    // The experiment ramps up over the year: by December every one-time
    // name carries a 4-record round-robin set (drives the RR-share growth).
    exp.rr_per_answer =
        2 + static_cast<std::size_t>(2.0 * params.progress + 0.5);
    NamePattern pattern;
    pattern.add(std::make_unique<FixedLabel>("p2"));
    pattern.add(RandomStringLabel::base36(13));
    pattern.add(RandomStringLabel::base36(16));
    pattern.add(std::make_unique<CounterLabel>(100'000, 999'999));
    pattern.add(std::make_unique<ChoiceLabel>(
        std::vector<std::string>{"i1", "i2", "s1"}));
    pattern.add(std::make_unique<ChoiceLabel>(
        std::vector<std::string>{"ds", "v4"}));
    auto model = std::make_shared<DisposableZoneModel>(std::move(exp),
                                                       std::move(pattern));
    model->install(authority_);
    truth_.disposable_zones.push_back(
        {model->name(), model->name_depth(), "experiment"});
    truth_.disposable_apexes.insert(model->name());
    const double flagship_weight = params.disposable_share *
                                   params.flagship_fraction *
                                   scale_.flagship_boost;
    traffic_->add_model(std::move(model), flagship_weight);
  }

  // --- Akamai: CDN shard zones.
  for (std::size_t i = 0; i < std::size(kAkamaiApexes); ++i) {
    CdnZoneConfig cdn;
    cdn.apex = kAkamaiApexes[i];
    cdn.shards = 1200 + 400 * i;
    cdn.zipf_s = 0.95 + 0.15 * static_cast<double>(i);
    cdn.ttl = 60 + 30 * static_cast<std::uint32_t>(i);
    auto model = std::make_shared<CdnZoneModel>(cdn);
    model->install(authority_);
    traffic_->add_model(std::move(model),
                        params.akamai_share / std::size(kAkamaiApexes));
  }

  // --- Alexa-style popular zones (the non-disposable labeled class).
  constexpr std::size_t kPopularZones = 400;
  popular_apexes_.push_back("google.com");
  {
    static constexpr std::uint32_t kPopularTtls[] = {60, 300, 300, 900, 3600};
    // Zipf weights across the popular zones, bulk-normalized to the share.
    double total_weight = 0.0;
    for (std::size_t i = 0; i < kPopularZones; ++i) {
      total_weight += 1.0 / std::pow(static_cast<double>(i + 1), 0.9);
    }
    for (std::size_t i = 0; i < kPopularZones; ++i) {
      PopularZoneConfig popular;
      popular.apex = pseudo_word(500'000 + i * 7) + "." +
                     kZoneTlds[i % std::size(kZoneTlds)];
      popular.hostnames = 6 + rng.below(20);
      popular.zipf_s = 1.2;
      popular.ttl = kPopularTtls[rng.below(std::size(kPopularTtls))];
      popular.aaaa_fraction = 0.03;
      popular.dnssec_signed = (i % 10) == 0;
      auto model = std::make_shared<PopularZoneModel>(popular);
      model->install(authority_);
      popular_apexes_.push_back(popular.apex);
      const double weight = params.popular_share / total_weight /
                            std::pow(static_cast<double>(i + 1), 0.9);
      traffic_->add_model(std::move(model), weight);
    }
  }

  // --- The long tail of small sites.
  {
    OtherSitesConfig other;
    other.sites = static_cast<std::size_t>(80'000 * scale_.population_scale);
    other.zipf_s = 0.95;
    other.ttl = 3600;
    other.seed = scale_.seed ^ 0x517e5ULL;
    auto model = std::make_shared<OtherSitesModel>(other);
    model->install(authority_);
    traffic_->add_model(std::move(model), params.other_share);
  }

  // --- NXDOMAIN junk.
  {
    auto model = std::make_shared<NxdomainModel>(NxdomainConfig{});
    model->install(authority_);
    traffic_->add_model(std::move(model), params.nx_share);
  }

  // --- The disposable-zone population (minus the flagship, added above).
  if (params.disposable_share > 0.0) {
    const auto zone_count = static_cast<std::size_t>(
        static_cast<double>(params.disposable_zone_count) *
        scale_.population_scale);
    const double bulk_share =
        params.disposable_share * (1.0 - params.flagship_fraction);
    double total_weight = 0.0;
    for (std::size_t i = 0; i < zone_count; ++i) {
      total_weight += 1.0 / std::pow(static_cast<double>(i + 1), 0.5);
    }
    for (std::size_t i = 0; i < zone_count; ++i) {
      ZoneBuild build =
          make_disposable_zone(i, scale_.seed, params.progress);
      auto model = std::make_shared<DisposableZoneModel>(
          std::move(build.config), std::move(build.pattern));
      model->install(authority_);
      truth_.disposable_zones.push_back(
          {model->name(), model->name_depth(), build.archetype});
      truth_.disposable_apexes.insert(model->name());
      const double weight =
          bulk_share / total_weight / std::pow(static_cast<double>(i + 1), 0.5);
      traffic_->add_model(std::move(model), weight);
    }
  }
}

}  // namespace dnsnoise
