#include "workload/zone_model.h"

#include <algorithm>

namespace dnsnoise {

namespace {

/// Deterministic pooled rdata value `idx` for a zone: disposable operators
/// answer from a small set of signal values (e.g. McAfee's 127.0.0.0/16
/// classification codes), so rdata cardinality is far below name
/// cardinality.
std::string pooled_rdata(const std::string& apex, std::size_t idx,
                         RRType type) {
  const std::string key = apex + "#" + std::to_string(idx);
  return type == RRType::AAAA ? synthetic_aaaa_rdata(key)
                              : synthetic_a_rdata(key);
}

std::size_t pool_index(std::string_view qname, std::size_t pool) {
  return pool == 0 ? 0
                   : static_cast<std::size_t>(mix64(fnv1a64(qname)) % pool);
}

}  // namespace

// --------------------------------------------------------------------------
// DisposableZoneModel

DisposableZoneModel::DisposableZoneModel(DisposableZoneConfig config,
                                         NamePattern pattern)
    : config_(std::move(config)),
      pattern_(std::move(pattern)),
      apex_name_(config_.apex) {
  recent_.reserve(config_.recent_window);
}

std::size_t DisposableZoneModel::name_depth() const noexcept {
  return apex_name_.label_count() + pattern_.depth();
}

QuerySpec DisposableZoneModel::sample_query(Rng& rng) {
  QuerySpec out;
  sample_query_into(out, rng);
  return out;
}

void DisposableZoneModel::sample_query_into(QuerySpec& out, Rng& rng) {
  out.qtype = config_.qtype;
  // Occasionally the generating software re-emits a recent name — the
  // paper notes disposable names are "not strictly looked up once".
  if (!recent_.empty() && rng.chance(config_.repeat_probability)) {
    out.qname = recent_[rng.below(recent_.size())];
    return;
  }
  out.qname.clear();
  pattern_.generate_into(out.qname, rng);
  out.qname.push_back('.');
  out.qname += config_.apex;
  if (config_.recent_window > 0) {
    if (recent_.size() < config_.recent_window) {
      recent_.push_back(out.qname);
    } else {
      recent_[recent_next_] = out.qname;  // copy-assign reuses ring capacity
      recent_next_ = (recent_next_ + 1) % config_.recent_window;
    }
  }
}

void DisposableZoneModel::install(SyntheticAuthority& authority) const {
  const DisposableZoneConfig cfg = config_;
  authority.register_zone(apex_name_, [cfg](const Question& q, SimTime) {
    AuthorityAnswer answer;
    answer.rcode = RCode::NoError;
    answer.disposable_zone = true;
    answer.dnssec_signed = cfg.dnssec_signed;
    const std::size_t idx = pool_index(q.name.text(), cfg.rdata_pool);
    // A round-robin set: rr_per_answer distinct records from the rdata
    // pool.  Pooled rdata keeps zone-level rdata cardinality low (the
    // property §VI-C's wildcard folding exploits) while every record is
    // still a distinct (name, rdata) RR because the name is one-time.
    const std::size_t records =
        std::max<std::size_t>(1, std::min(cfg.rr_per_answer, cfg.rdata_pool));
    const RRType type = q.type == RRType::AAAA ? RRType::AAAA : RRType::A;
    for (std::size_t j = 0; j < records; ++j) {
      ResourceRecord rr;
      rr.name = q.name;
      rr.type = type;
      rr.ttl = cfg.ttl;
      rr.rdata = pooled_rdata(cfg.apex, (idx + j) % cfg.rdata_pool, type);
      answer.answers.push_back(std::move(rr));
    }
    return answer;
  });
}

// --------------------------------------------------------------------------
// PopularZoneModel

PopularZoneModel::PopularZoneModel(PopularZoneConfig config)
    : config_(std::move(config)),
      popularity_(std::max<std::size_t>(config_.hostnames, 1), config_.zipf_s) {
  hosts_.reserve(config_.hostnames);
  // Rank 0 is the bare apex (users hit "google.com" itself most).
  hosts_.push_back(config_.apex);
  for (std::size_t i = 1; i < config_.hostnames; ++i) {
    hosts_.push_back(human_hostname(i - 1) + "." + config_.apex);
  }
}

QuerySpec PopularZoneModel::sample_query(Rng& rng) {
  QuerySpec out;
  sample_query_into(out, rng);
  return out;
}

void PopularZoneModel::sample_query_into(QuerySpec& out, Rng& rng) {
  const std::size_t rank = popularity_.sample(rng);
  out.qtype = rng.chance(config_.aaaa_fraction) ? RRType::AAAA : RRType::A;
  out.qname = hosts_[std::min(rank, hosts_.size() - 1)];
}

void PopularZoneModel::install(SyntheticAuthority& authority) const {
  authority.register_zone(
      DomainName(config_.apex),
      SyntheticAuthority::make_flat_a_zone(config_.ttl,
                                           config_.dnssec_signed));
}

// --------------------------------------------------------------------------
// CdnZoneModel

CdnZoneModel::CdnZoneModel(CdnZoneConfig config)
    : config_(std::move(config)),
      popularity_(std::max<std::size_t>(config_.shards, 1), config_.zipf_s) {}

QuerySpec CdnZoneModel::sample_query(Rng& rng) {
  QuerySpec out;
  sample_query_into(out, rng);
  return out;
}

void CdnZoneModel::sample_query_into(QuerySpec& out, Rng& rng) {
  const std::size_t shard = popularity_.sample(rng);
  out.qtype = RRType::A;
  out.qname.clear();
  out.qname.push_back('e');
  detail::append_decimal(out.qname, shard);
  out.qname.push_back('.');
  out.qname += config_.apex;
}

void CdnZoneModel::install(SyntheticAuthority& authority) const {
  authority.register_zone(DomainName(config_.apex),
                          SyntheticAuthority::make_flat_a_zone(config_.ttl));
}

// --------------------------------------------------------------------------
// OtherSitesModel

OtherSitesModel::OtherSitesModel(OtherSitesConfig config)
    : config_(std::move(config)),
      popularity_(std::max<std::size_t>(config_.sites, 1), config_.zipf_s),
      site_set_(std::make_shared<SiteSet>()) {
  site_set_->reserve(config_.sites);
  for (std::size_t i = 0; i < config_.sites; ++i) {
    site_set_->insert(site_domain(i));
  }
}

void OtherSitesModel::append_site_domain(std::size_t i,
                                         std::string& out) const {
  pseudo_word_into(mix64(config_.seed ^ i) % (1u << 30), out);
  out.push_back('.');
  out += config_.tlds[i % config_.tlds.size()];
}

std::string OtherSitesModel::site_domain(std::size_t i) const {
  std::string out;
  append_site_domain(i, out);
  return out;
}

QuerySpec OtherSitesModel::sample_query(Rng& rng) {
  QuerySpec out;
  sample_query_into(out, rng);
  return out;
}

void OtherSitesModel::sample_query_into(QuerySpec& out, Rng& rng) {
  const std::size_t site = popularity_.sample(rng);
  // Host index skews hard toward the site front page / www.
  const auto host = static_cast<std::size_t>(
      std::min<std::uint64_t>(rng.geometric(0.65),
                              config_.max_hosts_per_site - 1));
  out.qtype = RRType::A;
  out.qname.clear();
  if (host == 0) {
    if (!rng.chance(0.5)) out.qname += "www.";
  } else {
    human_hostname_into(host, out.qname);
    out.qname.push_back('.');
  }
  append_site_domain(site, out.qname);
}

void OtherSitesModel::install(SyntheticAuthority& authority) const {
  for (const std::string& tld : config_.tlds) {
    const DomainName tld_name(tld);
    const std::size_t site_labels = tld_name.label_count() + 1;
    auto sites = site_set_;
    const std::uint32_t ttl = config_.ttl;
    authority.register_zone(
        tld_name, [sites, site_labels, ttl](const Question& q, SimTime) {
          AuthorityAnswer answer;  // defaults to NXDOMAIN
          if (q.name.label_count() < site_labels) return answer;
          if (!sites->contains(q.name.nld_view(site_labels))) return answer;
          answer.rcode = RCode::NoError;
          ResourceRecord rr;
          rr.name = q.name;
          rr.type = q.type == RRType::AAAA ? RRType::AAAA : RRType::A;
          rr.ttl = ttl;
          rr.rdata = rr.type == RRType::AAAA
                         ? synthetic_aaaa_rdata(q.name.text())
                         : synthetic_a_rdata(q.name.text());
          answer.answers.push_back(std::move(rr));
          return answer;
        });
  }
}

// --------------------------------------------------------------------------
// NxdomainModel

NxdomainModel::NxdomainModel(NxdomainConfig config)
    : config_(std::move(config)) {}

QuerySpec NxdomainModel::sample_query(Rng& rng) {
  QuerySpec out;
  sample_query_into(out, rng);
  return out;
}

void NxdomainModel::sample_query_into(QuerySpec& out, Rng& rng) {
  const std::size_t len =
      config_.min_len + rng.below(config_.max_len - config_.min_len + 1);
  out.qtype = RRType::A;
  std::string& qname = out.qname;
  qname.clear();
  // Same per-character draws as Rng::string_over.
  constexpr std::string_view kAlphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789";
  for (std::size_t i = 0; i < len; ++i) {
    qname.push_back(kAlphabet[rng.below(kAlphabet.size())]);
  }
  // Junk 2LDs never collide with OtherSites' digit-free pseudo-words.
  // (Identical statement to the historical one: the RHS draw sequences
  // before the index draw.)
  qname[rng.below(qname.size())] = static_cast<char>('0' + rng.below(10));
  qname.push_back('.');
  qname += config_.tlds[rng.below(config_.tlds.size())];
  if (rng.chance(config_.www_fraction)) qname.insert(0, "www.");
}

}  // namespace dnsnoise
