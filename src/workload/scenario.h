// Scenario presets: one per measurement date in the paper's 2011 campaign.
//
// Each scenario wires an authority + traffic generator that reproduce the
// *distributional* properties the paper measured on that date — disposable
// traffic share, zone population, TTL policy mix, NXDOMAIN load — scaled
// down from Comcast volumes to laptop volumes (see DESIGN.md §2).  Later
// dates strictly extend earlier ones: the disposable-zone master list is
// fixed, and date t activates a growing prefix of it, so "new zones appear
// over the year" holds by construction.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "resolver/authority.h"
#include "workload/traffic_gen.h"
#include "workload/zone_model.h"

namespace dnsnoise {

/// The six fpDNS measurement dates the paper's growth series uses (§V-C).
enum class ScenarioDate : std::uint8_t {
  kFeb01 = 0,
  kSep02,
  kSep13,
  kNov14,
  kNov29,
  kDec30,
};

inline constexpr std::array<ScenarioDate, 6> kAllScenarioDates = {
    ScenarioDate::kFeb01,  ScenarioDate::kSep02, ScenarioDate::kSep13,
    ScenarioDate::kNov14, ScenarioDate::kNov29, ScenarioDate::kDec30,
};

std::string_view scenario_date_name(ScenarioDate date) noexcept;

/// Day offset since 02/01/2011.
std::int64_t scenario_day_index(ScenarioDate date) noexcept;

/// Position of the date within the measurement year, in [0, 1].
double scenario_progress(ScenarioDate date) noexcept;

/// Samples a disposable-zone TTL from the date-dependent policy mix
/// (Fig. 14: February skews to TTL 0/1s; December's mode is 300s).
std::uint32_t sample_disposable_ttl(Rng& rng, double progress);

/// Scale knobs: shrink/grow the synthetic ISP.
struct ScenarioScale {
  std::uint64_t queries_per_day = 400'000;
  std::size_t client_count = 20'000;
  /// Multiplies the disposable-zone population and site population.
  double population_scale = 1.0;
  std::uint64_t seed = 2011;
  /// Varies the query stream without changing the zone population (used by
  /// cache-warmup days and multi-day runs).
  std::uint64_t traffic_stream = 0;
  /// Scales the disposable traffic share (0 disables disposable tenants
  /// entirely); the slack is absorbed by ordinary popular traffic.  Drives
  /// the Section VI-A/VI-B ablations.
  double disposable_traffic_multiplier = 1.0;
  /// Scales only the flagship (Google-style) experiment zone's traffic,
  /// with the delta absorbed by Google's ordinary traffic.  Models the
  /// experiment ramping up *within* a multi-day window (Figs. 5/15).
  double flagship_boost = 1.0;
};

/// Ground truth about the synthetic namespace (never shown to the
/// classifier; used for labeling, evaluation, and figure series).
struct GroundTruth {
  struct ZoneInfo {
    std::string apex;        // zone under which names are generated
    std::size_t name_depth;  // label count of generated names
    std::string archetype;   // "reputation", "telemetry", ...
  };

  std::vector<ZoneInfo> disposable_zones;
  std::unordered_set<std::string> disposable_apexes;

  /// True if `name` falls under any disposable zone apex.
  bool is_disposable_name(const DomainName& name) const;
};

class Scenario {
 public:
  Scenario(ScenarioDate date, const ScenarioScale& scale = {});

  ScenarioDate date() const noexcept { return date_; }
  const ScenarioScale& scale() const noexcept { return scale_; }

  TrafficGenerator& traffic() noexcept { return *traffic_; }
  const SyntheticAuthority& authority() const noexcept { return authority_; }
  /// Mutable authority access for callers that extend the namespace before
  /// serving it (engine/serve.h authority hooks, CI smoke zones).  Zones
  /// must be registered before any cluster starts resolving — the cluster
  /// reads the authority concurrently and lock-free.
  SyntheticAuthority& authority_mut() noexcept { return authority_; }
  const GroundTruth& truth() const noexcept { return truth_; }

  /// Apexes of the Alexa-style popular zones (the non-disposable labeled
  /// class).
  const std::vector<std::string>& popular_apexes() const noexcept {
    return popular_apexes_;
  }

  /// Tenant attribution for the per-tenant figure series (Figs. 2, 5).
  static bool is_google_name(const DomainName& name);
  static bool is_akamai_name(const DomainName& name);

 private:
  ScenarioDate date_;
  ScenarioScale scale_;
  SyntheticAuthority authority_;
  std::unique_ptr<TrafficGenerator> traffic_;
  GroundTruth truth_;
  std::vector<std::string> popular_apexes_;

  void build();
};

}  // namespace dnsnoise
