// ISP client-population traffic generator.
//
// Draws a time-ordered stream of (timestamp, client, query) triples for a
// simulated day: total volume split over hours by the diurnal profile,
// clients drawn from a Zipf activity distribution (a few heavy households,
// a long tail of light ones), and each query delegated to a zone model
// picked by traffic weight.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/trace.h"
#include "util/rng.h"
#include "util/zipf.h"
#include "workload/diurnal.h"
#include "workload/zone_model.h"

namespace dnsnoise::obs {
class Counter;
class MetricsRegistry;
}  // namespace dnsnoise::obs

namespace dnsnoise {

struct TrafficConfig {
  std::uint64_t queries_per_day = 400'000;
  std::size_t client_count = 20'000;
  double client_zipf_s = 0.8;
  DiurnalProfile diurnal{};
  std::uint64_t seed = 42;
};

class TrafficGenerator {
 public:
  explicit TrafficGenerator(const TrafficConfig& config);

  /// Adds a tenant with a relative traffic weight (> 0).
  void add_model(std::shared_ptr<ZoneModel> model, double weight);

  std::size_t model_count() const noexcept { return models_.size(); }
  const ZoneModel& model(std::size_t i) const { return *models_.at(i); }

  using QuerySink = std::function<void(SimTime ts, std::uint64_t client_id,
                                       const QuerySpec& query)>;

  /// Generates one day of queries in non-decreasing timestamp order.
  void run_day(std::int64_t day, const QuerySink& sink);

  /// One shard of a client-hash partitioned day (see util/rng.h shard_of).
  struct ShardSpec {
    std::size_t count = 1;  // total shards (RDNS server count)
    std::size_t index = 0;  // this shard, in [0, count)
  };

  /// Generates the subset of run_day's stream whose clients hash to
  /// `shard.index` (shard_of(client, shard.count)).  Each query slot derives
  /// its own RNG stream from (day, slot), so a slot's timestamp, client and
  /// query are identical no matter which shard — or run_day-equivalent
  /// single stream — draws them.  Concatenating all shards therefore yields
  /// a client-partition of one fixed day; it is NOT the same stream run_day
  /// produces from its single sequential RNG.
  void run_day_shard(std::int64_t day, const ShardSpec& shard,
                     const QuerySink& sink);

  /// Stable client ID for an activity rank (exposed for tests).
  std::uint64_t client_id_for_rank(std::size_t rank) const noexcept;

  /// Opt-in observability (DESIGN.md §10): registers the workload.* stage
  /// counters — queries_generated, shard_slots_skipped, days_generated.
  /// `metrics` must outlive the generator; null detaches.  Counting costs
  /// one branch + relaxed atomic per query; nothing when detached.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Opt-in event tracing (DESIGN.md §12): records one workload.day span
  /// per generated (shard-)day plus head-sampled workload.sample spans
  /// around query generation (label = qname) into the collector's
  /// workload stream for `shard`.  Sampling is phase-seeded from the
  /// generator seed and counts emitted queries, so the traced subset
  /// mirrors the cluster's for the same shard.  `trace` must outlive the
  /// generator; null detaches.
  void set_trace(obs::TraceCollector* trace, std::uint32_t shard = 0);

 private:
  TrafficConfig config_;
  Rng rng_;
  ZipfSampler client_activity_;
  std::vector<std::shared_ptr<ZoneModel>> models_;
  std::vector<double> cumulative_weights_;
  obs::Counter* queries_generated_ = nullptr;
  obs::Counter* shard_slots_skipped_ = nullptr;
  obs::Counter* days_generated_ = nullptr;
  obs::TraceCollector* trace_ = nullptr;
  obs::TraceStream* trace_stream_ = nullptr;
  obs::TraceSampler trace_sampler_;

  std::size_t pick_model();
  std::size_t pick_model(Rng& rng) const;
};

}  // namespace dnsnoise
