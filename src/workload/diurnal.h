// Diurnal load profile: relative query-rate weight per hour of day.
//
// The paper's Fig. 2 shows the classic human-driven curve — traffic drops
// after midnight and climbs from ~10am local time.  The default profile
// reproduces that shape.
#pragma once

#include <array>
#include <cstddef>

#include "util/sim_time.h"

namespace dnsnoise {

class DiurnalProfile {
 public:
  /// Default human activity curve (relative weights; normalized on use).
  constexpr DiurnalProfile() = default;

  explicit constexpr DiurnalProfile(const std::array<double, 24>& weights)
      : weights_(weights) {}

  constexpr double weight(int hour) const { return weights_[static_cast<std::size_t>(hour % 24)]; }

  /// Sum of all hourly weights.
  constexpr double total() const {
    double sum = 0.0;
    for (const double w : weights_) sum += w;
    return sum;
  }

  /// Fraction of a day's traffic falling in the given hour.
  constexpr double fraction(int hour) const { return weight(hour) / total(); }

  /// A flat profile (useful for tests: uniform arrival rate).
  static constexpr DiurnalProfile flat() {
    std::array<double, 24> w{};
    for (double& x : w) x = 1.0;
    return DiurnalProfile(w);
  }

 private:
  std::array<double, 24> weights_ = {
      // 00    01    02    03    04    05    06    07
      0.55, 0.40, 0.30, 0.25, 0.22, 0.25, 0.35, 0.50,
      // 08    09    10    11    12    13    14    15
      0.70, 0.90, 1.05, 1.10, 1.10, 1.08, 1.05, 1.05,
      // 16    17    18    19    20    21    22    23
      1.10, 1.20, 1.35, 1.45, 1.50, 1.40, 1.10, 0.80,
  };
};

}  // namespace dnsnoise
