#include "workload/label_gen.h"

namespace dnsnoise {

std::string MetricsLabel::generate(Rng& rng) const {
  std::string out = tag_;
  for (int i = 0; i < fields_; ++i) {
    out.push_back('-');
    out += std::to_string(rng.below(1'000'000'000));
  }
  if (percent_) {
    out += "-0-p-";
    const std::uint64_t pct = rng.below(100);
    if (pct < 10) out.push_back('0');
    out += std::to_string(pct);
  }
  return out;
}

namespace {

// Service-name dictionary used to synthesize human-chosen hostnames.
constexpr const char* kHostWords[] = {
    "www",    "mail",   "smtp",  "imap",   "pop",    "webmail", "blog",
    "shop",   "store",  "news",  "media",  "static", "assets",  "img",
    "images", "video",  "cdn",   "api",    "app",    "apps",    "dev",
    "test",   "stage",  "beta",  "admin",  "portal", "login",   "auth",
    "secure", "vpn",    "remote", "docs",  "wiki",   "forum",   "support",
    "help",   "status", "search", "m",     "mobile", "ftp",     "ns1",
    "ns2",    "mx",     "chat",  "files",  "download", "update", "play",
    "music",  "photos", "maps",  "drive",  "cloud",  "calendar", "events",
};

}  // namespace

std::string human_hostname(std::size_t i) {
  const std::size_t word_count = std::size(kHostWords);
  if (i < word_count) return kHostWords[i];
  // Overflow variants get a small numeric suffix ("api3", "www12").
  return std::string(kHostWords[i % word_count]) +
         std::to_string(i / word_count + 1);
}

std::string pseudo_word(std::uint64_t i, std::size_t min_len) {
  static constexpr const char* kSyllables[] = {
      "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
      "fa", "fe", "fi", "fo", "ka", "ke", "ki", "ko", "ku", "la",
      "le", "li", "lo", "lu", "ma", "me", "mi", "mo", "mu", "na",
      "ne", "ni", "no", "nu", "ra", "re", "ri", "ro", "ru", "sa",
      "se", "si", "so", "su", "ta", "te", "ti", "to", "tu", "va",
      "ve", "vi", "vo", "za", "ze", "zi", "zo", "zu", "pa", "po",
  };
  constexpr std::uint64_t kBase = std::size(kSyllables);
  // Base-syllable positional encoding: distinct i => distinct word.
  std::string word;
  std::uint64_t rest = i;
  do {
    word += kSyllables[rest % kBase];
    rest /= kBase;
  } while (rest != 0);
  while (word.size() < min_len) word += kSyllables[(i / 7) % kBase];
  return word;
}

HumanLabel::HumanLabel(std::size_t variants) {
  pool_.reserve(variants);
  for (std::size_t i = 0; i < variants; ++i) {
    pool_.push_back(human_hostname(i));
  }
}

std::string HumanLabel::generate(Rng& rng) const {
  return pool_[rng.below(pool_.size())];
}

std::string NamePattern::generate(Rng& rng) const {
  std::string out;
  for (const auto& level : levels_) {
    if (!out.empty()) out.push_back('.');
    out += level->generate(rng);
  }
  return out;
}

}  // namespace dnsnoise
