#include "workload/label_gen.h"

namespace dnsnoise {

void MetricsLabel::append_to(std::string& out, Rng& rng) const {
  out += tag_;
  for (int i = 0; i < fields_; ++i) {
    out.push_back('-');
    detail::append_decimal(out, rng.below(1'000'000'000));
  }
  if (percent_) {
    out += "-0-p-";
    const std::uint64_t pct = rng.below(100);
    if (pct < 10) out.push_back('0');
    detail::append_decimal(out, pct);
  }
}

std::string MetricsLabel::generate(Rng& rng) const {
  std::string out;
  append_to(out, rng);
  return out;
}

namespace {

// Service-name dictionary used to synthesize human-chosen hostnames.
constexpr const char* kHostWords[] = {
    "www",    "mail",   "smtp",  "imap",   "pop",    "webmail", "blog",
    "shop",   "store",  "news",  "media",  "static", "assets",  "img",
    "images", "video",  "cdn",   "api",    "app",    "apps",    "dev",
    "test",   "stage",  "beta",  "admin",  "portal", "login",   "auth",
    "secure", "vpn",    "remote", "docs",  "wiki",   "forum",   "support",
    "help",   "status", "search", "m",     "mobile", "ftp",     "ns1",
    "ns2",    "mx",     "chat",  "files",  "download", "update", "play",
    "music",  "photos", "maps",  "drive",  "cloud",  "calendar", "events",
};

}  // namespace

void human_hostname_into(std::size_t i, std::string& out) {
  const std::size_t word_count = std::size(kHostWords);
  out += kHostWords[i % word_count];
  if (i >= word_count) {
    // Overflow variants get a small numeric suffix ("api3", "www12").
    detail::append_decimal(out, i / word_count + 1);
  }
}

std::string human_hostname(std::size_t i) {
  std::string out;
  human_hostname_into(i, out);
  return out;
}

void pseudo_word_into(std::uint64_t i, std::string& out, std::size_t min_len) {
  static constexpr const char* kSyllables[] = {
      "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
      "fa", "fe", "fi", "fo", "ka", "ke", "ki", "ko", "ku", "la",
      "le", "li", "lo", "lu", "ma", "me", "mi", "mo", "mu", "na",
      "ne", "ni", "no", "nu", "ra", "re", "ri", "ro", "ru", "sa",
      "se", "si", "so", "su", "ta", "te", "ti", "to", "tu", "va",
      "ve", "vi", "vo", "za", "ze", "zi", "zo", "zu", "pa", "po",
  };
  constexpr std::uint64_t kBase = std::size(kSyllables);
  const std::size_t start = out.size();
  // Base-syllable positional encoding: distinct i => distinct word.
  std::uint64_t rest = i;
  do {
    out += kSyllables[rest % kBase];
    rest /= kBase;
  } while (rest != 0);
  while (out.size() - start < min_len) out += kSyllables[(i / 7) % kBase];
}

std::string pseudo_word(std::uint64_t i, std::size_t min_len) {
  std::string word;
  pseudo_word_into(i, word, min_len);
  return word;
}

HumanLabel::HumanLabel(std::size_t variants) {
  pool_.reserve(variants);
  for (std::size_t i = 0; i < variants; ++i) {
    pool_.push_back(human_hostname(i));
  }
}

std::string HumanLabel::generate(Rng& rng) const {
  return pool_[rng.below(pool_.size())];
}

void NamePattern::generate_into(std::string& out, Rng& rng) const {
  const std::size_t start = out.size();
  for (const auto& level : levels_) {
    if (out.size() > start) out.push_back('.');
    level->append_to(out, rng);
  }
}

std::string NamePattern::generate(Rng& rng) const {
  std::string out;
  generate_into(out, rng);
  return out;
}

}  // namespace dnsnoise
