#include "workload/traffic_gen.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace dnsnoise {

TrafficGenerator::TrafficGenerator(const TrafficConfig& config)
    : config_(config),
      rng_(config.seed),
      client_activity_(std::max<std::size_t>(config.client_count, 1),
                       config.client_zipf_s) {}

void TrafficGenerator::add_model(std::shared_ptr<ZoneModel> model,
                                 double weight) {
  if (!model) throw std::invalid_argument("TrafficGenerator: null model");
  if (weight <= 0.0) {
    throw std::invalid_argument("TrafficGenerator: weight must be > 0");
  }
  const double base =
      cumulative_weights_.empty() ? 0.0 : cumulative_weights_.back();
  models_.push_back(std::move(model));
  cumulative_weights_.push_back(base + weight);
}

std::size_t TrafficGenerator::pick_model() { return pick_model(rng_); }

std::size_t TrafficGenerator::pick_model(Rng& rng) const {
  const double u = rng.uniform() * cumulative_weights_.back();
  const auto it = std::upper_bound(cumulative_weights_.begin(),
                                   cumulative_weights_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cumulative_weights_.begin());
  return std::min(idx, models_.size() - 1);
}

void TrafficGenerator::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    queries_generated_ = nullptr;
    shard_slots_skipped_ = nullptr;
    days_generated_ = nullptr;
    return;
  }
  queries_generated_ = &metrics->counter("workload.queries_generated");
  shard_slots_skipped_ = &metrics->counter("workload.shard_slots_skipped");
  days_generated_ = &metrics->counter("workload.days_generated");
}

void TrafficGenerator::set_trace(obs::TraceCollector* trace,
                                 std::uint32_t shard) {
  trace_ = trace;
  if (trace == nullptr) {
    trace_stream_ = nullptr;
    return;
  }
  trace_stream_ = &trace->stream(obs::TraceStage::kWorkload, shard);
  // Same phase-derivation as the cluster's sampler: a pure function of
  // (seed, shard), so the sampled emission subset is thread-count
  // invariant.
  trace_sampler_ = trace->sampler(shard_seed(config_.seed, shard));
}

std::uint64_t TrafficGenerator::client_id_for_rank(
    std::size_t rank) const noexcept {
  // Stable opaque IDs; never 0 (0 marks "no client" in above-tap entries).
  return 1 + mix64(config_.seed ^ (0xc11e57ULL + rank));
}

void TrafficGenerator::run_day(std::int64_t day, const QuerySink& sink) {
  if (models_.empty()) {
    throw std::logic_error("TrafficGenerator: no models registered");
  }
  if (days_generated_ != nullptr) days_generated_->add();
  obs::TraceSpan day_span(trace_stream_, trace_, obs::TraceOp::kWorkloadDay);
  day_span.annotate({}, 0, obs::TraceOutcome::kNone,
                    static_cast<std::uint64_t>(day));
  const SimTime day_start = day * kSecondsPerDay;
  const double diurnal_total = config_.diurnal.total();
  QuerySpec query;  // reused across every query of the day
  for (int hour = 0; hour < 24; ++hour) {
    const auto count = static_cast<std::uint64_t>(
        static_cast<double>(config_.queries_per_day) *
            config_.diurnal.weight(hour) / diurnal_total +
        0.5);
    if (count == 0) continue;
    const SimTime hour_start = day_start + hour * kSecondsPerHour;
    const double spacing =
        static_cast<double>(kSecondsPerHour) / static_cast<double>(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      // Evenly paced with sub-slot jitter: ordered without a sort.
      const SimTime ts =
          hour_start +
          static_cast<SimTime>((static_cast<double>(i) + rng_.uniform()) *
                               spacing);
      const std::uint64_t client =
          client_id_for_rank(client_activity_.sample(rng_));
      const bool traced =
          trace_stream_ != nullptr && trace_sampler_.sample();
      const std::uint64_t sample_start = traced ? trace_->now_ns() : 0;
      models_[pick_model()]->sample_query_into(query, rng_);
      if (traced) {
        trace_stream_->span(obs::TraceOp::kWorkloadSample, sample_start,
                            trace_->now_ns() - sample_start, query.qname,
                            static_cast<std::uint16_t>(query.qtype));
      }
      if (queries_generated_ != nullptr) queries_generated_->add();
      sink(std::min(ts, day_start + kSecondsPerDay - 1), client, query);
    }
  }
}

void TrafficGenerator::run_day_shard(std::int64_t day, const ShardSpec& shard,
                                     const QuerySink& sink) {
  if (models_.empty()) {
    throw std::logic_error("TrafficGenerator: no models registered");
  }
  if (shard.count == 0 || shard.index >= shard.count) {
    throw std::invalid_argument("TrafficGenerator: bad shard spec");
  }
  if (days_generated_ != nullptr) days_generated_->add();
  obs::TraceSpan day_span(trace_stream_, trace_, obs::TraceOp::kWorkloadDay);
  day_span.annotate({}, 0, obs::TraceOutcome::kNone,
                    static_cast<std::uint64_t>(day));
  const SimTime day_start = day * kSecondsPerDay;
  const double diurnal_total = config_.diurnal.total();
  QuerySpec query;  // reused across every query of the day
  std::uint64_t slot = 0;  // global query index across the whole day
  for (int hour = 0; hour < 24; ++hour) {
    const auto count = static_cast<std::uint64_t>(
        static_cast<double>(config_.queries_per_day) *
            config_.diurnal.weight(hour) / diurnal_total +
        0.5);
    if (count == 0) continue;
    const SimTime hour_start = day_start + hour * kSecondsPerHour;
    const double spacing =
        static_cast<double>(kSecondsPerHour) / static_cast<double>(count);
    for (std::uint64_t i = 0; i < count; ++i, ++slot) {
      // Per-slot stream: every shard derives the same Rng for a given slot,
      // so a slot's draws don't depend on which other slots ran before it.
      Rng q = rng_.fork(mix64(static_cast<std::uint64_t>(day)) ^ slot);
      const SimTime ts =
          hour_start +
          static_cast<SimTime>((static_cast<double>(i) + q.uniform()) *
                               spacing);
      const std::uint64_t client =
          client_id_for_rank(client_activity_.sample(q));
      // Shard filter after the client draw: skipped slots cost one fork and
      // one Zipf sample, never a zone-model mutation.
      if (shard_of(client, shard.count) != shard.index) {
        if (shard_slots_skipped_ != nullptr) shard_slots_skipped_->add();
        continue;
      }
      // Sample after the shard filter: the sampler counts *emitted*
      // queries, the same sequence every thread count replays.
      const bool traced =
          trace_stream_ != nullptr && trace_sampler_.sample();
      const std::uint64_t sample_start = traced ? trace_->now_ns() : 0;
      models_[pick_model(q)]->sample_query_into(query, q);
      if (traced) {
        trace_stream_->span(obs::TraceOp::kWorkloadSample, sample_start,
                            trace_->now_ns() - sample_start, query.qname,
                            static_cast<std::uint16_t>(query.qtype));
      }
      if (queries_generated_ != nullptr) queries_generated_->add();
      sink(std::min(ts, day_start + kSecondsPerDay - 1), client, query);
    }
  }
}

}  // namespace dnsnoise
