// Zone models: per-tenant query generators plus their authoritative-side
// behaviour.
//
// Each model owns (a) a sampler producing the names its clients query and
// (b) the deterministic authoritative answers for those names.  Determinism
// matters: the same qname must always resolve to the same rdata so that
// cache-hit-rate accounting and rpDNS deduplication behave like the real
// system.
//
// The model family mirrors the paper's traffic taxonomy:
//   DisposableZoneModel — bulk algorithmic one-time names (Fig. 6 archetypes)
//   PopularZoneModel    — human hostnames with Zipf re-query (Alexa-style)
//   CdnZoneModel        — sharded content names, heavy tail of cold shards
//   OtherSitesModel     — the long tail of small sites (Fig. 3a's tail)
//   NxdomainModel       — junk queries that never resolve
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "resolver/authority.h"
#include "util/rng.h"
#include "util/zipf.h"
#include "workload/label_gen.h"

namespace dnsnoise {

/// One generated client query.
struct QuerySpec {
  std::string qname;
  RRType qtype = RRType::A;
};

namespace detail {

/// Heterogeneous string hashing/equality so name sets can be probed with
/// string_views (no per-lookup std::string materialization).
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return static_cast<std::size_t>(fnv1a64(s));
  }
};
struct TransparentStringEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

}  // namespace detail

/// Interface: a tenant of the synthetic namespace.
class ZoneModel {
 public:
  virtual ~ZoneModel() = default;

  /// Human-readable tenant name (used in per-tenant figure series).
  virtual const std::string& name() const noexcept = 0;

  /// Ground truth: does this tenant emit disposable names?
  virtual bool disposable() const noexcept = 0;

  /// Draws one query.
  virtual QuerySpec sample_query(Rng& rng) = 0;

  /// Draws one query into `out`, reusing its buffers.  Consumes exactly the
  /// same RNG draws as sample_query(); the built-in models override this
  /// with allocation-free samplers, the default forwards.
  virtual void sample_query_into(QuerySpec& out, Rng& rng) {
    out = sample_query(rng);
  }

  /// Registers this tenant's zones with the authority.
  virtual void install(SyntheticAuthority& authority) const = 0;
};

// ---------------------------------------------------------------------------

struct DisposableZoneConfig {
  std::string apex;                 // e.g. "avqs.mcafee.com"
  std::uint32_t ttl = 300;          // zone TTL policy (Fig. 14 sweeps this)
  std::size_t rdata_pool = 16;      // distinct answer values (McAfee-style)
  double repeat_probability = 0.05; // chance of re-querying a recent name
  std::size_t recent_window = 64;
  RRType qtype = RRType::A;
  /// A records returned per answer (a round-robin set drawn from the rdata
  /// pool).  >1 models tenants like the Google experiment whose every name
  /// carries several records — the force behind the paper's observation
  /// that disposable RRs outgrow disposable *names* (Fig. 13).
  std::size_t rr_per_answer = 1;
  bool dnssec_signed = false;
};

/// A zone whose children are generated in bulk by a NamePattern.
class DisposableZoneModel final : public ZoneModel {
 public:
  DisposableZoneModel(DisposableZoneConfig config, NamePattern pattern);

  const std::string& name() const noexcept override { return config_.apex; }
  bool disposable() const noexcept override { return true; }
  QuerySpec sample_query(Rng& rng) override;
  void sample_query_into(QuerySpec& out, Rng& rng) override;
  void install(SyntheticAuthority& authority) const override;

  const DisposableZoneConfig& config() const noexcept { return config_; }
  /// Label depth of generated names (apex labels + pattern depth).
  std::size_t name_depth() const noexcept;

 private:
  DisposableZoneConfig config_;
  NamePattern pattern_;
  DomainName apex_name_;
  std::vector<std::string> recent_;
  std::size_t recent_next_ = 0;
};

// ---------------------------------------------------------------------------

struct PopularZoneConfig {
  std::string apex;           // e.g. "google.com"
  std::size_t hostnames = 32;
  double zipf_s = 1.0;        // popularity skew across hostnames
  std::uint32_t ttl = 300;
  double aaaa_fraction = 0.05;
  bool dnssec_signed = false;
};

/// An Alexa-style zone: a small, fixed, human-named host set.
class PopularZoneModel final : public ZoneModel {
 public:
  explicit PopularZoneModel(PopularZoneConfig config);

  const std::string& name() const noexcept override { return config_.apex; }
  bool disposable() const noexcept override { return false; }
  QuerySpec sample_query(Rng& rng) override;
  void sample_query_into(QuerySpec& out, Rng& rng) override;
  void install(SyntheticAuthority& authority) const override;

 private:
  PopularZoneConfig config_;
  std::vector<std::string> hosts_;  // fully qualified
  ZipfSampler popularity_;
};

// ---------------------------------------------------------------------------

struct CdnZoneConfig {
  std::string apex;            // e.g. "g.akamai.net"
  std::size_t shards = 4096;   // distinct "e<k>" shard names
  double zipf_s = 0.9;         // most shards are cold -> CDN false positives
  std::uint32_t ttl = 60;
};

/// A CDN delivery zone: many numbered shard names, few of them hot.
class CdnZoneModel final : public ZoneModel {
 public:
  explicit CdnZoneModel(CdnZoneConfig config);

  const std::string& name() const noexcept override { return config_.apex; }
  bool disposable() const noexcept override { return false; }
  QuerySpec sample_query(Rng& rng) override;
  void sample_query_into(QuerySpec& out, Rng& rng) override;
  void install(SyntheticAuthority& authority) const override;

 private:
  CdnZoneConfig config_;
  ZipfSampler popularity_;
};

// ---------------------------------------------------------------------------

struct OtherSitesConfig {
  std::size_t sites = 50000;
  double zipf_s = 1.0;             // popularity skew across sites
  std::size_t max_hosts_per_site = 4;
  std::uint32_t ttl = 3600;
  std::vector<std::string> tlds = {"com", "net", "org", "de", "co.uk"};
  std::uint64_t seed = 7;
};

/// The long tail: many small sites with a couple of hostnames each.  One
/// model instance manages the whole population and registers one handler
/// per TLD (names outside the site set resolve NXDOMAIN, which also serves
/// the NxdomainModel's junk queries).
class OtherSitesModel final : public ZoneModel {
 public:
  explicit OtherSitesModel(OtherSitesConfig config);

  const std::string& name() const noexcept override { return label_; }
  bool disposable() const noexcept override { return false; }
  QuerySpec sample_query(Rng& rng) override;
  void sample_query_into(QuerySpec& out, Rng& rng) override;
  void install(SyntheticAuthority& authority) const override;

  /// 2LD of site `i` (exposed for tests).
  std::string site_domain(std::size_t i) const;

 private:
  using SiteSet =
      std::unordered_set<std::string, detail::TransparentStringHash,
                         detail::TransparentStringEq>;

  /// Appends site_domain(i) without allocating.
  void append_site_domain(std::size_t i, std::string& out) const;

  OtherSitesConfig config_;
  std::string label_ = "other-sites";
  ZipfSampler popularity_;
  std::shared_ptr<SiteSet> site_set_;
};

// ---------------------------------------------------------------------------

struct NxdomainConfig {
  std::vector<std::string> tlds = {"com", "net", "org"};
  std::size_t min_len = 6;
  std::size_t max_len = 14;
  double www_fraction = 0.3;  // "www.<junk>.<tld>" variants
};

/// Queries that never resolve: typos, misconfigured software, probes.
class NxdomainModel final : public ZoneModel {
 public:
  explicit NxdomainModel(NxdomainConfig config);

  const std::string& name() const noexcept override { return label_; }
  bool disposable() const noexcept override { return false; }
  QuerySpec sample_query(Rng& rng) override;
  void sample_query_into(QuerySpec& out, Rng& rng) override;
  /// Registers nothing: unclaimed names default to NXDOMAIN.
  void install(SyntheticAuthority&) const override {}

 private:
  NxdomainConfig config_;
  std::string label_ = "nxdomain";
};

}  // namespace dnsnoise
