#include "loadgen/workload.h"

#include <algorithm>
#include <cmath>

namespace dnsnoise::loadgen {

namespace {

WorkloadConfig sanitized(WorkloadConfig config) {
  if (!(config.offered_qps > 0.0)) config.offered_qps = 1.0;
  if (config.name_count == 0) config.name_count = 1;
  if (config.client_count == 0) config.client_count = 1;
  if (config.zipf_s < 0.0) config.zipf_s = 0.0;
  return config;
}

}  // namespace

Workload::Workload(const WorkloadConfig& config)
    : config_(sanitized(config)),
      mean_gap_ns_(1e9 / config_.offered_qps),
      zipf_(config_.keys == KeyDistribution::kZipf ? config_.name_count : 1,
            config_.zipf_s) {}

std::uint64_t Workload::next_gap_ns(Rng& rng) const {
  double gap_ns = mean_gap_ns_;
  if (config_.arrival == ArrivalProcess::kPoisson) {
    gap_ns = rng.exponential(mean_gap_ns_);
  }
  // Never schedule two queries at the same instant: a zero gap would let
  // an infinite burst through the pacing loop.
  return std::max<std::uint64_t>(static_cast<std::uint64_t>(gap_ns), 1);
}

std::size_t Workload::next_key(Rng& rng) const {
  if (config_.keys == KeyDistribution::kZipf) return zipf_.sample(rng);
  return static_cast<std::size_t>(
      rng.below(static_cast<std::uint64_t>(config_.name_count)));
}

std::string Workload::name_of(std::size_t key) const {
  return config_.name_prefix + std::to_string(key % config_.name_count) +
         config_.name_suffix;
}

}  // namespace dnsnoise::loadgen
