#include "loadgen/driver.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "dns/message.h"
#include "dns/wire.h"
#include "net/udp_client.h"
#include "util/sim_time.h"

namespace dnsnoise::loadgen {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kIdSpace = 65536;  // DNS message id width

std::int64_t ns_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
      .count();
}

std::uint16_t response_id(const std::vector<std::uint8_t>& wire) noexcept {
  return static_cast<std::uint16_t>((wire[0] << 8) | wire[1]);
}

/// Per-worker query encoder.  Without replay metadata the per-key wire
/// bytes are encoded once and only the id field is patched per send, so
/// the send loop does no per-query allocation after the first round.
class QueryStream {
 public:
  QueryStream(const Workload& workload, bool attach_meta, Rng& rng)
      : workload_(workload),
        attach_meta_(attach_meta),
        rng_(rng),
        names_(workload.config().name_count),
        templates_(attach_meta ? 0 : workload.config().name_count) {}

  /// Encoded query for the seq-th send (empty on unparseable qname).
  /// `sched_ns` is the nanosecond offset of the (scheduled) send; it
  /// becomes the replay-meta sim timestamp in whole seconds.
  std::span<const std::uint8_t> next(std::uint64_t seq, std::uint16_t id,
                                     std::uint64_t sched_ns) {
    const std::size_t key = workload_.next_key(rng_);
    const DomainName* name = name_of(key);
    if (name == nullptr) return {};
    if (!attach_meta_) {
      std::vector<std::uint8_t>& wire = templates_[key];
      if (wire.empty()) {
        wire = encode_message(DnsMessage::make_query(0, *name, RRType::A));
      }
      wire[0] = static_cast<std::uint8_t>(id >> 8);
      wire[1] = static_cast<std::uint8_t>(id & 0xff);
      return wire;
    }
    DnsMessage query = DnsMessage::make_query(id, *name, RRType::A);
    net::attach_replay_meta(
        query, {.ts = static_cast<SimTime>(sched_ns / 1'000'000'000ULL),
                .client_id = workload_.client_of(seq)});
    scratch_ = encode_message(query);
    return scratch_;
  }

 private:
  const DomainName* name_of(std::size_t key) {
    auto& slot = names_[key];
    if (!slot) {
      slot = DomainName::parse(workload_.name_of(key));
      if (!slot) return nullptr;
    }
    return &*slot;
  }

  const Workload& workload_;
  const bool attach_meta_;
  Rng& rng_;
  std::vector<std::optional<DomainName>> names_;
  std::vector<std::vector<std::uint8_t>> templates_;
  std::vector<std::uint8_t> scratch_;
};

struct WorkerStats {
  bool ok = true;
  std::string error;
  std::uint64_t sent = 0;  // measured phase only; warmup is invisible
  std::uint64_t completed = 0;
  std::uint64_t lost = 0;
  double duration_seconds = 0.0;
};

/// Closed loop: one outstanding query, RTT from the actual send.
WorkerStats run_closed_worker(const LoadgenConfig& config,
                              const Workload& workload, std::size_t index,
                              std::uint64_t measured, std::uint64_t warmup,
                              QueryTransport& transport,
                              obs::LatencyRecorder::Shard& shard) {
  WorkerStats stats;
  Rng rng(shard_seed(config.seed, index));
  QueryStream stream(workload, config.attach_replay_meta, rng);
  const auto t0 = Clock::now();
  Clock::time_point measure_start = t0;
  Clock::time_point last_done = t0;
  const std::uint64_t total = warmup + measured;
  for (std::uint64_t seq = 0; seq < total; ++seq) {
    const bool is_measured = seq >= warmup;
    const auto t_send = Clock::now();
    if (is_measured && seq == warmup) measure_start = t_send;
    const auto id = static_cast<std::uint16_t>(seq % kIdSpace);
    const auto wire = stream.next(
        seq, id, static_cast<std::uint64_t>(ns_between(t0, t_send)));
    if (wire.empty() || !transport.send(wire)) {
      stats.ok = false;
      stats.error = "send failed (connection " + std::to_string(index) + ")";
      break;
    }
    if (is_measured) ++stats.sent;
    const auto deadline =
        t_send + std::chrono::milliseconds(config.timeout_ms);
    bool got = false;
    for (;;) {
      const auto now = Clock::now();
      const auto remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count();
      if (remaining_ms <= 0) break;
      const auto resp = transport.receive(static_cast<int>(remaining_ms));
      if (!resp) break;
      if (resp->size() < 2 || response_id(*resp) != id) continue;  // stale
      last_done = Clock::now();
      if (is_measured) {
        shard.record(static_cast<std::uint64_t>(
            std::max<std::int64_t>(ns_between(t_send, last_done), 0)));
        ++stats.completed;
      }
      got = true;
      break;
    }
    if (is_measured && !got) ++stats.lost;
  }
  stats.duration_seconds =
      static_cast<double>(ns_between(measure_start, last_done)) * 1e-9;
  return stats;
}

/// Open loop: scheduled sends, RTT from the *scheduled* send time.  When
/// the harness or the server falls behind, the queries that waited carry
/// the wait — no coordinated omission.
WorkerStats run_open_worker(const LoadgenConfig& config,
                            const Workload& workload, std::size_t index,
                            std::uint64_t measured, std::uint64_t warmup,
                            QueryTransport& transport,
                            obs::LatencyRecorder::Shard& shard) {
  WorkerStats stats;
  Rng rng(shard_seed(config.seed, index));
  QueryStream stream(workload, config.attach_replay_meta, rng);

  // Scheduled send time of the outstanding query per DNS id (ns since t0;
  // -1 = free).  The id space bounds outstanding queries: reusing a busy
  // slot declares the old query lost.
  struct Slot {
    std::int64_t sched_ns = -1;
    bool measured = false;
  };
  std::vector<Slot> slots(kIdSpace);
  std::size_t outstanding = 0;

  const auto t0 = Clock::now();
  std::int64_t sched_ns = 0;
  std::int64_t measure_start_ns = 0;
  std::int64_t last_activity_ns = 0;

  const auto handle = [&](const std::vector<std::uint8_t>& resp,
                          Clock::time_point now) {
    if (resp.size() < 2) return;
    Slot& slot = slots[response_id(resp)];
    if (slot.sched_ns < 0) return;  // duplicate or long-forgotten
    const std::int64_t done_ns = ns_between(t0, now);
    if (slot.measured) {
      shard.record(static_cast<std::uint64_t>(
          std::max<std::int64_t>(done_ns - slot.sched_ns, 0)));
      ++stats.completed;
      last_activity_ns = std::max(last_activity_ns, done_ns);
    }
    slot.sched_ns = -1;
    --outstanding;
  };

  const std::uint64_t total = warmup + measured;
  for (std::uint64_t seq = 0; seq < total && stats.ok; ++seq) {
    sched_ns += static_cast<std::int64_t>(workload.next_gap_ns(rng));
    // Pace to the schedule, draining responses while waiting.  Behind
    // schedule, fall straight through: the send happens late and the
    // lateness is charged to this query's RTT.
    for (;;) {
      const auto now = Clock::now();
      const std::int64_t remaining_ns = sched_ns - ns_between(t0, now);
      if (remaining_ns <= 0) break;
      if (remaining_ns >= 1'000'000) {
        const int wait_ms = static_cast<int>(std::min<std::int64_t>(
            remaining_ns / 1'000'000, config.timeout_ms));
        if (const auto resp = transport.receive(wait_ms)) {
          handle(*resp, Clock::now());
        }
      } else if (const auto resp = transport.receive(0)) {
        handle(*resp, Clock::now());
      } else {
        std::this_thread::yield();  // sub-millisecond: spin on the clock
      }
    }
    const bool is_measured = seq >= warmup;
    if (is_measured && seq == warmup) measure_start_ns = sched_ns;
    const auto id = static_cast<std::uint16_t>(seq % kIdSpace);
    Slot& slot = slots[id];
    if (slot.sched_ns >= 0) {  // id wrap: the old occupant never answered
      if (slot.measured) ++stats.lost;
      slot.sched_ns = -1;
      --outstanding;
    }
    const auto wire =
        stream.next(seq, id, static_cast<std::uint64_t>(sched_ns));
    if (wire.empty() || !transport.send(wire)) {
      stats.ok = false;
      stats.error = "send failed (connection " + std::to_string(index) + ")";
      break;
    }
    slot.sched_ns = sched_ns;
    slot.measured = is_measured;
    ++outstanding;
    if (is_measured) {
      ++stats.sent;
      last_activity_ns = std::max(last_activity_ns, sched_ns);
    }
    while (const auto resp = transport.receive(0)) handle(*resp, Clock::now());
  }

  // Final drain: late answers are the whole point of open-loop accounting.
  const auto drain_deadline =
      Clock::now() + std::chrono::milliseconds(config.drain_timeout_ms);
  while (outstanding > 0) {
    const auto now = Clock::now();
    const auto remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(drain_deadline -
                                                              now)
            .count();
    if (remaining_ms <= 0) break;
    if (const auto resp = transport.receive(
            static_cast<int>(std::min<long long>(remaining_ms, 50)))) {
      handle(*resp, Clock::now());
    }
  }
  for (const Slot& slot : slots) {
    if (slot.sched_ns >= 0 && slot.measured) ++stats.lost;
  }
  stats.duration_seconds =
      static_cast<double>(last_activity_ns - measure_start_ns) * 1e-9;
  return stats;
}

class UdpQueryTransport final : public QueryTransport {
 public:
  bool connect(const std::string& host, std::uint16_t port) {
    return client_.connect(host, port);
  }
  bool send(std::span<const std::uint8_t> wire) override {
    return client_.send(wire);
  }
  std::optional<std::vector<std::uint8_t>> receive(int timeout_ms) override {
    return client_.receive(timeout_ms);
  }

 private:
  net::UdpClient client_;
};

}  // namespace

LoadgenResult run_load(const LoadgenConfig& config,
                       const TransportFactory& factory) {
  LoadgenResult result;
  result.mode = config.mode;
  const std::size_t connections = std::max<std::size_t>(config.connections, 1);

  std::vector<std::unique_ptr<QueryTransport>> transports;
  transports.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    transports.push_back(factory ? factory(i) : nullptr);
    if (transports.back() == nullptr) {
      result.error =
          "transport factory failed (connection " + std::to_string(i) + ")";
      return result;
    }
  }

  // The offered rate is split evenly; each worker paces its own share so
  // the aggregate arrival process hits the configured rate.
  WorkloadConfig per_worker = config.workload;
  if (config.mode == LoopMode::kOpen) {
    per_worker.offered_qps =
        config.workload.offered_qps / static_cast<double>(connections);
    result.offered_qps = config.workload.offered_qps;
  }
  const Workload workload(per_worker);

  obs::LatencyRecorder recorder(connections);
  std::vector<WorkerStats> stats(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    // Even split with the remainder spread over the first workers.
    const std::uint64_t measured =
        config.queries / connections + (i < config.queries % connections);
    const std::uint64_t warmup = config.warmup_queries / connections +
                                 (i < config.warmup_queries % connections);
    threads.emplace_back([&, i, measured, warmup]() {
      auto& shard = recorder.shard(i);
      stats[i] = config.mode == LoopMode::kOpen
                     ? run_open_worker(config, workload, i, measured, warmup,
                                       *transports[i], shard)
                     : run_closed_worker(config, workload, i, measured,
                                         warmup, *transports[i], shard);
    });
  }
  for (auto& thread : threads) thread.join();

  for (const WorkerStats& ws : stats) {
    if (!ws.ok && result.error.empty()) result.error = ws.error;
    result.sent += ws.sent;
    result.completed += ws.completed;
    result.lost += ws.lost;
    result.duration_seconds =
        std::max(result.duration_seconds, ws.duration_seconds);
  }
  result.ok = result.error.empty();
  if (result.duration_seconds > 0) {
    result.achieved_qps =
        static_cast<double>(result.completed) / result.duration_seconds;
  }
  result.latency = recorder.snapshot();
  result.percentiles = result.latency.percentiles_seconds();
  return result;
}

LoadgenResult run_load_udp(const LoadgenConfig& config,
                           const std::string& host, std::uint16_t port) {
  return run_load(config, [&](std::size_t) -> std::unique_ptr<QueryTransport> {
    auto transport = std::make_unique<UdpQueryTransport>();
    if (!transport->connect(host, port)) return nullptr;
    return transport;
  });
}

}  // namespace dnsnoise::loadgen
