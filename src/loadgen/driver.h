// Open/closed-loop load driver for the wire front-end (DESIGN.md §16).
//
// Two loop disciplines, one harness:
//
//   * closed loop — each connection keeps exactly one query outstanding
//     and sends the next the moment the response lands.  RTT is measured
//     from the *actual* send.  A closed loop adapts its rate to the
//     server, so a slow server sees fewer queries and the latency
//     distribution silently drops exactly the samples that would have
//     hurt — the coordinated-omission trap;
//
//   * open loop — queries are sent on a schedule derived from the
//     workload's arrival process, independent of responses.  RTT is
//     measured from the *scheduled* send time, so when the harness (or
//     the server) falls behind, the backlog delay is charged to the
//     queries that suffered it.  Under overload the open-loop p99 keeps
//     growing while the closed-loop p99 stays flat; comparing the two is
//     the harness's built-in honesty check (LoadgenLoop.* tests).
//
// The transport is pluggable (QueryTransport): production uses a UDP
// socket per connection against resolver/wire_frontend; tests inject a
// simulated single-server queue with a known service time to make the
// open-vs-closed divergence deterministic.
//
// Latencies land in an obs::LatencyRecorder (one shard per connection,
// deterministic merge); results carry the merged snapshot plus
// p50/p90/p99/p999 in seconds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "loadgen/workload.h"
#include "obs/latency.h"

namespace dnsnoise::loadgen {

/// Minimal request/response transport, one instance per connection.
/// Implementations need not be thread-safe: the driver gives each worker
/// thread exclusive use of its transport.
class QueryTransport {
 public:
  virtual ~QueryTransport() = default;

  /// Sends one encoded query.  Returns false on hard failure.
  virtual bool send(std::span<const std::uint8_t> wire) = 0;

  /// Waits up to `timeout_ms` (0 = poll) for one response datagram.
  virtual std::optional<std::vector<std::uint8_t>> receive(int timeout_ms) = 0;
};

/// Builds the transport for worker `connection`; return nullptr to abort
/// the run with an error.
using TransportFactory =
    std::function<std::unique_ptr<QueryTransport>(std::size_t connection)>;

enum class LoopMode : std::uint8_t { kClosed, kOpen };

struct LoadgenConfig {
  LoopMode mode = LoopMode::kClosed;
  /// Arrival process (open loop), key popularity, and name shape.
  WorkloadConfig workload;
  /// Concurrent connections, each a worker thread with its own transport,
  /// RNG stream, and recorder shard.  The open-loop offered rate is split
  /// evenly across connections.
  std::size_t connections = 1;
  /// Measured queries, total across connections.
  std::uint64_t queries = 10'000;
  /// Unrecorded leading queries (cache warmup), total across connections.
  std::uint64_t warmup_queries = 0;
  /// Closed loop: per-query response deadline.  Open loop: upper bound on
  /// one blocking poll while pacing (responses are matched by id, so late
  /// answers still count when they arrive).
  int timeout_ms = 1000;
  /// Open loop: how long to keep draining after the last scheduled send.
  int drain_timeout_ms = 2000;
  std::uint64_t seed = 1;
  /// Carry (ts, client) replay metadata so the server sees the simulated
  /// client population instead of one socket peer (requires the frontend's
  /// allow_replay_meta).  ts advances with the schedule in sim-seconds.
  bool attach_replay_meta = false;
};

struct LoadgenResult {
  bool ok = false;
  std::string error;
  LoopMode mode = LoopMode::kClosed;
  /// Configured offered rate (open loop; 0 for closed — a closed loop has
  /// no offered rate, it accepts the server's).
  double offered_qps = 0.0;
  /// Completed queries / measured wall time.
  double achieved_qps = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t lost = 0;  // timed out / never answered
  double duration_seconds = 0.0;
  /// Merged RTT distribution over completed measured queries.  Open loop:
  /// anchored at scheduled send times.  Closed loop: actual send times.
  obs::LatencySnapshot latency;
  obs::LatencyPercentiles percentiles;  // seconds, from `latency`
};

/// Runs the configured load through transports from `factory`.
LoadgenResult run_load(const LoadgenConfig& config,
                       const TransportFactory& factory);

/// Convenience: UDP transports against `host`:`port` (the wire frontend).
LoadgenResult run_load_udp(const LoadgenConfig& config,
                           const std::string& host, std::uint16_t port);

}  // namespace dnsnoise::loadgen
