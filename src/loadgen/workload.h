// Workload shaping for the load harness (DESIGN.md §16): what to ask and
// when to ask it.
//
// A Workload owns two pluggable distributions:
//   * the arrival process — fixed-rate (deterministic gaps of 1/rate) or
//     Poisson (exponential gaps with mean 1/rate), sampled as nanosecond
//     inter-arrival gaps.  In open-loop mode the driver derives each
//     query's *scheduled* send time from the cumulative gaps, which is
//     what makes the measurement free of coordinated omission;
//   * the key-popularity distribution — uniform or Zipf (util/zipf) over
//     `name_count` distinct qnames, mirroring the heavy-tailed hostname
//     popularity the paper's traffic model uses.
//
// Queries are attributed to a simulated client population of
// `client_count` ids via a stateless mix of the sequence number, so the
// served cluster sees a stable many-client traffic shape even though all
// datagrams share one socket (carried in replay-meta when enabled).
//
// Everything is seeded and deterministic: two Workloads with the same
// config and the same Rng stream produce identical schedules and keys.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/rng.h"
#include "util/zipf.h"

namespace dnsnoise::loadgen {

/// Inter-arrival process of the offered load.
enum class ArrivalProcess : std::uint8_t {
  kFixedRate,  // gaps of exactly 1e9 / offered_qps ns
  kPoisson,    // exponential gaps, mean 1e9 / offered_qps ns
};

/// Which of the distinct names a query asks for.
enum class KeyDistribution : std::uint8_t {
  kUniform,
  kZipf,  // rank r with probability ∝ 1 / (r+1)^zipf_s
};

struct WorkloadConfig {
  ArrivalProcess arrival = ArrivalProcess::kFixedRate;
  /// Offered rate the arrival process targets (open-loop only; closed
  /// loop sends as fast as responses return).
  double offered_qps = 1000.0;
  KeyDistribution keys = KeyDistribution::kUniform;
  double zipf_s = 1.1;
  /// Distinct qnames, built as "<prefix><key><suffix>".
  std::size_t name_count = 1000;
  std::string name_prefix = "q";
  std::string name_suffix = ".bench.test";
  /// Simulated client population (replay-meta client ids).
  std::size_t client_count = 64;
};

/// Sampler bundle over one WorkloadConfig.  Not thread-safe: each driver
/// worker owns its own Workload (cheap — the Zipf CDF is the only state).
class Workload {
 public:
  explicit Workload(const WorkloadConfig& config);

  const WorkloadConfig& config() const noexcept { return config_; }

  /// Next inter-arrival gap in nanoseconds (>= 1).
  std::uint64_t next_gap_ns(Rng& rng) const;

  /// Next key in [0, name_count).
  std::size_t next_key(Rng& rng) const;

  /// The qname of `key`: "<prefix><key % name_count><suffix>".
  std::string name_of(std::size_t key) const;

  /// Stable client id of the seq-th query (uniform over the population).
  std::uint64_t client_of(std::uint64_t seq) const noexcept {
    return mix64(seq ^ 0x5ca1ab1eULL) % config_.client_count;
  }

 private:
  WorkloadConfig config_;
  double mean_gap_ns_;
  ZipfSampler zipf_;  // built (cheaply, n=1) even when keys are uniform
};

}  // namespace dnsnoise::loadgen
