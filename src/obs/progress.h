// Live progress heartbeat for long pipeline runs.
//
// ProgressReporter spawns one background thread that periodically reads a
// handful of pre-resolved MetricsRegistry handles — the queries-answered
// counter and the completed-shard timer — and rewrites a single stderr
// status line: answered queries, instantaneous queries/sec, shard
// completion, and an ETA extrapolated from the configured expected volume.
//
// It adds *no* locks to the hot path: the pipeline keeps hammering its
// relaxed atomics; the reporter only loads them.  Metric handles are
// resolved once in the constructor (the registry's mutex-guarded slow
// path), so no registry lock is touched while the pipeline runs either.
// Concurrent MetricsRegistry::snapshot() calls are likewise safe — see
// ObsConcurrency.* (tests) and DESIGN.md §12.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <thread>

namespace dnsnoise::obs {

class Counter;
class MetricsRegistry;
class Timer;

struct ProgressConfig {
  /// Seconds between heartbeat lines (non-positive values fall back to
  /// 1.0; configurable through MiningSession::enable_progress and
  /// PipelineOptions::progress_interval_seconds).
  double interval_seconds = 1.0;
  /// Expected total queries below the cluster (day + warmup) for the ETA;
  /// 0 disables the ETA.
  std::uint64_t expected_queries = 0;
  /// Expected shard count for the "shards k/N" field; 0 hides it.
  std::size_t shard_count = 0;
  /// Heartbeat sink; defaults to stderr.  Must outlive the reporter.
  std::FILE* out = nullptr;
};

/// Emits the heartbeat from construction until stop()/destruction.  The
/// final newline-terminated summary line (cumulative totals and average
/// rate, marked "done") is printed by stop() itself *after* the heartbeat
/// thread joined, so it is emitted exactly once on every completion path
/// — including a finish that lands exactly on a heartbeat tick, which
/// previously could race the thread out of its last line.  The registry
/// must outlive the reporter.
class ProgressReporter {
 public:
  ProgressReporter(MetricsRegistry& registry, ProgressConfig config = {});
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Stops the heartbeat thread and flushes the final summary line.
  /// Idempotent: only the first call prints.
  void stop();

 private:
  void run();
  void print_line(double seconds_since_start, bool final_line);

  ProgressConfig config_;
  Counter* answered_;       // cluster.below_answers
  Timer* shards_done_;      // engine.shard (count == completed shards)
  std::FILE* out_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t last_answered_ = 0;
  double last_tick_seconds_ = 0.0;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace dnsnoise::obs
