// Shared low-level JSON emission helpers for the obs exporters.
//
// Both stable-output schemas — dnsnoise-metrics-v1 (obs/json_snapshot) and
// dnsnoise-trace-v1 (obs/trace_export) — are built from the same three
// primitives: string escaping, `"key": ` emission at a fixed indent, and
// shortest-round-trip double formatting.  Keeping them here guarantees the
// two exporters cannot drift apart on number format or escaping rules.
#pragma once

#include <string>
#include <string_view>

namespace dnsnoise::obs {

/// JSON string escaping: quotes, backslash, \n, \t, and \u00XX for other
/// control bytes.  Returns the escaped body (no surrounding quotes).
std::string json_escape(std::string_view text);

/// Appends `"key": ` at the given indent (spaces).
void json_key(std::string& out, int indent, std::string_view name);

/// Appends a quoted, escaped string value.
void json_string(std::string& out, std::string_view value);

/// Shortest round-trip decimal form of `v` ("1.5", "0.1", "1e+20"); the
/// exporters' number format, exposed for tests.  JSON cannot represent
/// non-finite values, and degenerate timings can produce them (a
/// `*_per_sec` gauge over a zero-length interval): NaN serializes as
/// "null" (explicitly absent) and ±Inf clamps to ±DBL_MAX so magnitude
/// ordering survives for the regression gates.
std::string format_double(double v);

/// Writes `json` to `path` atomically enough for CI use (truncate +
/// write; callers include the trailing newline).  Returns false on I/O
/// error.
bool write_json_file(const std::string& path, const std::string& json);

}  // namespace dnsnoise::obs
