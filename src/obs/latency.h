// HDR-style latency recorder for the load harness (DESIGN.md §16).
//
// Where obs/metrics' Histogram is a coarse spinlocked log histogram meant
// for batch-granularity recording, LatencyRecorder is the per-query RTT
// sink: fixed-point log2-linear buckets (~3.1% relative width), wait-free
// single-writer shards, and a deterministic merge — the merged bucket
// counts are a pure function of the recorded value multiset, so
// threads(N) produces byte-identical snapshots to threads(1) over the
// same values (LatencyRecorder.* tests, TSan-covered).
//
// Bucket layout (kSubBits = 5):
//   * values in [0, 32) get one exact bucket each (index == value);
//   * every octave [2^e, 2^(e+1)) above splits into 32 sub-buckets of
//     width 2^(e-5), so the relative bucket width is bounded by 1/32
//     everywhere — the HdrHistogram trick, integer-only, no floating
//     point on the record path;
//   * values at or above 2^kMaxExponent ns (~73 minutes) clamp into the
//     top bucket and are counted in `saturated`.
//
// Sharding contract: a Shard is single-writer.  record() is one relaxed
// fetch_add on the owning thread; concurrent readers (snapshot) see a
// consistent-enough view for monitoring, and an exact one once writers
// quiesce.  Bind threads to shards either explicitly (shard(i)) or via
// the round-robin thread_shard() helper.
//
// LatencySnapshot::publish_to() folds the merged counts into a
// MetricsRegistry Histogram (bucket geometric centers, weighted), which
// is how recorder contents reach the OpenMetrics `_bucket` series and
// `_percentile` gauges on /metrics.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dnsnoise::obs {

/// Fixed-point log2-linear bucket layout shared by recorder and snapshot.
struct LatencyBuckets {
  static constexpr unsigned kSubBits = 5;  // 32 sub-buckets per octave
  static constexpr std::uint64_t kSubCount = std::uint64_t{1} << kSubBits;
  static constexpr unsigned kMaxExponent = 42;  // ~73 min in ns
  /// 32 exact unit buckets + one 32-slot group per octave [2^5, 2^42).
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kSubCount) * (kMaxExponent - kSubBits + 1);

  /// Bucket index of value `v` (monotone in v).
  static constexpr std::size_t index(std::uint64_t v) noexcept {
    if (v < kSubCount) return static_cast<std::size_t>(v);
    unsigned e = std::bit_width(v) - 1;  // >= kSubBits
    if (e >= kMaxExponent) return kBucketCount - 1;
    const std::uint64_t slot = (v >> (e - kSubBits)) & (kSubCount - 1);
    return static_cast<std::size_t>(kSubCount * (e - kSubBits + 1) + slot);
  }

  /// Inclusive lower bound of bucket `i`.
  static constexpr std::uint64_t lower_bound(std::size_t i) noexcept {
    if (i < kSubCount) return i;
    const std::uint64_t octave = i / kSubCount - 1;
    const std::uint64_t slot = i % kSubCount;
    return (kSubCount + slot) << octave;
  }

  /// Exclusive upper bound of bucket `i`.
  static constexpr std::uint64_t upper_bound(std::size_t i) noexcept {
    if (i < kSubCount) return i + 1;
    return lower_bound(i) + (std::uint64_t{1} << (i / kSubCount - 1));
  }
};

/// Latency tail summary in seconds (loadgen results, bench gauges).
struct LatencyPercentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// Merged freeze of a recorder.  Counts are exact once writers quiesced.
struct LatencySnapshot {
  std::vector<std::uint64_t> counts;  // kBucketCount entries (empty if none)
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t min_ns = 0;  // 0 when empty
  std::uint64_t max_ns = 0;
  std::uint64_t saturated = 0;  // clamped into the top bucket

  bool empty() const noexcept { return count == 0; }
  double mean_ns() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum_ns) /
                                  static_cast<double>(count);
  }

  /// The estimated `q`-quantile in nanoseconds: walks the buckets to the
  /// target rank (rank = ceil(q * count), the smallest value whose CDF
  /// reaches q) and interpolates linearly within the covering bucket.
  /// Clamped to [min_ns, max_ns]; q <= 0 returns min_ns, q >= 1 returns
  /// max_ns, and an empty snapshot returns 0 everywhere.
  double quantile_ns(double q) const noexcept;

  /// p50/p90/p99/p999 in seconds via quantile_ns.
  LatencyPercentiles percentiles_seconds() const noexcept;

  /// Counts recorded since `prev` (bucket-wise subtraction); used to feed
  /// periodic deltas into a registry histogram.  `prev` must be an older
  /// snapshot of the same recorder.
  LatencySnapshot delta_since(const LatencySnapshot& prev) const;

  /// Folds the bucket counts into a registry histogram (geometric bucket
  /// centers in nanoseconds, weighted), putting recorder contents on the
  /// OpenMetrics `_bucket`/`_percentile` exposition path.
  void publish_to(Histogram& histogram) const;
};

/// Owner of the sharded bucket arrays.  Thread-safe: shard acquisition
/// is indexed (no lock), recording is wait-free on the owning thread.
class LatencyRecorder {
 public:
  /// One single-writer bucket array.  ~10KB; record() is one relaxed
  /// fetch_add plus min/max maintenance (single-writer, so plain
  /// load-compare-store suffices; readers use relaxed loads).
  class Shard {
   public:
    void record(std::uint64_t ns) noexcept {
      const std::size_t i = LatencyBuckets::index(ns);
      counts_[i].fetch_add(1, std::memory_order_relaxed);
      sum_ns_.fetch_add(ns, std::memory_order_relaxed);
      if (ns >= (std::uint64_t{1} << LatencyBuckets::kMaxExponent)) {
        saturated_.fetch_add(1, std::memory_order_relaxed);
      }
      // Single-writer contract: no CAS loop needed.
      if (ns > max_ns_.load(std::memory_order_relaxed)) {
        max_ns_.store(ns, std::memory_order_relaxed);
      }
      if (ns < min_ns_.load(std::memory_order_relaxed)) {
        min_ns_.store(ns, std::memory_order_relaxed);
      }
    }

   private:
    friend class LatencyRecorder;
    std::array<std::atomic<std::uint64_t>, LatencyBuckets::kBucketCount>
        counts_{};
    std::atomic<std::uint64_t> sum_ns_{0};
    std::atomic<std::uint64_t> min_ns_{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max_ns_{0};
    std::atomic<std::uint64_t> saturated_{0};
  };

  /// `shards` concurrent writers (at least 1).
  explicit LatencyRecorder(std::size_t shards = 1);

  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  Shard& shard(std::size_t i) noexcept { return *shards_[i % shards_.size()]; }

  /// The calling thread's round-robin shard: the first call from a thread
  /// binds it (mutex, slow path), later calls are a thread_local read.
  /// Distinct recorders bind independently.
  Shard& thread_shard();

  /// Zeroes every shard.  Callers must quiesce writers first (the
  /// warmup→measure reset happens at a worker barrier).
  void reset() noexcept;

  /// Deterministic merge of all shards: bucket-wise sums, so the result
  /// depends only on the recorded value multiset, not the shard
  /// assignment.  Exact once writers quiesced.
  LatencySnapshot snapshot() const;

 private:
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex bind_mutex_;
  std::size_t next_bind_ = 0;
};

/// One entry of the slow-query log: the total span plus the per-stage
/// breakdown that explains it — a trace exemplar for the tail.
struct SlowQueryEntry {
  std::uint64_t total_ns = 0;
  std::uint64_t decode_ns = 0;
  std::uint64_t cluster_ns = 0;
  std::uint64_t encode_ns = 0;
  std::uint64_t ts = 0;  // simulated timestamp of the query
  std::string qname;
};

/// Bounded worst-N log of slow queries.  maybe_add() is cheap when the
/// query is not slow: one relaxed threshold load rejects anything below
/// the current N-th slowest without taking the lock.  Admissions (rare
/// by construction) lock, insert, evict the fastest, and republish the
/// threshold.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(std::size_t capacity = 32);

  std::size_t capacity() const noexcept { return capacity_; }

  /// Whether a query of `total_ns` would currently be admitted — the
  /// lock-free fast path, exposed so callers can skip building the entry
  /// (qname copy) for the overwhelming non-slow majority.
  bool would_admit(std::uint64_t total_ns) const noexcept {
    return total_ns > threshold_ns_.load(std::memory_order_relaxed);
  }

  void maybe_add(const SlowQueryEntry& entry);

  /// The retained entries, slowest first.
  std::vector<SlowQueryEntry> entries() const;

  /// Drops every recorded entry and re-opens admission (threshold back
  /// to 0); POST /slowlog/clear ends up here.
  void clear();

  /// dnsnoise-slowlog-v1 JSON (entries slowest first, stage breakdown in
  /// nanoseconds); served by obs/telemetry_server on GET /slowlog.
  /// `max_entries` caps the emitted entries (0 = all retained).
  std::string to_json(std::size_t max_entries = 0) const;

 private:
  std::size_t capacity_;
  std::atomic<std::uint64_t> threshold_ns_{0};
  mutable std::mutex mutex_;
  std::vector<SlowQueryEntry> entries_;  // unordered; sorted on read
};

}  // namespace dnsnoise::obs
