// Pipeline event tracing: sampled per-query spans and instant events.
//
// Where obs/metrics aggregates (DESIGN.md §10), obs/trace records *when*:
// a TraceCollector owns one fixed-capacity ring buffer ("stream") per
// (pipeline stage, shard) pair, and instrumented sites append begin/end
// spans or instant events carrying the stage, shard, a name label, qtype,
// cache outcome, and a numeric id.  obs/trace_export serializes the frozen
// collector to Chrome-trace-event / Perfetto-compatible JSON
// (dnsnoise-trace-v1) and a text timeline summary.  Design constraints
// mirror the metrics layer (DESIGN.md §12 owns the details):
//
//   * Disabled must cost nothing.  Every site holds a nullable TraceStream
//     pointer and does nothing when it is null; no clock read, no atomic.
//     Tracing is opt-in per run (MiningSession::enable_tracing /
//     PipelineOptions::trace).
//   * Recording is lock-free.  A stream claims slots with one relaxed
//     fetch_add and writes fixed-size events in place; the ring overwrites
//     its oldest events when full (dropped() counts them) rather than ever
//     blocking or allocating.
//   * Stream acquisition is slow-path only.  stream(stage, shard) takes a
//     mutex and returns a stable reference; resolve it once at
//     attach/construction time, like metric handles.
//   * Sampling is deterministic.  Per-query spans are head-sampled every
//     config().sample_every_n queries with a phase offset derived from the
//     site's existing per-shard seed (TraceSampler), so the sampled set
//     depends only on (seed, shard, query order) — threads(N) records the
//     same trace content as threads(1), and tracing never touches the
//     simulation RNG streams.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace dnsnoise::obs {

/// Pipeline stage owning a stream; exported as the Chrome-trace pid.
enum class TraceStage : std::uint8_t {
  kWorkload = 1,
  kCluster = 2,
  kEngine = 3,
  kMiner = 4,
};

/// Instrumented site; exported as the event name.  Values index
/// trace_op_name(), so keep the two in sync.
enum class TraceOp : std::uint8_t {
  kWorkloadDay = 0,      // one span per generated (shard-)day
  kWorkloadSample,       // sampled query generation span
  kClusterSimulate,      // classic pipeline: whole simulated day
  kClusterQuery,         // sampled client query span (hit/miss/nx outcome)
  kEngineShard,          // one span per shard simulation
  kEngineMerge,          // shard-merge span
  kEngineClassify,       // parallel classify fan-out span
  kMinerLabel,           // zone labeling span
  kMinerTrain,           // model training span
  kMinerMine,            // whole Algorithm 1 span
  kMinerEvaluate,        // evaluation span
  kMinerZone,            // per effective-2LD zone walk span
  kMinerGroupClassify,   // instant: one (zone, depth) group classified
  kMinerDecolor,         // instant: one group decolored (id = names)
};

/// Static name of `op` ("cluster.query", ...).
std::string_view trace_op_name(TraceOp op) noexcept;

/// Static name of `stage` ("workload", "cluster", "engine", "miner").
std::string_view trace_stage_name(TraceStage stage) noexcept;

/// Cache outcome annotation for query spans.
enum class TraceOutcome : std::uint8_t { kNone = 0, kHit, kMiss, kNxDomain };

/// Sentinel for "no id" (0 is a valid NameId / depth).
inline constexpr std::uint64_t kTraceNoId = ~0ULL;

/// One recorded event.  Fixed size so the ring never allocates; `label`
/// is a truncated NUL-terminated copy (qname, zone) or empty.
struct TraceEvent {
  std::uint64_t ts_ns = 0;   // steady-clock ns since collector epoch
  std::uint64_t dur_ns = 0;  // 0 for instants
  std::uint64_t id = kTraceNoId;
  TraceOp op = TraceOp::kWorkloadDay;
  TraceOutcome outcome = TraceOutcome::kNone;
  std::uint16_t qtype = 0;  // 0 = unset (qtype 0 is reserved in DNS)
  bool instant = false;
  char label[40] = {};

  void set_label(std::string_view text) noexcept {
    const std::size_t n = text.size() < sizeof(label) - 1
                              ? text.size()
                              : sizeof(label) - 1;
    std::memcpy(label, text.data(), n);
    label[n] = '\0';
  }
};

struct TraceConfig {
  /// Head-sampling period for per-query spans: record 1 of every N.  1
  /// traces every query; sites sample deterministically via TraceSampler.
  std::uint64_t sample_every_n = 64;
  /// Events per (stage, shard) stream; the ring overwrites its oldest
  /// events beyond this (TraceStream::dropped counts them).
  std::size_t ring_capacity = std::size_t{1} << 15;
};

/// One single-purpose ring buffer of events.  record() is wait-free: one
/// relaxed fetch_add to claim a slot, then an in-place write.  Concurrent
/// writers are allowed (the classify fan-out shares the miner stream),
/// with one constraint: two in-flight writers must never be a full ring
/// lap (capacity events) apart, or they write the same physical slot
/// concurrently (a torn event).  Shared-stream sites must therefore keep
/// ring_capacity far above writer count; dropped() > 0 on a shared stream
/// means the ring wrapped and that margin should be checked (the exporter
/// surfaces it as dropped_events / a text-summary warning).  Reads
/// (snapshot) must only happen after writers quiesced — the collector is
/// frozen between pipeline phases, never mid-phase.
class TraceStream {
 public:
  TraceStream(TraceStage stage, std::uint32_t shard, std::size_t capacity)
      : stage_(stage), shard_(shard), ring_(capacity) {}

  TraceStream(const TraceStream&) = delete;
  TraceStream& operator=(const TraceStream&) = delete;

  TraceStage stage() const noexcept { return stage_; }
  std::uint32_t shard() const noexcept { return shard_; }

  /// Appends a completed span.  `start_ns`/`dur_ns` come from the owning
  /// collector's clock (TraceCollector::now_ns).
  void span(TraceOp op, std::uint64_t start_ns, std::uint64_t dur_ns,
            std::string_view label = {}, std::uint16_t qtype = 0,
            TraceOutcome outcome = TraceOutcome::kNone,
            std::uint64_t id = kTraceNoId) noexcept {
    TraceEvent& slot = claim();
    slot.ts_ns = start_ns;
    slot.dur_ns = dur_ns;
    slot.id = id;
    slot.op = op;
    slot.outcome = outcome;
    slot.qtype = qtype;
    slot.instant = false;
    slot.set_label(label);
  }

  /// Appends an instant event.
  void instant(TraceOp op, std::uint64_t ts_ns, std::string_view label = {},
               std::uint64_t id = kTraceNoId) noexcept {
    TraceEvent& slot = claim();
    slot.ts_ns = ts_ns;
    slot.dur_ns = 0;
    slot.id = id;
    slot.op = op;
    slot.outcome = TraceOutcome::kNone;
    slot.qtype = 0;
    slot.instant = true;
    slot.set_label(label);
  }

  /// Events recorded (including overwritten ones).
  std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }
  /// Events lost to ring wrap-around.
  std::uint64_t dropped() const noexcept {
    const std::uint64_t n = recorded();
    return n > ring_.size() ? n - ring_.size() : 0;
  }

  /// The resident events in record order (oldest surviving first).  Only
  /// valid while no writer is active.
  std::vector<TraceEvent> drain_ordered() const;

 private:
  TraceEvent& claim() noexcept {
    const std::uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
    return ring_[static_cast<std::size_t>(slot % ring_.size())];
  }

  TraceStage stage_;
  std::uint32_t shard_;
  std::atomic<std::uint64_t> next_{0};
  std::vector<TraceEvent> ring_;
};

/// Deterministic head sampler for per-query spans: fires on every
/// `every_n`-th call with a phase offset mixed from `seed` (use the site's
/// existing per-shard seed), so the sampled subset is a pure function of
/// (seed, call order) — identical across thread counts and runs.
class TraceSampler {
 public:
  TraceSampler() = default;
  TraceSampler(std::uint64_t every_n, std::uint64_t seed) noexcept
      : every_n_(every_n == 0 ? 1 : every_n),
        counter_(mix64(seed) % (every_n == 0 ? 1 : every_n)) {}

  bool sample() noexcept { return counter_++ % every_n_ == 0; }

 private:
  std::uint64_t every_n_ = 1;
  std::uint64_t counter_ = 0;
};

/// One event frozen out of a stream, with its (stage, shard) coordinates.
struct TraceSnapshotEvent {
  TraceStage stage = TraceStage::kWorkload;
  std::uint32_t shard = 0;
  TraceEvent event;
};

/// Freeze of a collector: all streams' events in (stage, shard, record)
/// order; input to obs/trace_export.
struct TraceSnapshot {
  std::vector<TraceSnapshotEvent> events;
  std::uint64_t dropped = 0;  // total events lost to ring wrap-around
  TraceConfig config;

  bool empty() const noexcept { return events.empty(); }
};

/// Owner of all trace streams of one pipeline run.  Thread-safe
/// throughout: stream acquisition locks, recording does not.  Returned
/// stream references stay valid for the collector's lifetime.
class TraceCollector {
 public:
  explicit TraceCollector(TraceConfig config = {});
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  const TraceConfig& config() const noexcept { return config_; }

  /// Steady-clock nanoseconds since the collector was constructed.
  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Finds or creates the stream of (stage, shard).  Slow path (mutex);
  /// resolve once and cache the pointer, like metric handles.
  TraceStream& stream(TraceStage stage, std::uint32_t shard);

  /// A sampler for per-query spans at (stage, shard), phase-seeded from
  /// `seed` (pass the site's existing per-shard seed).
  TraceSampler sampler(std::uint64_t seed) const noexcept {
    return TraceSampler(config_.sample_every_n, seed);
  }

  std::size_t stream_count() const;

  /// Freezes every stream, (stage, shard, record-order)-sorted.  Call only
  /// while no writer is active (between pipeline phases / after run()).
  TraceSnapshot snapshot() const;

 private:
  TraceConfig config_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::map<std::pair<std::uint8_t, std::uint32_t>,
           std::unique_ptr<TraceStream>>
      streams_;
};

/// RAII span helper mirroring StageTimer: a null stream disables the span
/// entirely (no clock read).  Annotations may be set any time before the
/// span closes; the label is copied (truncated to TraceEvent capacity), so
/// passing a transient string is safe even though the span records at
/// scope exit.
class TraceSpan {
 public:
  TraceSpan(TraceStream* stream, TraceCollector* collector,
            TraceOp op) noexcept
      : stream_(stream), collector_(collector), op_(op) {
    if (stream_ != nullptr) start_ns_ = collector_->now_ns();
  }
  ~TraceSpan() { stop(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void annotate(std::string_view label, std::uint16_t qtype = 0,
                TraceOutcome outcome = TraceOutcome::kNone,
                std::uint64_t id = kTraceNoId) noexcept {
    if (stream_ == nullptr) return;
    // Copied, not referenced: the span usually records at scope exit,
    // after a caller-local label string has been destroyed.
    label_len_ = label.size() < sizeof(label_) - 1 ? label.size()
                                                   : sizeof(label_) - 1;
    if (label_len_ != 0) std::memcpy(label_, label.data(), label_len_);
    qtype_ = qtype;
    outcome_ = outcome;
    id_ = id;
  }

  /// Records the span now instead of at scope exit.  Idempotent.
  void stop() noexcept {
    if (stream_ == nullptr) return;
    stream_->span(op_, start_ns_, collector_->now_ns() - start_ns_,
                  std::string_view(label_, label_len_), qtype_, outcome_,
                  id_);
    stream_ = nullptr;
  }

 private:
  TraceStream* stream_;
  TraceCollector* collector_;
  TraceOp op_;
  std::uint64_t start_ns_ = 0;
  char label_[sizeof(TraceEvent::label)] = {};
  std::size_t label_len_ = 0;
  std::uint16_t qtype_ = 0;
  TraceOutcome outcome_ = TraceOutcome::kNone;
  std::uint64_t id_ = kTraceNoId;
};

}  // namespace dnsnoise::obs
