#include "obs/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace dnsnoise::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_key(std::string& out, int indent, std::string_view name) {
  out.append(static_cast<std::size_t>(indent), ' ');
  out += '"';
  out += json_escape(name);
  out += "\": ";
}

void json_string(std::string& out, std::string_view value) {
  out += '"';
  out += json_escape(value);
  out += '"';
}

std::string format_double(double v) {
  // JSON has no inf/nan: absent-by-definition values serialize as null,
  // overflowed rates clamp to the largest finite double (keeping their
  // sign and "huge" ordering for the bench regression gates).
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) {
    v = v > 0 ? std::numeric_limits<double>::max()
              : std::numeric_limits<double>::lowest();
  }
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
}

bool write_json_file(const std::string& path, const std::string& json) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = std::fclose(file) == 0 && written == json.size();
  return ok;
}

}  // namespace dnsnoise::obs
