#include "obs/json_snapshot.h"

#include <vector>

namespace dnsnoise::obs {

namespace {

template <typename Sample, typename Emit>
void object_section(std::string& out, std::string_view section,
                    const std::vector<const Sample*>& samples, Emit emit,
                    bool& first_section) {
  if (!first_section) out += ",\n";
  first_section = false;
  json_key(out, 2, section);
  if (samples.empty()) {
    out += "{}";
    return;
  }
  out += "{\n";
  bool first = true;
  for (const Sample* sample : samples) {
    if (!first) out += ",\n";
    first = false;
    emit(*sample);
  }
  out += "\n  }";
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot,
                    const std::map<std::string, std::string>& meta) {
  std::vector<const MetricSample*> counters;
  std::vector<const MetricSample*> gauges;
  std::vector<const MetricSample*> timers;
  std::vector<const MetricSample*> histograms;
  for (const MetricSample& sample : snapshot.samples) {
    switch (sample.kind) {
      case MetricKind::kCounter: counters.push_back(&sample); break;
      case MetricKind::kGauge: gauges.push_back(&sample); break;
      case MetricKind::kTimer: timers.push_back(&sample); break;
      case MetricKind::kHistogram: histograms.push_back(&sample); break;
    }
  }

  std::string out = "{\n  \"schema\": \"dnsnoise-metrics-v1\"";
  if (!meta.empty()) {
    out += ",\n";
    json_key(out, 2, "meta");
    out += "{\n";
    bool first = true;
    for (const auto& [k, v] : meta) {
      if (!first) out += ",\n";
      first = false;
      json_key(out, 4, k);
      json_string(out, v);
    }
    out += "\n  }";
  }
  out += ",\n";

  bool first_section = true;
  object_section(out, "counters", counters, [&out](const MetricSample& s) {
    json_key(out, 4, s.name);
    out += std::to_string(s.count);
  }, first_section);
  object_section(out, "gauges", gauges, [&out](const MetricSample& s) {
    json_key(out, 4, s.name);
    out += format_double(s.value);
  }, first_section);
  object_section(out, "timers", timers, [&out](const MetricSample& s) {
    json_key(out, 4, s.name);
    out += "{\"count\": " + std::to_string(s.count) +
           ", \"total_seconds\": " + format_double(s.total_seconds) +
           ", \"min_seconds\": " + format_double(s.min_seconds) +
           ", \"max_seconds\": " + format_double(s.max_seconds) + "}";
  }, first_section);
  object_section(out, "histograms", histograms,
                 [&out](const MetricSample& s) {
    const HistogramPercentiles tails = estimate_percentiles(s);
    json_key(out, 4, s.name);
    out += "{\"count\": " + std::to_string(s.count) +
           ", \"zero_count\": " + std::to_string(s.zero_count) +
           ", \"p50\": " + format_double(tails.p50) +
           ", \"p90\": " + format_double(tails.p90) +
           ", \"p99\": " + format_double(tails.p99) +
           ", \"p999\": " + format_double(tails.p999) +
           ", \"bins\": [";
    bool first = true;
    for (const SnapshotBin& bin : s.bins) {
      if (!first) out += ", ";
      first = false;
      out += "{\"lo\": " + format_double(bin.lo) +
             ", \"hi\": " + format_double(bin.hi) +
             ", \"count\": " + std::to_string(bin.count) + "}";
    }
    out += "]}";
  }, first_section);

  out += "\n}\n";
  return out;
}

}  // namespace dnsnoise::obs
