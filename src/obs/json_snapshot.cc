#include "obs/json_snapshot.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>

namespace dnsnoise::obs {

namespace {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Appends `"key": ` at the given indent.
void key(std::string& out, int indent, std::string_view name) {
  out.append(static_cast<std::size_t>(indent), ' ');
  out += '"';
  out += escape(name);
  out += "\": ";
}

template <typename Sample, typename Emit>
void object_section(std::string& out, std::string_view section,
                    const std::vector<const Sample*>& samples, Emit emit,
                    bool& first_section) {
  if (!first_section) out += ",\n";
  first_section = false;
  key(out, 2, section);
  if (samples.empty()) {
    out += "{}";
    return;
  }
  out += "{\n";
  bool first = true;
  for (const Sample* sample : samples) {
    if (!first) out += ",\n";
    first = false;
    emit(*sample);
  }
  out += "\n  }";
}

}  // namespace

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
}

std::string to_json(const MetricsSnapshot& snapshot,
                    const std::map<std::string, std::string>& meta) {
  std::vector<const MetricSample*> counters;
  std::vector<const MetricSample*> gauges;
  std::vector<const MetricSample*> timers;
  std::vector<const MetricSample*> histograms;
  for (const MetricSample& sample : snapshot.samples) {
    switch (sample.kind) {
      case MetricKind::kCounter: counters.push_back(&sample); break;
      case MetricKind::kGauge: gauges.push_back(&sample); break;
      case MetricKind::kTimer: timers.push_back(&sample); break;
      case MetricKind::kHistogram: histograms.push_back(&sample); break;
    }
  }

  std::string out = "{\n  \"schema\": \"dnsnoise-metrics-v1\"";
  if (!meta.empty()) {
    out += ",\n";
    key(out, 2, "meta");
    out += "{\n";
    bool first = true;
    for (const auto& [k, v] : meta) {
      if (!first) out += ",\n";
      first = false;
      key(out, 4, k);
      out += '"';
      out += escape(v);
      out += '"';
    }
    out += "\n  }";
  }
  out += ",\n";

  bool first_section = true;
  object_section(out, "counters", counters, [&out](const MetricSample& s) {
    key(out, 4, s.name);
    out += std::to_string(s.count);
  }, first_section);
  object_section(out, "gauges", gauges, [&out](const MetricSample& s) {
    key(out, 4, s.name);
    out += format_double(s.value);
  }, first_section);
  object_section(out, "timers", timers, [&out](const MetricSample& s) {
    key(out, 4, s.name);
    out += "{\"count\": " + std::to_string(s.count) +
           ", \"total_seconds\": " + format_double(s.total_seconds) +
           ", \"min_seconds\": " + format_double(s.min_seconds) +
           ", \"max_seconds\": " + format_double(s.max_seconds) + "}";
  }, first_section);
  object_section(out, "histograms", histograms,
                 [&out](const MetricSample& s) {
    key(out, 4, s.name);
    out += "{\"count\": " + std::to_string(s.count) +
           ", \"zero_count\": " + std::to_string(s.zero_count) +
           ", \"bins\": [";
    bool first = true;
    for (const SnapshotBin& bin : s.bins) {
      if (!first) out += ", ";
      first = false;
      out += "{\"lo\": " + format_double(bin.lo) +
             ", \"hi\": " + format_double(bin.hi) +
             ", \"count\": " + std::to_string(bin.count) + "}";
    }
    out += "]}";
  }, first_section);

  out += "\n}\n";
  return out;
}

bool write_json_file(const std::string& path, const std::string& json) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = std::fclose(file) == 0 && written == json.size();
  return ok;
}

}  // namespace dnsnoise::obs
