// Stable JSON export of a MetricsSnapshot.
//
// One schema serves both consumers: MiningDayResult::metrics_json (a full
// pipeline run) and the BENCH_*.json perf-trajectory files the bench
// binaries emit (tools/check_bench_regression.py gates CI on those).
//
//   {
//     "schema": "dnsnoise-metrics-v1",
//     "meta": {"bench": "micro_throughput"},          // optional, sorted
//     "counters":   {"name": 123, ...},
//     "gauges":     {"name": 1.5, ...},
//     "timers":     {"name": {"count": N, "total_seconds": s,
//                             "min_seconds": s, "max_seconds": s}, ...},
//     "histograms": {"name": {"count": N, "zero_count": Z,
//                             "p50": x, "p90": x, "p99": x, "p999": x,
//                             "bins": [{"lo": x, "hi": y, "count": n}]}, ...}
//   }
//
// Histogram percentiles are estimated from the log-scale bucket counts
// (obs::estimate_percentiles): geometric interpolation within the
// covering bin, so per-stage latency tails are first-class in every
// exported snapshot.
//
// Stability contract: keys are name-sorted, layout is fixed (2-space
// indent, one key per line), and doubles use the shortest round-trip
// representation — serializing the same snapshot twice yields byte-identical
// text, and semantically-equal registries diff clean.
#pragma once

#include <map>
#include <string>

#include "obs/json_writer.h"  // format_double / write_json_file live here
#include "obs/metrics.h"

namespace dnsnoise::obs {

/// Serializes `snapshot` (plus optional "meta" string pairs) to the schema
/// above.
std::string to_json(const MetricsSnapshot& snapshot,
                    const std::map<std::string, std::string>& meta = {});

}  // namespace dnsnoise::obs
