#include "obs/openmetrics.h"

#include <vector>

#include "obs/json_writer.h"

namespace dnsnoise::obs {

namespace {

bool valid_name_byte(char c, bool allow_colon) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || (allow_colon && c == ':');
}

std::string sanitize(std::string_view name, bool allow_colon) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out += valid_name_byte(c, allow_colon) ? c : '_';
  }
  return out;
}

/// `{a="b",c="d"}` from sanitized-name/escaped-value pairs; "" when empty.
std::string render_labels(
    const std::map<std::string, std::string>& labels,
    std::string_view extra_name = {}, std::string_view extra_value = {}) {
  if (labels.empty() && extra_name.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += sanitize(name, /*allow_colon=*/false);
    out += "=\"";
    out += openmetrics_escape_label(value);
    out += '"';
  }
  if (!extra_name.empty()) {
    if (!first) out += ',';
    out += extra_name;
    out += "=\"";
    out += openmetrics_escape_label(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

void emit_type(std::string& out, const std::string& family,
               std::string_view type) {
  out += "# TYPE ";
  out += family;
  out += ' ';
  out += type;
  out += '\n';
}

void emit_sample(std::string& out, const std::string& series,
                 const std::string& labels, const std::string& value) {
  out += series;
  out += labels;
  out += ' ';
  out += value;
  out += '\n';
}

void emit_histogram(std::string& out, const std::string& family,
                    const MetricSample& sample,
                    const std::map<std::string, std::string>& labels,
                    const std::string& plain_labels) {
  emit_type(out, family, "histogram");
  // Cumulative buckets: the underflow bin (values < 1) under le="1", then
  // every non-empty log bin under its upper edge, closed by le="+Inf".
  std::uint64_t cumulative = sample.zero_count;
  emit_sample(out, family + "_bucket", render_labels(labels, "le", "1"),
              std::to_string(cumulative));
  for (const SnapshotBin& bin : sample.bins) {
    cumulative += bin.count;
    emit_sample(out, family + "_bucket",
                render_labels(labels, "le", format_double(bin.hi)),
                std::to_string(cumulative));
  }
  emit_sample(out, family + "_bucket", render_labels(labels, "le", "+Inf"),
              std::to_string(sample.count));
  emit_sample(out, family + "_sum", plain_labels,
              format_double(estimate_sum(sample)));
  emit_sample(out, family + "_count", plain_labels,
              std::to_string(sample.count));
  // Latency-tail estimates as a companion gauge family (histogram
  // families admit no extra series, and `quantile` is reserved for
  // summaries, so the percentile label is `p`).
  const HistogramPercentiles tails = estimate_percentiles(sample);
  const std::string percentile = family + "_percentile";
  emit_type(out, percentile, "gauge");
  const std::pair<const char*, double> series[] = {
      {"50", tails.p50}, {"90", tails.p90},
      {"99", tails.p99}, {"99.9", tails.p999}};
  for (const auto& [p, value] : series) {
    emit_sample(out, percentile, render_labels(labels, "p", p),
                format_double(value));
  }
}

}  // namespace

std::string openmetrics_name(std::string_view name) {
  return "dnsnoise_" + sanitize(name, /*allow_colon=*/true);
}

std::string openmetrics_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string to_openmetrics(const MetricsSnapshot& snapshot,
                           const std::map<std::string, std::string>& labels) {
  std::string out;
  out.reserve(snapshot.samples.size() * 96 + 128);
  const std::string plain_labels = render_labels(labels);
  emit_type(out, "dnsnoise_telemetry", "info");
  emit_sample(out, "dnsnoise_telemetry_info",
              render_labels(labels, "schema", "dnsnoise-openmetrics-v1"),
              "1");
  for (const MetricSample& sample : snapshot.samples) {
    const std::string family = openmetrics_name(sample.name);
    switch (sample.kind) {
      case MetricKind::kCounter:
        emit_type(out, family, "counter");
        emit_sample(out, family + "_total", plain_labels,
                    std::to_string(sample.count));
        break;
      case MetricKind::kGauge:
        emit_type(out, family, "gauge");
        emit_sample(out, family, plain_labels, format_double(sample.value));
        break;
      case MetricKind::kTimer: {
        const std::string seconds = family + "_seconds";
        emit_type(out, seconds, "summary");
        emit_sample(out, seconds + "_count", plain_labels,
                    std::to_string(sample.count));
        emit_sample(out, seconds + "_sum", plain_labels,
                    format_double(sample.total_seconds));
        emit_type(out, family + "_min_seconds", "gauge");
        emit_sample(out, family + "_min_seconds", plain_labels,
                    format_double(sample.min_seconds));
        emit_type(out, family + "_max_seconds", "gauge");
        emit_sample(out, family + "_max_seconds", plain_labels,
                    format_double(sample.max_seconds));
        break;
      }
      case MetricKind::kHistogram:
        emit_histogram(out, family, sample, labels, plain_labels);
        break;
    }
  }
  out += "# EOF\n";
  return out;
}

}  // namespace dnsnoise::obs
