// Pipeline observability: a lock-cheap metrics registry with RAII stage
// timers.
//
// The registry is the single sink every pipeline stage reports into —
// workload generation, the RDNS cluster, the sharded engine, and the miner
// each register named metrics under their stage prefix (DESIGN.md §10 owns
// the taxonomy).  Design constraints, in order:
//
//   * Disabled must cost nothing.  Every instrumentation site holds a
//     nullable metric pointer and does nothing when it is null; no clock is
//     read, no atomic touched.  Metrics are opt-in per run
//     (MiningSession::enable_metrics / PipelineOptions::metrics).
//   * Hot paths are lock-free.  Counter and Gauge are single relaxed
//     atomics; shard workers hammer them concurrently without contention on
//     anything wider.
//   * Cold paths may lock.  Histogram guards a util/histogram LogHistogram
//     with a spinlock and Timer uses CAS min/max — both record at stage
//     granularity (per batch, per group, per shard), orders of magnitude
//     below the per-query rate.
//   * Registration is slow-path only.  counter()/gauge()/timer()/histogram()
//     take a mutex and return a stable reference; call them once at
//     attach/construction time and cache the pointer, never per event.
//
// snapshot() freezes the registry into a name-sorted MetricsSnapshot;
// obs/json_snapshot.h serializes that to stable, diff-friendly JSON.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.h"

namespace dnsnoise::obs {

/// Monotonic event count.  Lock-free; safe to add() from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written double (queue depths, per-shard seconds, bench rates).
/// Lock-free; set/add/set_max are safe from any thread.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept;
  /// Raises the gauge to `v` if larger (high-water marks).
  void set_max(double v) noexcept;
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Duration accumulator: count / total / min / max in nanoseconds, all
/// lock-free.  Fed by StageTimer; record_ns is exposed for pre-measured
/// spans.
class Timer {
 public:
  void record_ns(std::uint64_t ns) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  /// 0 when no span has been recorded.
  std::uint64_t min_ns() const noexcept;
  std::uint64_t max_ns() const noexcept {
    return max_ns_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> min_ns_{~0ULL};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Latency/size distribution: a util/histogram LogHistogram behind a
/// spinlock.  record() is cheap-but-not-free; use it at batch/stage
/// granularity, not per query.
class Histogram {
 public:
  explicit Histogram(double max = 1e9, std::size_t bins_per_decade = 4)
      : hist_(max, bins_per_decade) {}

  void record(double value, std::uint64_t weight = 1) noexcept {
    while (lock_.test_and_set(std::memory_order_acquire)) {}
    hist_.add(value, weight);
    lock_.clear(std::memory_order_release);
  }

  /// Consistent copy of the underlying histogram (snapshot path).
  LogHistogram copy() const {
    while (lock_.test_and_set(std::memory_order_acquire)) {}
    LogHistogram out = hist_;
    lock_.clear(std::memory_order_release);
    return out;
  }

 private:
  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  LogHistogram hist_;
};

/// RAII wall-clock span over a pipeline stage.  A null timer disables the
/// span entirely — the clock is never read, so instrumented code paths cost
/// one predictable branch when metrics are off.
class StageTimer {
 public:
  explicit StageTimer(Timer* timer) noexcept : timer_(timer) {
    if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~StageTimer() { stop(); }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Records the span now instead of at scope exit.  Idempotent.
  void stop() noexcept {
    if (timer_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_);
    timer_->record_ns(static_cast<std::uint64_t>(ns.count()));
    timer_ = nullptr;
  }

  /// Seconds elapsed so far (0 when disabled).
  double elapsed_seconds() const noexcept {
    if (timer_ == nullptr) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_{};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kTimer, kHistogram };

/// One non-empty bin of a snapshot histogram.
struct SnapshotBin {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
};

/// One metric frozen out of the registry.  Which fields are meaningful
/// depends on `kind`; unused fields stay zero so snapshots of the same
/// registry state are bitwise identical.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;        // counter value; timer/histogram count
  double value = 0.0;             // gauge value
  double total_seconds = 0.0;     // timer
  double min_seconds = 0.0;       // timer
  double max_seconds = 0.0;       // timer
  std::uint64_t zero_count = 0;   // histogram underflow bin
  std::vector<SnapshotBin> bins;  // histogram non-empty bins, ascending
};

/// Name-sorted freeze of a registry; input to the JSON exporter.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  bool empty() const noexcept { return samples.empty(); }
  /// The sample with `name`, or nullptr.
  const MetricSample* find(std::string_view name) const noexcept;
};

/// Latency-tail estimates derived from a frozen histogram sample's
/// log-scale buckets (obs/json_snapshot and obs/openmetrics both expose
/// them).  Bucket counts only bound each quantile to a bin; within the
/// bin the estimate interpolates geometrically (the bins are log-spaced),
/// so the error is bounded by the bin ratio (~78% worst case at the
/// default 4 bins/decade), which is plenty for tail monitoring.
struct HistogramPercentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// The estimated `q`-quantile (0 < q < 1) of a kHistogram sample: walks
/// the underflow bin then the ascending buckets to the target rank and
/// interpolates within the covering bin.  Returns 0 for an empty
/// histogram or a rank landing in the underflow bin (values < 1).
double estimate_quantile(const MetricSample& histogram, double q) noexcept;

/// p50/p90/p99/p999 of a kHistogram sample via estimate_quantile.
HistogramPercentiles estimate_percentiles(
    const MetricSample& histogram) noexcept;

/// The estimated sum of all recorded values of a kHistogram sample
/// (geometric bin centers weighted by count; the underflow bin
/// contributes 0).  The OpenMetrics `_sum` series uses this.
double estimate_sum(const MetricSample& histogram) noexcept;

/// Owner of all metrics of one pipeline run.  Thread-safe throughout:
/// registration locks, recording does not (see class comments above).
/// Returned references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric.  Throws std::logic_error when the
  /// name is already registered with a different kind.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);
  /// `max`/`bins_per_decade` apply on first registration only.
  Histogram& histogram(std::string_view name, double max = 1e9,
                       std::size_t bins_per_decade = 4);

  std::size_t size() const;

  /// Freezes every registered metric, sorted by name.
  MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Timer> timer;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, MetricKind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace dnsnoise::obs
