// Live telemetry endpoint for long mining runs (DESIGN.md §13).
//
// Where obs/json_snapshot and obs/trace_export make a run inspectable
// *after* it finishes, TelemetryServer makes it observable *while it
// mines*: a net/HttpListener accept thread serves
//
//   GET /metrics  OpenMetrics exposition of a live MetricsRegistry
//                 snapshot (obs/openmetrics; counters, gauges, timers,
//                 native histogram series with percentile gauges),
//   GET /healthz  JSON health document (schema dnsnoise-health-v1):
//                 per-stage liveness from the obs.heartbeat.* gauges,
//                 HTTP 200 when healthy/idle, 503 when a stage stalled
//                 while obs.run_active is 1,
//   GET /trace    the most recently published dnsnoise-trace-v1 JSON
//                 (publish_trace), 404 before the first snapshot,
//   GET /slowlog  the live dnsnoise-slowlog-v1 document of the wired
//                 slow-query log (set_slowlog_source), 404 when no
//                 source is attached; ?n=N caps the returned entries,
//   POST /slowlog/clear
//                 drops all recorded slow queries (and the admission
//                 threshold) of the wired log,
//   GET /traffic  the live dnsnoise-traffic-v1 document of the wired
//                 traffic sketch plane (set_traffic_source), 404 when
//                 no plane is attached,
//   GET /         a plain-text index of the above.
//
// Query strings are parsed strictly: a malformed query (a segment
// without '=', an empty key, or an invalid value for a recognized
// parameter) is a 400, never silently ignored.  Well-formed parameters
// an endpoint does not recognize are ignored, so scrapers may append
// ?format=... style noise.
//
// Obs contract: strictly opt-in (MiningSession::enable_telemetry /
// PipelineOptions::telemetry_port), zero hot-path overhead — every
// snapshot is taken on the scrape thread via the registry's established
// concurrent-snapshot path, no new locks touch the query path, and
// mining findings are bit-identical with the server on or off
// (TelemetryPipeline.* tests).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/http_listener.h"
#include "obs/metrics.h"

namespace dnsnoise::obs {

struct TelemetryConfig {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// /healthz flags a stage as stalled when its heartbeat is older than
  /// this while a run is active.
  double stall_seconds = 30.0;
  /// Constant labels stamped on every exported OpenMetrics series.
  std::map<std::string, std::string> labels;
};

/// One stage row of the health document.
struct StageHealth {
  std::string stage;
  double age_seconds = 0.0;
  bool ok = true;
};

/// The /healthz payload, also available to code via render_health().
struct HealthDocument {
  bool healthy = true;
  bool run_active = false;
  std::vector<StageHealth> stages;
  std::string json;  // schema dnsnoise-health-v1
};

/// The GET /slowlog + POST /slowlog/clear wiring.  Both callables run on
/// the scrape thread, must be thread-safe, and must stay valid until the
/// source is replaced — owners with a shorter lifetime than the server
/// (a served day's wire frontend) must detach on teardown.
struct SlowlogSource {
  /// Renders the dnsnoise-slowlog-v1 document, returning at most
  /// `max_entries` entries (0 = no cap).
  std::function<std::string(std::size_t max_entries)> render;
  /// Drops all recorded entries (POST /slowlog/clear); optional — when
  /// absent the endpoint answers 404.
  std::function<void()> clear;
};

/// Pure health evaluation (unit-testable without sockets): derives
/// per-stage ages from the obs.heartbeat.* gauges in `snapshot` against
/// `now_seconds` (pass heartbeat_clock_seconds()).  Freshness is only
/// enforced while obs.run_active is 1 — an idle pipeline is healthy by
/// definition, reported as status "idle".
HealthDocument render_health(const MetricsSnapshot& snapshot,
                             double now_seconds, double stall_seconds);

class TelemetryServer {
 public:
  /// The registry must outlive the server.
  explicit TelemetryServer(const MetricsRegistry& registry,
                           TelemetryConfig config = {});
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds and starts serving.  False (reason in error()) when the port
  /// is unavailable; the pipeline then simply runs unobserved.
  bool start();
  void stop();

  bool running() const noexcept { return listener_.running(); }
  std::uint16_t port() const noexcept { return listener_.port(); }
  const std::string& error() const noexcept { return listener_.error(); }
  const TelemetryConfig& config() const noexcept { return config_; }

  /// Publishes a frozen dnsnoise-trace-v1 document for GET /trace.
  /// Trace snapshots must be taken between pipeline phases (the
  /// TraceCollector contract), so the session pushes them here instead
  /// of the scrape thread pulling mid-run.
  void publish_trace(std::string trace_json);

  /// Attaches (or, with an empty render, detaches) the /slowlog source.
  void set_slowlog_source(SlowlogSource source);

  /// Attaches (or, with nullptr, detaches) the GET /traffic source —
  /// TrafficSketchPlane::to_json of the live plane.  Same contract as
  /// the slowlog source: runs on the scrape thread, must be thread-safe
  /// and valid until replaced.
  void set_traffic_source(std::function<std::string()> source);

  /// Hook run on the scrape thread just before every /metrics snapshot;
  /// the session wires TrafficSketchPlane::publish_gauges here so the
  /// traffic.* gauges are fresh at scrape time without any hot-path
  /// publication.  nullptr detaches.
  void set_metrics_refresh(std::function<void()> refresh);

  /// Serves one request; exposed for tests (the listener calls this).
  net::HttpResponse handle(const net::HttpRequest& request) const;

 private:
  const MetricsRegistry& registry_;
  TelemetryConfig config_;
  net::HttpListener listener_;
  mutable std::mutex trace_mutex_;
  std::string trace_json_;
  mutable std::mutex slowlog_mutex_;
  SlowlogSource slowlog_source_;
  mutable std::mutex traffic_mutex_;
  std::function<std::string()> traffic_source_;
  mutable std::mutex refresh_mutex_;
  std::function<void()> metrics_refresh_;
};

}  // namespace dnsnoise::obs
