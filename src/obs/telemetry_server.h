// Live telemetry endpoint for long mining runs (DESIGN.md §13).
//
// Where obs/json_snapshot and obs/trace_export make a run inspectable
// *after* it finishes, TelemetryServer makes it observable *while it
// mines*: a net/HttpListener accept thread serves
//
//   GET /metrics  OpenMetrics exposition of a live MetricsRegistry
//                 snapshot (obs/openmetrics; counters, gauges, timers,
//                 native histogram series with percentile gauges),
//   GET /healthz  JSON health document (schema dnsnoise-health-v1):
//                 per-stage liveness from the obs.heartbeat.* gauges,
//                 HTTP 200 when healthy/idle, 503 when a stage stalled
//                 while obs.run_active is 1,
//   GET /trace    the most recently published dnsnoise-trace-v1 JSON
//                 (publish_trace), 404 before the first snapshot,
//   GET /slowlog  the live dnsnoise-slowlog-v1 document of the wired
//                 slow-query log (set_slowlog_source), 404 when no
//                 source is attached,
//   GET /         a plain-text index of the above.
//
// Obs contract: strictly opt-in (MiningSession::enable_telemetry /
// PipelineOptions::telemetry_port), zero hot-path overhead — every
// snapshot is taken on the scrape thread via the registry's established
// concurrent-snapshot path, no new locks touch the query path, and
// mining findings are bit-identical with the server on or off
// (TelemetryPipeline.* tests).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/http_listener.h"
#include "obs/metrics.h"

namespace dnsnoise::obs {

struct TelemetryConfig {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// /healthz flags a stage as stalled when its heartbeat is older than
  /// this while a run is active.
  double stall_seconds = 30.0;
  /// Constant labels stamped on every exported OpenMetrics series.
  std::map<std::string, std::string> labels;
};

/// One stage row of the health document.
struct StageHealth {
  std::string stage;
  double age_seconds = 0.0;
  bool ok = true;
};

/// The /healthz payload, also available to code via render_health().
struct HealthDocument {
  bool healthy = true;
  bool run_active = false;
  std::vector<StageHealth> stages;
  std::string json;  // schema dnsnoise-health-v1
};

/// Pure health evaluation (unit-testable without sockets): derives
/// per-stage ages from the obs.heartbeat.* gauges in `snapshot` against
/// `now_seconds` (pass heartbeat_clock_seconds()).  Freshness is only
/// enforced while obs.run_active is 1 — an idle pipeline is healthy by
/// definition, reported as status "idle".
HealthDocument render_health(const MetricsSnapshot& snapshot,
                             double now_seconds, double stall_seconds);

class TelemetryServer {
 public:
  /// The registry must outlive the server.
  explicit TelemetryServer(const MetricsRegistry& registry,
                           TelemetryConfig config = {});
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds and starts serving.  False (reason in error()) when the port
  /// is unavailable; the pipeline then simply runs unobserved.
  bool start();
  void stop();

  bool running() const noexcept { return listener_.running(); }
  std::uint16_t port() const noexcept { return listener_.port(); }
  const std::string& error() const noexcept { return listener_.error(); }
  const TelemetryConfig& config() const noexcept { return config_; }

  /// Publishes a frozen dnsnoise-trace-v1 document for GET /trace.
  /// Trace snapshots must be taken between pipeline phases (the
  /// TraceCollector contract), so the session pushes them here instead
  /// of the scrape thread pulling mid-run.
  void publish_trace(std::string trace_json);

  /// Attaches (or, with nullptr, detaches) the GET /slowlog source.  The
  /// callable is invoked on the scrape thread and must be thread-safe
  /// and valid until replaced — owners with a shorter lifetime than the
  /// server (a served day's wire frontend) must clear it on teardown.
  void set_slowlog_source(std::function<std::string()> source);

  /// Serves one request; exposed for tests (the listener calls this).
  net::HttpResponse handle(const net::HttpRequest& request) const;

 private:
  const MetricsRegistry& registry_;
  TelemetryConfig config_;
  net::HttpListener listener_;
  mutable std::mutex trace_mutex_;
  std::string trace_json_;
  mutable std::mutex slowlog_mutex_;
  std::function<std::string()> slowlog_source_;
};

}  // namespace dnsnoise::obs
