#include "obs/sketch/traffic_sketch.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace dnsnoise::obs {

namespace {

/// Salt separating the client-id hash stream from the name-hash stream.
constexpr std::uint64_t kClientSalt = 0x9e3779b97f4a7c15ULL;

/// Live classification: does any label suffix of `name`, from the
/// registrable domain down to the full qname, match a mined zone?
/// Zero-copy — every candidate is an nld_view into the event's name.
bool in_disposable_zone(const DomainName& name, std::size_t suffix_labels,
                        const DisposableZoneSet& zones) {
  const std::size_t labels = name.label_count();
  if (labels == 0) return false;
  for (std::size_t n = std::min(suffix_labels + 1, labels); n <= labels;
       ++n) {
    if (zones.find(name.nld_view(n)) != zones.end()) return true;
  }
  return false;
}

}  // namespace

// --- TrafficSketch (one shard, single writer) -------------------------------

struct TrafficSketch::Accumulator {
  std::uint64_t queries = 0;
  std::uint64_t disposable = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t new_names = 0;
  HllSketch distinct_qnames;
  HllSketch distinct_clients;
  // Heavy-hitter union keyed by interned text — NameIds are table-scoped,
  // so the merge remaps through the string, never compares raw ids.
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> slds;
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> qnames;
  std::map<SimTime, TrafficInterval> window;  // keyed by interval id
};

TrafficSketch::TrafficSketch(const TrafficSketchConfig& config)
    : config_(config),
      qname_heavy_(config.counters),
      sld_heavy_(config.counters) {
  window_.resize(config_.window_slots == 0 ? 1 : config_.window_slots);
}

void TrafficSketch::set_disposable_zones(
    std::shared_ptr<const DisposableZoneSet> zones) {
  const std::lock_guard lock(mutex_);
  zones_ = std::move(zones);
  // Cached verdicts were computed against the old zone set; clear the
  // kClassified bit and let count_event reclassify each name on next
  // sight.  O(distinct names), and zone swaps are a per-day event.
  for (NameState& state : names_) state.flags = 0;
}

void TrafficSketch::bind_sources(std::vector<const NameTable*> tables) {
  const std::lock_guard lock(mutex_);
  sources_ = std::move(tables);
  // Cache NameIds are table-scoped: a new binding (fresh cluster, fresh
  // caches) restarts ids from zero with different names, so every cached
  // translation is stale.  Accumulated sketch state stays — the sketch
  // keeps measuring across day boundaries.
  source_local_.assign(sources_.size(), {});
}

TrafficSketch::LocalName TrafficSketch::intern_local(std::string_view text,
                                                     const DomainName* parsed) {
  const std::size_t known_names = qnames_.size();
  const NameRef qname = qnames_.ref(text);
  if (qnames_.size() == known_names) return LocalName{qname.id, false};

  // First sight of this qname: do the per-distinct-name work once — PSL
  // walk, SLD intern, classifier verdict, HLL insert — and cache it.
  DomainName storage;
  if (parsed == nullptr) {
    storage = DomainName(text);
    parsed = &storage;
  }
  const std::size_t suffix_labels = config_.psl->suffix_label_count(*parsed);
  const std::string_view sld =
      parsed->nld_view(std::min(suffix_labels + 1, parsed->label_count()));
  const NameId sld_id = slds_.ref(sld).id;
  if (sld_id >= sld_delta_.size()) sld_delta_.resize(sld_id + 1, 0);

  NameState state;
  state.sld = sld_id;
  state.flags = kClassified;
  const DisposableZoneSet* const zones = zones_.get();
  if (zones != nullptr && !zones->empty() &&
      in_disposable_zone(*parsed, suffix_labels, *zones)) {
    state.flags |= kDisposable;
  }
  names_.push_back(state);
  // mix64 over the stored FNV-1a hash: HLL register selection uses the
  // top bits, where FNV's avalanche is too weak.  Inserting per distinct
  // name instead of per event lands on identical registers — add_hash is
  // idempotent for a fixed hash.
  distinct_qnames_.add_hash(mix64(qname.hash));
  return LocalName{qname.id, true};
}

void TrafficSketch::classify(NameId id) {
  NameState& state = names_[id];
  state.flags = kClassified;
  const DisposableZoneSet* const zones = zones_.get();
  if (zones == nullptr || zones->empty()) return;
  const DomainName name{qnames_.name(id)};
  if (in_disposable_zone(name, config_.psl->suffix_label_count(name), *zones)) {
    state.flags |= kDisposable;
  }
}

void TrafficSketch::count_event(NameId id, bool fresh, std::uint64_t client,
                                bool nx, SimTime ts) {
  ++queries_;
  new_names_ += fresh ? 1 : 0;
  NameState& state = names_[id];
  if (state.delta++ == 0) qname_touched_.push_back(id);
  if ((state.flags & kClassified) == 0) classify(id);  // zones were swapped
  const bool disposable = (state.flags & kDisposable) != 0;
  disposable_ += disposable ? 1 : 0;
  nxdomain_ += nx ? 1 : 0;
  if (sld_delta_[state.sld]++ == 0) sld_touched_.push_back(state.sld);
  distinct_clients_.add_hash(mix64(client ^ kClientSalt));

  if (config_.interval_seconds > 0 && ts >= 0) {
    if (ts != memo_ts_) {
      memo_ts_ = ts;
      memo_interval_ = ts / config_.interval_seconds;
      memo_slot_ = static_cast<std::size_t>(memo_interval_) % window_.size();
    }
    WindowSlot& slot = window_[memo_slot_];
    if (slot.interval != memo_interval_) {
      // The ring wrapped onto a stale interval: this slot now measures
      // the new interval, bounding memory over unbounded traffic.
      slot = WindowSlot{};
      slot.interval = memo_interval_;
    }
    ++slot.queries;
    slot.disposable += disposable ? 1 : 0;
    slot.nxdomain += nx ? 1 : 0;
    slot.new_names += fresh ? 1 : 0;
  }
}

void TrafficSketch::fold_deltas() {
  // Ascending-id fold order is canonical: it depends only on which names
  // the stream touched, never on arrival interleaving within the window
  // since the last fold.
  std::sort(qname_touched_.begin(), qname_touched_.end());
  for (const NameId id : qname_touched_) {
    qname_heavy_.offer(id, names_[id].delta);
    names_[id].delta = 0;
  }
  qname_touched_.clear();
  std::sort(sld_touched_.begin(), sld_touched_.end());
  for (const NameId id : sld_touched_) {
    sld_heavy_.offer(id, sld_delta_[id]);
    sld_delta_[id] = 0;
  }
  sld_touched_.clear();
}

void TrafficSketch::maybe_fold() {
  if (qname_touched_.size() >= kFoldThreshold ||
      sld_touched_.size() >= kFoldThreshold) {
    fold_deltas();
  }
}

void TrafficSketch::flush_pending() {
  if (pending_count_ == 0) return;
  const std::lock_guard lock(mutex_);
  const std::size_t source_count = sources_.size();
  std::vector<std::uint32_t>* const locals = source_local_.data();
  for (std::size_t i = 0; i < pending_count_; ++i) {
    const PendingEvent& event = pending_[i];
    if (event.source >= source_count) continue;  // unbound: drop safely
    std::vector<std::uint32_t>& local = locals[event.source];
    if (event.name >= local.size()) local.resize(event.name + 1, 0);
    std::uint32_t& cell = local[event.name];
    NameId id;
    bool fresh = false;
    if (cell == 0) {
      const LocalName resolved =
          intern_local(sources_[event.source]->name(event.name), nullptr);
      id = resolved.id;
      fresh = resolved.fresh;
      cell = id + 1;
    } else {
      id = cell - 1;
    }
    count_event(id, fresh, event.client, event.nxdomain, event.ts);
  }
  pending_count_ = 0;
  maybe_fold();
}

void TrafficSketch::on_tap_batch(const TapBatch& batch) {
  if (batch.empty()) return;
  // One lock per batch (ClusterConfig::tap_batch_events, default 256):
  // the per-event amortized cost is a few nanoseconds, and the scrape
  // thread only ever waits out the tail of one batch fold.
  const std::lock_guard lock(mutex_);
  for (const TapEvent& event : batch) {
    // The below stream is the measured traffic (answers to clients); the
    // above stream re-observes the same names at cache-miss rate.
    if (event.direction != TapDirection::kBelow) continue;
    const DomainName& name = event.question.name;
    if (name.empty()) continue;
    const LocalName resolved = intern_local(name.text(), &name);
    count_event(resolved.id, resolved.fresh, event.client_id,
                event.rcode == RCode::NXDomain, event.ts);
  }
  maybe_fold();
}

void TrafficSketch::collect_into(Accumulator& acc) const {
  const std::lock_guard lock(mutex_);
  acc.queries += queries_;
  acc.disposable += disposable_;
  acc.nxdomain += nxdomain_;
  acc.new_names += new_names_;
  acc.distinct_qnames.merge_from(distinct_qnames_);
  acc.distinct_clients.merge_from(distinct_clients_);
  // Overlay the un-folded exact deltas onto a *copy* of the Space-Saving
  // state: the export reflects every drained event, while writer-side
  // sketch state stays a pure function of the event stream — scrape
  // timing can never change what a later export says.
  const auto overlay = [](SpaceSavingSketch sketch,
                          const std::vector<NameId>& touched,
                          const auto& delta_of) {
    std::vector<NameId> ids = touched;
    std::sort(ids.begin(), ids.end());
    for (const NameId id : ids) sketch.offer(id, delta_of(id));
    return sketch;
  };
  const SpaceSavingSketch qname_view =
      overlay(qname_heavy_, qname_touched_,
              [this](NameId id) { return names_[id].delta; });
  const SpaceSavingSketch sld_view =
      overlay(sld_heavy_, sld_touched_,
              [this](NameId id) { return sld_delta_[id]; });
  for (const SpaceSavingSketch::Counter& counter : qname_view.counters()) {
    auto& slot = acc.qnames[std::string(qnames_.name(counter.key))];
    slot.first += counter.count;
    slot.second += counter.error;
  }
  for (const SpaceSavingSketch::Counter& counter : sld_view.counters()) {
    auto& slot = acc.slds[std::string(slds_.name(counter.key))];
    slot.first += counter.count;
    slot.second += counter.error;
  }
  for (const WindowSlot& slot : window_) {
    if (slot.interval < 0) continue;
    TrafficInterval& interval = acc.window[slot.interval];
    interval.start_ts = slot.interval * config_.interval_seconds;
    interval.queries += slot.queries;
    interval.disposable += slot.disposable;
    interval.nxdomain += slot.nxdomain;
    interval.new_names += slot.new_names;
  }
}

// --- TrafficSketchPlane -----------------------------------------------------

TrafficSketchPlane::TrafficSketchPlane(const TrafficSketchConfig& config)
    : config_(config) {
  if (config_.top_k == 0) config_.top_k = 1;
  if (config_.counters < config_.top_k) config_.counters = config_.top_k;
  if (config_.window_slots == 0) config_.window_slots = 1;
  if (config_.interval_seconds <= 0) config_.interval_seconds = 300;
  if (config_.psl == nullptr) config_.psl = &PublicSuffixList::builtin();
}

void TrafficSketchPlane::ensure_shards(std::size_t count) {
  const std::lock_guard lock(mutex_);
  while (shards_.size() < count) {
    auto shard = std::make_unique<TrafficSketch>(config_);
    if (zones_ != nullptr) shard->set_disposable_zones(zones_);
    shards_.push_back(std::move(shard));
  }
}

std::size_t TrafficSketchPlane::shard_count() const {
  const std::lock_guard lock(mutex_);
  return shards_.size();
}

TrafficSketch& TrafficSketchPlane::shard(std::size_t index) {
  const std::lock_guard lock(mutex_);
  return *shards_[index];
}

void TrafficSketchPlane::set_disposable_zones(std::vector<std::string> zones) {
  auto set = std::make_shared<DisposableZoneSet>();
  for (std::string& zone : zones) {
    if (!zone.empty()) set->insert(std::move(zone));
  }
  const std::lock_guard lock(mutex_);
  zones_ = std::move(set);
  for (const std::unique_ptr<TrafficSketch>& shard : shards_) {
    shard->set_disposable_zones(zones_);
  }
}

std::size_t TrafficSketchPlane::classifier_zone_count() const {
  const std::lock_guard lock(mutex_);
  return zones_ == nullptr ? 0 : zones_->size();
}

TrafficSnapshot TrafficSketchPlane::snapshot() const {
  TrafficSketch::Accumulator acc;
  std::size_t shard_count = 0;
  {
    const std::lock_guard lock(mutex_);
    shard_count = shards_.size();
  }
  // Shard objects are stable once created (ensure_shards only appends),
  // so collection can walk them without holding the plane lock; each
  // collect_into takes that shard's own mutex.  Index order fixes the
  // merge order, though every fold below is order-independent anyway.
  for (std::size_t i = 0; i < shard_count; ++i) {
    const TrafficSketch* shard;
    {
      const std::lock_guard lock(mutex_);
      shard = shards_[i].get();
    }
    shard->collect_into(acc);
  }

  TrafficSnapshot out;
  out.queries = acc.queries;
  out.disposable = acc.disposable;
  out.nxdomain = acc.nxdomain;
  out.new_names = acc.new_names;
  out.distinct_qnames = acc.queries == 0 ? 0.0 : acc.distinct_qnames.estimate();
  out.distinct_clients =
      acc.queries == 0 ? 0.0 : acc.distinct_clients.estimate();
  out.classifier_zones = classifier_zone_count();
  out.top_k = config_.top_k;
  out.interval_seconds = config_.interval_seconds;
  out.window_slots = config_.window_slots;

  const auto rank =
      [this](const std::map<std::string,
                            std::pair<std::uint64_t, std::uint64_t>>& merged) {
        std::vector<TrafficHeavyHitter> hitters;
        hitters.reserve(merged.size());
        for (const auto& [name, counts] : merged) {
          hitters.push_back(TrafficHeavyHitter{name, counts.first,
                                               counts.second});
        }
        // Total order: count desc, then name asc — deterministic top-K.
        std::sort(hitters.begin(), hitters.end(),
                  [](const TrafficHeavyHitter& a, const TrafficHeavyHitter& b) {
                    if (a.count != b.count) return a.count > b.count;
                    return a.name < b.name;
                  });
        if (hitters.size() > config_.top_k) hitters.resize(config_.top_k);
        return hitters;
      };
  out.top_slds = rank(acc.slds);
  out.top_qnames = rank(acc.qnames);

  for (const auto& [interval, aggregates] : acc.window) {
    out.window.push_back(aggregates);
  }
  if (out.window.size() > config_.window_slots) {
    // Shards can cover disjoint interval sets; keep the newest ring-width.
    out.window.erase(out.window.begin(),
                     out.window.end() -
                         static_cast<std::ptrdiff_t>(config_.window_slots));
  }
  return out;
}

std::string TrafficSketchPlane::to_json() const { return obs::to_json(snapshot()); }

void TrafficSketchPlane::publish_gauges(MetricsRegistry& registry) const {
  const TrafficSnapshot snap = snapshot();
  registry.gauge("traffic.queries").set(static_cast<double>(snap.queries));
  registry.gauge("traffic.disposable_share").set(snap.disposable_share());
  registry.gauge("traffic.nxdomain_share").set(snap.nxdomain_share());
  registry.gauge("traffic.new_names").set(static_cast<double>(snap.new_names));
  registry.gauge("traffic.distinct_qnames").set(snap.distinct_qnames);
  registry.gauge("traffic.distinct_clients").set(snap.distinct_clients);
  registry.gauge("traffic.classifier_zones")
      .set(static_cast<double>(snap.classifier_zones));
}

// --- dnsnoise-traffic-v1 export ---------------------------------------------

namespace {

void append_hitters(std::string& out,
                    const std::vector<TrafficHeavyHitter>& hitters) {
  if (hitters.empty()) {
    out += "[]";
    return;
  }
  out += "[\n";
  bool first = true;
  for (const TrafficHeavyHitter& hitter : hitters) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"name\": ";
    json_string(out, hitter.name);
    out += ", \"count\": " + std::to_string(hitter.count);
    out += ", \"error\": " + std::to_string(hitter.error);
    out += "}";
  }
  out += "\n  ]";
}

}  // namespace

std::string to_json(const TrafficSnapshot& snapshot) {
  std::string out = "{\n  \"schema\": \"dnsnoise-traffic-v1\",\n";
  const auto count_field = [&out](std::string_view name, std::uint64_t value) {
    json_key(out, 2, name);
    out += std::to_string(value);
    out += ",\n";
  };
  count_field("top_k", snapshot.top_k);
  count_field("interval_seconds",
              static_cast<std::uint64_t>(snapshot.interval_seconds));
  count_field("window_slots", snapshot.window_slots);
  count_field("queries", snapshot.queries);
  count_field("disposable", snapshot.disposable);
  count_field("nxdomain", snapshot.nxdomain);
  count_field("new_names", snapshot.new_names);
  json_key(out, 2, "disposable_share");
  out += format_double(snapshot.disposable_share());
  out += ",\n";
  json_key(out, 2, "nxdomain_share");
  out += format_double(snapshot.nxdomain_share());
  out += ",\n";
  json_key(out, 2, "distinct_qnames");
  out += format_double(snapshot.distinct_qnames);
  out += ",\n";
  json_key(out, 2, "distinct_clients");
  out += format_double(snapshot.distinct_clients);
  out += ",\n";
  count_field("classifier_zones", snapshot.classifier_zones);
  json_key(out, 2, "top_slds");
  append_hitters(out, snapshot.top_slds);
  out += ",\n";
  json_key(out, 2, "top_qnames");
  append_hitters(out, snapshot.top_qnames);
  out += ",\n";
  json_key(out, 2, "window");
  if (snapshot.window.empty()) {
    out += "[]";
  } else {
    out += "[\n";
    bool first = true;
    for (const TrafficInterval& interval : snapshot.window) {
      if (!first) out += ",\n";
      first = false;
      out += "    {\"start_ts\": " + std::to_string(interval.start_ts);
      out += ", \"queries\": " + std::to_string(interval.queries);
      out += ", \"disposable\": " + std::to_string(interval.disposable);
      out += ", \"nxdomain\": " + std::to_string(interval.nxdomain);
      out += ", \"new_names\": " + std::to_string(interval.new_names);
      out += "}";
    }
    out += "\n  ]";
  }
  out += "\n}\n";
  return out;
}

}  // namespace dnsnoise::obs
