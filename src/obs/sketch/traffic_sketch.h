// Streaming traffic introspection plane (DESIGN.md §17).
//
// The paper measures the pervasiveness of disposable domains offline, by
// mining a finished day.  TrafficSketchPlane answers the same questions
// *while the traffic flows*: what fraction of the current window is
// disposable (classified live against the previous day's mined zones),
// which SLDs and qnames are the heavy hitters, how many distinct qnames
// and clients the cluster is seeing, and how the NXDOMAIN / new-name
// rates move — all in bounded memory over unbounded traffic, from three
// compact mergeable sketches:
//
//   * SpaceSavingSketch top-K heavy hitters, keyed by interned NameId at
//     SLD (registrable domain) and full-qname granularity,
//   * HllSketch distinct-qname / distinct-client cardinality,
//   * a sliding-window ring of per-interval aggregates (queries,
//     disposable, NXDOMAIN, new names) keyed by simulated time.
//
// Concurrency contract (the same shape as the latency recorder): one
// TrafficSketch per shard, fed by exactly one writer — the thread driving
// that shard's cluster.  The production feed is the cluster's dedicated
// hook (RdnsCluster::set_traffic_sketch): the cluster interns the qname
// into its cache's NameTable anyway, so the hot path is observe() — a
// ~32-byte append into a fixed 256-entry ring, no lock, no hashing, no
// copies.  When the ring fills, the writer drains it under the shard
// mutex, resolving each record through the bound source NameTable into
// exact per-name delta counters; Space-Saving folds happen only when the
// touched set crosses a threshold (a pure function of the event stream,
// never of scrape timing).  The scrape thread takes the same per-shard
// locks to merge, overlaying un-folded deltas onto a *copy* of the
// Space-Saving state — so scrapes never perturb writer state, and
// consecutive quiesced scrapes are byte-identical.  A scrape may miss up
// to 255 ring-tail events mid-stream; detaching the hook (or
// flush_pending()) drains them.  Disabled, the hook costs exactly one
// predicted branch in the cluster — the export path is byte-for-byte the
// unsketched one.  The batched tap (TapObserver) remains as a generic
// feed with identical semantics, routed through the same per-event core.
//
// Determinism contract: shard decomposition follows the cluster's
// server_count (threads only schedule), per-shard sketches are pure
// functions of their shard's event stream, and snapshot() merges shards
// in index order — Space-Saving counters by summed (count, error) per
// interned *text* (never raw NameIds of different tables), HLL by
// register max, window slots by interval-keyed sums, top-K ranked by
// (count desc, name asc).  threads(N) therefore serves byte-identical
// dnsnoise-traffic-v1 documents to threads(1).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "dns/name_table.h"
#include "dns/public_suffix.h"
#include "obs/sketch/hll.h"
#include "obs/sketch/spacesaving.h"
#include "resolver/tap.h"
#include "util/sim_time.h"

namespace dnsnoise::obs {

class MetricsRegistry;

struct TrafficSketchConfig {
  /// Heavy hitters exported per table (top_slds / top_qnames).
  std::size_t top_k = 16;
  /// Space-Saving counters per shard per table; the exact-top-K
  /// guarantee needs counters >> top_k on skewed streams.
  std::size_t counters = 512;
  /// Sliding-window ring length; older intervals are overwritten.
  std::size_t window_slots = 32;
  /// Width of one window interval in simulated seconds.
  SimTime interval_seconds = 300;
  /// Registrable-domain split for the SLD table; builtin() when null.
  const PublicSuffixList* psl = nullptr;
};

/// One exported heavy hitter: count overestimates the true frequency by
/// at most `error` (count - error is a guaranteed lower bound).
struct TrafficHeavyHitter {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t error = 0;
};

/// One window interval's aggregates ([start_ts, start_ts + interval)).
struct TrafficInterval {
  SimTime start_ts = 0;
  std::uint64_t queries = 0;
  std::uint64_t disposable = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t new_names = 0;
};

/// Deterministic cross-shard merge of the plane (see header comment).
struct TrafficSnapshot {
  std::uint64_t queries = 0;
  std::uint64_t disposable = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t new_names = 0;
  double distinct_qnames = 0.0;
  double distinct_clients = 0.0;
  std::size_t classifier_zones = 0;
  std::vector<TrafficHeavyHitter> top_slds;
  std::vector<TrafficHeavyHitter> top_qnames;
  std::vector<TrafficInterval> window;  // oldest first
  // Config echo, so consumers can interpret the document standalone.
  std::size_t top_k = 0;
  SimTime interval_seconds = 0;
  std::size_t window_slots = 0;

  double disposable_share() const noexcept {
    return queries == 0
               ? 0.0
               : static_cast<double>(disposable) / static_cast<double>(queries);
  }
  double nxdomain_share() const noexcept {
    return queries == 0
               ? 0.0
               : static_cast<double>(nxdomain) / static_cast<double>(queries);
  }
};

/// Zone set the live classifier matches label suffixes against
/// (heterogeneous lookup: membership tests take string_views of the
/// event qname, no per-query allocation).
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
using DisposableZoneSet =
    std::unordered_set<std::string, TransparentStringHash, std::equal_to<>>;

/// One shard's sketch set; feed it through the cluster hook
/// (RdnsCluster::set_traffic_sketch) or, generically, the batched tap.
/// Single-writer per the plane's concurrency contract.
class TrafficSketch final : public TapObserver {
 public:
  explicit TrafficSketch(const TrafficSketchConfig& config);

  // --- Wait-free hot path (cluster hook; one writer thread) -----------------

  /// Binds the NameTables that observe()'s `source`/`name` pairs resolve
  /// through (one table per cluster server, in server order).  Replaces
  /// any previous binding and invalidates the cached id translations, so
  /// rebinding the sketch to a fresh cluster (next simulated day) is
  /// safe.  Tables must outlive all un-flushed observe() records.
  void bind_sources(std::vector<const NameTable*> tables);

  /// Records one answered client query as a ~32-byte ring append: no
  /// lock, no hashing, no string copy.  `name` is the qname's id in the
  /// bound `source` table (the cluster's cache already interned it).
  /// All indexed work happens when the 256-entry ring fills.  Writer
  /// thread only.
  void observe(std::uint32_t source, NameId name, std::uint64_t client_id,
               RCode rcode, SimTime ts) {
    if (pending_count_ == kPendingCapacity) flush_pending();
    pending_[pending_count_++] =
        PendingEvent{ts, client_id, name, static_cast<std::uint16_t>(source),
                     rcode == RCode::NXDomain};
  }

  /// Drains the pending ring into the indexed counters (one lock).
  /// Writer thread only; the cluster calls this on detach and tap flush
  /// so day-end exports observe every event.
  void flush_pending();

  // --- Generic feed ---------------------------------------------------------

  /// Folds one tap batch in (below-direction events only — the client
  /// answer stream is the traffic being measured).  One lock per batch;
  /// semantically identical to the hook path (same per-event core).
  void on_tap_batch(const TapBatch& batch) override;

  /// Swaps the live classifier zone set (shared across shards).  Cached
  /// per-name verdicts are invalidated lazily (reclassified on next
  /// sight), so arming day N's zones mid-stream is O(distinct names)
  /// flag clears, not a rebuild.
  void set_disposable_zones(std::shared_ptr<const DisposableZoneSet> zones);

 private:
  friend class TrafficSketchPlane;

  static constexpr std::size_t kPendingCapacity = 256;
  /// Exact deltas fold into Space-Saving when this many distinct names
  /// are touched — a pure function of the event stream (scrape timing
  /// never moves writer state), bounding both the per-flush fold cost
  /// and the scrape-side overlay cost.
  static constexpr std::size_t kFoldThreshold = 4096;

  struct PendingEvent {  // 24 bytes — the ring stays inside L1
    SimTime ts = 0;
    std::uint64_t client = 0;
    NameId name = kInvalidNameId;  // id in sources_[source]
    std::uint16_t source = 0;
    bool nxdomain = false;
  };

  struct WindowSlot {
    SimTime interval = -1;  // interval id (ts / interval_seconds); -1 empty
    std::uint64_t queries = 0;
    std::uint64_t disposable = 0;
    std::uint64_t nxdomain = 0;
    std::uint64_t new_names = 0;
  };

  /// Cached per-distinct-qname state, indexed by local id: the exact
  /// count since the last Space-Saving fold, the interned SLD, and the
  /// lazily computed classifier verdict — one cache line instead of a
  /// PSL walk per event.
  struct NameState {
    std::uint64_t delta = 0;
    std::uint32_t sld = 0;
    std::uint8_t flags = 0;
  };
  static constexpr std::uint8_t kClassified = 1;
  static constexpr std::uint8_t kDisposable = 2;

  /// Internal merge state the plane accumulates shard collections into.
  struct Accumulator;

  struct LocalName {
    NameId id = kInvalidNameId;
    bool fresh = false;
  };

  // All private helpers below run under mutex_.
  LocalName intern_local(std::string_view text, const DomainName* parsed);
  void classify(NameId id);
  void count_event(NameId id, bool fresh, std::uint64_t client, bool nx,
                   SimTime ts);
  void fold_deltas();
  void maybe_fold();
  void collect_into(Accumulator& acc) const;

  TrafficSketchConfig config_;  // psl resolved to builtin() when null

  // Writer-owned, never locked: the observe() fast path touches only
  // these two members.
  std::array<PendingEvent, kPendingCapacity> pending_;
  std::size_t pending_count_ = 0;

  mutable std::mutex mutex_;
  std::vector<const NameTable*> sources_;
  // Per source: cache NameId -> local qname id + 1 (0 = not yet seen).
  // Direct-indexed — resolving a ring record is one load, no hashing.
  std::vector<std::vector<std::uint32_t>> source_local_;
  NameTable qnames_;
  NameTable slds_;
  std::vector<NameState> names_;          // indexed by local qname id
  std::vector<std::uint64_t> sld_delta_;  // indexed by local SLD id
  std::vector<NameId> qname_touched_;     // ids with delta > 0, first-touch order
  std::vector<NameId> sld_touched_;
  SpaceSavingSketch qname_heavy_;
  SpaceSavingSketch sld_heavy_;
  HllSketch distinct_qnames_;
  HllSketch distinct_clients_;
  std::vector<WindowSlot> window_;
  SimTime memo_ts_ = -1;  // window-slot memo: division once per distinct ts
  SimTime memo_interval_ = -1;
  std::size_t memo_slot_ = 0;
  std::uint64_t queries_ = 0;
  std::uint64_t disposable_ = 0;
  std::uint64_t nxdomain_ = 0;
  std::uint64_t new_names_ = 0;
  std::shared_ptr<const DisposableZoneSet> zones_;
};

/// The per-shard sketch owner plus the deterministic cross-shard merge
/// and the byte-stable dnsnoise-traffic-v1 export.
class TrafficSketchPlane {
 public:
  explicit TrafficSketchPlane(const TrafficSketchConfig& config = {});

  TrafficSketchPlane(const TrafficSketchPlane&) = delete;
  TrafficSketchPlane& operator=(const TrafficSketchPlane&) = delete;

  const TrafficSketchConfig& config() const noexcept { return config_; }

  /// Grows the shard set to at least `count` instances (never shrinks;
  /// existing shards keep their contents).  Call before attaching
  /// observers, not from the hot path.
  void ensure_shards(std::size_t count);

  std::size_t shard_count() const;

  /// Shard `index` (must be < shard_count()); the returned reference is
  /// stable for the plane's lifetime.
  TrafficSketch& shard(std::size_t index);

  /// Replaces the live classifier with `zones` (the previous day's mined
  /// disposable zones); an empty vector clears it.  Applies to all
  /// current and future shards.
  void set_disposable_zones(std::vector<std::string> zones);

  std::size_t classifier_zone_count() const;

  /// Deterministic merged view of all shards (index order).
  TrafficSnapshot snapshot() const;

  /// Byte-stable dnsnoise-traffic-v1 JSON of snapshot(); serve it on
  /// GET /traffic (obs::TelemetryServer::set_traffic_source).
  std::string to_json() const;

  /// Refreshes the top-level traffic.* gauges from snapshot().  Safe
  /// from the telemetry scrape thread (Gauge::set is a relaxed store).
  void publish_gauges(MetricsRegistry& registry) const;

 private:
  TrafficSketchConfig config_;
  mutable std::mutex mutex_;  // guards shards_ growth and zones_ swap
  std::vector<std::unique_ptr<TrafficSketch>> shards_;
  std::shared_ptr<const DisposableZoneSet> zones_;
};

/// Serializes an already-merged snapshot (exposed for tests; to_json()
/// is snapshot() + this).
std::string to_json(const TrafficSnapshot& snapshot);

}  // namespace dnsnoise::obs
