// HyperLogLog cardinality estimator (Flajolet et al. 2007).
//
// Fixed 2^12 = 4096 byte registers, giving a standard relative error of
// 1.04 / sqrt(4096) ~= 1.63% (HllErrorBound test pins 3 sigma of it on
// seeded streams).  add_hash() consumes an already well-mixed 64-bit hash
// — callers feed mix64() over the interned FNV-1a name hash, never raw
// FNV output, because register selection uses the top bits and FNV's
// avalanche is too weak there.
//
// The register array is a pure max-merge CRDT: merge_from() takes the
// register-wise maximum, so merging per-shard estimators in any order
// yields the same registers as one estimator over the union stream —
// the determinism contract of the traffic plane rides on this.
// Small cardinalities use the linear-counting correction, so exact-ish
// counts survive the near-empty regime a fresh serve day starts in.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace dnsnoise::obs {

class HllSketch {
 public:
  static constexpr unsigned kPrecision = 12;
  static constexpr std::size_t kRegisterCount = std::size_t{1} << kPrecision;
  /// Theoretical standard relative error: 1.04 / sqrt(m).
  static constexpr double kStandardError = 1.04 / 64.0;

  /// Records one element by its mixed 64-bit hash.
  void add_hash(std::uint64_t hash) noexcept {
    const std::size_t index =
        static_cast<std::size_t>(hash >> (64 - kPrecision));
    const std::uint64_t rest = hash << kPrecision;
    // Rank = leading-zero run of the remaining bits + 1, capped at the
    // all-zero case (52 zero bits observed).
    const std::uint8_t rank =
        rest == 0 ? static_cast<std::uint8_t>(64 - kPrecision + 1)
                  : static_cast<std::uint8_t>(std::countl_zero(rest) + 1);
    if (rank > registers_[index]) registers_[index] = rank;
  }

  /// Estimated distinct count, with the linear-counting small-range
  /// correction below 2.5m.
  double estimate() const noexcept {
    constexpr double m = static_cast<double>(kRegisterCount);
    constexpr double alpha = 0.7213 / (1.0 + 1.079 / m);
    double inverse_sum = 0.0;
    std::size_t zeros = 0;
    for (const std::uint8_t reg : registers_) {
      inverse_sum += std::ldexp(1.0, -static_cast<int>(reg));
      zeros += reg == 0;
    }
    const double raw = alpha * m * m / inverse_sum;
    if (raw <= 2.5 * m && zeros > 0) {
      return m * std::log(m / static_cast<double>(zeros));
    }
    return raw;
  }

  bool empty() const noexcept {
    for (const std::uint8_t reg : registers_) {
      if (reg != 0) return false;
    }
    return true;
  }

  /// Register-wise max merge; order- and grouping-independent.
  void merge_from(const HllSketch& other) noexcept {
    for (std::size_t i = 0; i < kRegisterCount; ++i) {
      registers_[i] = std::max(registers_[i], other.registers_[i]);
    }
  }

  void clear() noexcept { registers_.fill(0); }

 private:
  std::array<std::uint8_t, kRegisterCount> registers_{};
};

}  // namespace dnsnoise::obs
