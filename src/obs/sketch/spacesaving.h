// Space-Saving heavy-hitter sketch (Metwally, Agrawal, El Abbadi 2005).
//
// Tracks the approximate top frequencies of an unbounded key stream in a
// fixed number of counters: a key already monitored increments its
// counter; an unmonitored key arriving at a full sketch takes over the
// minimum counter, inheriting its count as the new counter's `error`
// (overestimation bound).  Invariants the tests pin:
//   * count - error <= true frequency <= count for every monitored key,
//   * any key with true frequency > count_min is monitored, so the exact
//     top-K is recalled whenever the stream is skewed enough that the
//     K-th frequency exceeds the minimum counter (Zipf traffic is).
//
// The counter set is a binary min-heap keyed by count with a key->slot
// index, making offer() O(log capacity) worst case and O(1) for the
// already-monitored hot keys that dominate skewed streams.  The sketch is
// single-writer (the traffic plane guards each shard instance with its
// own mutex) and deterministic: the monitored set and all counts are a
// pure function of the offered key sequence.
//
// Keys are 32-bit handles (interned NameId) — merging across shards must
// remap through the interned text, never compare raw ids of different
// tables (see traffic_sketch.cc).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dnsnoise::obs {

class SpaceSavingSketch {
 public:
  struct Counter {
    std::uint32_t key = 0;
    std::uint64_t count = 0;
    std::uint64_t error = 0;  // overestimation bound inherited on takeover
  };

  explicit SpaceSavingSketch(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    heap_.reserve(capacity_);
    pos_.reserve(capacity_ * 2);
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Total stream length offered so far.
  std::uint64_t offered() const noexcept { return offered_; }

  /// Records one occurrence of `key`.
  void offer(std::uint32_t key) { offer(key, 1); }

  /// Records `weight` occurrences of `key` at once.  Equivalent to (and
  /// therefore interchangeable with) `weight` consecutive offer(key) calls:
  /// the takeover rule charges the whole batch to one counter, inheriting
  /// the evicted minimum as the error bound exactly as the unit-step rule
  /// would after its first occurrence.  This is what lets the traffic
  /// sketch keep exact per-name deltas on the hot path and fold them in at
  /// flush boundaries without changing the sketch's invariants.
  void offer(std::uint32_t key, std::uint64_t weight) {
    if (weight == 0) return;
    offered_ += weight;
    const auto it = pos_.find(key);
    if (it != pos_.end()) {
      heap_[it->second].count += weight;
      sift_down(it->second);
      return;
    }
    if (heap_.size() < capacity_) {
      heap_.push_back(Counter{key, weight, 0});
      pos_[key] = heap_.size() - 1;
      sift_up(heap_.size() - 1);
      return;
    }
    // Take over the minimum counter: the evicted key's count becomes the
    // new key's error bound.
    Counter& root = heap_.front();
    pos_.erase(root.key);
    root.error = root.count;
    root.count += weight;
    root.key = key;
    pos_[key] = 0;
    sift_down(0);
  }

  /// The monitored counters, unordered.  Callers rank by (count desc, key
  /// text asc) for a deterministic top-K (see traffic_sketch.cc).
  const std::vector<Counter>& counters() const noexcept { return heap_; }

  void clear() noexcept {
    heap_.clear();
    pos_.clear();
    offered_ = 0;
  }

 private:
  // Min-heap by count; ties keep whatever order the operation sequence
  // produced (still deterministic for a fixed stream).
  bool less(std::size_t a, std::size_t b) const noexcept {
    return heap_[a].count < heap_[b].count;
  }

  void swap_slots(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a].key] = a;
    pos_[heap_[b].key] = b;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(i, parent)) break;
      swap_slots(i, parent);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    for (;;) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = i;
      if (left < heap_.size() && less(left, smallest)) smallest = left;
      if (right < heap_.size() && less(right, smallest)) smallest = right;
      if (smallest == i) return;
      swap_slots(i, smallest);
      i = smallest;
    }
  }

  std::size_t capacity_;
  std::uint64_t offered_ = 0;
  std::vector<Counter> heap_;
  std::unordered_map<std::uint32_t, std::size_t> pos_;
};

}  // namespace dnsnoise::obs
