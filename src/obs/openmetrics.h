// OpenMetrics / Prometheus text exposition of a MetricsSnapshot.
//
// This is the scrape-side twin of obs/json_snapshot: the same frozen
// registry state, rendered in the exposition format Prometheus and every
// OpenMetrics parser understand (served by obs/telemetry_server on
// GET /metrics).  Mapping:
//
//   counter  stage.events        # TYPE dnsnoise_stage_events counter
//                                dnsnoise_stage_events_total 7
//   gauge    stage.rate          # TYPE dnsnoise_stage_rate gauge
//                                dnsnoise_stage_rate 1.5
//   timer    stage.span          # TYPE dnsnoise_stage_span_seconds summary
//                                dnsnoise_stage_span_seconds_count 3
//                                dnsnoise_stage_span_seconds_sum 0.0006
//                                + dnsnoise_stage_span_{min,max}_seconds gauges
//   histogram stage.sizes        # TYPE dnsnoise_stage_sizes histogram
//                                dnsnoise_stage_sizes_bucket{le="1"} ...
//                                ... ascending, closed by le="+Inf"
//                                dnsnoise_stage_sizes_sum / _count
//                                + dnsnoise_stage_sizes_percentile{p="50"|...}
//                                  gauges (obs::estimate_percentiles)
//
// Metric names are sanitized ('.' and every other invalid byte become
// '_') and prefixed "dnsnoise_"; bucket counts are cumulative with the
// underflow bin under le="1" (LogHistogram's zero bucket); `labels` are
// constant labels stamped on every series, values escaped per the spec.
// The document is name-sorted, byte-stable for identical registry state
// (the JSON exporters' contract), and terminated with "# EOF".
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace dnsnoise::obs {

/// Content-Type a compliant scraper expects for this document.
inline constexpr std::string_view kOpenMetricsContentType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// A valid OpenMetrics metric name built from a registry metric name:
/// "dnsnoise_" + `name` with every byte outside [a-zA-Z0-9_:] mapped
/// to '_'.
std::string openmetrics_name(std::string_view name);

/// Label-value escaping per the exposition format: backslash, double
/// quote, and newline.  Returns the escaped body (no surrounding quotes).
std::string openmetrics_escape_label(std::string_view value);

/// Renders `snapshot` to the exposition document described above.
/// `labels` (name -> value) are attached to every emitted series; label
/// names are sanitized like metric names (without the prefix), values
/// escaped.
std::string to_openmetrics(
    const MetricsSnapshot& snapshot,
    const std::map<std::string, std::string>& labels = {});

}  // namespace dnsnoise::obs
