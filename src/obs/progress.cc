#include "obs/progress.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>

#include "obs/metrics.h"

namespace dnsnoise::obs {

ProgressReporter::ProgressReporter(MetricsRegistry& registry,
                                   ProgressConfig config)
    : config_(config),
      answered_(&registry.counter("cluster.below_answers")),
      shards_done_(&registry.timer("engine.shard")),
      out_(config.out != nullptr ? config.out : stderr),
      start_(std::chrono::steady_clock::now()) {
  if (config_.interval_seconds <= 0.0) config_.interval_seconds = 1.0;
  thread_ = std::thread([this] { run(); });
}

ProgressReporter::~ProgressReporter() { stop(); }

void ProgressReporter::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // The final summary belongs to stop(), not the heartbeat thread: after
  // the join it always runs, exactly once, so session completion flushes
  // a newline-terminated line even when the finish coincides with (or
  // outraces) the last heartbeat tick.
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  print_line(elapsed, /*final_line=*/true);
}

void ProgressReporter::run() {
  const auto interval = std::chrono::duration<double>(config_.interval_seconds);
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    print_line(elapsed, /*final_line=*/false);
  }
}

void ProgressReporter::print_line(double seconds_since_start,
                                  bool final_line) {
  const std::uint64_t answered = answered_->value();
  const double tick_seconds =
      std::max(seconds_since_start - last_tick_seconds_, 1e-9);
  // Heartbeats show the instantaneous rate; the final summary reports the
  // cumulative average over the whole run.
  const double rate =
      final_line
          ? static_cast<double>(answered) /
                std::max(seconds_since_start, 1e-9)
          : static_cast<double>(answered - last_answered_) / tick_seconds;
  last_answered_ = answered;
  last_tick_seconds_ = seconds_since_start;

  std::string line = "[dnsnoise] ";
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                final_line ? "done: %" PRIu64 " queries (avg %.0f/s)"
                           : "%" PRIu64 " queries (%.0f/s)",
                answered, rate);
  line += buf;
  if (config_.shard_count > 0) {
    const std::uint64_t done = std::min<std::uint64_t>(
        shards_done_->count(), config_.shard_count);
    std::snprintf(buf, sizeof(buf), "  shards %" PRIu64 "/%zu", done,
                  config_.shard_count);
    line += buf;
  }
  if (config_.expected_queries > 0 && answered > 0 && rate > 0.0 &&
      answered < config_.expected_queries) {
    const double eta = static_cast<double>(config_.expected_queries -
                                           answered) /
                       rate;
    std::snprintf(buf, sizeof(buf), "  ETA %.0fs", eta);
    line += buf;
  }
  std::snprintf(buf, sizeof(buf), "  [%.1fs]", seconds_since_start);
  line += buf;
  // \r keeps one live line on a terminal; the final line gets its \n.
  std::fprintf(out_, "\r%-78s%s", line.c_str(), final_line ? "\n" : "");
  std::fflush(out_);
}

}  // namespace dnsnoise::obs
