#include "obs/heartbeat.h"

#include <chrono>

namespace dnsnoise::obs {

double heartbeat_clock_seconds() noexcept {
  // One epoch for the whole process: ages computed by the health renderer
  // stay comparable across registries and sessions.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

Gauge& heartbeat_gauge(MetricsRegistry& registry, std::string_view stage) {
  return registry.gauge(std::string(kHeartbeatGaugePrefix) +
                        std::string(stage));
}

}  // namespace dnsnoise::obs
