#include "obs/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <vector>

#include "obs/json_writer.h"

namespace dnsnoise::obs {

namespace {

/// Nanoseconds as microseconds with fixed 3 decimals ("12.345"): full
/// resolution, byte-stable, and what Chrome's ts/dur expect.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

std::string_view outcome_name(TraceOutcome outcome) {
  switch (outcome) {
    case TraceOutcome::kNone: return "";
    case TraceOutcome::kHit: return "hit";
    case TraceOutcome::kMiss: return "miss";
    case TraceOutcome::kNxDomain: return "nxdomain";
  }
  return "";
}

/// One metadata event naming a pid (process_name) or tid (thread_name).
void append_meta_event(std::string& out, std::string_view meta_name, int pid,
                       std::uint32_t tid, std::string_view value,
                       bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += "    {\"name\": \"";
  out += meta_name;
  out += "\", \"ph\": \"M\", \"pid\": " + std::to_string(pid) +
         ", \"tid\": " + std::to_string(tid) + ", \"args\": {\"name\": ";
  json_string(out, value);
  out += "}}";
}

void append_event(std::string& out, const TraceSnapshotEvent& entry,
                  bool& first) {
  if (!first) out += ",\n";
  first = false;
  const TraceEvent& event = entry.event;
  out += "    {\"name\": \"";
  out += trace_op_name(event.op);
  out += "\", \"cat\": \"";
  out += trace_stage_name(entry.stage);
  out += "\", \"ph\": \"";
  out += event.instant ? "i" : "X";
  out += '"';
  if (event.instant) out += ", \"s\": \"t\"";  // thread-scoped instant
  out += ", \"ts\": ";
  append_us(out, event.ts_ns);
  if (!event.instant) {
    out += ", \"dur\": ";
    append_us(out, event.dur_ns);
  }
  out += ", \"pid\": " + std::to_string(static_cast<int>(entry.stage)) +
         ", \"tid\": " + std::to_string(entry.shard);
  // args in fixed key order, unset keys omitted (stability contract).
  std::string args;
  if (event.label[0] != '\0') {
    args += "\"label\": ";
    json_string(args, event.label);
  }
  if (event.qtype != 0) {
    if (!args.empty()) args += ", ";
    args += "\"qtype\": " + std::to_string(event.qtype);
  }
  if (event.outcome != TraceOutcome::kNone) {
    if (!args.empty()) args += ", ";
    args += "\"outcome\": \"";
    args += outcome_name(event.outcome);
    args += '"';
  }
  if (event.id != kTraceNoId) {
    if (!args.empty()) args += ", ";
    args += "\"id\": " + std::to_string(event.id);
  }
  if (!args.empty()) out += ", \"args\": {" + args + "}";
  out += '}';
}

}  // namespace

std::string to_json(const TraceSnapshot& snapshot,
                    const std::map<std::string, std::string>& meta) {
  std::map<std::string, std::string> merged = meta;
  merged["sample_every_n"] = std::to_string(snapshot.config.sample_every_n);
  merged["ring_capacity"] = std::to_string(snapshot.config.ring_capacity);
  merged["dropped_events"] = std::to_string(snapshot.dropped);

  std::string out = "{\n  \"schema\": \"dnsnoise-trace-v1\",\n"
                    "  \"displayTimeUnit\": \"ms\",\n";
  json_key(out, 2, "meta");
  out += "{\n";
  bool first = true;
  for (const auto& [k, v] : merged) {
    if (!first) out += ",\n";
    first = false;
    json_key(out, 4, k);
    json_string(out, v);
  }
  out += "\n  },\n";
  json_key(out, 2, "traceEvents");
  out += "[\n";

  // Name every (stage, shard) lane first so viewers group lanes sensibly.
  first = true;
  std::set<int> pids_named;
  for (const TraceSnapshotEvent& entry : snapshot.events) {
    const int pid = static_cast<int>(entry.stage);
    if (pids_named.insert(pid).second) {
      append_meta_event(out, "process_name", pid, 0,
                        trace_stage_name(entry.stage), first);
    }
  }
  std::set<std::pair<int, std::uint32_t>> tids_named;
  for (const TraceSnapshotEvent& entry : snapshot.events) {
    const int pid = static_cast<int>(entry.stage);
    if (tids_named.insert({pid, entry.shard}).second) {
      append_meta_event(out, "thread_name", pid, entry.shard,
                        "shard" + std::to_string(entry.shard), first);
    }
  }
  for (const TraceSnapshotEvent& entry : snapshot.events) {
    append_event(out, entry, first);
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string to_text_summary(const TraceSnapshot& snapshot,
                            std::size_t top_n) {
  struct OpStats {
    std::uint64_t spans = 0;
    std::uint64_t instants = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  // Keyed (stage, op) so the report groups by pipeline stage.
  std::map<std::pair<std::uint8_t, std::uint8_t>, OpStats> stats;
  std::vector<const TraceSnapshotEvent*> spans;
  for (const TraceSnapshotEvent& entry : snapshot.events) {
    OpStats& s = stats[{static_cast<std::uint8_t>(entry.stage),
                        static_cast<std::uint8_t>(entry.event.op)}];
    if (entry.event.instant) {
      ++s.instants;
    } else {
      ++s.spans;
      s.total_ns += entry.event.dur_ns;
      s.max_ns = std::max(s.max_ns, entry.event.dur_ns);
      spans.push_back(&entry);
    }
  }

  char line[160];
  std::string out = "trace summary: " + std::to_string(snapshot.events.size()) +
                    " events, sample_every_n=" +
                    std::to_string(snapshot.config.sample_every_n) +
                    ", dropped=" + std::to_string(snapshot.dropped) + "\n";
  if (snapshot.dropped > 0) {
    out += "warning: ring buffer wrapped (" + std::to_string(snapshot.dropped) +
           " events lost); raise ring_capacity or sample_every_n — shared "
           "streams with concurrent writers must never wrap\n";
  }
  out += "\nper-stage wall breakdown:\n";
  std::uint8_t last_stage = 0;
  for (const auto& [key, s] : stats) {
    if (key.first != last_stage) {
      last_stage = key.first;
      out += "  [";
      out += trace_stage_name(static_cast<TraceStage>(key.first));
      out += "]\n";
    }
    const std::string op{trace_op_name(static_cast<TraceOp>(key.second))};
    // A bucket may hold spans, instants, or (in principle) both; print a
    // line per kind so neither count is silently discarded.
    if (s.spans > 0) {
      std::snprintf(line, sizeof(line),
                    "    %-24s %8" PRIu64 " spans  total %10.3f ms  avg "
                    "%10.3f us  max %10.3f us\n",
                    op.c_str(), s.spans,
                    static_cast<double>(s.total_ns) / 1e6,
                    static_cast<double>(s.total_ns) /
                        static_cast<double>(s.spans) / 1e3,
                    static_cast<double>(s.max_ns) / 1e3);
      out += line;
    }
    if (s.instants > 0) {
      std::snprintf(line, sizeof(line), "    %-24s %8" PRIu64 " instants\n",
                    op.c_str(), s.instants);
      out += line;
    }
  }

  std::sort(spans.begin(), spans.end(),
            [](const TraceSnapshotEvent* a, const TraceSnapshotEvent* b) {
              if (a->event.dur_ns != b->event.dur_ns) {
                return a->event.dur_ns > b->event.dur_ns;
              }
              return a->event.ts_ns < b->event.ts_ns;
            });
  if (spans.size() > top_n) spans.resize(top_n);
  out += "\ntop " + std::to_string(spans.size()) + " slowest spans:\n";
  for (const TraceSnapshotEvent* entry : spans) {
    const std::string op{trace_op_name(entry->event.op)};
    std::snprintf(line, sizeof(line),
                  "  %12.3f us  %-24s shard %-3u %s\n",
                  static_cast<double>(entry->event.dur_ns) / 1e3, op.c_str(),
                  entry->shard, entry->event.label);
    out += line;
  }
  return out;
}

}  // namespace dnsnoise::obs
