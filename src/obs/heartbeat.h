// Per-stage liveness heartbeats for the telemetry health endpoint.
//
// A stage that wants /healthz coverage registers the gauge
// "obs.heartbeat.<stage>" and stores heartbeat_clock_seconds() into it
// while it makes progress; obs/telemetry_server derives per-stage ages
// from those gauges on the scrape thread.  The pattern matches every
// other obs hook: a null gauge disables the site entirely (one predicted
// branch, no clock read), and beating is a single relaxed atomic store —
// no locks anywhere near the hot path.  Inner loops use tick(), which
// reads the clock only once per `every_n` calls.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace dnsnoise::obs {

/// Gauge-name prefix the health renderer scans for; the suffix is the
/// stage name ("engine", "cluster", "miner", ...).
inline constexpr std::string_view kHeartbeatGaugePrefix = "obs.heartbeat.";

/// Gauge flagging an in-flight run (1 while a day simulates/mines, 0
/// when idle); /healthz only enforces heartbeat freshness while it is 1.
inline constexpr std::string_view kRunActiveGauge = "obs.run_active";

/// Monotonic seconds on a process-wide epoch — the one clock heartbeat
/// writers and the health renderer share.
double heartbeat_clock_seconds() noexcept;

/// Registers (or finds) the heartbeat gauge of `stage` in `registry`.
Gauge& heartbeat_gauge(MetricsRegistry& registry, std::string_view stage);

/// Null-gated beat handle; resolve once, then beat()/tick() freely.
class Heartbeat {
 public:
  Heartbeat() = default;
  /// `every_n` must be a power of two (tick's cheap modulo).
  explicit Heartbeat(Gauge* gauge, std::uint64_t every_n = 8192) noexcept
      : gauge_(gauge), mask_(every_n - 1) {}

  /// Registers the stage gauge when metrics are on; inert when
  /// `registry` is null.
  Heartbeat(MetricsRegistry* registry, std::string_view stage,
            std::uint64_t every_n = 8192)
      : Heartbeat(registry != nullptr ? &heartbeat_gauge(*registry, stage)
                                      : nullptr,
                  every_n) {}

  bool enabled() const noexcept { return gauge_ != nullptr; }

  /// Stamps the gauge with the heartbeat clock now.
  void beat() noexcept {
    if (gauge_ != nullptr) gauge_->set(heartbeat_clock_seconds());
  }

  /// Per-event hook for hot loops: beats every `every_n`-th call
  /// (including the first, so a stage reads live immediately).
  void tick() noexcept {
    if (gauge_ != nullptr && (ticks_++ & mask_) == 0) beat();
  }

 private:
  Gauge* gauge_ = nullptr;
  std::uint64_t mask_ = 0;
  std::uint64_t ticks_ = 0;
};

/// RAII raise/lower of the run-active gauge around a mining run; null
/// registry disables it.  Increment/decrement (not set) so nested scopes
/// — run() wrapping simulate() — keep the gauge non-zero until the
/// outermost one exits.
class RunActiveScope {
 public:
  explicit RunActiveScope(MetricsRegistry* registry)
      : gauge_(registry != nullptr
                   ? &registry->gauge(std::string(kRunActiveGauge))
                   : nullptr) {
    if (gauge_ != nullptr) gauge_->add(1.0);
  }
  ~RunActiveScope() {
    if (gauge_ != nullptr) gauge_->add(-1.0);
  }

  RunActiveScope(const RunActiveScope&) = delete;
  RunActiveScope& operator=(const RunActiveScope&) = delete;

 private:
  Gauge* gauge_;
};

}  // namespace dnsnoise::obs
