#include "obs/trace.h"

#include <algorithm>

namespace dnsnoise::obs {

std::string_view trace_op_name(TraceOp op) noexcept {
  switch (op) {
    case TraceOp::kWorkloadDay: return "workload.day";
    case TraceOp::kWorkloadSample: return "workload.sample";
    case TraceOp::kClusterSimulate: return "cluster.simulate";
    case TraceOp::kClusterQuery: return "cluster.query";
    case TraceOp::kEngineShard: return "engine.shard";
    case TraceOp::kEngineMerge: return "engine.merge";
    case TraceOp::kEngineClassify: return "engine.classify";
    case TraceOp::kMinerLabel: return "miner.label";
    case TraceOp::kMinerTrain: return "miner.train";
    case TraceOp::kMinerMine: return "miner.mine";
    case TraceOp::kMinerEvaluate: return "miner.evaluate";
    case TraceOp::kMinerZone: return "miner.zone";
    case TraceOp::kMinerGroupClassify: return "miner.group_classify";
    case TraceOp::kMinerDecolor: return "miner.decolor";
  }
  return "unknown";
}

std::string_view trace_stage_name(TraceStage stage) noexcept {
  switch (stage) {
    case TraceStage::kWorkload: return "workload";
    case TraceStage::kCluster: return "cluster";
    case TraceStage::kEngine: return "engine";
    case TraceStage::kMiner: return "miner";
  }
  return "unknown";
}

std::vector<TraceEvent> TraceStream::drain_ordered() const {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  const std::size_t capacity = ring_.size();
  std::vector<TraceEvent> out;
  if (n == 0 || capacity == 0) return out;
  const std::size_t live =
      n < capacity ? static_cast<std::size_t>(n) : capacity;
  out.reserve(live);
  // Oldest surviving event first: when the ring wrapped, that is the slot
  // the next claim would overwrite.
  const std::uint64_t first = n < capacity ? 0 : n - capacity;
  for (std::uint64_t i = first; i < n; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i % capacity)]);
  }
  return out;
}

TraceCollector::TraceCollector(TraceConfig config)
    : config_(config), epoch_(std::chrono::steady_clock::now()) {
  if (config_.sample_every_n == 0) config_.sample_every_n = 1;
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
}

TraceStream& TraceCollector::stream(TraceStage stage, std::uint32_t shard) {
  std::lock_guard lock(mutex_);
  const auto key =
      std::make_pair(static_cast<std::uint8_t>(stage), shard);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    it = streams_
             .emplace(key, std::make_unique<TraceStream>(
                               stage, shard, config_.ring_capacity))
             .first;
  }
  return *it->second;
}

std::size_t TraceCollector::stream_count() const {
  std::lock_guard lock(mutex_);
  return streams_.size();
}

TraceSnapshot TraceCollector::snapshot() const {
  std::lock_guard lock(mutex_);
  TraceSnapshot out;
  out.config = config_;
  // streams_ is keyed on (stage, shard), so iteration — and therefore the
  // snapshot and its JSON form — is (stage, shard)-sorted for free.
  for (const auto& [key, stream] : streams_) {
    out.dropped += stream->dropped();
    for (TraceEvent& event : stream->drain_ordered()) {
      out.events.push_back({stream->stage(), stream->shard(), event});
    }
  }
  return out;
}

}  // namespace dnsnoise::obs
