#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dnsnoise::obs {

void Gauge::add(double v) noexcept {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + v,
                                       std::memory_order_relaxed)) {}
}

void Gauge::set_max(double v) noexcept {
  double current = value_.load(std::memory_order_relaxed);
  while (current < v && !value_.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {}
}

void Timer::record_ns(std::uint64_t ns) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t min = min_ns_.load(std::memory_order_relaxed);
  while (ns < min &&
         !min_ns_.compare_exchange_weak(min, ns, std::memory_order_relaxed)) {}
  std::uint64_t max = max_ns_.load(std::memory_order_relaxed);
  while (ns > max &&
         !max_ns_.compare_exchange_weak(max, ns, std::memory_order_relaxed)) {}
}

std::uint64_t Timer::min_ns() const noexcept {
  const std::uint64_t min = min_ns_.load(std::memory_order_relaxed);
  return min == ~0ULL ? 0 : min;
}

double estimate_quantile(const MetricSample& histogram, double q) noexcept {
  if (histogram.count == 0 || !(q > 0.0) || !(q < 1.0)) return 0.0;
  // Target rank in (0, count]; ceil so q = 0.5 of a 2-sample histogram
  // lands on the first sample, matching the usual nearest-rank rule.
  const double target =
      std::max(1.0, std::ceil(q * static_cast<double>(histogram.count)));
  double cumulative = static_cast<double>(histogram.zero_count);
  if (target <= cumulative) return 0.0;  // rank inside the underflow bin
  for (const SnapshotBin& bin : histogram.bins) {
    const double next = cumulative + static_cast<double>(bin.count);
    if (target <= next) {
      // Geometric interpolation within the covering log-scale bin.
      const double frac =
          (target - cumulative) / static_cast<double>(bin.count);
      if (!(bin.lo > 0.0) || !(bin.hi > bin.lo)) return bin.hi;
      return bin.lo * std::pow(bin.hi / bin.lo, frac);
    }
    cumulative = next;
  }
  // Rank beyond the recorded bins (inconsistent sample); report the top.
  return histogram.bins.empty() ? 0.0 : histogram.bins.back().hi;
}

HistogramPercentiles estimate_percentiles(
    const MetricSample& histogram) noexcept {
  HistogramPercentiles out;
  out.p50 = estimate_quantile(histogram, 0.50);
  out.p90 = estimate_quantile(histogram, 0.90);
  out.p99 = estimate_quantile(histogram, 0.99);
  out.p999 = estimate_quantile(histogram, 0.999);
  return out;
}

double estimate_sum(const MetricSample& histogram) noexcept {
  double sum = 0.0;
  for (const SnapshotBin& bin : histogram.bins) {
    const double center = bin.lo > 0.0 && bin.hi > bin.lo
                              ? std::sqrt(bin.lo * bin.hi)
                              : bin.hi;
    sum += center * static_cast<double>(bin.count);
  }
  return sum;
}

const MetricSample* MetricsSnapshot::find(
    std::string_view name) const noexcept {
  for (const MetricSample& sample : samples) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               MetricKind kind) {
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("MetricsRegistry: metric '" + std::string(name) +
                             "' already registered with a different kind");
    }
    return it->second;
  }
  Entry& fresh = entries_[std::string(name)];
  fresh.kind = kind;
  return fresh;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  Entry& e = entry(name, MetricKind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  Entry& e = entry(name, MetricKind::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Timer& MetricsRegistry::timer(std::string_view name) {
  std::lock_guard lock(mutex_);
  Entry& e = entry(name, MetricKind::kTimer);
  if (!e.timer) e.timer = std::make_unique<Timer>();
  return *e.timer;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double max,
                                      std::size_t bins_per_decade) {
  std::lock_guard lock(mutex_);
  Entry& e = entry(name, MetricKind::kHistogram);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(max, bins_per_decade);
  }
  return *e.histogram;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  constexpr double kNsPerSecond = 1e9;
  std::lock_guard lock(mutex_);
  MetricsSnapshot out;
  out.samples.reserve(entries_.size());
  // entries_ is an ordered map, so the snapshot (and its JSON form) is
  // name-sorted without an extra sort.
  for (const auto& [name, e] : entries_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        sample.count = e.counter->value();
        break;
      case MetricKind::kGauge:
        sample.value = e.gauge->value();
        break;
      case MetricKind::kTimer:
        sample.count = e.timer->count();
        sample.total_seconds =
            static_cast<double>(e.timer->total_ns()) / kNsPerSecond;
        sample.min_seconds =
            static_cast<double>(e.timer->min_ns()) / kNsPerSecond;
        sample.max_seconds =
            static_cast<double>(e.timer->max_ns()) / kNsPerSecond;
        break;
      case MetricKind::kHistogram: {
        const LogHistogram hist = e.histogram->copy();
        sample.count = hist.total();
        sample.zero_count = hist.zero_count();
        for (std::size_t bin = 0; bin < hist.bins(); ++bin) {
          if (hist.count(bin) == 0) continue;
          sample.bins.push_back(
              {hist.bin_lo(bin), hist.bin_hi(bin), hist.count(bin)});
        }
        break;
      }
    }
    out.samples.push_back(std::move(sample));
  }
  return out;
}

}  // namespace dnsnoise::obs
