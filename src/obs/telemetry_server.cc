#include "obs/telemetry_server.h"

#include <algorithm>

#include "obs/heartbeat.h"
#include "obs/json_writer.h"
#include "obs/openmetrics.h"

namespace dnsnoise::obs {

HealthDocument render_health(const MetricsSnapshot& snapshot,
                             double now_seconds, double stall_seconds) {
  HealthDocument doc;
  const MetricSample* active = snapshot.find(kRunActiveGauge);
  doc.run_active = active != nullptr && active->value != 0.0;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.kind != MetricKind::kGauge) continue;
    if (sample.name.rfind(kHeartbeatGaugePrefix, 0) != 0) continue;
    StageHealth stage;
    stage.stage = sample.name.substr(kHeartbeatGaugePrefix.size());
    stage.age_seconds = std::max(0.0, now_seconds - sample.value);
    stage.ok = !doc.run_active || stage.age_seconds <= stall_seconds;
    doc.healthy = doc.healthy && stage.ok;
    doc.stages.push_back(std::move(stage));
  }

  std::string& out = doc.json;
  out = "{\n  \"schema\": \"dnsnoise-health-v1\",\n";
  json_key(out, 2, "status");
  json_string(out, !doc.healthy      ? "stalled"
                   : doc.run_active ? "ok"
                                    : "idle");
  out += ",\n";
  json_key(out, 2, "run_active");
  out += doc.run_active ? "true" : "false";
  out += ",\n";
  json_key(out, 2, "stall_seconds");
  out += format_double(stall_seconds);
  out += ",\n";
  json_key(out, 2, "stages");
  if (doc.stages.empty()) {
    out += "[]";
  } else {
    out += "[\n";
    bool first = true;
    for (const StageHealth& stage : doc.stages) {
      if (!first) out += ",\n";
      first = false;
      out += "    {";
      out += "\"stage\": ";
      json_string(out, stage.stage);
      out += ", \"age_seconds\": " + format_double(stage.age_seconds);
      out += ", \"ok\": ";
      out += stage.ok ? "true" : "false";
      out += "}";
    }
    out += "\n  ]";
  }
  out += "\n}\n";
  return doc;
}

TelemetryServer::TelemetryServer(const MetricsRegistry& registry,
                                 TelemetryConfig config)
    : registry_(registry), config_(std::move(config)) {
  if (config_.stall_seconds <= 0.0) config_.stall_seconds = 30.0;
}

TelemetryServer::~TelemetryServer() { stop(); }

bool TelemetryServer::start() {
  if (listener_.running()) return true;
  return listener_.start(config_.port, [this](const net::HttpRequest& req) {
    return handle(req);
  });
}

void TelemetryServer::stop() { listener_.stop(); }

void TelemetryServer::publish_trace(std::string trace_json) {
  const std::lock_guard lock(trace_mutex_);
  trace_json_ = std::move(trace_json);
}

void TelemetryServer::set_slowlog_source(
    std::function<std::string()> source) {
  const std::lock_guard lock(slowlog_mutex_);
  slowlog_source_ = std::move(source);
}

net::HttpResponse TelemetryServer::handle(
    const net::HttpRequest& request) const {
  net::HttpResponse response;
  // Strip any query string: scrapers may append ?format=... style noise.
  std::string path = request.target.substr(0, request.target.find('?'));
  if (path == "/metrics") {
    response.content_type = std::string(kOpenMetricsContentType);
    response.body = to_openmetrics(registry_.snapshot(), config_.labels);
    return response;
  }
  if (path == "/healthz") {
    HealthDocument doc = render_health(
        registry_.snapshot(), heartbeat_clock_seconds(), config_.stall_seconds);
    response.status = doc.healthy ? 200 : 503;
    response.content_type = "application/json; charset=utf-8";
    response.body = std::move(doc.json);
    return response;
  }
  if (path == "/trace") {
    const std::lock_guard lock(trace_mutex_);
    if (trace_json_.empty()) {
      response.status = 404;
      response.content_type = "application/json; charset=utf-8";
      response.body =
          "{\"error\": \"no trace snapshot published; enable tracing and "
          "finish a day\"}\n";
      return response;
    }
    response.content_type = "application/json; charset=utf-8";
    response.body = trace_json_;
    return response;
  }
  if (path == "/slowlog") {
    std::function<std::string()> source;
    {
      const std::lock_guard lock(slowlog_mutex_);
      source = slowlog_source_;
    }
    if (!source) {
      response.status = 404;
      response.content_type = "application/json; charset=utf-8";
      response.body =
          "{\"error\": \"no slow-query log attached; start a wire "
          "front-end with metrics enabled\"}\n";
      return response;
    }
    response.content_type = "application/json; charset=utf-8";
    response.body = source();
    return response;
  }
  if (path == "/") {
    response.body =
        "dnsnoise telemetry\n"
        "  /metrics  OpenMetrics exposition of the live registry\n"
        "  /healthz  per-stage liveness (200 ok/idle, 503 stalled)\n"
        "  /trace    latest dnsnoise-trace-v1 snapshot\n"
        "  /slowlog  worst-N slow queries with stage breakdowns\n";
    return response;
  }
  response.status = 404;
  response.body =
      "unknown endpoint; try /metrics, /healthz, /trace, /slowlog\n";
  return response;
}

}  // namespace dnsnoise::obs
