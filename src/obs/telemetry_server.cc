#include "obs/telemetry_server.h"

#include <algorithm>
#include <charconv>
#include <utility>

#include "obs/heartbeat.h"
#include "obs/json_writer.h"
#include "obs/openmetrics.h"

namespace dnsnoise::obs {

namespace {

/// One parsed key=value pair of a request's query string.
struct QueryParam {
  std::string_view key;
  std::string_view value;
};

/// Strict query-string split: every non-empty '&'-segment must be
/// key=value with a non-empty key.  Returns false on violation, with the
/// offending segment in `bad` — the caller answers 400 instead of
/// silently ignoring the malformed input.
bool parse_query(std::string_view query, std::vector<QueryParam>& params,
                 std::string_view& bad) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view segment = query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    if (segment.empty()) continue;
    const std::size_t eq = segment.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      bad = segment;
      return false;
    }
    params.push_back(QueryParam{segment.substr(0, eq), segment.substr(eq + 1)});
  }
  return true;
}

bool parse_size(std::string_view value, std::size_t& out) {
  const char* const end = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(value.data(), end, out);
  return ec == std::errc() && ptr == end;
}

net::HttpResponse bad_request(std::string message) {
  net::HttpResponse response;
  response.status = 400;
  response.content_type = "application/json; charset=utf-8";
  response.body = "{\"error\": \"" + json_escape(message) + "\"}\n";
  return response;
}

net::HttpResponse method_not_allowed(std::string_view allow) {
  net::HttpResponse response;
  response.status = 405;
  response.body = "method not allowed\n";
  response.headers.emplace_back("Allow", std::string(allow));
  return response;
}

}  // namespace

HealthDocument render_health(const MetricsSnapshot& snapshot,
                             double now_seconds, double stall_seconds) {
  HealthDocument doc;
  const MetricSample* active = snapshot.find(kRunActiveGauge);
  doc.run_active = active != nullptr && active->value != 0.0;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.kind != MetricKind::kGauge) continue;
    if (sample.name.rfind(kHeartbeatGaugePrefix, 0) != 0) continue;
    StageHealth stage;
    stage.stage = sample.name.substr(kHeartbeatGaugePrefix.size());
    stage.age_seconds = std::max(0.0, now_seconds - sample.value);
    stage.ok = !doc.run_active || stage.age_seconds <= stall_seconds;
    doc.healthy = doc.healthy && stage.ok;
    doc.stages.push_back(std::move(stage));
  }

  std::string& out = doc.json;
  out = "{\n  \"schema\": \"dnsnoise-health-v1\",\n";
  json_key(out, 2, "status");
  json_string(out, !doc.healthy      ? "stalled"
                   : doc.run_active ? "ok"
                                    : "idle");
  out += ",\n";
  json_key(out, 2, "run_active");
  out += doc.run_active ? "true" : "false";
  out += ",\n";
  json_key(out, 2, "stall_seconds");
  out += format_double(stall_seconds);
  out += ",\n";
  json_key(out, 2, "stages");
  if (doc.stages.empty()) {
    out += "[]";
  } else {
    out += "[\n";
    bool first = true;
    for (const StageHealth& stage : doc.stages) {
      if (!first) out += ",\n";
      first = false;
      out += "    {";
      out += "\"stage\": ";
      json_string(out, stage.stage);
      out += ", \"age_seconds\": " + format_double(stage.age_seconds);
      out += ", \"ok\": ";
      out += stage.ok ? "true" : "false";
      out += "}";
    }
    out += "\n  ]";
  }
  out += "\n}\n";
  return doc;
}

TelemetryServer::TelemetryServer(const MetricsRegistry& registry,
                                 TelemetryConfig config)
    : registry_(registry), config_(std::move(config)) {
  if (config_.stall_seconds <= 0.0) config_.stall_seconds = 30.0;
}

TelemetryServer::~TelemetryServer() { stop(); }

bool TelemetryServer::start() {
  if (listener_.running()) return true;
  return listener_.start(config_.port, [this](const net::HttpRequest& req) {
    return handle(req);
  });
}

void TelemetryServer::stop() { listener_.stop(); }

void TelemetryServer::publish_trace(std::string trace_json) {
  const std::lock_guard lock(trace_mutex_);
  trace_json_ = std::move(trace_json);
}

void TelemetryServer::set_slowlog_source(SlowlogSource source) {
  const std::lock_guard lock(slowlog_mutex_);
  slowlog_source_ = std::move(source);
}

void TelemetryServer::set_traffic_source(std::function<std::string()> source) {
  const std::lock_guard lock(traffic_mutex_);
  traffic_source_ = std::move(source);
}

void TelemetryServer::set_metrics_refresh(std::function<void()> refresh) {
  const std::lock_guard lock(refresh_mutex_);
  metrics_refresh_ = std::move(refresh);
}

net::HttpResponse TelemetryServer::handle(
    const net::HttpRequest& request) const {
  net::HttpResponse response;
  const std::size_t question_mark = request.target.find('?');
  const std::string path = request.target.substr(0, question_mark);
  // Strict query parsing on every endpoint: malformed is a 400, never
  // silently ignored; well-formed parameters an endpoint does not
  // recognize are fine (scrapers append ?format=... style noise).
  std::vector<QueryParam> params;
  if (question_mark != std::string::npos) {
    std::string_view bad;
    if (!parse_query(std::string_view(request.target).substr(question_mark + 1),
                     params, bad)) {
      return bad_request("malformed query parameter: " + std::string(bad) +
                         " (expected key=value)");
    }
  }
  const bool is_post = request.method == "POST";

  if (path == "/slowlog/clear") {
    if (!is_post) return method_not_allowed("POST");
    std::function<void()> clear;
    {
      const std::lock_guard lock(slowlog_mutex_);
      clear = slowlog_source_.clear;
    }
    if (!clear) {
      response.status = 404;
      response.content_type = "application/json; charset=utf-8";
      response.body =
          "{\"error\": \"no slow-query log attached; start a wire "
          "front-end with metrics enabled\"}\n";
      return response;
    }
    clear();
    response.content_type = "application/json; charset=utf-8";
    response.body = "{\"cleared\": true}\n";
    return response;
  }
  // Every remaining endpoint is read-only.
  if (is_post) return method_not_allowed("GET, HEAD");

  if (path == "/metrics") {
    std::function<void()> refresh;
    {
      const std::lock_guard lock(refresh_mutex_);
      refresh = metrics_refresh_;
    }
    if (refresh) refresh();
    response.content_type = std::string(kOpenMetricsContentType);
    response.body = to_openmetrics(registry_.snapshot(), config_.labels);
    return response;
  }
  if (path == "/healthz") {
    HealthDocument doc = render_health(
        registry_.snapshot(), heartbeat_clock_seconds(), config_.stall_seconds);
    response.status = doc.healthy ? 200 : 503;
    response.content_type = "application/json; charset=utf-8";
    response.body = std::move(doc.json);
    return response;
  }
  if (path == "/trace") {
    const std::lock_guard lock(trace_mutex_);
    if (trace_json_.empty()) {
      response.status = 404;
      response.content_type = "application/json; charset=utf-8";
      response.body =
          "{\"error\": \"no trace snapshot published; enable tracing and "
          "finish a day\"}\n";
      return response;
    }
    response.content_type = "application/json; charset=utf-8";
    response.body = trace_json_;
    return response;
  }
  if (path == "/slowlog") {
    std::size_t max_entries = 0;  // 0 = no cap
    for (const QueryParam& param : params) {
      if (param.key != "n") continue;
      if (!parse_size(param.value, max_entries)) {
        return bad_request("invalid n: " + std::string(param.value) +
                           " (expected a non-negative integer)");
      }
    }
    std::function<std::string(std::size_t)> render;
    {
      const std::lock_guard lock(slowlog_mutex_);
      render = slowlog_source_.render;
    }
    if (!render) {
      response.status = 404;
      response.content_type = "application/json; charset=utf-8";
      response.body =
          "{\"error\": \"no slow-query log attached; start a wire "
          "front-end with metrics enabled\"}\n";
      return response;
    }
    response.content_type = "application/json; charset=utf-8";
    response.body = render(max_entries);
    return response;
  }
  if (path == "/traffic") {
    std::function<std::string()> source;
    {
      const std::lock_guard lock(traffic_mutex_);
      source = traffic_source_;
    }
    if (!source) {
      response.status = 404;
      response.content_type = "application/json; charset=utf-8";
      response.body =
          "{\"error\": \"no traffic sketch plane attached; enable traffic "
          "introspection\"}\n";
      return response;
    }
    response.content_type = "application/json; charset=utf-8";
    response.body = source();
    return response;
  }
  if (path == "/") {
    response.body =
        "dnsnoise telemetry\n"
        "  /metrics  OpenMetrics exposition of the live registry\n"
        "  /healthz  per-stage liveness (200 ok/idle, 503 stalled)\n"
        "  /trace    latest dnsnoise-trace-v1 snapshot\n"
        "  /slowlog  worst-N slow queries with stage breakdowns (?n=N)\n"
        "  /traffic  live dnsnoise-traffic-v1 sketch snapshot\n";
    return response;
  }
  response.status = 404;
  response.body =
      "unknown endpoint; try /metrics, /healthz, /trace, /slowlog, "
      "/traffic\n";
  return response;
}

}  // namespace dnsnoise::obs
