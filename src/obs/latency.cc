#include "obs/latency.h"

#include <algorithm>
#include <cmath>

#include "obs/json_writer.h"

namespace dnsnoise::obs {

double LatencySnapshot::quantile_ns(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min_ns);
  if (q >= 1.0) return static_cast<double>(max_ns);
  // Smallest value whose CDF reaches q: rank r in [1, count].
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  const std::uint64_t target = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t c = counts[i];
    if (c == 0) continue;
    if (seen + c >= target) {
      const auto lo = static_cast<double>(LatencyBuckets::lower_bound(i));
      const auto hi = static_cast<double>(LatencyBuckets::upper_bound(i));
      // Linear interpolation of the rank within the covering bucket.
      const double frac =
          (static_cast<double>(target - seen) - 0.5) / static_cast<double>(c);
      const double value = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      // The true extremes are tracked exactly; never report beyond them.
      return std::clamp(value, static_cast<double>(min_ns),
                        static_cast<double>(max_ns));
    }
    seen += c;
  }
  return static_cast<double>(max_ns);
}

LatencyPercentiles LatencySnapshot::percentiles_seconds() const noexcept {
  LatencyPercentiles p;
  p.p50 = quantile_ns(0.50) * 1e-9;
  p.p90 = quantile_ns(0.90) * 1e-9;
  p.p99 = quantile_ns(0.99) * 1e-9;
  p.p999 = quantile_ns(0.999) * 1e-9;
  return p;
}

LatencySnapshot LatencySnapshot::delta_since(const LatencySnapshot& prev)
    const {
  LatencySnapshot delta;
  delta.counts.assign(LatencyBuckets::kBucketCount, 0);
  for (std::size_t i = 0; i < delta.counts.size(); ++i) {
    const std::uint64_t now = i < counts.size() ? counts[i] : 0;
    const std::uint64_t old = i < prev.counts.size() ? prev.counts[i] : 0;
    delta.counts[i] = now > old ? now - old : 0;
    delta.count += delta.counts[i];
  }
  delta.sum_ns = sum_ns > prev.sum_ns ? sum_ns - prev.sum_ns : 0;
  delta.saturated =
      saturated > prev.saturated ? saturated - prev.saturated : 0;
  // Extremes are cumulative, not differentiable; keep the current ones.
  delta.min_ns = min_ns;
  delta.max_ns = max_ns;
  return delta;
}

void LatencySnapshot::publish_to(Histogram& histogram) const {
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double lo = static_cast<double>(LatencyBuckets::lower_bound(i));
    const double hi = static_cast<double>(LatencyBuckets::upper_bound(i));
    histogram.record(std::sqrt(std::max(lo, 1.0) * hi), counts[i]);
  }
}

LatencyRecorder::LatencyRecorder(std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

LatencyRecorder::Shard& LatencyRecorder::thread_shard() {
  // One slot per (thread, recorder): a thread may bind to several
  // recorders (decode/cluster/encode breakdowns live side by side).
  struct Binding {
    const LatencyRecorder* recorder = nullptr;
    Shard* shard = nullptr;
  };
  thread_local std::vector<Binding> bindings;
  for (const Binding& b : bindings) {
    if (b.recorder == this) return *b.shard;
  }
  std::size_t index;
  {
    const std::lock_guard lock(bind_mutex_);
    index = next_bind_++ % shards_.size();
  }
  bindings.push_back(Binding{this, shards_[index].get()});
  return *bindings.back().shard;
}

void LatencyRecorder::reset() noexcept {
  for (const auto& shard : shards_) {
    for (auto& c : shard->counts_) c.store(0, std::memory_order_relaxed);
    shard->sum_ns_.store(0, std::memory_order_relaxed);
    shard->min_ns_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    shard->max_ns_.store(0, std::memory_order_relaxed);
    shard->saturated_.store(0, std::memory_order_relaxed);
  }
}

LatencySnapshot LatencyRecorder::snapshot() const {
  LatencySnapshot out;
  out.counts.assign(LatencyBuckets::kBucketCount, 0);
  std::uint64_t min_ns = ~std::uint64_t{0};
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < out.counts.size(); ++i) {
      out.counts[i] += shard->counts_[i].load(std::memory_order_relaxed);
    }
    out.sum_ns += shard->sum_ns_.load(std::memory_order_relaxed);
    out.saturated += shard->saturated_.load(std::memory_order_relaxed);
    min_ns = std::min(min_ns, shard->min_ns_.load(std::memory_order_relaxed));
    out.max_ns =
        std::max(out.max_ns, shard->max_ns_.load(std::memory_order_relaxed));
  }
  for (const std::uint64_t c : out.counts) out.count += c;
  out.min_ns = out.count == 0 ? 0 : min_ns;
  return out;
}

SlowQueryLog::SlowQueryLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  entries_.reserve(capacity_);
}

void SlowQueryLog::maybe_add(const SlowQueryEntry& entry) {
  // Fast path: below the published N-th-slowest threshold, not slow.
  if (!would_admit(entry.total_ns)) return;
  const std::lock_guard lock(mutex_);
  if (entries_.size() < capacity_) {
    entries_.push_back(entry);
    if (entries_.size() < capacity_) return;  // threshold stays 0 until full
  } else {
    auto slowest_evictable = std::min_element(
        entries_.begin(), entries_.end(),
        [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
          return a.total_ns < b.total_ns;
        });
    if (entry.total_ns <= slowest_evictable->total_ns) return;  // raced
    *slowest_evictable = entry;
  }
  const auto new_floor = std::min_element(
      entries_.begin(), entries_.end(),
      [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
        return a.total_ns < b.total_ns;
      });
  threshold_ns_.store(new_floor->total_ns, std::memory_order_relaxed);
}

std::vector<SlowQueryEntry> SlowQueryLog::entries() const {
  std::vector<SlowQueryEntry> out;
  {
    const std::lock_guard lock(mutex_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
              return a.total_ns > b.total_ns;
            });
  return out;
}

void SlowQueryLog::clear() {
  const std::lock_guard lock(mutex_);
  entries_.clear();
  threshold_ns_.store(0, std::memory_order_relaxed);
}

std::string SlowQueryLog::to_json(std::size_t max_entries) const {
  std::vector<SlowQueryEntry> sorted = entries();
  if (max_entries != 0 && sorted.size() > max_entries) {
    sorted.resize(max_entries);  // already slowest first: keep the worst N
  }
  std::string out = "{\n  \"schema\": \"dnsnoise-slowlog-v1\",\n";
  json_key(out, 2, "capacity");
  out += std::to_string(capacity_);
  out += ",\n";
  json_key(out, 2, "entries");
  if (sorted.empty()) {
    out += "[]";
  } else {
    out += "[\n";
    bool first = true;
    for (const SlowQueryEntry& entry : sorted) {
      if (!first) out += ",\n";
      first = false;
      out += "    {\"qname\": ";
      json_string(out, entry.qname);
      out += ", \"ts\": " + std::to_string(entry.ts);
      out += ", \"total_ns\": " + std::to_string(entry.total_ns);
      out += ", \"decode_ns\": " + std::to_string(entry.decode_ns);
      out += ", \"cluster_ns\": " + std::to_string(entry.cluster_ns);
      out += ", \"encode_ns\": " + std::to_string(entry.encode_ns);
      out += "}";
    }
    out += "\n  ]";
  }
  out += "\n}\n";
  return out;
}

}  // namespace dnsnoise::obs
