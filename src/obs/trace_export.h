// Stable JSON + text export of a TraceSnapshot.
//
// to_json emits schema dnsnoise-trace-v1, a Chrome-trace-event /
// Perfetto-compatible document (load it in chrome://tracing or ui.perfetto.dev):
//
//   {
//     "schema": "dnsnoise-trace-v1",
//     "displayTimeUnit": "ms",
//     "meta": {"sample_every_n": "64", ...},      // sorted string pairs
//     "traceEvents": [
//       {"name": "process_name", "ph": "M", "pid": 2, "tid": 0,
//        "args": {"name": "cluster"}},            // one per stage/shard
//       {"name": "cluster.query", "cat": "cluster", "ph": "X",
//        "ts": 12.345, "dur": 1.002, "pid": 2, "tid": 0,
//        "args": {"label": "x.ads.example", "qtype": 1,
//                 "outcome": "miss"}},            // spans: ph "X"
//       {"name": "miner.decolor", "cat": "miner", "ph": "i", "s": "t",
//        "ts": 99.1, "pid": 4, "tid": 0, "args": {...}},  // instants
//       ...
//     ]
//   }
//
// Mapping: pid = pipeline stage (workload=1, cluster=2, engine=3,
// miner=4), tid = shard/server index, ts/dur are microseconds since the
// collector epoch with nanosecond resolution (fixed 3 decimals).  args
// keys appear in the fixed order label, qtype, outcome, id, each omitted
// when unset — so serializing the same snapshot twice yields
// byte-identical text (the metrics exporter's stability contract).
//
// to_text_summary renders the per-stage wall breakdown and top-N slowest
// spans for terminal use; tools/dnsnoise-inspect reimplements the same
// views (plus diff) over the JSON files.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "obs/trace.h"

namespace dnsnoise::obs {

/// Serializes `snapshot` (plus optional "meta" string pairs, merged with
/// the built-in sample_every_n/ring_capacity/dropped entries) to the
/// schema above.
std::string to_json(const TraceSnapshot& snapshot,
                    const std::map<std::string, std::string>& meta = {});

/// Compact text timeline summary: per-op span totals grouped by stage,
/// then the `top_n` slowest spans.
std::string to_text_summary(const TraceSnapshot& snapshot,
                            std::size_t top_n = 10);

}  // namespace dnsnoise::obs
