// Minimal IPv4/IPv6 address values with parse/format, shared by the DNS
// rdata codec and the packet layer.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dnsnoise {

/// IPv4 address stored in host byte order.
struct Ipv4 {
  std::uint32_t value = 0;

  static constexpr Ipv4 from_octets(std::uint8_t a, std::uint8_t b,
                                    std::uint8_t c, std::uint8_t d) noexcept {
    return Ipv4{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }

  std::array<std::uint8_t, 4> octets() const noexcept {
    return {static_cast<std::uint8_t>(value >> 24),
            static_cast<std::uint8_t>(value >> 16),
            static_cast<std::uint8_t>(value >> 8),
            static_cast<std::uint8_t>(value)};
  }

  friend bool operator==(Ipv4, Ipv4) = default;
};

/// Parses dotted-quad notation.
std::optional<Ipv4> parse_ipv4(std::string_view text) noexcept;

/// Formats as dotted quad.
std::string format_ipv4(Ipv4 ip);

/// IPv6 address as 16 network-order bytes.
struct Ipv6 {
  std::array<std::uint8_t, 16> bytes{};
  friend bool operator==(const Ipv6&, const Ipv6&) = default;
};

/// Parses full or '::'-compressed hex groups (no embedded IPv4 form).
std::optional<Ipv6> parse_ipv6(std::string_view text) noexcept;

/// Formats with best-effort '::' compression of the longest zero run.
std::string format_ipv6(const Ipv6& ip);

}  // namespace dnsnoise
