// DomainName: a normalized DNS domain name with O(1) label access.
//
// Names are stored lowercase with no trailing dot.  The paper's notation
// (Section III-B) indexes labels from the right: TLD(d) is the rightmost
// label, 2LD(d) the two rightmost, and NLD(d, n) the n rightmost labels.
// This class supports both that right-anchored view and the left-to-right
// label view used when walking the domain name tree.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dnsnoise {

class DomainName {
 public:
  /// Maximum presentation length we accept (RFC 1035: 253 visible chars).
  static constexpr std::size_t kMaxTextLength = 253;
  /// Maximum single-label length (RFC 1035).
  static constexpr std::size_t kMaxLabelLength = 63;

  DomainName() = default;

  /// Normalizing constructor; throws std::invalid_argument on malformed
  /// input.  Accepts an optional trailing dot and uppercase letters.
  explicit DomainName(std::string_view text);

  /// Non-throwing validating parse.
  static std::optional<DomainName> parse(std::string_view text);

  /// Re-parses `text` into this object, reusing the existing text and
  /// offset capacity — the allocation-free path for scratch names that are
  /// re-assigned per query.  Returns false (leaving the name empty) on
  /// malformed input.
  bool assign(std::string_view text);

  /// True for the empty (root) name.
  bool empty() const noexcept { return text_.empty(); }

  /// Normalized presentation form (lowercase, no trailing dot).
  const std::string& text() const noexcept { return text_; }

  /// Number of labels; 0 for the root.
  std::size_t label_count() const noexcept { return offsets_.size(); }

  /// i-th label left-to-right (0 is the leftmost, most specific label).
  std::string_view label(std::size_t i) const;

  /// i-th label right-to-left (0 is the TLD-side label).
  std::string_view label_from_right(std::size_t i) const {
    return label(label_count() - 1 - i);
  }

  /// All labels, left-to-right, as views into this object.
  std::vector<std::string_view> labels() const;

  /// Allocation-free label range, left-to-right.  Iterators stay valid
  /// while this DomainName is alive and unmodified; hot callers (tree
  /// insert, feature extraction) use this instead of labels().
  class LabelRange {
   public:
    class iterator {
     public:
      using value_type = std::string_view;
      using difference_type = std::ptrdiff_t;

      iterator() = default;
      iterator(const DomainName* name, std::size_t index) noexcept
          : name_(name), index_(index) {}

      std::string_view operator*() const { return name_->label(index_); }
      iterator& operator++() noexcept {
        ++index_;
        return *this;
      }
      iterator operator++(int) noexcept {
        iterator old = *this;
        ++index_;
        return old;
      }
      friend bool operator==(const iterator&, const iterator&) = default;

     private:
      const DomainName* name_ = nullptr;
      std::size_t index_ = 0;
    };

    explicit LabelRange(const DomainName& name) noexcept : name_(&name) {}
    iterator begin() const noexcept { return {name_, 0}; }
    iterator end() const noexcept { return {name_, name_->label_count()}; }
    std::size_t size() const noexcept { return name_->label_count(); }

   private:
    const DomainName* name_;
  };

  /// The labels as an allocation-free range (see LabelRange).
  LabelRange label_range() const noexcept { return LabelRange(*this); }

  /// The n rightmost labels as a new name (paper's NLD).  n >= label_count()
  /// returns the whole name; n == 0 returns the root.
  DomainName nld(std::size_t n) const;

  /// The n rightmost labels as a view into this name's text (zero-copy).
  std::string_view nld_view(std::size_t n) const;

  /// Name with the leftmost label removed; root if single-label.
  DomainName parent() const;

  /// True if this name equals `zone` or is underneath it.
  bool is_within(const DomainName& zone) const noexcept {
    return is_within(zone.text());
  }
  bool is_within(std::string_view zone) const noexcept;

  /// Name formed by prepending `child_label` (e.g. "www" + example.com).
  DomainName child(std::string_view child_label) const;

  friend bool operator==(const DomainName&, const DomainName&) = default;
  friend std::strong_ordering operator<=>(const DomainName& a,
                                          const DomainName& b) {
    return a.text_ <=> b.text_;
  }

 private:
  // Byte offset of the start of every label within text_, left-to-right.
  std::string text_;
  std::vector<std::uint16_t> offsets_;

  void index_labels();

  /// One-pass normalize via the vectorized dot-scan kernel: validates,
  /// lowercases, and indexes labels together.  Returns false (leaving the
  /// name empty) on malformed input; reuses existing capacity, so
  /// steady-state re-assign is allocation-free.
  bool scan_into(std::string_view text);
};

}  // namespace dnsnoise

template <>
struct std::hash<dnsnoise::DomainName> {
  std::size_t operator()(const dnsnoise::DomainName& n) const noexcept {
    return std::hash<std::string>{}(n.text());
  }
};
