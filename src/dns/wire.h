// DNS wire-format codec (RFC 1035 §4) with name compression.
//
// The capture pipeline (netio/) parses raw DNS payloads out of pcap frames
// at high rate; the decoder is therefore non-throwing and fully
// bounds-checked, returning std::nullopt on any malformed input
// (truncation, compression loops, label overruns).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dns/message.h"

namespace dnsnoise {

/// Serializes a message to wire format, compressing repeated name suffixes.
/// Throws std::invalid_argument if an A/AAAA record carries unparseable
/// rdata.
std::vector<std::uint8_t> encode_message(const DnsMessage& msg);

/// Parses a wire-format message.  Returns std::nullopt on malformed input.
std::optional<DnsMessage> decode_message(std::span<const std::uint8_t> wire);

/// Decodes a single (possibly compressed) name starting at `offset` within
/// `wire`.  On success advances `offset` past the name's in-place bytes and
/// returns the name.  Exposed for tests and for tools that scan packets.
std::optional<DomainName> decode_name(std::span<const std::uint8_t> wire,
                                      std::size_t& offset);

}  // namespace dnsnoise
