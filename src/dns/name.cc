#include "dns/name.h"

#include <cctype>
#include <stdexcept>

namespace dnsnoise {

namespace {

bool is_allowed_label_char(char c) noexcept {
  const auto uc = static_cast<unsigned char>(c);
  // Hostnames in the wild (and in the paper's Fig. 6 samples) use letters,
  // digits, hyphens, and underscores; we accept that superset of LDH.
  return std::isalnum(uc) != 0 || c == '-' || c == '_';
}

}  // namespace

std::string DomainName::normalize_or_throw(std::string_view text) {
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return {};
  if (text.size() > kMaxTextLength) {
    throw std::invalid_argument("DomainName: name too long");
  }
  std::string out;
  out.reserve(text.size());
  std::size_t label_len = 0;
  for (const char c : text) {
    if (c == '.') {
      if (label_len == 0) {
        throw std::invalid_argument("DomainName: empty label");
      }
      label_len = 0;
      out.push_back('.');
      continue;
    }
    if (!is_allowed_label_char(c)) {
      throw std::invalid_argument("DomainName: invalid character");
    }
    if (++label_len > kMaxLabelLength) {
      throw std::invalid_argument("DomainName: label too long");
    }
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (label_len == 0) throw std::invalid_argument("DomainName: empty label");
  return out;
}

DomainName::DomainName(std::string_view text)
    : text_(normalize_or_throw(text)) {
  index_labels();
}

std::optional<DomainName> DomainName::parse(std::string_view text) {
  try {
    return DomainName(text);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

bool DomainName::assign(std::string_view text) {
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  text_.clear();
  offsets_.clear();
  if (text.empty()) return true;
  if (text.size() > kMaxTextLength) return false;
  std::size_t label_len = 0;
  for (const char c : text) {
    if (c == '.') {
      if (label_len == 0) {
        text_.clear();
        return false;
      }
      label_len = 0;
      text_.push_back('.');
      continue;
    }
    if (!is_allowed_label_char(c) || ++label_len > kMaxLabelLength) {
      text_.clear();
      return false;
    }
    text_.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (label_len == 0) {
    text_.clear();
    return false;
  }
  index_labels();
  return true;
}

void DomainName::index_labels() {
  offsets_.clear();
  if (text_.empty()) return;
  offsets_.push_back(0);
  for (std::size_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '.') offsets_.push_back(static_cast<std::uint16_t>(i + 1));
  }
}

std::string_view DomainName::label(std::size_t i) const {
  if (i >= offsets_.size()) throw std::out_of_range("DomainName::label");
  const std::size_t start = offsets_[i];
  const std::size_t end =
      i + 1 < offsets_.size() ? offsets_[i + 1] - 1 : text_.size();
  return std::string_view(text_).substr(start, end - start);
}

std::vector<std::string_view> DomainName::labels() const {
  std::vector<std::string_view> out;
  out.reserve(offsets_.size());
  for (std::size_t i = 0; i < offsets_.size(); ++i) out.push_back(label(i));
  return out;
}

std::string_view DomainName::nld_view(std::size_t n) const {
  if (n == 0) return {};
  if (n >= offsets_.size()) return text_;
  const std::size_t start = offsets_[offsets_.size() - n];
  return std::string_view(text_).substr(start);
}

DomainName DomainName::nld(std::size_t n) const {
  DomainName out;
  out.text_ = std::string(nld_view(n));
  out.index_labels();
  return out;
}

DomainName DomainName::parent() const {
  if (offsets_.size() <= 1) return {};
  DomainName out;
  out.text_ = text_.substr(offsets_[1]);
  out.index_labels();
  return out;
}

bool DomainName::is_within(std::string_view zone) const noexcept {
  if (zone.empty()) return true;  // everything is under the root
  if (text_.size() < zone.size()) return false;
  if (text_.size() == zone.size()) return text_ == zone;
  // Must be a proper subdomain: suffix match at a label boundary.
  const std::size_t cut = text_.size() - zone.size();
  return text_[cut - 1] == '.' &&
         std::string_view(text_).substr(cut) == zone;
}

DomainName DomainName::child(std::string_view child_label) const {
  std::string combined(child_label);
  if (!text_.empty()) {
    combined.push_back('.');
    combined.append(text_);
  }
  return DomainName(combined);
}

}  // namespace dnsnoise
