#include "dns/name.h"

#include <stdexcept>

#include "util/simd/kernels.h"

namespace dnsnoise {

// Both parse entry points funnel into scan_into: one pass of the
// vectorized dot-scan kernel (kernels::normalize_name) classifies,
// lowercases, and splits 16/32 bytes per step, emitting the label-start
// offsets directly — the per-character isalnum/tolower loop is gone.
bool DomainName::scan_into(std::string_view text) {
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  text_.clear();
  offsets_.clear();
  if (text.empty()) return true;
  if (text.size() > kMaxTextLength) return false;
  char out[kMaxTextLength];
  std::uint16_t offsets[kMaxTextLength / 2 + 2];
  const kernels::NameScan scan = kernels::normalize_name(text, out, offsets);
  if (!scan.ok) return false;
  text_.assign(out, text.size());
  offsets_.assign(offsets, offsets + scan.label_count);
  return true;
}

DomainName::DomainName(std::string_view text) {
  if (!scan_into(text)) {
    throw std::invalid_argument("DomainName: malformed name");
  }
}

std::optional<DomainName> DomainName::parse(std::string_view text) {
  DomainName name;
  if (!name.scan_into(text)) return std::nullopt;
  return name;
}

bool DomainName::assign(std::string_view text) { return scan_into(text); }

void DomainName::index_labels() {
  offsets_.clear();
  if (text_.empty()) return;
  offsets_.push_back(0);
  for (std::size_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '.') offsets_.push_back(static_cast<std::uint16_t>(i + 1));
  }
}

std::string_view DomainName::label(std::size_t i) const {
  if (i >= offsets_.size()) throw std::out_of_range("DomainName::label");
  const std::size_t start = offsets_[i];
  const std::size_t end =
      i + 1 < offsets_.size() ? offsets_[i + 1] - 1 : text_.size();
  return std::string_view(text_).substr(start, end - start);
}

std::vector<std::string_view> DomainName::labels() const {
  std::vector<std::string_view> out;
  out.reserve(offsets_.size());
  for (std::size_t i = 0; i < offsets_.size(); ++i) out.push_back(label(i));
  return out;
}

std::string_view DomainName::nld_view(std::size_t n) const {
  if (n == 0) return {};
  if (n >= offsets_.size()) return text_;
  const std::size_t start = offsets_[offsets_.size() - n];
  return std::string_view(text_).substr(start);
}

DomainName DomainName::nld(std::size_t n) const {
  DomainName out;
  out.text_ = std::string(nld_view(n));
  out.index_labels();
  return out;
}

DomainName DomainName::parent() const {
  if (offsets_.size() <= 1) return {};
  DomainName out;
  out.text_ = text_.substr(offsets_[1]);
  out.index_labels();
  return out;
}

bool DomainName::is_within(std::string_view zone) const noexcept {
  if (zone.empty()) return true;  // everything is under the root
  if (text_.size() < zone.size()) return false;
  if (text_.size() == zone.size()) return text_ == zone;
  // Must be a proper subdomain: suffix match at a label boundary.
  const std::size_t cut = text_.size() - zone.size();
  return text_[cut - 1] == '.' &&
         std::string_view(text_).substr(cut) == zone;
}

DomainName DomainName::child(std::string_view child_label) const {
  std::string combined(child_label);
  if (!text_.empty()) {
    combined.push_back('.');
    combined.append(text_);
  }
  return DomainName(combined);
}

}  // namespace dnsnoise
