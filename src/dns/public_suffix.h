// Effective-TLD (public suffix) resolution.
//
// The paper (Section III-B) splits names at the *delegation* boundary rather
// than the lexical dot: "com.cn" and "co.uk" are effective TLDs because
// every child under them is a separate registrant, and the authors extend
// Mozilla's public suffix list with dynamic-DNS zones.  We implement the PSL
// grammar — normal rules, wildcard rules ("*.ck"), and exception rules
// ("!www.ck") — with an embedded representative snapshot that can be
// extended at runtime.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "dns/name.h"

namespace dnsnoise {

class PublicSuffixList {
 public:
  /// Empty list; everything falls back to the single rightmost label ("*").
  PublicSuffixList() = default;

  /// The built-in snapshot: gTLDs/ccTLDs with multi-label suffixes and the
  /// dynamic-DNS additions the paper describes.  Shared immutable instance.
  static const PublicSuffixList& builtin();

  /// Adds one rule in PSL syntax: "com", "co.uk", "*.ck", "!www.ck".
  /// Throws std::invalid_argument for malformed rules.
  void add_rule(std::string_view rule);

  /// Parses newline-separated PSL text; '//' comments and blanks ignored.
  void add_rules_text(std::string_view text);

  std::size_t rule_count() const noexcept {
    return exact_.size() + wildcard_.size() + exception_.size();
  }

  /// Number of labels in the effective TLD of `name` (the "public suffix").
  /// A name that *is* a public suffix returns its own label count.  Names
  /// with no matching rule use the default "*" rule (rightmost label).
  std::size_t suffix_label_count(const DomainName& name) const;

  /// The effective TLD of `name` (paper's TLD(d)), e.g. "co.uk".
  DomainName effective_tld(const DomainName& name) const;

  /// The registrable domain: effective TLD plus one label (paper's
  /// "effective 2LD").  Returns an empty name when `name` is itself a
  /// public suffix or shorter.
  DomainName registrable_domain(const DomainName& name) const;

 private:
  // Rules are stored as normalized suffix strings without the marker chars.
  std::unordered_set<std::string> exact_;
  std::unordered_set<std::string> wildcard_;   // "*.ck" stored as "ck"
  std::unordered_set<std::string> exception_;  // "!www.ck" stored as "www.ck"
};

}  // namespace dnsnoise
