#include "dns/name_table.h"

#include <cstring>

#include "util/simd/kernels.h"

namespace dnsnoise {

void entropy_many(std::span<const NameId> ids, const NameTable& table,
                  std::span<double> out) noexcept {
  const kernels::DispatchLevel level = kernels::hist_level();
  kernels::CharHist hist;
  kernels::hist_init(hist);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::string_view text = table.name(ids[i]);
    kernels::hist_build_at(level, hist, text);
    out[i] = kernels::entropy_from_hist(hist, text.size());
    kernels::hist_reset(hist);
  }
}

std::string_view StringArena::store(std::string_view s) {
  if (s.empty()) return {};
  if (chunk_used_ + s.size() > kChunkBytes) {
    // Oversized payloads (never DNS names, which cap at 253 bytes) get a
    // dedicated chunk so they still never span two chunks.
    if (s.size() > kChunkBytes) {
      chunks_.push_back(std::make_unique<char[]>(s.size()));
      char* dst = chunks_.back().get();
      std::memcpy(dst, s.data(), s.size());
      bytes_used_ += s.size();
      // Keep the current (partially used) chunk active by re-ordering: the
      // dedicated chunk was appended last, so swap it below the active one.
      if (chunks_.size() >= 2) {
        std::swap(chunks_[chunks_.size() - 1], chunks_[chunks_.size() - 2]);
      }
      return {dst, s.size()};
    }
    chunks_.push_back(std::make_unique<char[]>(kChunkBytes));
    chunk_used_ = 0;
  }
  char* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, s.data(), s.size());
  chunk_used_ += s.size();
  bytes_used_ += s.size();
  return {dst, s.size()};
}

void NameTable::Pool::grow_slots(std::size_t min_slots) {
  std::size_t n = 16;
  while (n < min_slots) n <<= 1;
  std::vector<std::uint32_t> fresh(n, 0);
  const std::size_t mask = n - 1;
  for (std::uint32_t id = 0; id < recs_.size(); ++id) {
    std::size_t i = static_cast<std::size_t>(recs_[id].hash) & mask;
    while (fresh[i] != 0) i = (i + 1) & mask;
    fresh[i] = id + 1;
  }
  slots_.swap(fresh);
}

void NameTable::Pool::reserve(std::size_t count) {
  recs_.reserve(count);
  // 8/7 headroom keeps the table below the 7/8 growth trigger at `count`.
  const std::size_t wanted = count + count / 7 + 1;
  if (wanted > slots_.size()) grow_slots(wanted);
}

std::uint32_t NameTable::Pool::find(std::string_view s) const noexcept {
  if (slots_.empty()) return kInvalidNameId;
  const std::uint64_t h = fnv1a64(s);
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (true) {
    const std::uint32_t slot = slots_[i];
    if (slot == 0) return kInvalidNameId;
    const Rec& rec = recs_[slot - 1];
    if (rec.hash == h && rec.text == s) return slot - 1;
    i = (i + 1) & mask;
  }
}

std::uint32_t NameTable::Pool::intern(std::string_view s, StringArena& arena) {
  if (slots_.empty()) grow_slots(16);
  const std::uint64_t h = fnv1a64(s);
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (true) {
    const std::uint32_t slot = slots_[i];
    if (slot == 0) break;
    const Rec& rec = recs_[slot - 1];
    if (rec.hash == h && rec.text == s) return slot - 1;
    i = (i + 1) & mask;
  }
  const auto id = static_cast<std::uint32_t>(recs_.size());
  recs_.push_back(Rec{arena.store(s), h});
  slots_[i] = id + 1;
  // Grow past 7/8 load; reinserting re-probes every stored hash.
  if ((recs_.size() + recs_.size() / 7) >= slots_.size()) {
    grow_slots(slots_.size() * 2);
  }
  return id;
}

}  // namespace dnsnoise
