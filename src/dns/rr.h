// Resource records and related enums.
//
// The fpDNS dataset entry (Section III-A) carries the queried name, query
// type, TTL and RDATA; the rpDNS dataset deduplicates on the (name, type,
// rdata) triple.  RRKey captures that dedup identity.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "dns/name.h"
#include "util/rng.h"

namespace dnsnoise {

/// DNS RR types used in this codebase (the paper's dataset contains A,
/// CNAME and AAAA answers; the DNSSEC types appear in the Section VI-B cost
/// model).
enum class RRType : std::uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  PTR = 12,
  MX = 15,
  TXT = 16,
  AAAA = 28,
  OPT = 41,
  DS = 43,
  RRSIG = 46,
  NSEC = 47,
  DNSKEY = 48,
};

/// Response codes (RFC 1035 / 2308).
enum class RCode : std::uint8_t {
  NoError = 0,
  FormErr = 1,
  ServFail = 2,
  NXDomain = 3,
  NotImp = 4,
  Refused = 5,
};

std::string_view to_string(RRType type) noexcept;
std::string_view to_string(RCode rcode) noexcept;

/// A resource record.  `rdata` holds the presentation form: a dotted quad
/// for A, compressed hex groups for AAAA, a domain name for CNAME/NS/PTR,
/// free text otherwise.
struct ResourceRecord {
  DomainName name;
  RRType type = RRType::A;
  std::uint32_t ttl = 0;
  std::string rdata;

  friend bool operator==(const ResourceRecord&,
                         const ResourceRecord&) = default;
};

/// Identity of an RR for caching and deduplication: (name, type, rdata).
/// TTL is excluded on purpose — a re-announced record with a fresh TTL is
/// the *same* record for both the cache and the rpDNS dataset.
struct RRKey {
  std::string name;
  RRType type = RRType::A;
  std::string rdata;

  RRKey() = default;
  RRKey(std::string name_in, RRType type_in, std::string rdata_in)
      : name(std::move(name_in)), type(type_in), rdata(std::move(rdata_in)) {}
  explicit RRKey(const ResourceRecord& rr)
      : name(rr.name.text()), type(rr.type), rdata(rr.rdata) {}

  friend bool operator==(const RRKey&, const RRKey&) = default;
};

/// Cache identity of a *question*: (qname, qtype).  The resolver cache is
/// keyed by question, holding the full answer RRset.
struct QuestionKey {
  std::string name;
  RRType type = RRType::A;

  friend bool operator==(const QuestionKey&, const QuestionKey&) = default;
};

}  // namespace dnsnoise

template <>
struct std::hash<dnsnoise::RRKey> {
  std::size_t operator()(const dnsnoise::RRKey& k) const noexcept {
    std::uint64_t h = dnsnoise::fnv1a64(k.name);
    h = dnsnoise::mix64(h ^ static_cast<std::uint64_t>(k.type));
    h ^= dnsnoise::fnv1a64(k.rdata);
    return static_cast<std::size_t>(dnsnoise::mix64(h));
  }
};

template <>
struct std::hash<dnsnoise::QuestionKey> {
  std::size_t operator()(const dnsnoise::QuestionKey& k) const noexcept {
    const std::uint64_t h =
        dnsnoise::fnv1a64(k.name) ^
        dnsnoise::mix64(static_cast<std::uint64_t>(k.type));
    return static_cast<std::size_t>(dnsnoise::mix64(h));
  }
};
