#include "dns/ip.h"

#include <cctype>
#include <cstdio>

#include "util/strings.h"

namespace dnsnoise {

std::optional<Ipv4> parse_ipv4(std::string_view text) noexcept {
  std::uint32_t value = 0;
  int octet_count = 0;
  std::uint32_t octet = 0;
  int digits = 0;
  for (const char c : text) {
    if (c == '.') {
      if (digits == 0 || octet_count == 3) return std::nullopt;
      value = (value << 8) | octet;
      ++octet_count;
      octet = 0;
      digits = 0;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return std::nullopt;
    octet = octet * 10 + static_cast<std::uint32_t>(c - '0');
    if (octet > 255 || ++digits > 3) return std::nullopt;
  }
  if (digits == 0 || octet_count != 3) return std::nullopt;
  return Ipv4{(value << 8) | octet};
}

std::string format_ipv4(Ipv4 ip) {
  const auto o = ip.octets();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", o[0], o[1], o[2], o[3]);
  return buf;
}

std::optional<Ipv6> parse_ipv6(std::string_view text) noexcept {
  // Split on "::" first (at most one occurrence allowed).
  const std::size_t gap = text.find("::");
  std::string_view head = text;
  std::string_view tail;
  bool has_gap = false;
  if (gap != std::string_view::npos) {
    if (text.find("::", gap + 1) != std::string_view::npos) return std::nullopt;
    has_gap = true;
    head = text.substr(0, gap);
    tail = text.substr(gap + 2);
  }
  auto parse_groups = [](std::string_view part,
                         std::vector<std::uint16_t>& out) -> bool {
    if (part.empty()) return true;
    for (const std::string_view group : split(part, ':')) {
      if (group.empty() || group.size() > 4) return false;
      std::uint16_t v = 0;
      for (const char c : group) {
        const auto uc = static_cast<unsigned char>(c);
        if (std::isxdigit(uc) == 0) return false;
        const int digit = std::isdigit(uc) != 0
                              ? c - '0'
                              : std::tolower(uc) - 'a' + 10;
        v = static_cast<std::uint16_t>((v << 4) | digit);
      }
      out.push_back(v);
    }
    return true;
  };
  std::vector<std::uint16_t> head_groups;
  std::vector<std::uint16_t> tail_groups;
  if (!parse_groups(head, head_groups)) return std::nullopt;
  if (!parse_groups(tail, tail_groups)) return std::nullopt;
  const std::size_t given = head_groups.size() + tail_groups.size();
  if (has_gap ? given >= 8 : given != 8) return std::nullopt;
  Ipv6 out;
  std::size_t idx = 0;
  for (const std::uint16_t g : head_groups) {
    out.bytes[idx++] = static_cast<std::uint8_t>(g >> 8);
    out.bytes[idx++] = static_cast<std::uint8_t>(g);
  }
  idx = 16 - tail_groups.size() * 2;
  for (const std::uint16_t g : tail_groups) {
    out.bytes[idx++] = static_cast<std::uint8_t>(g >> 8);
    out.bytes[idx++] = static_cast<std::uint8_t>(g);
  }
  return out;
}

std::string format_ipv6(const Ipv6& ip) {
  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < 8; ++i) {
    groups[i] = static_cast<std::uint16_t>((ip.bytes[i * 2] << 8) |
                                           ip.bytes[i * 2 + 1]);
  }
  // Find the longest run of zero groups (length >= 2) for '::' compression.
  int best_start = -1;
  int best_len = 1;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      // One colon closes the previous group, the second marks the gap.
      out += "::";
      i += best_len;
      if (i == 8) return out;
      continue;
    }
    if (!out.empty() && out.back() != ':') out.push_back(':');
    std::snprintf(buf, sizeof(buf), "%x", groups[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
  }
  return out;
}

}  // namespace dnsnoise
