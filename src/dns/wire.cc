#include "dns/wire.h"

#include <stdexcept>
#include <string>
#include <unordered_map>

#include "dns/ip.h"

namespace dnsnoise {

namespace {

constexpr std::size_t kHeaderSize = 12;
constexpr std::uint8_t kPointerMask = 0xc0;
constexpr std::size_t kMaxWireNameLength = 255;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Shared compression dictionary: maps a name suffix (presentation form) to
/// the wire offset where it was first written.
using NameOffsets = std::unordered_map<std::string, std::size_t>;

void encode_name(std::vector<std::uint8_t>& out, const DomainName& name,
                 NameOffsets& offsets) {
  const std::size_t n = name.label_count();
  for (std::size_t i = 0; i < n; ++i) {
    const std::string suffix(name.nld_view(n - i));
    if (const auto it = offsets.find(suffix); it != offsets.end()) {
      const auto target = static_cast<std::uint16_t>(it->second);
      put_u16(out, static_cast<std::uint16_t>(0xc000 | target));
      return;
    }
    // Offsets above 0x3fff can't be pointer targets; only record small ones.
    if (out.size() < 0x4000) offsets.emplace(suffix, out.size());
    const std::string_view label = name.label(i);
    out.push_back(static_cast<std::uint8_t>(label.size()));
    out.insert(out.end(), label.begin(), label.end());
  }
  out.push_back(0);  // root label
}

void encode_rdata(std::vector<std::uint8_t>& out, const ResourceRecord& rr,
                  NameOffsets& offsets) {
  // Reserve the RDLENGTH slot, fill rdata, then patch the length.
  put_u16(out, 0);
  const std::size_t rdata_start = out.size();
  switch (rr.type) {
    case RRType::A: {
      const auto ip = parse_ipv4(rr.rdata);
      if (!ip) throw std::invalid_argument("encode: bad A rdata: " + rr.rdata);
      for (const std::uint8_t b : ip->octets()) out.push_back(b);
      break;
    }
    case RRType::AAAA: {
      const auto ip = parse_ipv6(rr.rdata);
      if (!ip) {
        throw std::invalid_argument("encode: bad AAAA rdata: " + rr.rdata);
      }
      out.insert(out.end(), ip->bytes.begin(), ip->bytes.end());
      break;
    }
    case RRType::CNAME:
    case RRType::NS:
    case RRType::PTR: {
      encode_name(out, DomainName(rr.rdata), offsets);
      break;
    }
    case RRType::TXT: {
      // Single character-string chunks of at most 255 bytes.
      std::string_view rest = rr.rdata;
      do {
        const std::size_t chunk = std::min<std::size_t>(rest.size(), 255);
        out.push_back(static_cast<std::uint8_t>(chunk));
        out.insert(out.end(), rest.begin(), rest.begin() + chunk);
        rest.remove_prefix(chunk);
      } while (!rest.empty());
      break;
    }
    default: {
      out.insert(out.end(), rr.rdata.begin(), rr.rdata.end());
      break;
    }
  }
  const std::size_t rdata_len = out.size() - rdata_start;
  out[rdata_start - 2] = static_cast<std::uint8_t>(rdata_len >> 8);
  out[rdata_start - 1] = static_cast<std::uint8_t>(rdata_len);
}

void encode_rr(std::vector<std::uint8_t>& out, const ResourceRecord& rr,
               NameOffsets& offsets) {
  encode_name(out, rr.name, offsets);
  put_u16(out, static_cast<std::uint16_t>(rr.type));
  put_u16(out, 1);  // class IN
  put_u32(out, rr.ttl);
  encode_rdata(out, rr, offsets);
}

/// Bounds-checked big-endian reader over the wire buffer.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> wire) : wire_(wire) {}

  bool read_u8(std::size_t& offset, std::uint8_t& out) const noexcept {
    if (offset + 1 > wire_.size()) return false;
    out = wire_[offset++];
    return true;
  }

  bool read_u16(std::size_t& offset, std::uint16_t& out) const noexcept {
    if (offset + 2 > wire_.size()) return false;
    out = static_cast<std::uint16_t>((wire_[offset] << 8) | wire_[offset + 1]);
    offset += 2;
    return true;
  }

  bool read_u32(std::size_t& offset, std::uint32_t& out) const noexcept {
    if (offset + 4 > wire_.size()) return false;
    out = (std::uint32_t{wire_[offset]} << 24) |
          (std::uint32_t{wire_[offset + 1]} << 16) |
          (std::uint32_t{wire_[offset + 2]} << 8) |
          std::uint32_t{wire_[offset + 3]};
    offset += 4;
    return true;
  }

  std::span<const std::uint8_t> wire() const noexcept { return wire_; }

 private:
  std::span<const std::uint8_t> wire_;
};

std::optional<std::string> decode_name_text(const Reader& reader,
                                            std::size_t& offset) {
  std::string text;
  std::size_t pos = offset;
  bool jumped = false;
  std::size_t after_first_pointer = 0;
  // Compression pointers must strictly decrease, which both terminates the
  // walk and bounds it by the message size.
  std::size_t last_pointer_target = reader.wire().size();
  while (true) {
    std::uint8_t len = 0;
    if (!reader.read_u8(pos, len)) return std::nullopt;
    if ((len & kPointerMask) == kPointerMask) {
      std::size_t tmp = pos - 1;
      std::uint16_t pointer = 0;
      if (!reader.read_u16(tmp, pointer)) return std::nullopt;
      const std::size_t target = pointer & 0x3fff;
      if (target >= last_pointer_target) return std::nullopt;  // loop guard
      last_pointer_target = target;
      if (!jumped) {
        after_first_pointer = tmp;
        jumped = true;
      }
      pos = target;
      continue;
    }
    if ((len & kPointerMask) != 0) return std::nullopt;  // reserved bits
    if (len == 0) break;
    if (pos + len > reader.wire().size()) return std::nullopt;
    if (!text.empty()) text.push_back('.');
    text.append(reinterpret_cast<const char*>(reader.wire().data() + pos), len);
    if (text.size() > kMaxWireNameLength) return std::nullopt;
    pos += len;
  }
  offset = jumped ? after_first_pointer : pos;
  return text;
}

std::optional<ResourceRecord> decode_rr(const Reader& reader,
                                        std::size_t& offset) {
  auto name_text = decode_name_text(reader, offset);
  if (!name_text) return std::nullopt;
  auto name = DomainName::parse(*name_text);
  if (!name) return std::nullopt;
  std::uint16_t type = 0;
  std::uint16_t klass = 0;
  std::uint32_t ttl = 0;
  std::uint16_t rdlength = 0;
  if (!reader.read_u16(offset, type)) return std::nullopt;
  if (!reader.read_u16(offset, klass)) return std::nullopt;
  if (!reader.read_u32(offset, ttl)) return std::nullopt;
  if (!reader.read_u16(offset, rdlength)) return std::nullopt;
  if (offset + rdlength > reader.wire().size()) return std::nullopt;
  const std::size_t rdata_end = offset + rdlength;

  ResourceRecord rr;
  rr.name = std::move(*name);
  rr.type = static_cast<RRType>(type);
  rr.ttl = ttl;
  switch (rr.type) {
    case RRType::A: {
      if (rdlength != 4) return std::nullopt;
      rr.rdata = format_ipv4(Ipv4::from_octets(
          reader.wire()[offset], reader.wire()[offset + 1],
          reader.wire()[offset + 2], reader.wire()[offset + 3]));
      break;
    }
    case RRType::AAAA: {
      if (rdlength != 16) return std::nullopt;
      Ipv6 ip;
      for (std::size_t i = 0; i < 16; ++i) ip.bytes[i] = reader.wire()[offset + i];
      rr.rdata = format_ipv6(ip);
      break;
    }
    case RRType::CNAME:
    case RRType::NS:
    case RRType::PTR: {
      std::size_t pos = offset;
      auto target = decode_name_text(reader, pos);
      if (!target || pos > rdata_end) return std::nullopt;
      rr.rdata = std::move(*target);
      break;
    }
    case RRType::TXT: {
      std::size_t pos = offset;
      while (pos < rdata_end) {
        std::uint8_t chunk = 0;
        if (!reader.read_u8(pos, chunk)) return std::nullopt;
        if (pos + chunk > rdata_end) return std::nullopt;
        rr.rdata.append(
            reinterpret_cast<const char*>(reader.wire().data() + pos), chunk);
        pos += chunk;
      }
      break;
    }
    default: {
      rr.rdata.assign(
          reinterpret_cast<const char*>(reader.wire().data() + offset),
          rdlength);
      break;
    }
  }
  offset = rdata_end;
  return rr;
}

}  // namespace

std::vector<std::uint8_t> encode_message(const DnsMessage& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + 64 * (msg.questions.size() + msg.answers.size()));
  put_u16(out, msg.header.id);
  std::uint16_t flags = 0;
  if (msg.header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((msg.header.opcode & 0x0f) << 11);
  if (msg.header.aa) flags |= 0x0400;
  if (msg.header.tc) flags |= 0x0200;
  if (msg.header.rd) flags |= 0x0100;
  if (msg.header.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(msg.header.rcode) & 0x0f;
  put_u16(out, flags);
  put_u16(out, static_cast<std::uint16_t>(msg.questions.size()));
  put_u16(out, static_cast<std::uint16_t>(msg.answers.size()));
  put_u16(out, static_cast<std::uint16_t>(msg.authority.size()));
  put_u16(out, static_cast<std::uint16_t>(msg.additional.size()));

  NameOffsets offsets;
  for (const Question& q : msg.questions) {
    encode_name(out, q.name, offsets);
    put_u16(out, static_cast<std::uint16_t>(q.type));
    put_u16(out, 1);  // class IN
  }
  for (const ResourceRecord& rr : msg.answers) encode_rr(out, rr, offsets);
  for (const ResourceRecord& rr : msg.authority) encode_rr(out, rr, offsets);
  for (const ResourceRecord& rr : msg.additional) encode_rr(out, rr, offsets);
  return out;
}

std::optional<DomainName> decode_name(std::span<const std::uint8_t> wire,
                                      std::size_t& offset) {
  const Reader reader(wire);
  auto text = decode_name_text(reader, offset);
  if (!text) return std::nullopt;
  return DomainName::parse(*text);
}

std::optional<DnsMessage> decode_message(std::span<const std::uint8_t> wire) {
  const Reader reader(wire);
  std::size_t offset = 0;
  DnsMessage msg;
  std::uint16_t flags = 0;
  std::uint16_t qdcount = 0;
  std::uint16_t ancount = 0;
  std::uint16_t nscount = 0;
  std::uint16_t arcount = 0;
  if (!reader.read_u16(offset, msg.header.id)) return std::nullopt;
  if (!reader.read_u16(offset, flags)) return std::nullopt;
  if (!reader.read_u16(offset, qdcount)) return std::nullopt;
  if (!reader.read_u16(offset, ancount)) return std::nullopt;
  if (!reader.read_u16(offset, nscount)) return std::nullopt;
  if (!reader.read_u16(offset, arcount)) return std::nullopt;
  msg.header.qr = (flags & 0x8000) != 0;
  msg.header.opcode = static_cast<std::uint8_t>((flags >> 11) & 0x0f);
  msg.header.aa = (flags & 0x0400) != 0;
  msg.header.tc = (flags & 0x0200) != 0;
  msg.header.rd = (flags & 0x0100) != 0;
  msg.header.ra = (flags & 0x0080) != 0;
  msg.header.rcode = static_cast<RCode>(flags & 0x0f);

  for (std::uint16_t i = 0; i < qdcount; ++i) {
    auto name_text = decode_name_text(reader, offset);
    if (!name_text) return std::nullopt;
    auto name = DomainName::parse(*name_text);
    if (!name) return std::nullopt;
    std::uint16_t type = 0;
    std::uint16_t klass = 0;
    if (!reader.read_u16(offset, type)) return std::nullopt;
    if (!reader.read_u16(offset, klass)) return std::nullopt;
    msg.questions.push_back({std::move(*name), static_cast<RRType>(type)});
  }
  auto decode_section = [&](std::uint16_t count,
                            std::vector<ResourceRecord>& section) -> bool {
    section.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
      auto rr = decode_rr(reader, offset);
      if (!rr) return false;
      section.push_back(std::move(*rr));
    }
    return true;
  };
  if (!decode_section(ancount, msg.answers)) return std::nullopt;
  if (!decode_section(nscount, msg.authority)) return std::nullopt;
  if (!decode_section(arcount, msg.additional)) return std::nullopt;
  return msg;
}

}  // namespace dnsnoise
