// In-memory DNS message model (RFC 1035 §4), used by the wire codec and the
// packet capture pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"

namespace dnsnoise {

/// DNS header flags relevant to this project.
struct DnsHeader {
  std::uint16_t id = 0;
  bool qr = false;                 // response flag
  std::uint8_t opcode = 0;         // QUERY
  bool aa = false;                 // authoritative answer
  bool tc = false;                 // truncated
  bool rd = true;                  // recursion desired
  bool ra = false;                 // recursion available
  RCode rcode = RCode::NoError;

  friend bool operator==(const DnsHeader&, const DnsHeader&) = default;
};

struct Question {
  DomainName name;
  RRType type = RRType::A;

  friend bool operator==(const Question&, const Question&) = default;
};

struct DnsMessage {
  DnsHeader header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authority;
  std::vector<ResourceRecord> additional;

  /// Convenience factories for the two message shapes the simulator emits.
  static DnsMessage make_query(std::uint16_t id, const DomainName& qname,
                               RRType qtype);
  static DnsMessage make_response(const DnsMessage& query, RCode rcode,
                                  std::vector<ResourceRecord> answers);

  friend bool operator==(const DnsMessage&, const DnsMessage&) = default;
};

}  // namespace dnsnoise
