#include "dns/public_suffix.h"

#include <stdexcept>

#include "util/strings.h"

namespace dnsnoise {

namespace {

// A compact representative snapshot of the public suffix list.  It covers
// the generic TLDs, the multi-label country suffixes exercised by the
// paper's examples (com.cn, co.uk, ...), PSL wildcard/exception rules, and
// the dynamic-DNS style zones the paper adds on top of Mozilla's list.
constexpr std::string_view kBuiltinRules = R"(
// generic
com
net
org
edu
gov
mil
int
info
biz
name
mobi
io
co
me
tv
cc
us
ca
de
fr
nl
se
no
fi
es
it
ch
at
be
dk
pl
ru
cn
jp
kr
in
br
mx
au
nz
eu
arpa
in-addr.arpa
ip6.arpa
// multi-label country suffixes
co.uk
org.uk
ac.uk
gov.uk
net.uk
me.uk
ltd.uk
plc.uk
sch.uk
com.cn
net.cn
org.cn
gov.cn
edu.cn
ac.cn
com.au
net.au
org.au
edu.au
gov.au
co.jp
ne.jp
or.jp
ac.jp
go.jp
co.kr
or.kr
com.br
net.br
org.br
gov.br
co.in
net.in
org.in
com.mx
co.nz
net.nz
org.nz
com.tw
org.tw
// wildcard + exception rules (PSL grammar exercise)
*.ck
!www.ck
*.bd
*.er
// dynamic-DNS zones (paper: "corrects the omission of dynamic DNS zones")
dyndns.org
no-ip.com
no-ip.org
dynalias.com
homeip.net
duckdns.org
afraid.org
hopto.org
zapto.org
3utilities.com
blogspot.com
appspot.com
herokuapp.com
cloudfront.net
s3.amazonaws.com
)";

}  // namespace

const PublicSuffixList& PublicSuffixList::builtin() {
  static const PublicSuffixList instance = [] {
    PublicSuffixList psl;
    psl.add_rules_text(kBuiltinRules);
    return psl;
  }();
  return instance;
}

void PublicSuffixList::add_rule(std::string_view rule) {
  if (rule.empty()) throw std::invalid_argument("PSL: empty rule");
  if (rule.front() == '!') {
    rule.remove_prefix(1);
    const DomainName name(rule);  // validates + normalizes
    exception_.insert(name.text());
    return;
  }
  if (starts_with(rule, "*.")) {
    rule.remove_prefix(2);
    const DomainName name(rule);
    wildcard_.insert(name.text());
    return;
  }
  const DomainName name(rule);
  exact_.insert(name.text());
}

void PublicSuffixList::add_rules_text(std::string_view text) {
  for (std::string_view line : split(text, '\n')) {
    // Trim whitespace and skip comments / blanks.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || starts_with(line, "//")) continue;
    add_rule(line);
  }
}

std::size_t PublicSuffixList::suffix_label_count(const DomainName& name) const {
  const std::size_t n = name.label_count();
  if (n == 0) return 0;
  // PSL semantics: the longest matching rule wins; an exception rule beats
  // a wildcard rule and removes one label from the wildcard's match.
  std::size_t best = 1;  // implicit "*" rule
  for (std::size_t k = 1; k <= n; ++k) {
    const std::string suffix(name.nld_view(k));
    if (exception_.contains(suffix)) {
      // "!www.ck": the public suffix is the part after the exception label.
      return k - 1;
    }
    if (exact_.contains(suffix)) best = std::max(best, k);
    if (k < n && wildcard_.contains(suffix)) {
      // "*.ck" makes <anything>.ck a public suffix (k + 1 labels).
      best = std::max(best, k + 1);
    }
    if (k == n && wildcard_.contains(suffix)) {
      // The wildcard parent itself ("ck") is also a public suffix.
      best = std::max(best, k);
    }
  }
  return best;
}

DomainName PublicSuffixList::effective_tld(const DomainName& name) const {
  return name.nld(suffix_label_count(name));
}

DomainName PublicSuffixList::registrable_domain(const DomainName& name) const {
  const std::size_t suffix = suffix_label_count(name);
  if (name.label_count() <= suffix) return {};
  return name.nld(suffix + 1);
}

}  // namespace dnsnoise
