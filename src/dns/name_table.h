// NameTable: arena-backed string interning for the hot query path.
//
// Every subsystem that used to key hash maps on owned std::string copies
// (resolver cache, CHR accounting, domain tree labels) can instead intern a
// normalized name once and pass a dense 32-bit NameId around.  Interning
// buys three things on the steady-state path:
//   1. zero allocations — a name seen before resolves to its id without
//      touching the heap (open addressing over a flat slot array),
//   2. precomputed hashes — the FNV-1a hash computed at intern time is
//      stored per id, so downstream maps never rehash the bytes,
//   3. stable views — interned bytes live in append-only arena chunks, so
//      a string_view handed out by the table is valid for the table's
//      lifetime (nodes and cache entries may hold it without copying).
//
// Ids are dense and assigned in first-intern order, which makes them
// deterministic for a fixed input stream; cross-shard determinism is
// achieved by *remapping through the text* when merging (see
// DomainNameTree::merge_from), never by comparing raw ids of different
// tables.  See DESIGN.md §11 for the full determinism argument.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace dnsnoise {

/// Dense handle of an interned full name (table-scoped, first-intern order).
using NameId = std::uint32_t;
/// Dense handle of an interned single label (table-scoped).
using LabelId = std::uint32_t;

/// Sentinel for "not interned" (also the invalid LabelId).
inline constexpr std::uint32_t kInvalidNameId = 0xffffffffu;

/// Append-only byte arena: stable storage for interned strings.  Strings
/// never move once stored, so views into the arena stay valid until the
/// arena is destroyed.
class StringArena {
 public:
  /// Copies `s` into the arena and returns a stable view of the copy.
  std::string_view store(std::string_view s);

  /// Total bytes of interned payload (excluding chunk slack).
  std::size_t bytes_used() const noexcept { return bytes_used_; }

 private:
  // 64 KiB chunks: far above the 253-byte name ceiling, so a string never
  // spans chunks, and small enough that a mostly-idle table stays cheap.
  static constexpr std::size_t kChunkBytes = 1 << 16;

  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t chunk_used_ = kChunkBytes;  // forces allocation on first store
  std::size_t bytes_used_ = 0;
};

/// A resolved view of one interned name: id + stable text + its hash.
/// Cheap to copy; valid while the owning NameTable lives.
struct NameRef {
  NameId id = kInvalidNameId;
  std::string_view text;
  std::uint64_t hash = 0;

  bool valid() const noexcept { return id != kInvalidNameId; }
};

class NameTable {
 public:
  /// `track_labels` additionally maintains the per-label pool (used by the
  /// domain tree); tables that only intern full names (resolver cache, CHR)
  /// leave it off and skip that memory entirely.
  explicit NameTable(bool track_labels = false)
      : track_labels_(track_labels) {}

  NameTable(const NameTable&) = delete;
  NameTable& operator=(const NameTable&) = delete;
  NameTable(NameTable&&) = default;
  NameTable& operator=(NameTable&&) = default;

  // --- Full names ----------------------------------------------------------

  /// Interns `name` (which must already be normalized: lowercase, no
  /// trailing dot) and returns its dense id.  Idempotent; a repeated intern
  /// of a known name is allocation-free.
  NameId intern(std::string_view name) { return names_.intern(name, arena_); }

  /// Id of `name` if already interned, else kInvalidNameId.  Never
  /// allocates.
  NameId find(std::string_view name) const noexcept {
    return names_.find(name);
  }

  /// Stable text of an interned name.
  std::string_view name(NameId id) const noexcept { return names_.text(id); }

  /// Precomputed FNV-1a hash of an interned name.
  std::uint64_t name_hash(NameId id) const noexcept {
    return names_.hash(id);
  }

  /// Full (id, text, hash) view; interns when absent.
  NameRef ref(std::string_view name) {
    const NameId id = intern(name);
    return NameRef{id, names_.text(id), names_.hash(id)};
  }

  std::size_t size() const noexcept { return names_.size(); }

  /// Pre-sizes the name pool for `count` names (no rehash below that).
  void reserve(std::size_t count) { names_.reserve(count); }

  // --- Labels (optional pool) ----------------------------------------------

  LabelId intern_label(std::string_view label) {
    return labels_.intern(label, arena_);
  }
  LabelId find_label(std::string_view label) const noexcept {
    return labels_.find(label);
  }
  std::string_view label(LabelId id) const noexcept {
    return labels_.text(id);
  }
  std::uint64_t label_hash(LabelId id) const noexcept {
    return labels_.hash(id);
  }
  std::size_t label_count() const noexcept { return labels_.size(); }
  bool tracks_labels() const noexcept { return track_labels_; }

  std::size_t bytes_used() const noexcept { return arena_.bytes_used(); }

 private:
  /// One interning pool: dense records + open-addressed slot array.  Shared
  /// implementation for the name pool and the label pool.
  class Pool {
   public:
    std::uint32_t intern(std::string_view s, StringArena& arena);
    std::uint32_t find(std::string_view s) const noexcept;
    std::string_view text(std::uint32_t id) const noexcept {
      return recs_[id].text;
    }
    std::uint64_t hash(std::uint32_t id) const noexcept {
      return recs_[id].hash;
    }
    std::size_t size() const noexcept { return recs_.size(); }
    void reserve(std::size_t count);

   private:
    struct Rec {
      std::string_view text;  // stable view into the arena
      std::uint64_t hash = 0;
    };

    std::vector<Rec> recs_;
    // Open addressing, linear probing, power-of-two size.  A slot holds
    // id + 1; 0 marks empty.  Grown at 7/8 load.
    std::vector<std::uint32_t> slots_;

    void grow_slots(std::size_t min_slots);
    std::uint32_t* probe(std::uint64_t hash, std::string_view s) noexcept;
  };

  StringArena arena_;
  Pool names_;
  Pool labels_;
  bool track_labels_;
};

/// Batched Shannon entropy over interned names: out[i] = entropy of
/// table.name(ids[i]).  Ids in first-intern order walk the append-only
/// arena contiguously, so the batch streams the interned bytes front to
/// back instead of pointer-chasing one name at a time; the histogram
/// workspace is reused across the whole batch (kernels::entropy_many).
/// Requires out.size() >= ids.size().
void entropy_many(std::span<const NameId> ids, const NameTable& table,
                  std::span<double> out) noexcept;

}  // namespace dnsnoise
