#include "dns/rr.h"

namespace dnsnoise {

std::string_view to_string(RRType type) noexcept {
  switch (type) {
    case RRType::A: return "A";
    case RRType::NS: return "NS";
    case RRType::CNAME: return "CNAME";
    case RRType::SOA: return "SOA";
    case RRType::PTR: return "PTR";
    case RRType::MX: return "MX";
    case RRType::TXT: return "TXT";
    case RRType::AAAA: return "AAAA";
    case RRType::OPT: return "OPT";
    case RRType::DS: return "DS";
    case RRType::RRSIG: return "RRSIG";
    case RRType::NSEC: return "NSEC";
    case RRType::DNSKEY: return "DNSKEY";
  }
  return "UNKNOWN";
}

std::string_view to_string(RCode rcode) noexcept {
  switch (rcode) {
    case RCode::NoError: return "NOERROR";
    case RCode::FormErr: return "FORMERR";
    case RCode::ServFail: return "SERVFAIL";
    case RCode::NXDomain: return "NXDOMAIN";
    case RCode::NotImp: return "NOTIMP";
    case RCode::Refused: return "REFUSED";
  }
  return "UNKNOWN";
}

}  // namespace dnsnoise
