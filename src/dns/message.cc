#include "dns/message.h"

namespace dnsnoise {

DnsMessage DnsMessage::make_query(std::uint16_t id, const DomainName& qname,
                                  RRType qtype) {
  DnsMessage msg;
  msg.header.id = id;
  msg.header.qr = false;
  msg.header.rd = true;
  msg.questions.push_back({qname, qtype});
  return msg;
}

DnsMessage DnsMessage::make_response(const DnsMessage& query, RCode rcode,
                                     std::vector<ResourceRecord> answers) {
  DnsMessage msg;
  msg.header = query.header;
  msg.header.qr = true;
  msg.header.ra = true;
  msg.header.rcode = rcode;
  msg.questions = query.questions;
  msg.answers = std::move(answers);
  return msg;
}

}  // namespace dnsnoise
