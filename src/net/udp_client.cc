#include "net/udp_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "dns/wire.h"

namespace dnsnoise::net {

namespace {

bool resolve_addr(const std::string& host, std::uint16_t port,
                  sockaddr_in& addr, std::string& error) {
  addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error = "bad address: " + host;
    return false;
  }
  return true;
}

void set_timeout(int fd, int millis) {
  timeval timeout{};
  timeout.tv_sec = millis / 1000;
  timeout.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
}

bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_exact(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r <= 0) return false;
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

template <typename T>
bool parse_field(std::string_view text, std::string_view key, T& out) {
  const std::size_t at = text.find(key);
  if (at == std::string_view::npos) return false;
  const char* begin = text.data() + at + key.size();
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr != begin;
}

}  // namespace

// --- UdpClient -------------------------------------------------------------

UdpClient::~UdpClient() { close(); }

bool UdpClient::connect(const std::string& host, std::uint16_t port) {
  close();
  sockaddr_in addr{};
  if (!resolve_addr(host, port, addr, error_)) return false;
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error_ = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

void UdpClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool UdpClient::send(std::span<const std::uint8_t> payload) {
  if (fd_ < 0) return false;
  return ::send(fd_, payload.data(), payload.size(), MSG_NOSIGNAL) >= 0;
}

std::optional<std::vector<std::uint8_t>> UdpClient::receive(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  // timeout_ms <= 0 is a non-blocking poll (a zero SO_RCVTIMEO would mean
  // "block forever" — never what a poll-shaped caller wants).
  int flags = 0;
  if (timeout_ms <= 0) {
    flags = MSG_DONTWAIT;
  } else {
    set_timeout(fd_, timeout_ms);
  }
  std::vector<std::uint8_t> buf(0xffff);
  const ssize_t n = ::recv(fd_, buf.data(), buf.size(), flags);
  if (n < 0) return std::nullopt;
  buf.resize(static_cast<std::size_t>(n));
  return buf;
}

std::optional<std::vector<std::uint8_t>> UdpClient::exchange(
    std::span<const std::uint8_t> payload, int timeout_ms) {
  if (!send(payload)) return std::nullopt;
  return receive(timeout_ms);
}

// --- TCP one-shot ----------------------------------------------------------

std::optional<std::vector<std::uint8_t>> tcp_exchange(
    const std::string& host, std::uint16_t port,
    std::span<const std::uint8_t> payload, int timeout_ms) {
  if (payload.size() > 0xffff) return std::nullopt;
  sockaddr_in addr{};
  std::string error;
  if (!resolve_addr(host, port, addr, error)) return std::nullopt;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  set_timeout(fd, timeout_ms);
  std::optional<std::vector<std::uint8_t>> result;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
      0) {
    const std::uint8_t len[2] = {static_cast<std::uint8_t>(payload.size() >> 8),
                                 static_cast<std::uint8_t>(payload.size())};
    std::uint8_t resp_len[2];
    if (write_exact(fd, len, 2) &&
        write_exact(fd, payload.data(), payload.size()) &&
        read_exact(fd, resp_len, 2)) {
      const std::size_t n =
          (static_cast<std::size_t>(resp_len[0]) << 8) | resp_len[1];
      std::vector<std::uint8_t> body(n);
      if (n == 0 || read_exact(fd, body.data(), n)) result = std::move(body);
    }
  }
  ::close(fd);
  return result;
}

// --- Replay metadata -------------------------------------------------------

void attach_replay_meta(DnsMessage& query, const ReplayMeta& meta) {
  ResourceRecord rr;
  rr.name = DomainName(kReplayMetaName);
  rr.type = RRType::TXT;
  rr.ttl = 0;
  rr.rdata = "ts=" + std::to_string(meta.ts) +
             " client=" + std::to_string(meta.client_id);
  query.additional.push_back(std::move(rr));
}

std::optional<ReplayMeta> extract_replay_meta(const DnsMessage& query) {
  for (const ResourceRecord& rr : query.additional) {
    if (rr.type != RRType::TXT || rr.name.text() != kReplayMetaName) continue;
    ReplayMeta meta;
    if (parse_field(rr.rdata, "ts=", meta.ts) &&
        parse_field(rr.rdata, "client=", meta.client_id)) {
      return meta;
    }
    return std::nullopt;  // present but malformed: do not trust it
  }
  return std::nullopt;
}

// --- DnsWireClient ---------------------------------------------------------

bool DnsWireClient::connect(const std::string& host, std::uint16_t udp_port,
                            std::uint16_t tcp_port) {
  host_ = host;
  tcp_port_ = tcp_port != 0 ? tcp_port : udp_port;
  if (!udp_.connect(host, udp_port)) {
    error_ = udp_.error();
    return false;
  }
  return true;
}

std::optional<WireResult> DnsWireClient::query(const DnsMessage& query,
                                               int timeout_ms,
                                               bool tcp_fallback) {
  const std::vector<std::uint8_t> wire = encode_message(query);
  const auto raw = udp_.exchange(wire, timeout_ms);
  if (!raw) {
    error_ = "udp exchange timed out";
    return std::nullopt;
  }
  auto decoded = decode_message(*raw);
  if (!decoded) {
    error_ = "undecodable response";
    return std::nullopt;
  }
  if (decoded->header.id != query.header.id) {
    error_ = "response id mismatch";
    return std::nullopt;
  }
  WireResult result;
  result.udp_truncated = decoded->header.tc;
  if (decoded->header.tc && tcp_fallback) {
    const auto tcp_raw = tcp_exchange(host_, tcp_port_, wire, timeout_ms);
    if (!tcp_raw) {
      error_ = "tcp fallback failed";
      return std::nullopt;
    }
    auto tcp_decoded = decode_message(*tcp_raw);
    if (!tcp_decoded || tcp_decoded->header.id != query.header.id) {
      error_ = "bad tcp fallback response";
      return std::nullopt;
    }
    result.response = std::move(*tcp_decoded);
    result.via_tcp = true;
    return result;
  }
  result.response = std::move(*decoded);
  return result;
}

}  // namespace dnsnoise::net
