#include "net/http_listener.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dnsnoise::net {

namespace {

// A request head larger than this is rejected outright; telemetry scrapes
// are one short GET line plus a few headers.
constexpr std::size_t kMaxRequestBytes = 8192;

/// Blocking read until the end-of-head marker, the size cap, a timeout,
/// or EOF.  Returns false when no complete head arrived.
bool read_request_head(int fd, std::string& head) {
  char buf[1024];
  while (head.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;  // timeout, reset, or EOF before the head
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// Splits "GET /metrics HTTP/1.1" into method and target.  Returns false
/// on a malformed request line.
bool parse_request_line(std::string_view head, HttpRequest& request) {
  const std::size_t eol = head.find_first_of("\r\n");
  std::string_view line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  request.method = std::string(line.substr(0, sp1));
  request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  return !request.method.empty() && !request.target.empty() &&
         request.target[0] == '/';
}

}  // namespace

std::string_view http_status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpListener::~HttpListener() { stop(); }

bool HttpListener::start(std::uint16_t port, HttpHandler handler) {
  if (running()) {
    error_ = "listener already running";
    return false;
  }
  error_.clear();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error_ = std::string("bind 127.0.0.1:") + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  handler_ = std::move(handler);
  fd_ = fd;
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void HttpListener::stop() {
  if (fd_ < 0) return;
  // shutdown() unblocks the accept(2) the thread is parked in; the loop
  // then sees the error and exits.
  ::shutdown(fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(fd_);
  fd_ = -1;
  port_ = 0;
  handler_ = nullptr;
}

void HttpListener::accept_loop() {
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener shut down (or unrecoverable): exit the thread
    }
    // Short receive timeout so one stalled client cannot wedge the
    // telemetry endpoint for the lifetime of the run.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    serve_connection(client);
    ::close(client);
  }
}

void HttpListener::serve_connection(int client_fd) {
  std::string head;
  HttpRequest request;
  HttpResponse response;
  if (!read_request_head(client_fd, head) ||
      !parse_request_line(head, request)) {
    response.status = 400;
    response.body = "malformed request\n";
  } else if (request.method != "GET" && request.method != "HEAD" &&
             request.method != "POST") {
    // Answer, don't hang up: a proper 405 with Allow tells the client
    // what this endpoint speaks (RFC 9110 §15.5.6).
    response.status = 405;
    response.body = "method not allowed\n";
    response.headers.emplace_back("Allow", "GET, HEAD, POST");
  } else {
    response = handler_(request);
  }
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    std::string(http_status_reason(response.status)) +
                    "\r\nContent-Type: " + response.content_type + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) +
         "\r\nConnection: close\r\n\r\n";
  if (request.method != "HEAD") out += response.body;
  write_all(client_fd, out);
}

}  // namespace dnsnoise::net
