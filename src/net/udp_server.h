// Wire-speed UDP datagram server with per-core socket sharding, plus the
// TCP listener DNS needs for truncated-response fallback.
//
// The transport layer of the DNS server mode (DESIGN.md §14): UdpServer
// owns N sockets bound to the same address via SO_REUSEPORT — the kernel
// load-balances datagrams across them — and one receive thread per socket.
// On Linux the loop drains and answers in recvmmsg()/sendmmsg() batches,
// amortizing syscall cost over dozens of packets; elsewhere it falls back
// to a portable recvfrom()/sendto() loop.  The server is payload-agnostic:
// a DatagramHandler turns request bytes into response bytes (DNS framing
// lives in resolver/wire_frontend).
//
// DnsTcpListener is the matching stream transport: RFC 1035 §4.2.2
// two-byte length framing, one blocking accept thread, several queries per
// connection.  It exists for responses the UDP 512-byte limit truncates
// (TC=1), so it is deliberately simple — fallback traffic is rare.
//
// Thread-safety: start()/stop() belong to the owning thread.  The handler
// is invoked concurrently from every shard thread (and the TCP accept
// thread) and must be thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

namespace dnsnoise::net {

/// Source of one datagram / connection, as seen by the handler.  IPv4 in
/// host byte order — enough to derive a stable anonymized client id.
struct UdpPeer {
  std::uint32_t addr = 0;
  std::uint16_t port = 0;
};

/// Turns one request payload into one response payload.  Returns false to
/// drop (no response is sent); `response` is a reusable per-slot scratch
/// buffer the handler overwrites.  Must be thread-safe.
using DatagramHandler = std::function<bool(
    std::span<const std::uint8_t> request, const UdpPeer& peer,
    std::vector<std::uint8_t>& response)>;

struct UdpServerConfig {
  /// UDP port to bind (0 picks an ephemeral port, see port()).
  std::uint16_t port = 0;
  /// Bind address; loopback by default so test servers are not reachable
  /// from outside the host.
  std::string host = "127.0.0.1";
  /// SO_REUSEPORT socket shards (>= 1), one receive thread each.  Clamped
  /// to 1 on platforms without SO_REUSEPORT.
  std::size_t shards = 1;
  /// Datagrams per recvmmsg()/sendmmsg() round on the batched path (>= 1).
  std::size_t batch = 32;
  /// Receive buffer per datagram slot; larger datagrams are truncated by
  /// the kernel and then dropped by the length check.
  std::size_t max_datagram = 4096;
};

class UdpServer {
 public:
  UdpServer() = default;
  ~UdpServer();

  UdpServer(const UdpServer&) = delete;
  UdpServer& operator=(const UdpServer&) = delete;

  /// Binds the shard sockets and spawns the receive threads.  Returns
  /// false — with the reason in error() — on failure; the server is then
  /// inert and start() may be retried.
  bool start(const UdpServerConfig& config, DatagramHandler handler);

  /// Stops the receive threads, joins them, closes the sockets.
  /// Idempotent; also run by the destructor.
  void stop();

  bool running() const noexcept { return !sockets_.empty(); }
  /// The bound port (resolved after start(); 0 when not running).
  std::uint16_t port() const noexcept { return port_; }
  const std::string& error() const noexcept { return error_; }
  /// Shards actually running (after the SO_REUSEPORT clamp).
  std::size_t shard_count() const noexcept { return sockets_.size(); }
  /// True when this build drains sockets with recvmmsg()/sendmmsg().
  static bool batched() noexcept;

  std::uint64_t datagrams_received() const noexcept {
    return received_.load(std::memory_order_relaxed);
  }
  std::uint64_t datagrams_sent() const noexcept {
    return sent_.load(std::memory_order_relaxed);
  }

 private:
  void shard_loop(std::size_t shard);

  std::vector<int> sockets_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> sent_{0};
  std::uint16_t port_ = 0;
  std::string error_;
  UdpServerConfig config_;
  DatagramHandler handler_;
};

/// TCP side of a DNS server port: two-byte big-endian length framing in
/// both directions (RFC 1035 §4.2.2).  One blocking accept thread serves
/// connections serially; each connection may carry several queries and is
/// closed on EOF, timeout, or a malformed frame.
class DnsTcpListener {
 public:
  DnsTcpListener() = default;
  ~DnsTcpListener();

  DnsTcpListener(const DnsTcpListener&) = delete;
  DnsTcpListener& operator=(const DnsTcpListener&) = delete;

  /// Binds `host`:`port` (0 picks an ephemeral port) and spawns the accept
  /// thread.  Returns false with the reason in error() on failure.
  bool start(const std::string& host, std::uint16_t port,
             DatagramHandler handler);
  void stop();

  bool running() const noexcept { return fd_ >= 0; }
  std::uint16_t port() const noexcept { return port_; }
  const std::string& error() const noexcept { return error_; }

 private:
  void accept_loop();
  void serve_connection(int client_fd, const UdpPeer& peer);

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string error_;
  DatagramHandler handler_;
  std::thread thread_;
};

}  // namespace dnsnoise::net
