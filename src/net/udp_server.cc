#include "net/udp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dnsnoise::net {

namespace {

/// Poll interval of the shard receive loops: stop() flips the flag and the
/// loops notice at the next timeout, so shutdown costs at most this long.
constexpr int kPollMillis = 200;

bool parse_bind_addr(const std::string& host, std::uint16_t port,
                     sockaddr_in& addr, std::string& error) {
  addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error = "bad bind address: " + host;
    return false;
  }
  return true;
}

void set_recv_timeout(int fd, int millis) {
  timeval timeout{};
  timeout.tv_sec = millis / 1000;
  timeout.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
}

UdpPeer to_peer(const sockaddr_in& addr) {
  return UdpPeer{ntohl(addr.sin_addr.s_addr), ntohs(addr.sin_port)};
}

bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r <= 0) return false;  // timeout, reset, or EOF mid-frame
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_exact(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r <= 0) return false;
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

// --- UdpServer -------------------------------------------------------------

bool UdpServer::batched() noexcept {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

UdpServer::~UdpServer() { stop(); }

bool UdpServer::start(const UdpServerConfig& config, DatagramHandler handler) {
  if (running()) {
    error_ = "server already running";
    return false;
  }
  error_.clear();
  config_ = config;
  if (config_.shards == 0) config_.shards = 1;
  if (config_.batch == 0) config_.batch = 1;
  if (config_.max_datagram < 512) config_.max_datagram = 512;
#if !defined(SO_REUSEPORT)
  // Without SO_REUSEPORT a second bind to the same port fails; run the
  // single-socket portable configuration instead of erroring out.
  config_.shards = 1;
#endif

  sockaddr_in addr{};
  if (!parse_bind_addr(config_.host, config_.port, addr, error_)) return false;

  std::vector<int> sockets;
  const auto fail = [&](const std::string& what) {
    error_ = what + ": " + std::strerror(errno);
    for (const int fd : sockets) ::close(fd);
    return false;
  };
  for (std::size_t i = 0; i < config_.shards; ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) return fail("socket");
    sockets.push_back(fd);
#if defined(SO_REUSEPORT)
    const int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0 &&
        config_.shards > 1) {
      return fail("setsockopt(SO_REUSEPORT)");
    }
#endif
    set_recv_timeout(fd, kPollMillis);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return fail("bind " + config_.host + ":" +
                  std::to_string(ntohs(addr.sin_port)));
    }
    if (i == 0) {
      // Resolve an ephemeral port on the first socket so the remaining
      // shards bind the same concrete port.
      socklen_t len = sizeof(addr);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        return fail("getsockname");
      }
    }
  }

  port_ = ntohs(addr.sin_port);
  handler_ = std::move(handler);
  stopping_.store(false, std::memory_order_relaxed);
  received_.store(0, std::memory_order_relaxed);
  sent_.store(0, std::memory_order_relaxed);
  sockets_ = std::move(sockets);
  threads_.reserve(sockets_.size());
  for (std::size_t i = 0; i < sockets_.size(); ++i) {
    threads_.emplace_back([this, i] { shard_loop(i); });
  }
  return true;
}

void UdpServer::stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  for (const int fd : sockets_) ::close(fd);
  sockets_.clear();
  port_ = 0;
  handler_ = nullptr;
}

void UdpServer::shard_loop(std::size_t shard) {
  const int fd = sockets_[shard];
  const std::size_t batch = config_.batch;

  // Per-slot receive buffers and response scratch, reused every round so
  // the steady-state loop does not allocate.
  std::vector<std::vector<std::uint8_t>> recv_bufs(
      batch, std::vector<std::uint8_t>(config_.max_datagram));
  std::vector<std::vector<std::uint8_t>> responses(batch);
  std::vector<sockaddr_in> addrs(batch);

#if defined(__linux__)
  std::vector<iovec> recv_iovs(batch);
  std::vector<mmsghdr> recv_msgs(batch);
  std::vector<iovec> send_iovs(batch);
  std::vector<mmsghdr> send_msgs(batch);
  while (!stopping_.load(std::memory_order_relaxed)) {
    for (std::size_t i = 0; i < batch; ++i) {
      recv_iovs[i] = {recv_bufs[i].data(), recv_bufs[i].size()};
      recv_msgs[i] = {};
      recv_msgs[i].msg_hdr.msg_iov = &recv_iovs[i];
      recv_msgs[i].msg_hdr.msg_iovlen = 1;
      recv_msgs[i].msg_hdr.msg_name = &addrs[i];
      recv_msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
    }
    // MSG_WAITFORONE: block (until SO_RCVTIMEO) for the first datagram,
    // then take whatever else is already queued without waiting again.
    const int n = ::recvmmsg(fd, recv_msgs.data(), static_cast<unsigned>(batch),
                             MSG_WAITFORONE, nullptr);
    if (n <= 0) continue;  // timeout (stop poll) or transient error
    received_.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
    unsigned to_send = 0;
    for (int i = 0; i < n; ++i) {
      const std::size_t len = recv_msgs[i].msg_len;
      if (len == 0 || len > config_.max_datagram) continue;
      const std::span<const std::uint8_t> request(recv_bufs[i].data(), len);
      if (!handler_(request, to_peer(addrs[i]), responses[i]) ||
          responses[i].empty()) {
        continue;
      }
      send_iovs[to_send] = {responses[i].data(), responses[i].size()};
      send_msgs[to_send] = {};
      send_msgs[to_send].msg_hdr.msg_iov = &send_iovs[to_send];
      send_msgs[to_send].msg_hdr.msg_iovlen = 1;
      send_msgs[to_send].msg_hdr.msg_name = &addrs[i];
      send_msgs[to_send].msg_hdr.msg_namelen = sizeof(addrs[i]);
      ++to_send;
    }
    unsigned done = 0;
    while (done < to_send) {
      const int s =
          ::sendmmsg(fd, send_msgs.data() + done, to_send - done, 0);
      if (s <= 0) break;  // full socket buffer: drop the rest of the batch
      done += static_cast<unsigned>(s);
    }
    sent_.fetch_add(done, std::memory_order_relaxed);
  }
#else
  // Portable single-datagram fallback.
  while (!stopping_.load(std::memory_order_relaxed)) {
    sockaddr_in& addr = addrs[0];
    socklen_t addr_len = sizeof(addr);
    const ssize_t len =
        ::recvfrom(fd, recv_bufs[0].data(), recv_bufs[0].size(), 0,
                   reinterpret_cast<sockaddr*>(&addr), &addr_len);
    if (len <= 0) continue;
    received_.fetch_add(1, std::memory_order_relaxed);
    const std::span<const std::uint8_t> request(
        recv_bufs[0].data(), static_cast<std::size_t>(len));
    if (!handler_(request, to_peer(addr), responses[0]) ||
        responses[0].empty()) {
      continue;
    }
    if (::sendto(fd, responses[0].data(), responses[0].size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), addr_len) > 0) {
      sent_.fetch_add(1, std::memory_order_relaxed);
    }
  }
#endif
}

// --- DnsTcpListener --------------------------------------------------------

DnsTcpListener::~DnsTcpListener() { stop(); }

bool DnsTcpListener::start(const std::string& host, std::uint16_t port,
                           DatagramHandler handler) {
  if (running()) {
    error_ = "listener already running";
    return false;
  }
  error_.clear();
  sockaddr_in addr{};
  if (!parse_bind_addr(host, port, addr, error_)) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error_ = "bind " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  handler_ = std::move(handler);
  fd_ = fd;
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void DnsTcpListener::stop() {
  if (fd_ < 0) return;
  ::shutdown(fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(fd_);
  fd_ = -1;
  port_ = 0;
  handler_ = nullptr;
}

void DnsTcpListener::accept_loop() {
  for (;;) {
    sockaddr_in addr{};
    socklen_t addr_len = sizeof(addr);
    const int client =
        ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener shut down (or unrecoverable): exit the thread
    }
    set_recv_timeout(client, 2000);
    serve_connection(client, to_peer(addr));
    ::close(client);
  }
}

void DnsTcpListener::serve_connection(int client_fd, const UdpPeer& peer) {
  std::vector<std::uint8_t> request;
  std::vector<std::uint8_t> response;
  // Several queries per connection; close on EOF, timeout, or bad frame.
  for (;;) {
    std::uint8_t len_bytes[2];
    if (!read_exact(client_fd, len_bytes, 2)) return;
    const std::size_t frame_len =
        (static_cast<std::size_t>(len_bytes[0]) << 8) | len_bytes[1];
    if (frame_len == 0) return;
    request.resize(frame_len);
    if (!read_exact(client_fd, request.data(), frame_len)) return;
    if (!handler_(request, peer, response) || response.empty()) return;
    if (response.size() > 0xffff) return;  // cannot frame: drop connection
    const std::uint8_t out_len[2] = {
        static_cast<std::uint8_t>(response.size() >> 8),
        static_cast<std::uint8_t>(response.size())};
    if (!write_exact(client_fd, out_len, 2)) return;
    if (!write_exact(client_fd, response.data(), response.size())) return;
  }
}

}  // namespace dnsnoise::net
