// Minimal embedded HTTP/1.1 listener for the telemetry endpoint.
//
// One blocking accept thread serves requests serially on 127.0.0.1 — the
// scrape side of obs/telemetry_server (DESIGN.md §13).  Deliberately tiny:
// no third-party deps, no TLS, no keep-alive, GET-oriented.  Each
// connection reads one request head (bounded size, short receive timeout),
// dispatches to the registered handler, writes the response with
// Content-Length, and closes.  The handler runs on the accept thread, so
// it must not block indefinitely; snapshotting a MetricsRegistry (the
// intended workload) is bounded and lock-cheap.
//
// Thread-safety: start()/stop() are for the owning thread; the handler
// must itself be safe to call from the accept thread while the rest of
// the process runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace dnsnoise::net {

struct HttpRequest {
  std::string method;  // "GET", "HEAD", ...
  std::string target;  // request path including query, e.g. "/metrics"
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers (e.g. {"Allow", "GET, HEAD, POST"} on 405),
  /// emitted verbatim after Content-Type.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Standard reason phrase for the handful of statuses the listener emits
/// ("OK", "Not Found", ...); "Unknown" otherwise.
std::string_view http_status_reason(int status) noexcept;

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpListener {
 public:
  HttpListener() = default;
  ~HttpListener();

  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  /// spawns the accept thread.  Returns false — with the reason in
  /// error() — on bind/listen failure; the listener is then inert and
  /// start() may be retried.
  bool start(std::uint16_t port, HttpHandler handler);

  /// Stops accepting, joins the accept thread, closes the socket.
  /// Idempotent; also run by the destructor.
  void stop();

  bool running() const noexcept { return fd_ >= 0; }
  /// The bound port (resolved after start(); 0 when not running).
  std::uint16_t port() const noexcept { return port_; }
  const std::string& error() const noexcept { return error_; }

 private:
  void accept_loop();
  void serve_connection(int client_fd);

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string error_;
  HttpHandler handler_;
  std::thread thread_;
};

}  // namespace dnsnoise::net
