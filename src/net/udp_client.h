// Minimal DNS wire client: raw UDP datagram exchange, RFC 1035 §4.2.2 TCP
// framing, and a DNS-level convenience wrapper with automatic retry over
// TCP when a response arrives truncated (TC=1).
//
// Shared by the wire-frontend tests, the server-throughput bench, the
// examples/dns_query CLI, and the CI server-smoke job — so the repo can
// exercise its own server mode end to end without external tooling.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/message.h"
#include "util/sim_time.h"

namespace dnsnoise::net {

/// One UDP "connection" (connected datagram socket) to a server.
class UdpClient {
 public:
  UdpClient() = default;
  ~UdpClient();

  UdpClient(const UdpClient&) = delete;
  UdpClient& operator=(const UdpClient&) = delete;

  /// Creates the socket and connects it to `host`:`port`.  Returns false
  /// with the reason in error().
  bool connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const noexcept { return fd_ >= 0; }
  const std::string& error() const noexcept { return error_; }

  /// Sends one datagram.  Empty payloads are sent as zero-length datagrams
  /// (used by tests to probe server robustness).
  bool send(std::span<const std::uint8_t> payload);

  /// Receives one datagram, waiting up to `timeout_ms` (<= 0 is a
  /// non-blocking poll).  Returns std::nullopt on timeout or error.
  std::optional<std::vector<std::uint8_t>> receive(int timeout_ms = 1000);

  /// send() + receive() in one call.
  std::optional<std::vector<std::uint8_t>> exchange(
      std::span<const std::uint8_t> payload, int timeout_ms = 1000);

 private:
  int fd_ = -1;
  std::string error_;
};

/// One-shot TCP DNS exchange: connect, write the two-byte-length-framed
/// query, read the framed response.  Returns std::nullopt on any failure.
std::optional<std::vector<std::uint8_t>> tcp_exchange(
    const std::string& host, std::uint16_t port,
    std::span<const std::uint8_t> payload, int timeout_ms = 2000);

// --- Replay metadata -------------------------------------------------------
//
// The simulator's golden contract ("findings are bit-identical whether a
// day's queries arrive in-process or over the socket") needs the wire path
// to carry the same (timestamp, client) pair the in-process drive loop
// passes to RdnsCluster::query_view.  Replay clients attach it as one TXT
// record in the additional section under this reserved name; a frontend
// with allow_replay_meta set consumes (and never echoes) it.  Real clients
// never send it, and frontends ignore it unless explicitly enabled.

inline constexpr std::string_view kReplayMetaName = "replay-meta.dnsnoise";

struct ReplayMeta {
  SimTime ts = 0;
  std::uint64_t client_id = 0;
};

/// Appends the replay-meta TXT record to `query`'s additional section.
void attach_replay_meta(DnsMessage& query, const ReplayMeta& meta);

/// Extracts replay metadata from a query; std::nullopt when absent or
/// malformed.
std::optional<ReplayMeta> extract_replay_meta(const DnsMessage& query);

// --- DNS-level client ------------------------------------------------------

/// Result of one resolved exchange.
struct WireResult {
  DnsMessage response;
  bool udp_truncated = false;  // the UDP response carried TC=1
  bool via_tcp = false;        // the returned response came over TCP
};

/// Encodes queries, exchanges them over UDP, decodes responses, and
/// transparently retries over TCP when the server sets TC.
class DnsWireClient {
 public:
  /// `tcp_port` defaults to the UDP port (the usual same-port setup).
  bool connect(const std::string& host, std::uint16_t udp_port,
               std::uint16_t tcp_port = 0);
  const std::string& error() const noexcept { return error_; }

  /// One query round trip.  Returns std::nullopt on timeout, undecodable
  /// response, or response id mismatch.
  std::optional<WireResult> query(const DnsMessage& query,
                                  int timeout_ms = 1000,
                                  bool tcp_fallback = true);

  UdpClient& udp() noexcept { return udp_; }

 private:
  UdpClient udp_;
  std::string host_;
  std::uint16_t tcp_port_ = 0;
  std::string error_;
};

}  // namespace dnsnoise::net
