// Engine determinism and status-channel tests.
//
// The load-bearing contract: shard decomposition is fixed by server_count
// and threads only schedule shards, so threads(1) and threads(4) must
// produce byte-identical captures and identically-ranked findings.
#include "engine/parallel_miner.h"

#include <gtest/gtest.h>

#include <vector>

namespace dnsnoise {
namespace {

ScenarioScale small_scale() {
  ScenarioScale scale;
  scale.queries_per_day = 60'000;
  scale.client_count = 3'000;
  scale.population_scale = 0.5;
  return scale;
}

ClusterConfig small_cluster() {
  ClusterConfig config;
  config.server_count = 4;
  return config;
}

MiningSession small_session(std::size_t threads) {
  MiningSession session(small_scale());
  session.cluster(small_cluster()).threads(threads).warmup(false);
  return session;
}

void expect_same_findings(const std::vector<DisposableZoneFinding>& a,
                          const std::vector<DisposableZoneFinding>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].zone, b[i].zone) << "finding " << i;
    EXPECT_EQ(a[i].depth, b[i].depth) << "finding " << i;
    EXPECT_EQ(a[i].confidence, b[i].confidence) << "finding " << i;
    EXPECT_EQ(a[i].group_size, b[i].group_size) << "finding " << i;
  }
}

TEST(ParallelMinerTest, ThreadCountDoesNotChangeTheCapture) {
  DayCaptureConfig capture_config;
  capture_config.keep_fpdns = true;
  capture_config.feed_rpdns = true;

  DayCapture one(capture_config);
  DayCapture four(capture_config);
  const EngineReport r1 = small_session(1)
                              .capture_config(capture_config)
                              .simulate(ScenarioDate::kNov14, one);
  const EngineReport r4 = small_session(4)
                              .capture_config(capture_config)
                              .simulate(ScenarioDate::kNov14, four);
  ASSERT_TRUE(r1.ok()) << r1.error;
  ASSERT_TRUE(r4.ok()) << r4.error;

  EXPECT_EQ(r1.queries, r4.queries);
  EXPECT_EQ(r1.counters.below_answers, r4.counters.below_answers);
  EXPECT_EQ(r1.counters.above_answers, r4.counters.above_answers);
  EXPECT_EQ(r1.counters.stats.hits, r4.counters.stats.hits);
  EXPECT_EQ(r1.counters.stats.misses, r4.counters.stats.misses);

  EXPECT_EQ(one.unique_queried(), four.unique_queried());
  EXPECT_EQ(one.unique_resolved(), four.unique_resolved());
  EXPECT_EQ(one.queried_names(), four.queried_names());
  EXPECT_EQ(one.resolved_names(), four.resolved_names());
  EXPECT_EQ(one.tree().black_count(), four.tree().black_count());
  EXPECT_EQ(one.tree().node_count(), four.tree().node_count());
  EXPECT_EQ(one.chr().unique_rrs(), four.chr().unique_rrs());
  for (std::size_t h = 0; h < 24; ++h) {
    EXPECT_EQ(one.below_series().total[h], four.below_series().total[h]);
    EXPECT_EQ(one.above_series().total[h], four.above_series().total[h]);
  }
  // fpDNS entries are stable-sorted by time after the merge, so the two
  // captures must agree entry by entry — the strongest identity check.
  ASSERT_EQ(one.fpdns().size(), four.fpdns().size());
  const auto lhs = one.fpdns().entries();
  const auto rhs = four.fpdns().entries();
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    ASSERT_EQ(lhs[i], rhs[i]) << "fpDNS entry " << i;
  }
  EXPECT_EQ(one.rpdns().unique_records(), four.rpdns().unique_records());
}

TEST(ParallelMinerTest, ThreadCountDoesNotChangeTheFindings) {
  const MiningDayResult one = small_session(1).run(ScenarioDate::kNov14);
  const MiningDayResult four = small_session(4).run(ScenarioDate::kNov14);
  ASSERT_TRUE(one.ok()) << one.error;
  ASSERT_TRUE(four.ok()) << four.error;
  EXPECT_GT(one.findings.size(), 0u);
  expect_same_findings(one.findings, four.findings);
  EXPECT_EQ(one.labeled.size(), four.labeled.size());
  EXPECT_EQ(one.evaluation.findings, four.evaluation.findings);
  EXPECT_EQ(one.evaluation.true_positive_findings,
            four.evaluation.true_positive_findings);
  EXPECT_EQ(one.aggregates.unique_queried, four.aggregates.unique_queried);
  EXPECT_EQ(one.aggregates.disposable_queried,
            four.aggregates.disposable_queried);
  EXPECT_EQ(one.aggregates.disposable_rrs, four.aggregates.disposable_rrs);
}

TEST(ParallelMinerTest, EngineFindsDisposableZonesWithPrecision) {
  const MiningDayResult result = small_session(4).run(ScenarioDate::kNov14);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GT(result.evaluation.findings, 10u);
  EXPECT_GT(result.evaluation.finding_precision(), 0.9);
}

TEST(ParallelMinerTest, ZeroVolumeScenarioReportsEmptyCapture) {
  ScenarioScale scale = small_scale();
  scale.queries_per_day = 0;
  MiningSession session(scale);
  session.cluster(small_cluster()).threads(2).warmup(false);
  const MiningDayResult result = session.run(ScenarioDate::kNov14);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, MiningDayStatus::kEmptyCapture);
  EXPECT_FALSE(result.error.empty());
  EXPECT_TRUE(result.findings.empty());
}

TEST(ParallelMinerTest, NonClientHashBalancingIsRejectedWhenSharded) {
  ClusterConfig cluster = small_cluster();
  cluster.balancing = Balancing::kRandom;
  MiningSession session(small_scale());
  session.cluster(cluster).threads(2).warmup(false);
  DayCapture capture;
  const EngineReport report = session.simulate(ScenarioDate::kNov14, capture);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status, MiningDayStatus::kInvalidConfig);
}

TEST(ParallelMinerTest, SingleShardAcceptsAnyBalancing) {
  ScenarioScale scale = small_scale();
  scale.queries_per_day = 5'000;
  ClusterConfig cluster;
  cluster.server_count = 1;
  cluster.balancing = Balancing::kRandom;
  MiningSession session(scale);
  session.cluster(cluster).threads(2).warmup(false);
  DayCapture capture;
  const EngineReport report = session.simulate(ScenarioDate::kNov14, capture);
  EXPECT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(report.shard_count, 1u);
  EXPECT_GT(report.queries, 0u);
}

TEST(ParallelMinerTest, ZeroThreadsIsInvalidConfig) {
  MiningSession session(small_scale());
  session.cluster(small_cluster()).threads(0);
  DayCapture capture;
  const EngineReport report = session.simulate(ScenarioDate::kNov14, capture);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status, MiningDayStatus::kInvalidConfig);
}

TEST(ParallelMinerTest, RunMiningDayStillReportsEmptyCapture) {
  // The classic path shares the status channel.
  PipelineOptions options;
  options.scale.queries_per_day = 0;
  options.warmup = false;
  const MiningDayResult result =
      run_mining_day(ScenarioDate::kNov14, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, MiningDayStatus::kEmptyCapture);
}

}  // namespace
}  // namespace dnsnoise
