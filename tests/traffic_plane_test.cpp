// Traffic introspection plane wired into the engine (PipelineOptions::
// sketch / MiningSession::enable_traffic_sketch): the determinism
// contract (threads(N) serves byte-identical dnsnoise-traffic-v1 to
// threads(1)), the obs contract (findings byte-identical with the plane
// on or off), the mined-zones -> live-classifier handoff, and the live
// GET /traffic + traffic.* gauge scrape.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include "engine/parallel_miner.h"
#include "obs/metrics.h"
#include "obs/sketch/traffic_sketch.h"
#include "obs/telemetry_server.h"

namespace dnsnoise {
namespace {

/// One blocking HTTP exchange against 127.0.0.1:port; body only.
std::string http_body(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? response : response.substr(split + 4);
}

ScenarioScale small_scale() {
  ScenarioScale scale;
  scale.queries_per_day = 25'000;
  scale.client_count = 1'200;
  scale.population_scale = 0.5;
  return scale;
}

ClusterConfig sharded_cluster() {
  ClusterConfig cluster;
  cluster.server_count = 4;
  return cluster;
}

TEST(TrafficPlaneEngine, ThreadCountNeverChangesTheExport) {
  // Shard decomposition follows server_count; threads only schedule.
  // The merged dnsnoise-traffic-v1 document must be byte-identical.
  std::string exports[2];
  const std::size_t thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    MiningSession session(small_scale());
    session.cluster(sharded_cluster())
        .warmup(false)
        .threads(thread_counts[i])
        .enable_traffic_sketch();
    ASSERT_NE(session.traffic_sketch(), nullptr);
    DayCapture capture;
    const EngineReport report =
        session.simulate(ScenarioDate::kNov14, capture);
    ASSERT_TRUE(report.ok()) << report.error;
    EXPECT_EQ(session.traffic_sketch()->shard_count(), 4u);
    exports[i] = session.traffic_sketch()->to_json();
  }
  EXPECT_EQ(exports[0], exports[1]);
  EXPECT_NE(exports[0].find("\"schema\": \"dnsnoise-traffic-v1\""),
            std::string::npos);
  // A real day was measured: the top tables must not be empty.
  EXPECT_EQ(exports[0].find("\"top_slds\": []"), std::string::npos);
  EXPECT_EQ(exports[0].find("\"top_qnames\": []"), std::string::npos);
}

TEST(TrafficPlaneEngine, FindingsAreByteIdenticalWithPlaneOnOrOff) {
  const auto run = [](bool with_plane) {
    MiningSession session(small_scale());
    session.cluster(sharded_cluster()).warmup(false).threads(2);
    if (with_plane) session.enable_traffic_sketch();
    return session.run(ScenarioDate::kNov14);
  };
  const MiningDayResult off = run(false);
  const MiningDayResult on = run(true);
  ASSERT_TRUE(off.ok()) << off.error;
  ASSERT_TRUE(on.ok()) << on.error;
  ASSERT_EQ(off.findings.size(), on.findings.size());
  for (std::size_t i = 0; i < off.findings.size(); ++i) {
    EXPECT_EQ(off.findings[i].zone, on.findings[i].zone) << i;
    EXPECT_EQ(off.findings[i].depth, on.findings[i].depth) << i;
    EXPECT_EQ(off.findings[i].confidence, on.findings[i].confidence) << i;
    EXPECT_EQ(off.findings[i].group_size, on.findings[i].group_size) << i;
  }
}

TEST(TrafficPlaneEngine, MinedZonesArmTheLiveClassifier) {
  MiningSession session(small_scale());
  session.cluster(sharded_cluster())
      .warmup(false)
      .threads(2)
      .enable_traffic_sketch();
  obs::TrafficSketchPlane* const plane = session.traffic_sketch();
  ASSERT_NE(plane, nullptr);
  EXPECT_EQ(plane->classifier_zone_count(), 0u);

  // Day 1: no classifier yet -> disposable share is zero by definition.
  const MiningDayResult day1 = session.run(ScenarioDate::kNov14);
  ASSERT_TRUE(day1.ok()) << day1.error;
  ASSERT_FALSE(day1.findings.empty());
  EXPECT_EQ(plane->classifier_zone_count(), day1.findings.size());
  EXPECT_EQ(plane->snapshot().disposable, 0u);

  // Day 2: yesterday's zones classify today's traffic live.  Nearby
  // dates share most of the zone population, so the share must be
  // strictly positive and sane.
  const MiningDayResult day2 = session.run(ScenarioDate::kNov29);
  ASSERT_TRUE(day2.ok()) << day2.error;
  const obs::TrafficSnapshot snap = plane->snapshot();
  EXPECT_GT(snap.disposable, 0u);
  EXPECT_GT(snap.disposable_share(), 0.0);
  EXPECT_LE(snap.disposable_share(), 1.0);
}

TEST(TrafficPlaneEngine, LiveScrapeServesStableDocAndGauges) {
  MiningSession session(small_scale());
  session.cluster(sharded_cluster())
      .warmup(false)
      .threads(2)
      .enable_traffic_sketch()
      .enable_telemetry();
  ASSERT_NE(session.telemetry(), nullptr);
  ASSERT_TRUE(session.telemetry()->running()) << session.telemetry()->error();
  const std::uint16_t port = session.telemetry()->port();

  const MiningDayResult result = session.run(ScenarioDate::kNov14);
  ASSERT_TRUE(result.ok()) << result.error;

  // Quiesced plane: two scrapes must serve byte-identical documents.
  const std::string first = http_body(port, "/traffic");
  const std::string second = http_body(port, "/traffic");
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"schema\": \"dnsnoise-traffic-v1\""),
            std::string::npos);
  EXPECT_EQ(first.find("\"top_slds\": []"), std::string::npos);
  // And it matches the in-process export exactly.
  EXPECT_EQ(first, session.traffic_sketch()->to_json());

  // /metrics carries the refreshed top-level traffic gauges.
  const std::string metrics = http_body(port, "/metrics");
  EXPECT_NE(metrics.find("dnsnoise_traffic_queries"), std::string::npos);
  EXPECT_NE(metrics.find("dnsnoise_traffic_disposable_share"),
            std::string::npos);
  EXPECT_NE(metrics.find("dnsnoise_traffic_distinct_qnames"),
            std::string::npos);
}

TEST(TrafficPlaneEngine, ClassicPipelinePathFeedsShardZero) {
  // The non-engine path (simulate_day via PipelineOptions::sketch) must
  // feed the plane too — one cluster, shard 0.
  obs::TrafficSketchPlane plane;
  PipelineOptions options;
  options.scale = small_scale();
  options.warmup = false;
  options.sketch = &plane;
  Scenario scenario(ScenarioDate::kNov14, options.scale);
  DayCapture capture(options.capture);
  (void)simulate_day(scenario, capture, options,
                     scenario_day_index(ScenarioDate::kNov14));
  EXPECT_EQ(plane.shard_count(), 1u);
  const obs::TrafficSnapshot snap = plane.snapshot();
  EXPECT_GT(snap.queries, 0u);
  EXPECT_GT(snap.distinct_qnames, 0.0);
  EXPECT_FALSE(snap.top_qnames.empty());
}

}  // namespace
}  // namespace dnsnoise
