#include "miner/day_capture.h"

#include <gtest/gtest.h>

namespace dnsnoise {
namespace {

Question question(const char* name) { return {DomainName(name), RRType::A}; }

std::vector<ResourceRecord> answer_rrs(const char* name, std::uint32_t ttl) {
  return {{DomainName(name), RRType::A, ttl, "10.0.0.1"}};
}

TEST(DayCaptureTest, BelowEventsBuildTreeAndChr) {
  DayCapture capture;
  capture.on_below(100, 1, question("a.example.com"), RCode::NoError,
                   answer_rrs("a.example.com", 60));
  capture.on_below(200, 2, question("a.example.com"), RCode::NoError,
                   answer_rrs("a.example.com", 60));
  capture.on_above(150, question("a.example.com"), RCode::NoError,
                   answer_rrs("a.example.com", 60));

  EXPECT_EQ(capture.unique_queried(), 1u);
  EXPECT_EQ(capture.unique_resolved(), 1u);
  EXPECT_EQ(capture.tree().black_count(), 1u);
  const auto* counts =
      capture.chr().find({"a.example.com", RRType::A, "10.0.0.1"});
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->below, 2u);
  EXPECT_EQ(counts->above, 1u);
  EXPECT_EQ(counts->ttl, 60u);
}

TEST(DayCaptureTest, NxdomainCountsAsQueriedNotResolved) {
  DayCapture capture;
  capture.on_below(100, 1, question("nx.example.com"), RCode::NXDomain, {});
  EXPECT_EQ(capture.unique_queried(), 1u);
  EXPECT_EQ(capture.unique_resolved(), 0u);
  EXPECT_EQ(capture.tree().black_count(), 0u);
  EXPECT_EQ(capture.below_series().sum_nxdomain(), 1u);
}

TEST(DayCaptureTest, HourlySeriesAndTenantAttribution) {
  DayCapture capture;
  // 2 RRs at 01:00, google-owned.
  std::vector<ResourceRecord> google_answers = {
      {DomainName("mail.google.com"), RRType::A, 300, "10.0.0.1"},
      {DomainName("mail.google.com"), RRType::A, 300, "10.0.0.2"},
  };
  capture.on_below(1 * kSecondsPerHour + 30, 1, question("mail.google.com"),
                   RCode::NoError, google_answers);
  // 1 RR at 23:00, akamai-owned, above.
  capture.on_above(23 * kSecondsPerHour, question("e1.g.akamai.net"),
                   RCode::NoError, answer_rrs("e1.g.akamai.net", 20));

  const HourlySeries& below = capture.below_series();
  EXPECT_EQ(below.total[1], 2u);
  EXPECT_EQ(below.google[1], 2u);
  EXPECT_EQ(below.akamai[1], 0u);
  EXPECT_EQ(below.sum_total(), 2u);
  const HourlySeries& above = capture.above_series();
  EXPECT_EQ(above.total[23], 1u);
  EXPECT_EQ(above.akamai[23], 1u);
}

TEST(DayCaptureTest, FpdnsKeptOnlyWhenConfigured) {
  DayCaptureConfig config;
  config.keep_fpdns = true;
  DayCapture keeping(config);
  keeping.on_below(5, 9, question("a.example.com"), RCode::NoError,
                   answer_rrs("a.example.com", 60));
  ASSERT_EQ(keeping.fpdns().size(), 1u);
  EXPECT_EQ(keeping.fpdns().entries()[0].client_id, 9u);

  DayCapture discarding;
  discarding.on_below(5, 9, question("a.example.com"), RCode::NoError,
                      answer_rrs("a.example.com", 60));
  EXPECT_TRUE(discarding.fpdns().empty());
}

TEST(DayCaptureTest, RpdnsFeedAccumulatesAcrossDays) {
  DayCaptureConfig config;
  config.feed_rpdns = true;
  config.day_index = 1;
  DayCapture capture(config);
  capture.on_below(5, 1, question("a.example.com"), RCode::NoError,
                   answer_rrs("a.example.com", 60));
  capture.start_day(2);
  capture.on_below(5, 1, question("a.example.com"), RCode::NoError,
                   answer_rrs("a.example.com", 60));
  capture.on_below(6, 1, question("b.example.com"), RCode::NoError,
                   answer_rrs("b.example.com", 60));
  // start_day reset the per-day state but kept the rpDNS store.
  EXPECT_EQ(capture.rpdns().unique_records(), 2u);
  EXPECT_EQ(capture.rpdns().new_records_on(1), 1u);
  EXPECT_EQ(capture.rpdns().new_records_on(2), 1u);
  EXPECT_EQ(capture.unique_queried(), 2u);  // day 2 only
}

TEST(DayCaptureTest, StartDayResetsPerDayState) {
  DayCapture capture;
  capture.on_below(5, 1, question("a.example.com"), RCode::NoError,
                   answer_rrs("a.example.com", 60));
  capture.start_day(9);
  EXPECT_EQ(capture.unique_queried(), 0u);
  EXPECT_EQ(capture.unique_resolved(), 0u);
  EXPECT_EQ(capture.tree().black_count(), 0u);
  EXPECT_EQ(capture.chr().unique_rrs(), 0u);
  EXPECT_EQ(capture.below_series().sum_total(), 0u);
}

TEST(DayCaptureTest, AttachWiresClusterSinks) {
  SyntheticAuthority authority;
  authority.register_zone(DomainName("example.com"),
                          SyntheticAuthority::make_flat_a_zone(300));
  ClusterConfig config;
  config.server_count = 1;
  RdnsCluster cluster(config, authority);
  DayCapture capture;
  capture.attach(cluster);
  cluster.query(1, question("w.example.com"), 10);
  cluster.query(1, question("w.example.com"), 20);
  cluster.flush_taps();  // tap events are batched until flushed
  EXPECT_EQ(capture.below_series().sum_total(), 2u);
  EXPECT_EQ(capture.above_series().sum_total(), 1u);
  EXPECT_EQ(capture.unique_resolved(), 1u);
  capture.detach(cluster);  // capture dies before the cluster does
}

}  // namespace
}  // namespace dnsnoise
