// Golden mining-day regression tests.
//
// These pin the exact observable output of a fixed-seed mining day — the
// classic single-stream pipeline and the sharded engine — so hot-path
// refactors (name interning, flat tree, intrusive LRU) can prove they are
// behavior-preserving byte for byte: findings, tree/CHR tallies, cache
// stats, hourly series, and the deterministic counter section of the
// metrics snapshot.
//
// To regenerate after an *intentional* behavior change, run with
// DNSNOISE_GOLDEN_PRINT=1 and paste the printed literals below.
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "engine/parallel_miner.h"
#include "miner/pipeline.h"

namespace dnsnoise {
namespace {

void append_num(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_findings(std::string& out,
                     const std::vector<DisposableZoneFinding>& findings) {
  for (const DisposableZoneFinding& f : findings) {
    out += f.zone;
    out += '|';
    out += std::to_string(f.depth);
    out += '|';
    out += std::to_string(f.group_size);
    out += '|';
    append_num(out, f.confidence);
    for (const double v : f.features.as_array()) {
      out += '|';
      append_num(out, v);
    }
    out += '\n';
  }
}

void append_capture(std::string& out, const DayCapture& capture) {
  out += "tree:" + std::to_string(capture.tree().node_count()) + "/" +
         std::to_string(capture.tree().black_count());
  out += " chr:" + std::to_string(capture.chr().unique_rrs());
  out += " uniq:" + std::to_string(capture.unique_queried()) + "/" +
         std::to_string(capture.unique_resolved());
  out += " below:" + std::to_string(capture.below_series().sum_total()) + "/" +
         std::to_string(capture.below_series().sum_nxdomain());
  out += " above:" + std::to_string(capture.above_series().sum_total()) + "/" +
         std::to_string(capture.above_series().sum_nxdomain());
  out += '\n';
}

void append_result(std::string& out, const MiningDayResult& result) {
  out += "labeled:" + std::to_string(result.labeled.size());
  out += " findings:" + std::to_string(result.findings.size());
  out += " agg:" + std::to_string(result.aggregates.unique_queried) + "/" +
         std::to_string(result.aggregates.unique_resolved) + "/" +
         std::to_string(result.aggregates.unique_rrs) + "/" +
         std::to_string(result.aggregates.disposable_queried) + "/" +
         std::to_string(result.aggregates.disposable_resolved) + "/" +
         std::to_string(result.aggregates.disposable_rrs);
  out += '\n';
  append_findings(out, result.findings);
}

/// The "counters" section of a dnsnoise-metrics-v1 snapshot: the
/// deterministic part (gauges/timers carry wall-clock values).
std::string counters_section(const std::string& json) {
  const auto begin = json.find("\"counters\"");
  const auto end = json.find("\"gauges\"");
  if (begin == std::string::npos || end == std::string::npos || end < begin) {
    return "<malformed>";
  }
  return json.substr(begin, end - begin);
}

ScenarioScale golden_scale() {
  ScenarioScale scale;
  scale.queries_per_day = 30'000;
  scale.client_count = 1'500;
  return scale;
}

std::string classic_fingerprint() {
  PipelineOptions options;
  options.scale = golden_scale();
  options.cluster.cache.capacity = 1 << 14;
  DayCapture capture;
  const MiningDayResult result =
      run_mining_day(ScenarioDate::kDec30, options, &capture);
  std::string out;
  out += "status:" + std::to_string(static_cast<int>(result.status)) + "\n";
  append_capture(out, capture);
  append_result(out, result);
  return out;
}

std::string engine_fingerprint() {
  ClusterConfig cluster;
  cluster.server_count = 4;
  cluster.cache.capacity = 1 << 14;
  MiningSession session(golden_scale());
  session.cluster(cluster).threads(2).enable_metrics(true);
  const MiningDayResult result = session.run(ScenarioDate::kDec30);
  std::string out;
  out += "status:" + std::to_string(static_cast<int>(result.status)) + "\n";
  append_result(out, result);
  out += counters_section(result.metrics_json);
  out += '\n';
  return out;
}

bool print_mode() {
  const char* env = std::getenv("DNSNOISE_GOLDEN_PRINT");
  return env != nullptr && env[0] == '1';
}

// Golden literals captured from the pre-interning seed implementation
// (PR 2 state); the hot-path refactor must reproduce them exactly.
#include "golden_pipeline_expected.inc"

TEST(GoldenPipelineTest, ClassicDayIsByteIdentical) {
  const std::string got = classic_fingerprint();
  if (print_mode()) {
    std::printf("=== classic ===\n%s=== end ===\n", got.c_str());
    GTEST_SKIP() << "print mode";
  }
  EXPECT_EQ(got, std::string(kGoldenClassic));
}

TEST(GoldenPipelineTest, ShardedEngineDayIsByteIdentical) {
  const std::string got = engine_fingerprint();
  if (print_mode()) {
    std::printf("=== engine ===\n%s=== end ===\n", got.c_str());
    GTEST_SKIP() << "print mode";
  }
  EXPECT_EQ(got, std::string(kGoldenEngine));
}

}  // namespace
}  // namespace dnsnoise
