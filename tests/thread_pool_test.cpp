// Thread-pool smoke tests.  Deliberately simple and data-race focused so
// they stay meaningful under -fsanitize=thread (DNSNOISE_SANITIZE=thread).
#include "engine/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

namespace dnsnoise {
namespace {

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWritesToDisjointSlotsWithoutAtomics) {
  // The engine's usage pattern: each index owns its output slot.
  ThreadPool pool(3);
  constexpr std::size_t kN = 1'000;
  std::vector<std::uint64_t> out(kN, 0);
  pool.parallel_for(kN, [&out](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossRounds) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(100, [&sum](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 10u * (99u * 100u / 2u));
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&pool, &counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
      pool.submit(
          [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnQuietPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  pool.wait_idle();
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletesParallelFor) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(64, [&counter](std::size_t) {
    counter.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace dnsnoise
