#include "util/stats.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "util/rng.h"

namespace dnsnoise {
namespace {

TEST(StatsTest, SummarizeEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.median, 0.0);
}

TEST(StatsTest, SummarizeKnownValues) {
  const std::array<double, 5> values = {5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.variance, 2.0);
}

TEST(StatsTest, MedianEvenCount) {
  const std::array<double, 4> values = {1.0, 2.0, 3.0, 10.0};
  EXPECT_DOUBLE_EQ(median(values), 2.5);
}

TEST(StatsTest, MedianSingle) {
  const std::array<double, 1> values = {7.0};
  EXPECT_DOUBLE_EQ(median(values), 7.0);
}

TEST(StatsTest, QuantileEndpointsAndMid) {
  const std::array<double, 5> values = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 20.0);
}

TEST(StatsTest, QuantileClampsOutOfRange) {
  const std::array<double, 2> values = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(values, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 2.0), 2.0);
}

TEST(StatsTest, FractionBelow) {
  const std::array<double, 4> values = {0.0, 0.0, 0.5, 1.0};
  EXPECT_DOUBLE_EQ(fraction_below(values, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(fraction_below(values, 2.0), 1.0);
}

TEST(StatsTest, FractionEqual) {
  const std::array<double, 4> values = {0.0, 0.0, 0.5, 1.0};
  EXPECT_DOUBLE_EQ(fraction_equal(values, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_equal(values, 0.5), 0.25);
  EXPECT_DOUBLE_EQ(fraction_equal(values, 9.0), 0.0);
}

TEST(StatsTest, OnlineStatsMatchesBatch) {
  Rng rng(1);
  std::vector<double> values;
  OnlineStats online;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    values.push_back(x);
    online.add(x);
  }
  const Summary batch = summarize(values);
  EXPECT_EQ(online.count(), batch.count);
  EXPECT_NEAR(online.mean(), batch.mean, 1e-9);
  EXPECT_NEAR(online.variance(), batch.variance, 1e-6);
  EXPECT_DOUBLE_EQ(online.min(), batch.min);
  EXPECT_DOUBLE_EQ(online.max(), batch.max);
}

TEST(StatsTest, OnlineStatsEmpty) {
  const OnlineStats empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.variance(), 0.0);
}

class QuantileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotoneTest, QuantilesAreMonotone) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.uniform(-5, 5));
  double previous = quantile(values, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double current = quantile(values, q);
    EXPECT_GE(current, previous - 1e-12);
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneTest,
                         ::testing::Range(1, 8));

}  // namespace
}  // namespace dnsnoise
