// loadgen: workload distributions, the open/closed-loop driver, and the
// harness's reason to exist — under overload, the open loop's
// scheduled-send anchoring surfaces the queueing delay the closed loop
// structurally cannot see (coordinated omission).
//
// The driver tests run against a simulated single-server FIFO queue with
// a fixed service time instead of a real socket, which makes the
// divergence deterministic: a closed loop against a 1ms server measures
// ~1ms RTTs at any offered rate, while an open loop offered 4x the
// service rate must build backlog linear in the query index.
#include "loadgen/driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "loadgen/workload.h"
#include "obs/metrics.h"
#include "resolver/wire_frontend.h"
#include "util/rng.h"

namespace dnsnoise::loadgen {
namespace {

using Clock = std::chrono::steady_clock;

TEST(Workload, FixedRateGapsAreExact) {
  WorkloadConfig config;
  config.arrival = ArrivalProcess::kFixedRate;
  config.offered_qps = 1e6;  // 1000ns gaps
  const Workload workload(config);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(workload.next_gap_ns(rng), 1000u);
}

TEST(Workload, PoissonGapsAverageTheOfferedRate) {
  WorkloadConfig config;
  config.arrival = ArrivalProcess::kPoisson;
  config.offered_qps = 10'000;  // mean gap 100us
  const Workload workload(config);
  Rng rng(7);
  double sum = 0;
  constexpr int kSamples = 20'000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(workload.next_gap_ns(rng));
  }
  const double mean = sum / kSamples;
  EXPECT_NEAR(mean, 100'000.0, 5'000.0);
}

TEST(Workload, ZipfKeysAreSkewedAndUniformKeysAreNot) {
  WorkloadConfig config;
  config.name_count = 100;
  config.keys = KeyDistribution::kZipf;
  config.zipf_s = 1.2;
  const Workload zipf(config);
  config.keys = KeyDistribution::kUniform;
  const Workload uniform(config);

  Rng rng_a(3);
  Rng rng_b(3);
  std::vector<int> zipf_hits(100), uniform_hits(100);
  for (int i = 0; i < 20'000; ++i) {
    ++zipf_hits[zipf.next_key(rng_a)];
    ++uniform_hits[uniform.next_key(rng_b)];
  }
  // Rank 0 dominates under Zipf; under uniform it stays near 1/100.
  EXPECT_GT(zipf_hits[0], 3'000);
  EXPECT_LT(uniform_hits[0], 500);
}

TEST(Workload, NamesAndClientsAreStable) {
  WorkloadConfig config;
  config.name_count = 10;
  config.name_prefix = "q";
  config.name_suffix = ".bench.test";
  config.client_count = 16;
  const Workload workload(config);
  EXPECT_EQ(workload.name_of(3), "q3.bench.test");
  EXPECT_EQ(workload.name_of(13), "q3.bench.test");  // wraps
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_LT(workload.client_of(seq), 16u);
    EXPECT_EQ(workload.client_of(seq), workload.client_of(seq));
  }
}

/// Single-server FIFO queue with a fixed service time: responses echo the
/// two id bytes once their (queued) service completes.  Single-threaded
/// by the driver's contract (one transport per worker).
class QueueTransport final : public QueryTransport {
 public:
  explicit QueueTransport(std::chrono::nanoseconds service)
      : service_(service) {}

  bool send(std::span<const std::uint8_t> wire) override {
    if (wire.size() < 2) return false;
    const auto now = Clock::now();
    const auto start = std::max(now, free_at_);
    free_at_ = start + service_;
    pending_.push_back({free_at_, {wire[0], wire[1]}});
    return true;
  }

  std::optional<std::vector<std::uint8_t>> receive(int timeout_ms) override {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      if (!pending_.empty() && pending_.front().done_at <= Clock::now()) {
        std::vector<std::uint8_t> resp(pending_.front().id.begin(),
                                       pending_.front().id.end());
        pending_.pop_front();
        return resp;
      }
      if (timeout_ms <= 0) return std::nullopt;  // poll
      const auto now = Clock::now();
      if (now >= deadline) return std::nullopt;
      const auto wake = pending_.empty()
                            ? deadline
                            : std::min(deadline, pending_.front().done_at);
      std::this_thread::sleep_until(wake);
      if (pending_.empty()) return std::nullopt;
    }
  }

 private:
  struct Pending {
    Clock::time_point done_at;
    std::array<std::uint8_t, 2> id;
  };
  std::chrono::nanoseconds service_;
  Clock::time_point free_at_{};
  std::deque<Pending> pending_;
};

LoadgenConfig queue_config() {
  LoadgenConfig config;
  config.workload.name_count = 16;
  config.connections = 1;
  config.queries = 240;
  config.timeout_ms = 200;
  config.drain_timeout_ms = 5000;
  config.seed = 9;
  return config;
}

TransportFactory queue_factory(std::chrono::nanoseconds service) {
  return [service](std::size_t) {
    return std::make_unique<QueueTransport>(service);
  };
}

TEST(LoadgenLoop, ClosedLoopMeasuresServiceTime) {
  LoadgenConfig config = queue_config();
  config.mode = LoopMode::kClosed;
  const LoadgenResult result =
      run_load(config, queue_factory(std::chrono::milliseconds(1)));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.completed, config.queries);
  EXPECT_EQ(result.lost, 0u);
  // One query outstanding against a 1ms server: RTT ~ service time.
  EXPECT_GE(result.percentiles.p50, 0.0005);
  EXPECT_LT(result.percentiles.p99, 0.020);
  EXPECT_EQ(result.offered_qps, 0.0);  // a closed loop has no offered rate
}

TEST(LoadgenLoop, OpenLoopOverloadExposesCoordinatedOmission) {
  // The tentpole demonstration: 4x overload.  The closed loop above
  // reports ~1ms p99 forever; the open loop charges each query the
  // backlog it actually waited behind.
  LoadgenConfig closed = queue_config();
  closed.mode = LoopMode::kClosed;
  const LoadgenResult closed_result =
      run_load(closed, queue_factory(std::chrono::milliseconds(1)));
  ASSERT_TRUE(closed_result.ok) << closed_result.error;

  LoadgenConfig open = queue_config();
  open.mode = LoopMode::kOpen;
  open.workload.arrival = ArrivalProcess::kFixedRate;
  open.workload.offered_qps = 4000;  // server capacity is 1000/s
  const LoadgenResult open_result =
      run_load(open, queue_factory(std::chrono::milliseconds(1)));
  ASSERT_TRUE(open_result.ok) << open_result.error;
  EXPECT_EQ(open_result.completed, open.queries);  // late, but all answered

  // 240 queries scheduled over 60ms into a 1ms/query server: the last
  // ones wait ~175ms.  Huge margins keep this robust on loaded CI.
  EXPECT_GT(open_result.percentiles.p99, 0.050);
  EXPECT_GT(open_result.percentiles.p99, 3.0 * closed_result.percentiles.p99);
  // Achieved rate converges to the service rate, not the offered rate.
  EXPECT_LT(open_result.achieved_qps, 2000.0);
  EXPECT_NEAR(open_result.offered_qps, 4000.0, 1.0);
}

TEST(LoadgenLoop, OpenLoopAtSustainableRateStaysFlat) {
  LoadgenConfig config = queue_config();
  config.mode = LoopMode::kOpen;
  config.queries = 120;
  config.workload.arrival = ArrivalProcess::kFixedRate;
  config.workload.offered_qps = 200;  // well under the 1000/s capacity
  const LoadgenResult result =
      run_load(config, queue_factory(std::chrono::milliseconds(1)));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.completed, config.queries);
  // No backlog at 20% utilization: the open-loop tail is the service time.
  EXPECT_LT(result.percentiles.p99, 0.020);
}

TEST(LoadgenLoop, WarmupQueriesAreNotRecorded) {
  LoadgenConfig config = queue_config();
  config.mode = LoopMode::kClosed;
  config.queries = 50;
  config.warmup_queries = 30;
  const LoadgenResult result =
      run_load(config, queue_factory(std::chrono::microseconds(100)));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.sent, 50u);
  EXPECT_EQ(result.completed, 50u);
  EXPECT_EQ(result.latency.count, 50u);  // warmup left no samples
}

TEST(LoadgenLoop, TransportFactoryFailureIsReported) {
  LoadgenConfig config = queue_config();
  const LoadgenResult result =
      run_load(config, [](std::size_t) -> std::unique_ptr<QueryTransport> {
        return nullptr;
      });
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("transport factory failed"), std::string::npos);
}

TEST(LoadgenLoop, DrivesTheRealWireFrontend) {
  // End to end over a real UDP socket: multi-connection closed loop plus
  // an open-loop pass, replay metadata carrying the client population.
  obs::MetricsRegistry registry;
  SyntheticAuthority authority;
  authority.register_zone(*DomainName::parse("bench.test"),
                          SyntheticAuthority::make_flat_a_zone(60));
  ClusterConfig cluster_config;
  cluster_config.server_count = 1;
  RdnsCluster cluster(cluster_config, authority);
  WireFrontendConfig frontend_config;
  frontend_config.allow_replay_meta = true;
  frontend_config.metrics = &registry;
  WireFrontend frontend(cluster, frontend_config);
  ASSERT_TRUE(frontend.start()) << frontend.error();

  LoadgenConfig config;
  config.mode = LoopMode::kClosed;
  config.connections = 2;
  config.queries = 400;
  config.warmup_queries = 50;
  config.workload.name_count = 64;
  config.attach_replay_meta = true;
  const LoadgenResult closed_result =
      run_load_udp(config, "127.0.0.1", frontend.udp_port());
  ASSERT_TRUE(closed_result.ok) << closed_result.error;
  EXPECT_GT(closed_result.completed, 350u);  // loopback may drop a few
  EXPECT_GT(closed_result.percentiles.p50, 0.0);

  config.mode = LoopMode::kOpen;
  config.workload.offered_qps = 2000;
  const LoadgenResult open_result =
      run_load_udp(config, "127.0.0.1", frontend.udp_port());
  ASSERT_TRUE(open_result.ok) << open_result.error;
  EXPECT_GT(open_result.completed, 350u);

  // The served queries flowed the instrumented path: stage latency saw
  // every answered query.
  const StageLatencyBreakdown stages = frontend.stage_latency();
  EXPECT_GE(stages.total.count,
            closed_result.completed + open_result.completed);
  frontend.stop();
}

}  // namespace
}  // namespace dnsnoise::loadgen
