#include "dns/name_table.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace dnsnoise {
namespace {

std::vector<std::string> sample_names(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<std::string> names;
  names.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    names.push_back(rng.hex_string(8 + rng.below(12)) + ".zone" +
                    std::to_string(rng.below(40)) + ".example.com");
  }
  return names;
}

TEST(NameTableTest, InternIsIdempotentAndDense) {
  NameTable table;
  const NameId a = table.intern("a.example.com");
  const NameId b = table.intern("b.example.com");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(table.intern("a.example.com"), a);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.name(a), "a.example.com");
  EXPECT_EQ(table.name(b), "b.example.com");
}

TEST(NameTableTest, FindNeverInterns) {
  NameTable table;
  EXPECT_EQ(table.find("ghost.example.com"), kInvalidNameId);
  EXPECT_EQ(table.size(), 0u);
  table.intern("real.example.com");
  EXPECT_EQ(table.find("real.example.com"), 0u);
  EXPECT_EQ(table.find("ghost.example.com"), kInvalidNameId);
  EXPECT_EQ(table.size(), 1u);
}

TEST(NameTableTest, HashMatchesFnv1a) {
  NameTable table;
  const NameId id = table.intern("www.example.com");
  EXPECT_EQ(table.name_hash(id), fnv1a64("www.example.com"));
  const NameRef ref = table.ref("www.example.com");
  EXPECT_EQ(ref.id, id);
  EXPECT_EQ(ref.text, "www.example.com");
  EXPECT_EQ(ref.hash, table.name_hash(id));
  EXPECT_TRUE(ref.valid());
}

TEST(NameTableTest, ViewsStayStableAcrossGrowth) {
  // Interned views must survive arbitrary later interning: slot-array
  // growth and new arena chunks never move stored bytes.
  NameTable table;
  const std::vector<std::string> names = sample_names(7, 5'000);
  std::vector<std::pair<NameId, std::string_view>> early;
  for (std::size_t i = 0; i < 32; ++i) {
    const NameId id = table.intern(names[i]);
    early.emplace_back(id, table.name(id));
  }
  for (const std::string& name : names) table.intern(name);
  for (std::size_t i = 0; i < early.size(); ++i) {
    EXPECT_EQ(early[i].second, names[i]);
    EXPECT_EQ(table.name(early[i].first).data(), early[i].second.data())
        << "arena view moved for " << names[i];
  }
}

TEST(NameTableTest, SameStreamSameIdsAcrossShards) {
  // Two shards that intern the same name stream assign identical ids —
  // the determinism the sharded engine relies on for reproducible days.
  const std::vector<std::string> names = sample_names(11, 2'000);
  NameTable shard_a;
  NameTable shard_b;
  for (const std::string& name : names) {
    ASSERT_EQ(shard_a.intern(name), shard_b.intern(name)) << name;
  }
  ASSERT_EQ(shard_a.size(), shard_b.size());
  for (NameId id = 0; id < shard_a.size(); ++id) {
    EXPECT_EQ(shard_a.name(id), shard_b.name(id));
    EXPECT_EQ(shard_a.name_hash(id), shard_b.name_hash(id));
  }
}

TEST(NameTableTest, DifferentOrderRemapsThroughText) {
  // Shards seeing different orders assign different ids; merging must go
  // through the text, which round-trips exactly.
  const std::vector<std::string> names = sample_names(13, 500);
  NameTable forward;
  NameTable backward;
  for (const std::string& name : names) forward.intern(name);
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    backward.intern(*it);
  }
  ASSERT_EQ(forward.size(), backward.size());
  for (NameId id = 0; id < forward.size(); ++id) {
    const NameId remapped = backward.find(forward.name(id));
    ASSERT_NE(remapped, kInvalidNameId);
    EXPECT_EQ(backward.name(remapped), forward.name(id));
  }
}

TEST(NameTableTest, LabelPoolIsOptional) {
  NameTable plain(false);
  EXPECT_FALSE(plain.tracks_labels());
  NameTable labeled(true);
  EXPECT_TRUE(labeled.tracks_labels());
  const LabelId www = labeled.intern_label("www");
  const LabelId com = labeled.intern_label("com");
  EXPECT_NE(www, com);
  EXPECT_EQ(labeled.intern_label("www"), www);
  EXPECT_EQ(labeled.label(www), "www");
  EXPECT_EQ(labeled.label_hash(com), fnv1a64("com"));
  EXPECT_EQ(labeled.find_label("org"), kInvalidNameId);
  EXPECT_EQ(labeled.label_count(), 2u);
}

TEST(NameTableTest, ReserveKeepsIdsAndViews) {
  NameTable table;
  const NameId id = table.intern("keep.example.com");
  const std::string_view view = table.name(id);
  table.reserve(100'000);
  EXPECT_EQ(table.find("keep.example.com"), id);
  EXPECT_EQ(table.name(id).data(), view.data());
}

TEST(NameTableTest, MoveTransfersEverything) {
  NameTable table;
  const NameId id = table.intern("moved.example.com");
  NameTable other = std::move(table);
  EXPECT_EQ(other.find("moved.example.com"), id);
  EXPECT_EQ(other.name(id), "moved.example.com");
}

}  // namespace
}  // namespace dnsnoise
