#include "dns/name.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

namespace dnsnoise {
namespace {

TEST(DomainNameTest, NormalizesCaseAndTrailingDot) {
  const DomainName name("WWW.Example.COM.");
  EXPECT_EQ(name.text(), "www.example.com");
  EXPECT_EQ(name.label_count(), 3u);
}

TEST(DomainNameTest, EmptyAndRoot) {
  const DomainName root("");
  EXPECT_TRUE(root.empty());
  EXPECT_EQ(root.label_count(), 0u);
  const DomainName dot(".");
  EXPECT_TRUE(dot.empty());
}

TEST(DomainNameTest, LabelsLeftToRight) {
  const DomainName name("a.b.example.com");
  EXPECT_EQ(name.label(0), "a");
  EXPECT_EQ(name.label(1), "b");
  EXPECT_EQ(name.label(3), "com");
  EXPECT_EQ(name.label_from_right(0), "com");
  EXPECT_EQ(name.label_from_right(3), "a");
  EXPECT_THROW(name.label(4), std::out_of_range);
}

TEST(DomainNameTest, LabelsVector) {
  const DomainName name("x.y.z");
  const auto labels = name.labels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], "x");
  EXPECT_EQ(labels[2], "z");
}

TEST(DomainNameTest, NldMatchesPaperNotation) {
  // Paper III-B: d = a.example.com, TLD(d) = com, 2LD(d) = example.com,
  // 3LD(d) = a.example.com.
  const DomainName d("a.example.com");
  EXPECT_EQ(d.nld(1).text(), "com");
  EXPECT_EQ(d.nld(2).text(), "example.com");
  EXPECT_EQ(d.nld(3).text(), "a.example.com");
  EXPECT_EQ(d.nld(99).text(), "a.example.com");
  EXPECT_TRUE(d.nld(0).empty());
}

TEST(DomainNameTest, NldViewIsZeroCopy) {
  const DomainName d("a.b.c.net");
  EXPECT_EQ(d.nld_view(2), "c.net");
  EXPECT_EQ(d.nld_view(4), "a.b.c.net");
  EXPECT_TRUE(d.nld_view(0).empty());
}

TEST(DomainNameTest, Parent) {
  const DomainName d("a.b.com");
  EXPECT_EQ(d.parent().text(), "b.com");
  EXPECT_EQ(d.parent().parent().text(), "com");
  EXPECT_TRUE(d.parent().parent().parent().empty());
}

TEST(DomainNameTest, IsWithin) {
  const DomainName d("mail.google.com");
  EXPECT_TRUE(d.is_within("google.com"));
  EXPECT_TRUE(d.is_within("com"));
  EXPECT_TRUE(d.is_within("mail.google.com"));  // itself
  EXPECT_TRUE(d.is_within(""));                 // root
  EXPECT_FALSE(d.is_within("oogle.com"));       // not a label boundary
  EXPECT_FALSE(d.is_within("example.com"));
  EXPECT_FALSE(DomainName("com").is_within("google.com"));
}

TEST(DomainNameTest, Child) {
  const DomainName apex("example.com");
  EXPECT_EQ(apex.child("www").text(), "www.example.com");
  EXPECT_EQ(DomainName("").child("com").text(), "com");
}

TEST(DomainNameTest, ComparisonAndHash) {
  const DomainName a("a.com");
  const DomainName b("A.COM");
  const DomainName c("b.com");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  std::unordered_set<DomainName> set;
  set.insert(a);
  set.insert(b);
  EXPECT_EQ(set.size(), 1u);
}

TEST(DomainNameTest, AcceptsHyphensDigitsUnderscores) {
  EXPECT_TRUE(DomainName::parse("load-0-p-01.up-1852280.example.com"));
  EXPECT_TRUE(DomainName::parse("_dmarc.example.com"));
  EXPECT_TRUE(DomainName::parse("123.45.67.89.zen.example.org"));
}

TEST(DomainNameTest, RejectsOversizedLabels) {
  const std::string big_label(64, 'a');
  EXPECT_FALSE(DomainName::parse(big_label + ".com"));
  const std::string max_label(63, 'a');
  EXPECT_TRUE(DomainName::parse(max_label + ".com"));
}

TEST(DomainNameTest, RejectsOversizedNames) {
  std::string name;
  for (int i = 0; i < 60; ++i) name += "abcd.";
  name += "com";  // 303 chars
  EXPECT_FALSE(DomainName::parse(name));
}

class InvalidNameTest : public ::testing::TestWithParam<const char*> {};

TEST_P(InvalidNameTest, ParseRejects) {
  EXPECT_FALSE(DomainName::parse(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, InvalidNameTest,
                         ::testing::Values("a..b", ".leading.dot",
                                           "bad label.com", "semi;colon.com",
                                           "new\nline.com", "tab\t.com",
                                           "per%cent.com", "a..", "..",
                                           "sla/sh.com"));

class ValidNameTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ValidNameTest, ParseAcceptsAndRoundTrips) {
  const auto name = DomainName::parse(GetParam());
  ASSERT_TRUE(name) << GetParam();
  // Re-parsing the normalized text is the identity.
  const auto again = DomainName::parse(name->text());
  ASSERT_TRUE(again);
  EXPECT_EQ(*name, *again);
}

INSTANTIATE_TEST_SUITE_P(
    Wild, ValidNameTest,
    ::testing::Values(
        "www.example.com", "com", "x.co.uk",
        "0.0.0.0.1.0.0.4e.135jg5e1pd7s4735ftrqweufm5.avqs.mcafee.com",
        "p2.a22a43lt5rwfg.ihg5ki5i6q3cfn3n.191742.i1.ds.ipv6-exp.l.google.com",
        "load-0-p-01.up-1852280.device.trans.manage.esoft.com",
        "single"));

}  // namespace
}  // namespace dnsnoise
