#include "analytics/measurements.h"

#include <gtest/gtest.h>

namespace dnsnoise {
namespace {

/// Tracker fixture: 6 disposable one-shot RRs (TTL 300) + 2 popular RRs.
class MeasurementsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 6; ++i) {
      const std::string name = "h" + std::to_string(i) + ".avqs.vendor.com";
      chr_.record_below(name, RRType::A, "10.0.0.1", 300);
      chr_.record_above(name, RRType::A, "10.0.0.1", 300);
    }
    for (const char* host : {"www", "mail"}) {
      const std::string name = std::string(host) + ".popular.com";
      for (int q = 0; q < 50; ++q) {
        chr_.record_below(name, RRType::A, "10.9.9.9", 3600);
      }
      chr_.record_above(name, RRType::A, "10.9.9.9", 3600);
    }
  }

  static bool is_disposable(const DomainName& name) {
    return name.is_within("avqs.vendor.com");
  }

  CacheHitRateTracker chr_;
};

TEST_F(MeasurementsTest, SortedLookupVolumes) {
  const auto volumes = sorted_lookup_volumes(chr_);
  ASSERT_EQ(volumes.size(), 8u);
  EXPECT_EQ(volumes[0], 50u);
  EXPECT_EQ(volumes[1], 50u);
  EXPECT_EQ(volumes[7], 1u);
}

TEST_F(MeasurementsTest, LookupTailFraction) {
  EXPECT_DOUBLE_EQ(lookup_tail_fraction(chr_, 10), 0.75);
  EXPECT_DOUBLE_EQ(lookup_tail_fraction(chr_, 2), 0.75);
  EXPECT_DOUBLE_EQ(lookup_tail_fraction(chr_, 1), 0.0);
  EXPECT_DOUBLE_EQ(lookup_tail_fraction(chr_, 100), 1.0);
}

TEST_F(MeasurementsTest, ZeroDhrFraction) {
  // The 6 disposable RRs have DHR 0; the two popular ones have 0.98.
  EXPECT_DOUBLE_EQ(zero_dhr_fraction(chr_), 0.75);
}

TEST_F(MeasurementsTest, DhrCdfEndsAtOne) {
  const auto cdf = dhr_cdf(chr_, 11);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().f, 1.0);
  EXPECT_GE(cdf.front().x, 0.0);
}

TEST_F(MeasurementsTest, ChrFractionBelow) {
  // 8 misses total: 6 at CHR 0, 2 at CHR 0.98.
  EXPECT_DOUBLE_EQ(chr_fraction_below(chr_, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(chr_fraction_below(chr_, 1.1), 1.0);
  EXPECT_DOUBLE_EQ(chr_fraction_below(chr_, 0.0), 0.0);
}

TEST_F(MeasurementsTest, LabeledChrStudySeparates) {
  const LabeledChrStudy study = labeled_chr_study(chr_, is_disposable);
  EXPECT_EQ(study.disposable_chr.size(), 6u);
  EXPECT_EQ(study.nondisposable_chr.size(), 2u);
  EXPECT_DOUBLE_EQ(study.disposable_zero_fraction, 1.0);
  EXPECT_DOUBLE_EQ(study.nondisposable_above_058_fraction, 1.0);
}

TEST_F(MeasurementsTest, LookupTailComposition) {
  const TailComposition t = lookup_tail_composition(chr_, is_disposable, 10);
  EXPECT_DOUBLE_EQ(t.tail_fraction, 0.75);
  EXPECT_DOUBLE_EQ(t.disposable_share_of_tail, 1.0);
  EXPECT_DOUBLE_EQ(t.disposable_inside_tail, 1.0);
}

TEST_F(MeasurementsTest, ZeroDhrTailComposition) {
  const TailComposition t = zero_dhr_tail_composition(chr_, is_disposable);
  EXPECT_DOUBLE_EQ(t.tail_fraction, 0.75);
  EXPECT_DOUBLE_EQ(t.disposable_share_of_tail, 1.0);
  EXPECT_DOUBLE_EQ(t.disposable_inside_tail, 1.0);
}

TEST_F(MeasurementsTest, TtlHistogramOnlyCountsDisposable) {
  const LogHistogram histogram =
      disposable_ttl_histogram(chr_, is_disposable);
  EXPECT_EQ(histogram.total(), 6u);
  EXPECT_EQ(histogram.zero_count(), 0u);
}

TEST_F(MeasurementsTest, TtlFractionAtMost) {
  EXPECT_DOUBLE_EQ(disposable_ttl_fraction_at_most(chr_, is_disposable, 300),
                   1.0);
  EXPECT_DOUBLE_EQ(disposable_ttl_fraction_at_most(chr_, is_disposable, 299),
                   0.0);
}

TEST(MeasurementsEdgeTest, EmptyTracker) {
  const CacheHitRateTracker chr;
  const auto none = [](const DomainName&) { return false; };
  EXPECT_EQ(lookup_tail_fraction(chr), 0.0);
  EXPECT_EQ(zero_dhr_fraction(chr), 0.0);
  EXPECT_TRUE(sorted_lookup_volumes(chr).empty());
  const TailComposition t = lookup_tail_composition(chr, none);
  EXPECT_EQ(t.tail_fraction, 0.0);
  EXPECT_EQ(disposable_ttl_histogram(chr, none).total(), 0u);
  EXPECT_EQ(disposable_ttl_fraction_at_most(chr, none, 100), 0.0);
}

TEST(MeasurementsEdgeTest, ZeroTtlLandsInUnderflowBin) {
  CacheHitRateTracker chr;
  chr.record_below("a.zone.com", RRType::A, "1", 0);
  const auto all = [](const DomainName&) { return true; };
  const LogHistogram histogram = disposable_ttl_histogram(chr, all);
  EXPECT_EQ(histogram.zero_count(), 1u);
}

}  // namespace
}  // namespace dnsnoise
