#include "features/extractor.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/label_gen.h"

namespace dnsnoise {
namespace {

/// Builds a tree + CHR fixture where `count` names of the form
/// <label_i>.<zone> exist, each with `queries` below and `misses` above.
struct Fixture {
  DomainNameTree tree;
  CacheHitRateTracker chr;
  std::vector<DomainNameTree::Node*> group;
  std::size_t zone_depth = 0;

  void add_name(const std::string& name, std::uint64_t queries,
                std::uint64_t misses) {
    auto& node = tree.insert(DomainName(name));
    group.push_back(&node);
    for (std::uint64_t q = 0; q < queries; ++q) {
      chr.record_below(name, RRType::A, "10.0.0.1");
    }
    for (std::uint64_t m = 0; m < misses; ++m) {
      chr.record_above(name, RRType::A, "10.0.0.1");
    }
  }
};

TEST(ExtractorTest, DisposableShapedGroup) {
  Fixture fx;
  fx.zone_depth = 3;  // zone like avqs.vendor.com
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    fx.add_name(rng.hex_string(24) + ".avqs.vendor.com", 1, 1);
  }
  const GroupFeatures f =
      compute_group_features(fx.group, fx.zone_depth, fx.chr);
  EXPECT_EQ(f.group_size, 50u);
  EXPECT_DOUBLE_EQ(f.label_cardinality, 50.0);
  EXPECT_GT(f.entropy_median, 3.0);  // hex hashes are high-entropy
  EXPECT_DOUBLE_EQ(f.chr_median, 0.0);
  EXPECT_DOUBLE_EQ(f.chr_zero_frac, 1.0);
}

TEST(ExtractorTest, PopularShapedGroup) {
  Fixture fx;
  fx.zone_depth = 2;  // zone like popular.com
  const char* hosts[] = {"www", "mail", "img", "api", "cdn"};
  for (const char* host : hosts) {
    fx.add_name(std::string(host) + ".popular.com", 100, 5);
  }
  const GroupFeatures f =
      compute_group_features(fx.group, fx.zone_depth, fx.chr);
  EXPECT_DOUBLE_EQ(f.label_cardinality, 5.0);
  EXPECT_LT(f.entropy_median, 2.1);  // human words are low-entropy
  EXPECT_DOUBLE_EQ(f.chr_median, 0.95);
  EXPECT_DOUBLE_EQ(f.chr_zero_frac, 0.0);
}

TEST(ExtractorTest, AdjacentLabelsNotLeafLabels) {
  // Names two levels under the zone: L_k must collect the labels *next to*
  // the zone, not the leaf labels (paper Section V-A1).
  Fixture fx;
  fx.zone_depth = 2;  // zone = example.com
  fx.add_name("1.a.example.com", 1, 1);
  fx.add_name("2.a.example.com", 1, 1);
  fx.add_name("3.b.example.com", 1, 1);
  const GroupFeatures f =
      compute_group_features(fx.group, fx.zone_depth, fx.chr);
  // Adjacent labels are {a, b}, not {1, 2, 3}.
  EXPECT_DOUBLE_EQ(f.label_cardinality, 2.0);
}

TEST(ExtractorTest, EmptyGroup) {
  const CacheHitRateTracker chr;
  const GroupFeatures f = compute_group_features({}, 2, chr);
  EXPECT_EQ(f.group_size, 0u);
  EXPECT_DOUBLE_EQ(f.label_cardinality, 0.0);
}

TEST(ExtractorTest, GroupWithNoMissesIsPerfectlyCached) {
  Fixture fx;
  fx.zone_depth = 2;
  fx.add_name("www.zone.com", 50, 0);
  const GroupFeatures f =
      compute_group_features(fx.group, fx.zone_depth, fx.chr);
  // No misses: empty CHR distribution behaves as perfectly cached.
  EXPECT_DOUBLE_EQ(f.chr_median, 1.0);
  EXPECT_DOUBLE_EQ(f.chr_zero_frac, 0.0);
}

TEST(ExtractorTest, WeightedMedianUsesMissCounts) {
  Fixture fx;
  fx.zone_depth = 2;
  // One RR with a single miss at DHR 0.9, one RR with nine misses at 0.
  fx.add_name("hot.zone.com", 10, 1);
  fx.add_name("cold.zone.com", 9, 9);
  const GroupFeatures f =
      compute_group_features(fx.group, fx.zone_depth, fx.chr);
  // 10 CHR samples: nine 0.0 and one 0.9 -> median 0.
  EXPECT_DOUBLE_EQ(f.chr_median, 0.0);
  EXPECT_DOUBLE_EQ(f.chr_zero_frac, 0.5);  // 1 of 2 RRs is zero-CHR
}

TEST(ExtractorTest, FeatureArrayOrderMatchesNames) {
  GroupFeatures f;
  f.label_cardinality = 1;
  f.entropy_max = 2;
  f.entropy_min = 3;
  f.entropy_mean = 4;
  f.entropy_median = 5;
  f.entropy_var = 6;
  f.chr_median = 7;
  f.chr_zero_frac = 8;
  const auto array = f.as_array();
  ASSERT_EQ(array.size(), kFeatureCount);
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    EXPECT_DOUBLE_EQ(array[i], static_cast<double>(i + 1));
  }
}

class ExtractorSeparationTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ExtractorSeparationTest, DisposableAndPopularGroupsSeparate) {
  // Property: across seeds, the two group shapes remain separable on the
  // features the classifier uses.
  Rng rng(GetParam());
  Fixture disposable;
  disposable.zone_depth = 3;
  for (int i = 0; i < 30; ++i) {
    disposable.add_name(
        rng.string_over("abcdefghijklmnopqrstuvwxyz234567", 26) +
            ".avqs.vendor.com",
        1, 1);
  }
  Fixture popular;
  popular.zone_depth = 2;
  for (int i = 0; i < 10; ++i) {
    popular.add_name(human_hostname(static_cast<std::size_t>(i)) +
                         ".popular.com",
                     20 + rng.below(100), 1 + rng.below(3));
  }
  const GroupFeatures fd =
      compute_group_features(disposable.group, disposable.zone_depth,
                             disposable.chr);
  const GroupFeatures fp =
      compute_group_features(popular.group, popular.zone_depth, popular.chr);
  EXPECT_GT(fd.chr_zero_frac, fp.chr_zero_frac);
  EXPECT_GT(fd.entropy_median, fp.entropy_median);
  EXPECT_LT(fd.chr_median, fp.chr_median);
  EXPECT_GT(fd.label_cardinality, fp.label_cardinality);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractorSeparationTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace dnsnoise
