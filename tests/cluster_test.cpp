#include "resolver/cluster.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dnsnoise {
namespace {

Question question(const char* name) { return {DomainName(name), RRType::A}; }

SyntheticAuthority make_authority() {
  SyntheticAuthority authority;
  authority.register_zone(DomainName("example.com"),
                          SyntheticAuthority::make_flat_a_zone(300));
  return authority;
}

TEST(ClusterTest, MissThenHitSameClient) {
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 4;
  RdnsCluster cluster(config, authority);

  const auto first = cluster.query(1, question("www.example.com"), 0);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.rcode, RCode::NoError);
  const auto second = cluster.query(1, question("www.example.com"), 10);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.answers, first.answers);
  EXPECT_EQ(cluster.below_answers(), 2u);
  EXPECT_EQ(cluster.above_answers(), 1u);
}

TEST(ClusterTest, ClientHashIsSticky) {
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 8;
  config.balancing = Balancing::kClientHash;
  RdnsCluster cluster(config, authority);
  std::set<std::size_t> servers;
  for (int i = 0; i < 20; ++i) {
    servers.insert(cluster.query(42, question("www.example.com"), i).server);
  }
  EXPECT_EQ(servers.size(), 1u);
}

TEST(ClusterTest, RoundRobinCyclesServers) {
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 3;
  config.balancing = Balancing::kRoundRobin;
  RdnsCluster cluster(config, authority);
  std::vector<std::size_t> servers;
  for (int i = 0; i < 6; ++i) {
    servers.push_back(cluster.query(1, question("www.example.com"), i).server);
  }
  EXPECT_EQ(servers, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(ClusterTest, IndependentCachesMissIndependently) {
  // Different servers have different caches: a round-robin client misses
  // once per server.
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 3;
  config.balancing = Balancing::kRoundRobin;
  RdnsCluster cluster(config, authority);
  for (int i = 0; i < 6; ++i) {
    cluster.query(1, question("www.example.com"), i);
  }
  EXPECT_EQ(cluster.above_answers(), 3u);  // one cold miss per server
}

TEST(ClusterTest, NxdomainNotCachedByDefault) {
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 1;
  RdnsCluster cluster(config, authority);
  for (int i = 0; i < 5; ++i) {
    const auto outcome = cluster.query(1, question("nx.unregistered.net"), i);
    EXPECT_EQ(outcome.rcode, RCode::NXDomain);
    EXPECT_FALSE(outcome.cache_hit);
  }
  // Paper III-C1: resolvers ignoring RFC 2308 re-ask upstream every time.
  EXPECT_EQ(cluster.above_answers(), 5u);
}

TEST(ClusterTest, NegativeCacheReducesAboveTraffic) {
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 1;
  config.cache.negative_cache = true;
  config.cache.negative_ttl = 100;
  RdnsCluster cluster(config, authority);
  for (int i = 0; i < 5; ++i) {
    cluster.query(1, question("nx.unregistered.net"), i);
  }
  EXPECT_EQ(cluster.above_answers(), 1u);
}

TEST(ClusterTest, TapObserverSeesBothDirections) {
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 1;
  RdnsCluster cluster(config, authority);

  std::vector<std::string> below_names;
  std::vector<std::string> above_names;
  FunctionTapObserver observer([&](const TapBatch& batch) {
    for (const TapEvent& event : batch) {
      if (event.direction == TapDirection::kBelow) {
        below_names.push_back(event.question.name.text());
        EXPECT_EQ(event.client_id, 1u);
        EXPECT_FALSE(batch.answers(event).empty());
      } else {
        above_names.push_back(event.question.name.text());
      }
    }
  });
  cluster.add_tap_observer(&observer);
  EXPECT_EQ(cluster.tap_observer_count(), 1u);

  cluster.query(1, question("a.example.com"), 0);   // miss
  cluster.query(1, question("a.example.com"), 1);   // hit
  cluster.flush_taps();
  ASSERT_EQ(below_names.size(), 2u);
  ASSERT_EQ(above_names.size(), 1u);
  EXPECT_EQ(above_names[0], "a.example.com");
  cluster.remove_tap_observer(&observer);
  EXPECT_EQ(cluster.tap_observer_count(), 0u);
}

TEST(ClusterTest, TapBatchesFlushAtConfiguredSizeAndPreserveOrder) {
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 1;
  config.tap_batch_events = 3;
  RdnsCluster cluster(config, authority);

  std::size_t batches = 0;
  std::vector<TapDirection> directions;
  FunctionTapObserver observer([&](const TapBatch& batch) {
    ++batches;
    EXPECT_LE(batch.size(), 3u);
    for (const TapEvent& event : batch) directions.push_back(event.direction);
  });
  cluster.add_tap_observer(&observer);

  // Miss emits (above, below); two hits emit one below each: 4 events, so
  // the first batch flushes at 3 mid-stream and flush_taps drains the rest.
  cluster.query(1, question("a.example.com"), 0);
  cluster.query(1, question("a.example.com"), 1);
  cluster.query(1, question("a.example.com"), 2);
  EXPECT_EQ(batches, 1u);
  cluster.flush_taps();
  EXPECT_EQ(batches, 2u);
  const std::vector<TapDirection> expected = {
      TapDirection::kAbove, TapDirection::kBelow, TapDirection::kBelow,
      TapDirection::kBelow};
  EXPECT_EQ(directions, expected);
}

TEST(ClusterTest, RemovingObserverFlushesPendingEvents) {
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 1;
  RdnsCluster cluster(config, authority);
  std::size_t events = 0;
  FunctionTapObserver observer(
      [&events](const TapBatch& batch) { events += batch.size(); });
  cluster.add_tap_observer(&observer);
  cluster.query(1, question("a.example.com"), 0);
  cluster.remove_tap_observer(&observer);
  EXPECT_EQ(events, 2u);  // above + below, delivered by the removal flush
}

TEST(ClusterTest, NullOrDuplicateObserverIsRejected) {
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 1;
  RdnsCluster cluster(config, authority);
  EXPECT_THROW(cluster.add_tap_observer(nullptr), std::invalid_argument);
  FunctionTapObserver observer([](const TapBatch&) {});
  cluster.add_tap_observer(&observer);
  cluster.add_tap_observer(&observer);  // deduplicated, not double-delivered
  EXPECT_EQ(cluster.tap_observer_count(), 1u);
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ClusterTest, LegacySinkShimsStillObserveBothDirections) {
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 1;
  RdnsCluster cluster(config, authority);

  std::vector<std::string> below_names;
  std::vector<std::string> above_names;
  cluster.set_below_sink([&below_names](SimTime, std::uint64_t,
                                        const Question& q, RCode,
                                        std::span<const ResourceRecord>) {
    below_names.push_back(q.name.text());
  });
  cluster.set_above_sink([&above_names](SimTime, const Question& q, RCode,
                                        std::span<const ResourceRecord>) {
    above_names.push_back(q.name.text());
  });
  // The shims ride the batched tap, so they do not count as observers and
  // deliver on flush, not per query.
  EXPECT_EQ(cluster.tap_observer_count(), 0u);

  cluster.query(1, question("a.example.com"), 0);   // miss
  cluster.query(1, question("a.example.com"), 1);   // hit
  cluster.flush_taps();
  ASSERT_EQ(below_names.size(), 2u);
  ASSERT_EQ(above_names.size(), 1u);
  EXPECT_EQ(above_names[0], "a.example.com");
}

TEST(ClusterTest, LegacySinksForwardThroughTheBatchedTap) {
  // The shim adapter is just another observer: a legacy sink pair and a
  // first-class TapObserver must see the same events, in the same order,
  // delivered by the same batch flushes.
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 1;
  config.tap_batch_events = 3;  // force one mid-stream batch flush
  RdnsCluster cluster(config, authority);

  std::vector<std::string> sink_events;
  cluster.set_below_sink([&sink_events](SimTime ts, std::uint64_t client,
                                        const Question& q, RCode,
                                        std::span<const ResourceRecord> rrs) {
    sink_events.push_back("below " + std::to_string(ts) + " " +
                          std::to_string(client) + " " + q.name.text() + " " +
                          std::to_string(rrs.size()));
  });
  cluster.set_above_sink([&sink_events](SimTime ts, const Question& q, RCode,
                                        std::span<const ResourceRecord> rrs) {
    sink_events.push_back("above " + std::to_string(ts) + " 0 " +
                          q.name.text() + " " + std::to_string(rrs.size()));
  });

  std::vector<std::string> observer_events;
  std::size_t batches = 0;
  FunctionTapObserver observer([&](const TapBatch& batch) {
    ++batches;
    for (const TapEvent& event : batch) {
      observer_events.push_back(
          (event.direction == TapDirection::kBelow ? "below " : "above ") +
          std::to_string(event.ts) + " " + std::to_string(event.client_id) +
          " " + event.question.name.text() + " " +
          std::to_string(batch.answers(event).size()));
    }
  });
  cluster.add_tap_observer(&observer);

  cluster.query(1, question("a.example.com"), 0);  // miss: above + below
  cluster.query(1, question("a.example.com"), 1);  // hit: below
  EXPECT_EQ(batches, 1u);  // batch of 3 flushed mid-stream
  EXPECT_EQ(sink_events, observer_events);
  cluster.query(1, question("a.example.com"), 2);  // hit: below, buffered
  cluster.flush_taps();
  EXPECT_EQ(batches, 2u);
  ASSERT_EQ(sink_events.size(), 4u);
  EXPECT_EQ(sink_events, observer_events);
}

TEST(ClusterTest, ClearingLegacySinksFlushesAndUnregistersTheAdapter) {
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 1;
  RdnsCluster cluster(config, authority);

  std::size_t below_events = 0;
  std::size_t above_events = 0;
  cluster.set_below_sink(
      [&below_events](SimTime, std::uint64_t, const Question&, RCode,
                      std::span<const ResourceRecord>) { ++below_events; });
  cluster.set_above_sink([&above_events](SimTime, const Question&, RCode,
                                         std::span<const ResourceRecord>) {
    ++above_events;
  });
  cluster.query(1, question("a.example.com"), 0);  // miss, buffered

  // Changing a sink flushes first: both sinks see the buffered miss before
  // the above sink is cleared.
  cluster.set_above_sink(nullptr);  // adapter stays: below sink still set
  EXPECT_EQ(below_events, 1u);
  EXPECT_EQ(above_events, 1u);
  cluster.set_below_sink(nullptr);  // last sink gone: unregister

  // With the adapter unregistered nothing buffers or delivers any more.
  cluster.query(1, question("b.example.com"), 1);
  cluster.flush_taps();
  EXPECT_EQ(below_events, 1u);
  EXPECT_EQ(above_events, 1u);
}
#pragma GCC diagnostic pop

TEST(ClusterTest, DnssecCountersTrackSignedMisses) {
  SyntheticAuthority authority;
  authority.register_zone(
      DomainName("signed.com"),
      SyntheticAuthority::make_flat_a_zone(300, /*dnssec_signed=*/true));
  authority.register_zone(DomainName("plain.com"),
                          SyntheticAuthority::make_flat_a_zone(300));
  ClusterConfig config;
  config.server_count = 1;
  RdnsCluster cluster(config, authority);
  cluster.query(1, question("a.signed.com"), 0);  // signed miss
  cluster.query(1, question("a.signed.com"), 1);  // hit: no validation
  cluster.query(1, question("a.plain.com"), 2);   // unsigned miss
  EXPECT_EQ(cluster.dnssec_validations(), 1u);
  EXPECT_EQ(cluster.dnssec_disposable_validations(), 0u);
}

TEST(ClusterTest, AggregateStats) {
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 2;
  config.balancing = Balancing::kRoundRobin;
  RdnsCluster cluster(config, authority);
  cluster.query(1, question("a.example.com"), 0);
  cluster.query(1, question("a.example.com"), 1);  // other server: miss
  cluster.query(1, question("a.example.com"), 2);  // first server: hit
  const DnsCacheStats stats = cluster.aggregate_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.inserts, 2u);
}

TEST(ClusterTest, InvalidConfigThrows) {
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 0;
  EXPECT_THROW(RdnsCluster(config, authority), std::invalid_argument);
}

TEST(ClusterTest, TtlExpiryForcesRefetch) {
  const SyntheticAuthority authority = make_authority();
  ClusterConfig config;
  config.server_count = 1;
  RdnsCluster cluster(config, authority);
  cluster.query(1, question("w.example.com"), 0);
  cluster.query(1, question("w.example.com"), 299);  // hit (TTL 300)
  cluster.query(1, question("w.example.com"), 300);  // expired: miss
  EXPECT_EQ(cluster.above_answers(), 2u);
}

}  // namespace
}  // namespace dnsnoise
