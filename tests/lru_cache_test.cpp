#include "resolver/lru_cache.h"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace dnsnoise {
namespace {

TEST(LruCacheTest, PutGetPeek) {
  LruCache<std::string, int> cache(4);
  cache.put("a", 1);
  cache.put("b", 2);
  EXPECT_EQ(*cache.get("a"), 1);
  EXPECT_EQ(*cache.peek("b"), 2);
  EXPECT_EQ(cache.get("missing"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, UpdateReplacesValue) {
  LruCache<std::string, int> cache(2);
  cache.put("a", 1);
  cache.put("a", 9);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get("a"), 9);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<std::string, int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  cache.put("c", 3);  // evicts "a"
  EXPECT_EQ(cache.get("a"), nullptr);
  EXPECT_NE(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, GetRefreshesRecency) {
  LruCache<std::string, int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  EXPECT_NE(cache.get("a"), nullptr);  // "a" is now MRU
  cache.put("c", 3);                   // evicts "b"
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_EQ(cache.get("b"), nullptr);
}

TEST(LruCacheTest, PeekDoesNotRefreshRecency) {
  LruCache<std::string, int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  EXPECT_NE(cache.peek("a"), nullptr);  // no touch
  cache.put("c", 3);                    // evicts "a" (still LRU)
  EXPECT_EQ(cache.get("a"), nullptr);
}

TEST(LruCacheTest, EvictionListenerSeesVictims) {
  LruCache<int, int> cache(2);
  std::vector<int> victims;
  cache.set_eviction_listener(
      [&victims](const int& key, const int&) { victims.push_back(key); });
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(3, 30);
  cache.put(4, 40);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], 1);
  EXPECT_EQ(victims[1], 2);
}

TEST(LruCacheTest, EraseDoesNotNotifyListener) {
  LruCache<int, int> cache(2);
  int notified = 0;
  cache.set_eviction_listener([&notified](const int&, const int&) {
    ++notified;
  });
  cache.put(1, 10);
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_EQ(notified, 0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, ClearEmpties) {
  LruCache<int, int> cache(4);
  cache.put(1, 1);
  cache.put(2, 2);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(1), nullptr);
}

TEST(LruCacheTest, ForEachVisitsMruFirst) {
  LruCache<int, int> cache(3);
  cache.put(1, 1);
  cache.put(2, 2);
  cache.put(3, 3);
  (void)cache.get(1);  // 1 becomes MRU
  std::vector<int> order;
  cache.for_each([&order](const int& key, const int&) { order.push_back(key); });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
}

TEST(LruCacheTest, ZeroCapacityThrows) {
  EXPECT_THROW((LruCache<int, int>(0)), std::invalid_argument);
}

class LruPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LruPropertyTest, SizeNeverExceedsCapacityUnderRandomOps) {
  const std::size_t capacity = GetParam();
  LruCache<std::uint64_t, std::uint64_t> cache(capacity);
  Rng rng(capacity);
  std::uint64_t inserted = 0;
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = rng.below(capacity * 3);
    switch (rng.below(3)) {
      case 0:
        cache.put(key, key);
        ++inserted;
        break;
      case 1:
        (void)cache.get(key);
        break;
      default:
        (void)cache.erase(key);
        break;
    }
    ASSERT_LE(cache.size(), capacity);
  }
  EXPECT_GT(inserted, 0u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, LruPropertyTest,
                         ::testing::Values(1, 2, 3, 16, 64, 257));

// Full behavioural parity against a textbook std::list + std::map model:
// the index-linked rehash-free layout must be observationally identical,
// including recency order, put_cold placement, and eviction victims.
class LruReferenceModel {
 public:
  explicit LruReferenceModel(std::size_t capacity) : capacity_(capacity) {}

  const int* get(int key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  // Returns the evicted key, or nullopt.
  std::optional<int> put(int key, int value, bool cold) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = value;
      // cold re-put demotes to the eviction end, hot re-put promotes.
      order_.splice(cold ? order_.end() : order_.begin(), order_,
                    it->second);
      return std::nullopt;
    }
    std::optional<int> evicted;
    if (order_.size() >= capacity_) {
      evicted = order_.back().first;
      index_.erase(order_.back().first);
      order_.pop_back();
    }
    if (cold) {
      order_.emplace_back(key, value);
      index_[key] = std::prev(order_.end());
    } else {
      order_.emplace_front(key, value);
      index_[key] = order_.begin();
    }
    return evicted;
  }

  bool erase(int key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  std::size_t size() const { return order_.size(); }

 private:
  std::size_t capacity_;
  std::list<std::pair<int, int>> order_;  // front = most recent
  std::map<int, std::list<std::pair<int, int>>::iterator> index_;
};

TEST(LruCacheTest, ParityWithReferenceModel) {
  for (const std::size_t capacity : {1u, 2u, 7u, 32u}) {
    LruCache<int, int> cache(capacity);
    LruReferenceModel model(capacity);
    std::optional<int> last_evicted;
    cache.set_eviction_listener([&last_evicted](const int& key, const int&) {
      last_evicted = key;
    });
    Rng rng(0x1ab + capacity);
    const int key_space = static_cast<int>(capacity * 3 + 1);
    for (int step = 0; step < 20'000; ++step) {
      const int key = static_cast<int>(rng.below(key_space));
      switch (rng.below(4)) {
        case 0: {
          const int* got = cache.get(key);
          const int* want = model.get(key);
          ASSERT_EQ(got == nullptr, want == nullptr) << "step " << step;
          if (want != nullptr) ASSERT_EQ(*got, *want) << "step " << step;
          break;
        }
        case 1:
        case 2: {
          const bool cold = rng.chance(0.25);
          last_evicted.reset();
          int* resident = cold ? cache.put_cold(key, step)
                               : cache.put(key, step);
          const std::optional<int> evicted = model.put(key, step, cold);
          ASSERT_NE(resident, nullptr);
          ASSERT_EQ(*resident, step);
          ASSERT_EQ(last_evicted, evicted) << "step " << step;
          break;
        }
        default:
          ASSERT_EQ(cache.erase(key), model.erase(key)) << "step " << step;
          break;
      }
      ASSERT_EQ(cache.size(), model.size()) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace dnsnoise
