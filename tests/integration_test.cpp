// End-to-end integration: simulate a small ISP day, materialize the tap as
// real pcap bytes, parse them back through the capture stack, and verify
// the reconstructed fpDNS view matches the directly-observed one.  This
// closes the loop wire-codec -> pcap -> CaptureDecoder -> DayCapture.
#include <gtest/gtest.h>

#include "analytics/measurements.h"
#include "dns/wire.h"
#include "miner/pipeline.h"
#include "netio/capture.h"

namespace dnsnoise {
namespace {

const Ipv4 kResolverIp = Ipv4::from_octets(10, 0, 0, 53);
const Ipv4 kClientBase = Ipv4::from_octets(172, 16, 0, 0);
const Ipv4 kAuthorityIp = Ipv4::from_octets(198, 51, 100, 1);

TEST(IntegrationTest, PcapRoundTripMatchesDirectCapture) {
  ScenarioScale scale;
  scale.queries_per_day = 4'000;
  scale.client_count = 200;
  scale.population_scale = 0.1;
  Scenario scenario(ScenarioDate::kNov14, scale);

  ClusterConfig cluster_config;
  cluster_config.server_count = 2;
  RdnsCluster cluster(cluster_config, scenario.authority());

  // Direct capture + pcap materialization side by side, both fed from the
  // same batched tap stream.
  DayCapture direct;
  direct.attach(cluster);
  PcapWriter pcap;
  std::uint16_t txid = 0;
  FunctionTapObserver pcap_writer([&](const TapBatch& batch) {
    for (const TapEvent& event : batch) {
      const auto answers = batch.answers(event);
      DnsMessage msg = DnsMessage::make_response(
          DnsMessage::make_query(++txid, event.question.name,
                                 event.question.type),
          event.rcode, {answers.begin(), answers.end()});
      if (event.direction == TapDirection::kBelow) {
        const Ipv4 client_ip{
            kClientBase.value +
            static_cast<std::uint32_t>(event.client_id % 65536)};
        pcap.write(static_cast<std::uint32_t>(event.ts), 0,
                   build_dns_frame(kResolverIp, 53, client_ip, 40000, msg));
      } else {
        pcap.write(static_cast<std::uint32_t>(event.ts), 0,
                   build_dns_frame(kAuthorityIp, 53, kResolverIp, 5353, msg));
      }
    }
  });
  cluster.add_tap_observer(&pcap_writer);

  scenario.traffic().run_day(0, [&cluster](SimTime ts, std::uint64_t client,
                                           const QuerySpec& query) {
    cluster.query(client, {DomainName(query.qname), query.qtype}, ts);
  });
  cluster.flush_taps();

  // Replay the pcap through the capture pipeline into a second DayCapture.
  CaptureDecoder decoder({kResolverIp});
  DayCapture replayed;
  const std::size_t events = decoder.decode_pcap(
      pcap.bytes(), [&replayed](const DecodedResponse& event) {
        ASSERT_FALSE(event.message.questions.empty());
        const Question& q = event.message.questions.front();
        if (event.direction == TapDirection::kBelow) {
          replayed.on_below(event.ts, event.client_id, q,
                            event.message.header.rcode, event.message.answers);
        } else {
          replayed.on_above(event.ts, q, event.message.header.rcode,
                            event.message.answers);
        }
      });

  EXPECT_EQ(events, pcap.packet_count());
  EXPECT_EQ(decoder.dropped(), 0u);

  // The reconstructed view must match the direct one exactly.
  EXPECT_EQ(replayed.unique_queried(), direct.unique_queried());
  EXPECT_EQ(replayed.unique_resolved(), direct.unique_resolved());
  EXPECT_EQ(replayed.chr().unique_rrs(), direct.chr().unique_rrs());
  EXPECT_EQ(replayed.tree().black_count(), direct.tree().black_count());
  EXPECT_EQ(replayed.below_series().sum_total(),
            direct.below_series().sum_total());
  EXPECT_EQ(replayed.below_series().sum_nxdomain(),
            direct.below_series().sum_nxdomain());
  EXPECT_EQ(replayed.above_series().sum_total(),
            direct.above_series().sum_total());

  // Per-RR counts agree, not just totals.
  for (const auto& [key, counts] : direct.chr().entries()) {
    const auto* other = replayed.chr().find(key);
    ASSERT_NE(other, nullptr) << key.name;
    EXPECT_EQ(other->below, counts.below) << key.name;
    EXPECT_EQ(other->above, counts.above) << key.name;
  }
}

TEST(IntegrationTest, CachingShapesAreVisibleInSmallRun) {
  // Order-of-magnitude check from Fig. 2: caching keeps the above stream a
  // small fraction of the below stream.
  ScenarioScale scale;
  scale.queries_per_day = 120'000;
  scale.client_count = 4'000;
  scale.population_scale = 0.3;
  Scenario scenario(ScenarioDate::kDec30, scale);
  PipelineOptions options;
  options.scale = scale;
  DayCapture capture;
  simulate_day(scenario, capture, options, scenario_day_index(ScenarioDate::kDec30));

  // Caching shrinks the above stream.  The magnitude is scale-limited (the
  // paper's 10x gap needs ISP volumes; see EXPERIMENTS.md), but the
  // direction and the NXDOMAIN asymmetry must hold at any scale.
  const double below = static_cast<double>(capture.below_series().sum_total());
  const double above = static_cast<double>(capture.above_series().sum_total());
  EXPECT_LT(above, below * 0.85);
  EXPECT_GT(above, below * 0.02);

  // NXDOMAIN responses always re-ask upstream (negative cache off), so the
  // above stream is relatively NX-richer than the below stream.
  const double nx_below =
      static_cast<double>(capture.below_series().sum_nxdomain()) / below;
  const double nx_above =
      static_cast<double>(capture.above_series().sum_nxdomain()) / above;
  EXPECT_LT(nx_below, 0.15);
  EXPECT_GT(nx_above, nx_below);

  // Long-tail shape (Fig. 3): most RRs see few lookups.
  EXPECT_GT(lookup_tail_fraction(capture.chr(), 10), 0.75);
}

}  // namespace
}  // namespace dnsnoise
