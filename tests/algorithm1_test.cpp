#include "miner/algorithm1.h"

#include <gtest/gtest.h>

#include "ml/lad_tree.h"
#include "util/rng.h"
#include "workload/label_gen.h"

namespace dnsnoise {
namespace {

/// Fixture: plants one disposable zone (hash children, one query + one miss
/// each) and one popular zone (human hosts, well cached), then trains a LAD
/// tree on equivalent synthetic groups.
class Algorithm1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    // Planted disposable zone: 40 one-time hash names.
    for (int i = 0; i < 40; ++i) {
      add_rr(rng.hex_string(24) + ".avqs.vendor.com", 1, 1);
    }
    // Planted popular zone: 8 human hostnames, well cached.
    const char* hosts[] = {"www", "mail", "img",  "api",
                           "cdn", "m",    "shop", "news"};
    for (const char* host : hosts) {
      add_rr(std::string(host) + ".popular.com", 200, 3);
    }
    train_model(rng);
  }

  void add_rr(const std::string& name, std::uint64_t queries,
              std::uint64_t misses) {
    tree_.insert(DomainName(name));
    for (std::uint64_t q = 0; q < queries; ++q) {
      chr_.record_below(name, RRType::A, "10.0.0.1");
    }
    for (std::uint64_t m = 0; m < misses; ++m) {
      chr_.record_above(name, RRType::A, "10.0.0.1");
    }
  }

  void train_model(Rng& rng) {
    // Train on independently generated groups with the same two shapes.
    Dataset data(kFeatureCount);
    for (int sample = 0; sample < 40; ++sample) {
      DomainNameTree tree;
      CacheHitRateTracker chr;
      std::vector<DomainNameTree::Node*> group;
      const bool disposable = sample % 2 == 0;
      const std::size_t count = disposable ? 15 + rng.below(40) : 4 + rng.below(12);
      for (std::size_t i = 0; i < count; ++i) {
        const std::string label =
            disposable ? rng.hex_string(20 + rng.below(10))
                       : human_hostname(i);
        const std::string name = label + ".zone.test";
        auto& node = tree.insert(DomainName(name));
        group.push_back(&node);
        const std::uint64_t queries = disposable ? 1 : 50 + rng.below(200);
        const std::uint64_t misses = disposable ? 1 : 1 + rng.below(4);
        for (std::uint64_t q = 0; q < queries; ++q) {
          chr.record_below(name, RRType::A, "1");
        }
        for (std::uint64_t m = 0; m < misses; ++m) {
          chr.record_above(name, RRType::A, "1");
        }
      }
      const GroupFeatures features = compute_group_features(group, 2, chr);
      data.add(features.as_array(), disposable ? 1 : 0);
    }
    model_.train(data);
  }

  DomainNameTree tree_;
  CacheHitRateTracker chr_;
  LadTree model_;
};

TEST_F(Algorithm1Test, FindsPlantedZoneAndDecolors) {
  const DisposableZoneMiner miner(model_);
  const std::size_t black_before = tree_.black_count();
  const auto findings = miner.mine(tree_, chr_);
  ASSERT_EQ(findings.size(), 1u);
  // Algorithm 1 starts at the 2LD and recurses; depending on how the
  // adjacent-label features score at each level, the group is attributed
  // at the 2LD or at the generating sub-zone.  Both are correct outputs.
  EXPECT_TRUE(findings[0].zone == "vendor.com" ||
              findings[0].zone == "avqs.vendor.com")
      << findings[0].zone;
  EXPECT_EQ(findings[0].depth, 4u);
  EXPECT_EQ(findings[0].group_size, 40u);
  EXPECT_GE(findings[0].confidence, 0.9);
  // The classified group was decolored.
  EXPECT_EQ(tree_.black_count(), black_before - 40u);
  // The popular zone survived untouched.
  EXPECT_TRUE(tree_.find(DomainName("www.popular.com"))->black);
}

TEST_F(Algorithm1Test, SecondPassFindsNothingNew) {
  const DisposableZoneMiner miner(model_);
  (void)miner.mine(tree_, chr_);
  const auto second = miner.mine(tree_, chr_);
  EXPECT_TRUE(second.empty());
}

TEST_F(Algorithm1Test, MinGroupSizeGate) {
  MinerConfig config;
  config.min_group_size = 100;  // larger than the planted group
  const DisposableZoneMiner miner(model_, config);
  EXPECT_TRUE(miner.mine(tree_, chr_).empty());
}

TEST_F(Algorithm1Test, ThresholdGate) {
  MinerConfig config;
  config.threshold = 1.1;  // unreachable
  const DisposableZoneMiner miner(model_, config);
  EXPECT_TRUE(miner.mine(tree_, chr_).empty());
}

TEST_F(Algorithm1Test, RecursesIntoChildZones) {
  // Add a second disposable group deeper under an already-busy 2LD whose
  // *top-level* group is non-disposable: recursion must still find it.
  Rng rng(9);
  const char* hosts[] = {"www", "mail", "api", "img"};
  for (const char* host : hosts) {
    add_rr(std::string(host) + ".mixed.com", 300, 2);
  }
  for (int i = 0; i < 30; ++i) {
    add_rr(rng.hex_string(22) + ".t.metrics.mixed.com", 1, 1);
  }
  const DisposableZoneMiner miner(model_);
  const auto findings = miner.mine(tree_, chr_);
  bool found_deep = false;
  for (const auto& finding : findings) {
    if (finding.depth == 5 &&
        (finding.zone == "mixed.com" || finding.zone == "metrics.mixed.com" ||
         finding.zone == "t.metrics.mixed.com")) {
      found_deep = true;
    }
  }
  EXPECT_TRUE(found_deep);
  EXPECT_TRUE(tree_.find(DomainName("www.mixed.com"))->black);
}

TEST_F(Algorithm1Test, FindingsAreRankedByConfidence) {
  Rng rng(11);
  for (int i = 0; i < 25; ++i) {
    add_rr(rng.hex_string(30) + ".zen.other.org", 1, 1);
  }
  const DisposableZoneMiner miner(model_);
  const auto findings = miner.mine(tree_, chr_);
  ASSERT_GE(findings.size(), 2u);
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_GE(findings[i - 1].confidence, findings[i].confidence);
  }
}

}  // namespace
}  // namespace dnsnoise
