// Failure-injection robustness: the monitoring tap in a production ISP
// loses packets.  The miner's CHR accounting is computed from the tap, so
// packet loss perturbs every feature — these tests verify the pipeline
// degrades gracefully rather than collapsing.
#include <gtest/gtest.h>

#include "miner/pipeline.h"
#include "ml/lad_tree.h"
#include "util/rng.h"

namespace dnsnoise {
namespace {

PipelineOptions small_options() {
  PipelineOptions options;
  options.scale.queries_per_day = 90'000;
  options.scale.client_count = 4'000;
  options.scale.population_scale = 0.5;
  options.labeler.min_group_size = 8;
  return options;
}

/// Simulates a day while dropping a fraction of tap events (independently
/// per direction), as a lossy SPAN port would.
void simulate_lossy_day(Scenario& scenario, DayCapture& capture,
                        const PipelineOptions& options, std::int64_t day,
                        double loss, std::uint64_t seed) {
  RdnsCluster cluster(options.cluster, scenario.authority());
  Rng drop_rng(seed);
  FunctionTapObserver lossy_tap([&](const TapBatch& batch) {
    for (const TapEvent& event : batch) {
      if (drop_rng.chance(loss)) continue;
      if (event.direction == TapDirection::kBelow) {
        capture.on_below(event.ts, event.client_id, event.question,
                         event.rcode, batch.answers(event));
      } else {
        capture.on_above(event.ts, event.question, event.rcode,
                         batch.answers(event));
      }
    }
  });
  cluster.add_tap_observer(&lossy_tap);
  scenario.traffic().run_day(day, [&cluster](SimTime ts, std::uint64_t client,
                                             const QuerySpec& query) {
    cluster.query(client, {DomainName(query.qname), query.qtype}, ts);
  });
  cluster.flush_taps();
  cluster.remove_tap_observer(&lossy_tap);
}

class TapLossTest : public ::testing::TestWithParam<double> {};

TEST_P(TapLossTest, MinerSurvivesPacketLoss) {
  const double loss = GetParam();
  const PipelineOptions options = small_options();

  // Train on a clean day (the analyst labels from a reliable collection),
  // then mine a lossy day.
  Scenario train_scenario(ScenarioDate::kNov14, options.scale);
  DayCapture train_capture;
  simulate_day(train_scenario, train_capture, options,
               scenario_day_index(ScenarioDate::kNov14));
  LadTree model;
  model.train(to_dataset(label_zones(train_capture.tree(),
                                     train_capture.chr(), train_scenario,
                                     options.labeler)));

  ScenarioScale lossy_scale = options.scale;
  lossy_scale.traffic_stream = 99;
  Scenario lossy_scenario(ScenarioDate::kDec30, lossy_scale);
  DayCapture lossy_capture;
  PipelineOptions lossy_options = options;
  lossy_options.scale = lossy_scale;
  simulate_lossy_day(lossy_scenario, lossy_capture, lossy_options,
                     scenario_day_index(ScenarioDate::kDec30), loss, 7);

  const DisposableZoneMiner miner(model);
  const auto findings =
      miner.mine(lossy_capture.tree(), lossy_capture.chr());
  const MiningEvaluation eval =
      evaluate_findings(findings, lossy_scenario.truth());

  // Losing up to 30% of tap packets must not collapse discovery or flood
  // the output with false positives.
  EXPECT_GT(eval.findings, 15u) << "loss " << loss;
  EXPECT_GT(eval.finding_precision(), 0.85) << "loss " << loss;
}

INSTANTIATE_TEST_SUITE_P(LossRates, TapLossTest,
                         ::testing::Values(0.0, 0.1, 0.3));

TEST(ArchetypeBreakdownTest, DiscoveredZonesSpanTheTaxonomy) {
  const PipelineOptions options = small_options();
  const MiningDayResult result =
      run_mining_day(ScenarioDate::kDec30, options);
  const auto& by_archetype = result.evaluation.discovered_by_archetype;
  // The five industries of the synthetic zoo are all represented.
  std::size_t total = 0;
  for (const auto& [archetype, count] : by_archetype) total += count;
  EXPECT_EQ(total, result.evaluation.truth_zones_discovered);
  EXPECT_GE(by_archetype.size(), 4u);  // at least 4 of 5-6 archetypes
  EXPECT_TRUE(by_archetype.contains("experiment"));  // the flagship
}

}  // namespace
}  // namespace dnsnoise
