// Shard-merge unit tests: the per-structure union/summation operations the
// engine composes (see engine/shard_merge.h).
#include "engine/shard_merge.h"

#include <gtest/gtest.h>

#include "features/chr.h"
#include "features/domain_tree.h"

namespace dnsnoise {
namespace {

Question question(const char* name) { return {DomainName(name), RRType::A}; }

std::vector<ResourceRecord> answer_rrs(const char* name, std::uint32_t ttl,
                                       const char* rdata = "10.0.0.1") {
  return {{DomainName(name), RRType::A, ttl, rdata}};
}

TEST(ShardMergeTest, DomainTreeUnionKeepsBlackNodesAndCounts) {
  DomainNameTree a;
  a.insert(DomainName("x.example.com"));
  a.insert(DomainName("shared.example.com"));
  DomainNameTree b;
  b.insert(DomainName("y.example.com"));
  b.insert(DomainName("shared.example.com"));
  b.insert(DomainName("deep.y.example.com"));

  a.merge_from(b);
  EXPECT_EQ(a.black_count(), 4u);  // x, y, shared, deep.y
  // root + com + example + x + shared + y + deep = 7
  EXPECT_EQ(a.node_count(), 7u);
  const auto* deep = a.find(DomainName("deep.y.example.com"));
  ASSERT_NE(deep, nullptr);
  EXPECT_TRUE(deep->black);
  EXPECT_EQ(deep->depth, 4u);
  EXPECT_EQ(DomainNameTree::full_name(*deep), "deep.y.example.com");
  // y was only inserted as a leaf in b, black there; x untouched by merge.
  EXPECT_TRUE(a.find(DomainName("y.example.com"))->black);
  EXPECT_TRUE(a.find(DomainName("x.example.com"))->black);
  // Intermediate nodes stay white.
  EXPECT_FALSE(a.find(DomainName("example.com"))->black);
}

TEST(ShardMergeTest, DomainTreeMergeIsIdempotentOnEqualTrees) {
  DomainNameTree a;
  a.insert(DomainName("x.example.com"));
  DomainNameTree b;
  b.insert(DomainName("x.example.com"));
  a.merge_from(b);
  EXPECT_EQ(a.black_count(), 1u);
  EXPECT_EQ(a.node_count(), 4u);
}

TEST(ShardMergeTest, ChrMergeSumsBelowAndAboveCounts) {
  CacheHitRateTracker a;
  a.record_below("a.example.com", RRType::A, "10.0.0.1", 60);
  a.record_below("a.example.com", RRType::A, "10.0.0.1");
  a.record_above("a.example.com", RRType::A, "10.0.0.1");
  CacheHitRateTracker b;
  b.record_below("a.example.com", RRType::A, "10.0.0.1", 90);
  b.record_above("b.example.com", RRType::A, "10.0.0.2", 30);

  a.merge_from(b);
  EXPECT_EQ(a.unique_rrs(), 2u);
  const auto* shared = a.find({"a.example.com", RRType::A, "10.0.0.1"});
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->below, 3u);
  EXPECT_EQ(shared->above, 1u);
  EXPECT_EQ(shared->ttl, 60u);  // the merge target's TTL wins
  const auto* fresh = a.find({"b.example.com", RRType::A, "10.0.0.2"});
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->below, 0u);
  EXPECT_EQ(fresh->above, 1u);
  EXPECT_EQ(fresh->ttl, 30u);  // new entry takes the source's TTL
}

TEST(ShardMergeTest, HourlySeriesAddsSlotWise) {
  HourlySeries a;
  a.total[3] = 5;
  a.nxdomain[3] = 1;
  a.google[7] = 2;
  HourlySeries b;
  b.total[3] = 7;
  b.akamai[9] = 4;
  a += b;
  EXPECT_EQ(a.total[3], 12u);
  EXPECT_EQ(a.nxdomain[3], 1u);
  EXPECT_EQ(a.google[7], 2u);
  EXPECT_EQ(a.akamai[9], 4u);
  EXPECT_EQ(a.sum_total(), 12u);
}

TEST(ShardMergeTest, RpdnsMergeKeepsEarliestFirstSeen) {
  RpDnsDataset a;
  a.add({"x.example.com", RRType::A, "10.0.0.1"}, 5);
  RpDnsDataset b;
  b.add({"x.example.com", RRType::A, "10.0.0.1"}, 3);
  b.add({"y.example.com", RRType::A, "10.0.0.2"}, 4);

  a.merge_from(b);
  EXPECT_EQ(a.unique_records(), 2u);
  EXPECT_EQ(a.first_seen({"x.example.com", RRType::A, "10.0.0.1"}), 3);
  EXPECT_EQ(a.new_records_on(5), 0u);  // moved to day 3
  EXPECT_EQ(a.new_records_on(3), 1u);
  EXPECT_EQ(a.new_records_on(4), 1u);
}

TEST(ShardMergeTest, DayCaptureMergeUnionsEverything) {
  DayCaptureConfig config;
  config.keep_fpdns = true;
  config.feed_rpdns = true;
  DayCapture a(config);
  DayCapture b(config);
  a.start_day(1);
  b.start_day(1);
  a.on_below(2 * kSecondsPerHour, 1, question("a.example.com"),
             RCode::NoError, answer_rrs("a.example.com", 60));
  b.on_below(1 * kSecondsPerHour, 2, question("b.example.com"),
             RCode::NoError, answer_rrs("b.example.com", 60, "10.0.0.2"));
  b.on_above(3 * kSecondsPerHour, question("a.example.com"), RCode::NoError,
             answer_rrs("a.example.com", 60));

  a.merge_from(b);
  a.fpdns().stable_sort_by_time();
  EXPECT_EQ(a.unique_queried(), 2u);
  EXPECT_EQ(a.unique_resolved(), 2u);
  EXPECT_EQ(a.tree().black_count(), 2u);
  EXPECT_EQ(a.chr().unique_rrs(), 2u);
  EXPECT_EQ(a.below_series().sum_total(), 2u);
  EXPECT_EQ(a.above_series().sum_total(), 1u);
  EXPECT_EQ(a.rpdns().unique_records(), 2u);
  ASSERT_EQ(a.fpdns().size(), 3u);
  // Sorted back into tap time order: b's below entry came first.
  EXPECT_EQ(a.fpdns().entries()[0].qname, "b.example.com");
  EXPECT_EQ(a.fpdns().entries()[1].qname, "a.example.com");
  const auto* counts = a.chr().find({"a.example.com", RRType::A, "10.0.0.1"});
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->below, 1u);
  EXPECT_EQ(counts->above, 1u);
}

TEST(ShardMergeTest, MergeShardsStopsAtFirstError) {
  std::vector<ShardResult> shards;
  shards.emplace_back();
  shards.emplace_back();
  shards[0].counters.below_answers = 3;
  shards[1].error = "boom";
  shards[1].counters.below_answers = 9;

  DayCapture total;
  total.start_day(0);
  std::string error;
  merge_shards(shards, total, error);
  EXPECT_EQ(error, "shard 1: boom");
}

TEST(ShardMergeTest, MergeShardsSumsCounters) {
  std::vector<ShardResult> shards;
  shards.emplace_back();
  shards.emplace_back();
  shards[0].counters.below_answers = 3;
  shards[0].counters.above_answers = 1;
  shards[0].counters.stats.hits = 2;
  shards[1].counters.below_answers = 4;
  shards[1].counters.stats.hits = 5;

  DayCapture total;
  total.start_day(0);
  std::string error;
  const ShardCounters counters = merge_shards(shards, total, error);
  EXPECT_TRUE(error.empty());
  EXPECT_EQ(counters.below_answers, 7u);
  EXPECT_EQ(counters.above_answers, 1u);
  EXPECT_EQ(counters.stats.hits, 7u);
}

}  // namespace
}  // namespace dnsnoise
