#include "workload/label_gen.h"

#include <gtest/gtest.h>

#include <regex>
#include <set>

#include "dns/name.h"

namespace dnsnoise {
namespace {

TEST(LabelGenTest, FixedLabel) {
  const FixedLabel label("avqs");
  Rng rng(1);
  EXPECT_EQ(label.generate(rng), "avqs");
  EXPECT_EQ(label.generate(rng), "avqs");
}

TEST(LabelGenTest, RandomStringAlphabets) {
  Rng rng(2);
  EXPECT_EQ(RandomStringLabel::hex(26)->generate(rng).size(), 26u);
  const std::string b32 = RandomStringLabel::base32(26)->generate(rng);
  for (const char c : b32) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '2' && c <= '7')) << c;
  }
  const std::string b36 = RandomStringLabel::base36(13)->generate(rng);
  EXPECT_EQ(b36.size(), 13u);
}

TEST(LabelGenTest, CounterLabelBounds) {
  const CounterLabel label(100, 999);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::string s = label.generate(rng);
    const int v = std::stoi(s);
    EXPECT_GE(v, 100);
    EXPECT_LE(v, 999);
  }
}

TEST(LabelGenTest, ChoiceLabelOnlyEmitsChoices) {
  const ChoiceLabel label({"i1", "i2", "s1"});
  Rng rng(4);
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) seen.insert(label.generate(rng));
  EXPECT_EQ(seen, (std::set<std::string>{"i1", "i2", "s1"}));
}

TEST(LabelGenTest, MetricsLabelShape) {
  // eSoft-style: "mem-<num>-<num>-0-p-<pct>".
  const MetricsLabel label("mem", 2, true);
  Rng rng(5);
  const std::regex pattern("mem-[0-9]+-[0-9]+-0-p-[0-9]{2}");
  for (int i = 0; i < 100; ++i) {
    const std::string s = label.generate(rng);
    EXPECT_TRUE(std::regex_match(s, pattern)) << s;
  }
}

TEST(LabelGenTest, MetricsLabelNoSuffix) {
  const MetricsLabel label("up", 1, false);
  Rng rng(6);
  const std::regex pattern("up-[0-9]+");
  EXPECT_TRUE(std::regex_match(label.generate(rng), pattern));
}

TEST(LabelGenTest, OctetLabelRange) {
  const OctetLabel label;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const int v = std::stoi(label.generate(rng));
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 255);
  }
}

TEST(LabelGenTest, HumanLabelPoolIsBounded) {
  const HumanLabel label(8);
  Rng rng(8);
  std::set<std::string> seen;
  for (int i = 0; i < 500; ++i) seen.insert(label.generate(rng));
  EXPECT_LE(seen.size(), 8u);
  EXPECT_TRUE(seen.contains("www"));
}

TEST(LabelGenTest, HumanHostnameDeterministicAndDistinct) {
  EXPECT_EQ(human_hostname(0), "www");
  EXPECT_EQ(human_hostname(0), human_hostname(0));
  std::set<std::string> names;
  for (std::size_t i = 0; i < 200; ++i) names.insert(human_hostname(i));
  EXPECT_EQ(names.size(), 200u);
}

TEST(LabelGenTest, PseudoWordDeterministicAndMostlyDistinct) {
  EXPECT_EQ(pseudo_word(123), pseudo_word(123));
  std::set<std::string> words;
  constexpr std::size_t kCount = 5000;
  for (std::size_t i = 0; i < kCount; ++i) words.insert(pseudo_word(i));
  // Base-syllable encoding with padding collides only rarely.
  EXPECT_GT(words.size(), kCount * 99 / 100);
  for (const std::string& w : words) {
    EXPECT_GE(w.size(), 5u);
    EXPECT_TRUE(DomainName::parse(w + ".com")) << w;
  }
}

TEST(LabelGenTest, NamePatternJoinsLevels) {
  NamePattern pattern;
  pattern.add(std::make_unique<FixedLabel>("p2"));
  pattern.add(std::make_unique<FixedLabel>("x"));
  pattern.add(std::make_unique<FixedLabel>("ds"));
  Rng rng(9);
  EXPECT_EQ(pattern.generate(rng), "p2.x.ds");
  EXPECT_EQ(pattern.depth(), 3u);
}

class PatternValidityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PatternValidityTest, GeneratedNamesAreAlwaysValidDns) {
  // Property: every composed pattern produces parseable DNS names.
  NamePattern pattern;
  pattern.add(std::make_unique<MetricsLabel>("load", 0, true));
  pattern.add(std::make_unique<MetricsLabel>("swap", 2, true));
  pattern.add(RandomStringLabel::base32(26));
  pattern.add(std::make_unique<CounterLabel>(1, 4'000'000'000ULL));
  pattern.add(std::make_unique<OctetLabel>());
  pattern.add(std::make_unique<ChoiceLabel>(
      std::vector<std::string>{"ds", "v4"}));
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::string child = pattern.generate(rng);
    const auto name = DomainName::parse(child + ".zone.example.com");
    ASSERT_TRUE(name) << child;
    EXPECT_EQ(name->label_count(), 6u + 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternValidityTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dnsnoise
